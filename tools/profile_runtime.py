#!/usr/bin/env python3
"""Profile the library's own hot paths (the optimization-workflow rule:
no optimization without measuring).

Profiles a simulated run and a CPU-backend run with cProfile and prints
the top functions by cumulative time — the view that motivated
`repro.mog.fast.FastMoG` and the vectorized transaction counting.

Run:  python tools/profile_runtime.py [--frames N] [--top K]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from io import StringIO

from repro import BackgroundSubtractor
from repro.bench.harness import BENCH_SHAPE, PAPER_BENCH_PARAMS
from repro.video.scenes import evaluation_scene


def profile_run(backend: str, frames, top: int) -> str:
    subtractor = BackgroundSubtractor(
        BENCH_SHAPE, PAPER_BENCH_PARAMS, level="F", backend=backend
    )
    profiler = cProfile.Profile()
    profiler.enable()
    for frame in frames:
        subtractor.apply(frame)
    profiler.disable()
    buf = StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    return buf.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--top", type=int, default=12)
    args = parser.parse_args()

    video = evaluation_scene(height=BENCH_SHAPE[0], width=BENCH_SHAPE[1])
    frames = [video.frame(t) for t in range(args.frames)]

    for backend in ("cpu", "sim"):
        print(f"===== backend={backend} ({args.frames} frames) =====")
        print(profile_run(backend, frames, args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
