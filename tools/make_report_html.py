#!/usr/bin/env python3
"""Render the full reproduction as a single self-contained HTML page:
every experiment table plus inline SVG bar charts for the headline
figures (no JS, no external assets — opens anywhere).

Run:  python tools/make_report_html.py [output.html]
"""

from __future__ import annotations

import html
import sys
from datetime import date
from pathlib import Path

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    Experiment,
    ExperimentContext,
    PAPER_SPEEDUPS,
)

CSS = """
body { font-family: Georgia, serif; max-width: 60rem; margin: 2rem auto;
       color: #222; line-height: 1.45; padding: 0 1rem; }
h1 { border-bottom: 3px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; border-bottom: 1px solid #bbb; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .95rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }
th { background: #f0ede6; }
.notes { font-style: italic; color: #555; max-width: 48rem; }
svg { margin: 1rem 0; }
.bar-paper { fill: #b8b2a7; }
.bar-measured { fill: #4a6fa5; }
text { font-family: Georgia, serif; font-size: 12px; fill: #222; }
"""


def table_html(exp: Experiment) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in exp.headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in exp.rows
    )
    notes = (
        f'<p class="notes">{html.escape(exp.notes)}</p>' if exp.notes else ""
    )
    return (
        f"<h2>{html.escape(exp.exp_id)}: {html.escape(exp.title)}</h2>"
        f"<table><tr>{head}</tr>{body}</table>{notes}"
    )


def speedup_chart(measured: dict[str, float]) -> str:
    """Grouped bar chart: paper vs measured speedups per level."""
    levels = list(PAPER_SPEEDUPS)
    width, height, pad = 640, 260, 36
    max_v = max(max(PAPER_SPEEDUPS.values()), max(measured.values())) * 1.15
    group_w = (width - 2 * pad) / len(levels)
    bar_w = group_w * 0.32
    parts = [
        f'<svg width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg">',
        f'<text x="{pad}" y="16">Speedup over the serial CPU '
        "(grey = paper, blue = this reproduction)</text>",
    ]
    base_y = height - pad
    scale = (height - 2 * pad) / max_v
    for i, level in enumerate(levels):
        x0 = pad + i * group_w + group_w * 0.15
        for j, (cls, value) in enumerate(
            [("bar-paper", PAPER_SPEEDUPS[level]),
             ("bar-measured", measured[level])]
        ):
            bh = value * scale
            x = x0 + j * bar_w
            parts.append(
                f'<rect class="{cls}" x="{x:.1f}" y="{base_y - bh:.1f}" '
                f'width="{bar_w:.1f}" height="{bh:.1f}"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{base_y - bh - 4:.1f}">'
                f"{value:.0f}</text>"
            )
        parts.append(
            f'<text x="{x0 + bar_w * 0.7:.1f}" y="{base_y + 16}">'
            f"{level}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("report.html")
    ctx = ExperimentContext()
    measured = {level: ctx.run(level).speedup for level in PAPER_SPEEDUPS}

    sections = [
        "<h1>MoG on a (simulated) GPU — reproduction report</h1>",
        f"<p>Generated {date.today().isoformat()} by "
        "<code>tools/make_report_html.py</code>. Paper: Zhang, Tabkhi, "
        "Schirner — ICPP 2014, DOI 10.1109/ICPP.2014.27. See "
        "<code>EXPERIMENTS.md</code> for methodology and deviations.</p>",
        speedup_chart(measured),
    ]
    for name, fn in ALL_EXPERIMENTS.items():
        print(f"running {name} ...", file=sys.stderr)
        exp = fn(ctx) if fn.__code__.co_argcount else fn()
        sections.append(table_html(exp))

    out_path.write_text(
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>MoG reproduction report</title><style>{CSS}</style>"
        "</head><body>" + "".join(sections) + "</body></html>"
    )
    print(f"wrote {out_path}", file=sys.stderr)


if __name__ == "__main__":
    main()
