#!/usr/bin/env python3
"""Run the model x level x scenario quality matrix and write it as JSON.

Full-size (the committed artifact):

    PYTHONPATH=src python tools/quality_matrix.py

CI smoke (reduced resolution, with the DMSG static-scene F1 floor):

    PYTHONPATH=src python tools/quality_matrix.py --quick \\
        --out quality-matrix.json --floor 0.9

Any cell that raises fails the run; ``--floor`` additionally fails it
when the best DMSG static-scene F1 falls below the pinned value — the
regression guard for the cheap family (see docs/models.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.quality import quality_matrix, write_matrix_json  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced resolution and frame count (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: QUALITY_MATRIX.json at repo root)",
    )
    parser.add_argument(
        "--floor", type=float, default=None,
        help="fail unless the best DMSG static-scene F1 >= this value",
    )
    args = parser.parse_args(argv)

    if args.quick:
        matrix = quality_matrix(shape=(48, 64), num_frames=24, warmup=10)
    else:
        matrix = quality_matrix()

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parents[1] / "QUALITY_MATRIX.json"
    )
    write_matrix_json(out, matrix)

    width = max(len(c["scenario"]) for c in matrix["cells"])
    for cell in matrix["cells"]:
        print(
            f"{cell['model']:<5} {cell['level']} "
            f"{cell['scenario']:<{width}}  "
            f"F1 {cell['f1']:.4f}  MS-SSIM {cell['ms_ssim']:.4f}"
        )
    print(f"wrote {out}")

    if args.floor is not None:
        static_f1 = max(
            c["f1"] for c in matrix["cells"]
            if c["model"] == "dmsg" and c["scenario"] == "static"
        )
        if static_f1 < args.floor:
            print(
                f"FAIL: dmsg static F1 {static_f1:.4f} is below the "
                f"pinned floor {args.floor}",
                file=sys.stderr,
            )
            return 1
        print(f"dmsg static F1 {static_f1:.4f} >= floor {args.floor}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
