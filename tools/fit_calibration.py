#!/usr/bin/env python3
"""Fit the timing-model constants to the paper's published speedups.

Runs every optimization level once on the canonical evaluation scene
(counters are calibration-independent), then optimises the free
constants of :class:`repro.gpusim.calibration.Calibration` (plus the
effective PCIe bandwidth) so the extrapolated full-HD speedups match
the paper's anchors:

    A=13x, B=41x, C=57x, D=85x, E=86x, F=97x, G(group 8)=101x

The result is printed as a ready-to-paste ``Calibration(...)`` literal;
``DEFAULT_CALIBRATION`` in calibration.py holds the committed values.
Run:  python tools/fit_calibration.py [--quick]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np
from scipy.optimize import differential_evolution

from repro.bench.harness import (
    BENCH_FRAMES,
    BENCH_SHAPE,
    BENCH_WARMUP,
    PAPER_BENCH_PARAMS,
    PAPER_SCALE,
    steady_state_counters,
)
from repro.config import RunConfig
from repro.core.pipeline import HostPipeline
from repro.core.variants import OptimizationLevel
from repro.cpu.model import CpuTimeModel
from repro.gpusim.calibration import Calibration
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.dma import StreamScheduler
from repro.gpusim.timing import TimingModel
from repro.video.scenes import evaluation_scene

PAPER_SPEEDUPS = {
    "A": 13.0, "B": 41.0, "C": 57.0, "D": 85.0, "E": 86.0, "F": 97.0, "G": 101.0,
}


def measure_levels():
    """Run all levels once; returns level -> (counters/frame, occupancy,
    overlapped, frame_group)."""
    vid = evaluation_scene(height=BENCH_SHAPE[0], width=BENCH_SHAPE[1])
    frames = [vid.frame(t) for t in range(BENCH_FRAMES)]
    out = {}
    for level in OptimizationLevel:
        rc = RunConfig(height=BENCH_SHAPE[0], width=BENCH_SHAPE[1])
        hp = HostPipeline(BENCH_SHAPE, PAPER_BENCH_PARAMS, level, run_config=rc)
        hp.process(frames)
        report = hp.report()
        if level is OptimizationLevel.G:
            warmup = BENCH_WARMUP // rc.frame_group
        else:
            warmup = BENCH_WARMUP
        counters, occ = steady_state_counters(report, warmup)
        pixel_ratio = PAPER_SCALE.num_pixels / report.num_pixels
        out[level.letter] = (
            counters.scaled(pixel_ratio),
            occ,
            level.spec.overlapped,
            rc.frame_group if level is OptimizationLevel.G else 1,
        )
        print(f"  measured {level.letter}", file=sys.stderr)
    return out


def make_calibration(x) -> tuple[Calibration, float]:
    (fp64, sfu64, mem, branch, shared, divpen, cscale, occsat,
     mlp, floor, gamma, pcie) = x
    issue = {
        "int32": 1.0, "fp32": max(fp64 / 2.0, 0.5), "fp64": fp64,
        "sfu32": sfu64 / 2.0, "sfu64": sfu64, "cvt": 1.0,
        "mem": mem, "shared": shared, "branch": branch, "sync": 2.0,
    }
    cal = Calibration(
        issue_cycles=issue,
        divergence_penalty_cycles=divpen,
        compute_scale=cscale,
        compute_occupancy_sat=occsat,
        memory_level_parallelism=mlp,
        coalesce_floor=floor,
        coalesce_gamma=gamma,
    )
    return cal, pcie


def speedups_for(x, measured, cpu_time):
    cal, pcie = make_calibration(x)
    device = TESLA_C2075.replace(pcie_bandwidth=pcie)
    tm = TimingModel(device, cal)
    result = {}
    for letter, (counters, occ, overlapped, group) in measured.items():
        kt = tm.kernel_timing(counters, occ).total
        sched = StreamScheduler(device, overlapped=overlapped)
        nbytes = PAPER_SCALE.num_pixels
        if group > 1:
            num_groups = -(-PAPER_SCALE.num_frames // group)
            pipeline = sched.run(
                [kt] * num_groups,
                bytes_in=nbytes * group, bytes_out=nbytes * group,
            )
        else:
            pipeline = sched.run(
                [kt] * PAPER_SCALE.num_frames,
                bytes_in=nbytes, bytes_out=nbytes,
            )
        result[letter] = cpu_time / pipeline.total_time
    return result


def loss(x, measured, cpu_time):
    sp = speedups_for(x, measured, cpu_time)
    err = 0.0
    for letter, target in PAPER_SPEEDUPS.items():
        err += (np.log(sp[letter]) - np.log(target)) ** 2
    # Soft ordering constraints the reproduction must keep.
    order = ["A", "B", "C", "D", "F", "G"]
    for a, b in zip(order, order[1:]):
        if sp[a] >= sp[b]:
            err += 2.0 + (np.log(sp[a]) - np.log(sp[b]))
    if sp["E"] >= sp["F"]:
        err += 2.0 + (np.log(sp["E"]) - np.log(sp["F"]))
    return err


BOUNDS = [
    (1.0, 4.0),    # fp64
    (8.0, 40.0),   # sfu64
    (0.5, 4.0),    # mem
    (0.5, 8.0),    # branch
    (0.5, 4.0),    # shared
    (0.0, 80.0),   # divergence penalty
    (0.5, 6.0),    # compute scale
    (0.20, 0.70),  # occupancy saturation
    (0.5, 8.0),    # MLP
    (0.05, 0.40),  # coalesce floor
    (0.30, 1.20),  # coalesce gamma
    (0.5e9, 4e9),  # pcie bandwidth
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="fewer iterations")
    args = parser.parse_args()

    print("measuring counters...", file=sys.stderr)
    measured = measure_levels()
    cpu_time = CpuTimeModel().paper_reference_time()

    result = differential_evolution(
        loss, BOUNDS, args=(measured, cpu_time),
        maxiter=40 if args.quick else 400,
        popsize=12 if args.quick else 24,
        seed=1, tol=1e-8, polish=True, disp=True,
    )
    x = result.x
    cal, pcie = make_calibration(x)
    sp = speedups_for(x, measured, cpu_time)
    print("\nfit residual:", result.fun)
    print("speedups:")
    for letter, target in PAPER_SPEEDUPS.items():
        print(f"  {letter}: model {sp[letter]:7.1f}x   paper {target:5.1f}x")
    print("\npcie_bandwidth =", f"{pcie:.3e}")
    print("Calibration(")
    print(f"    issue_cycles={cal.issue_cycles},")
    print(f"    divergence_penalty_cycles={cal.divergence_penalty_cycles:.2f},")
    print(f"    compute_scale={cal.compute_scale:.3f},")
    print(f"    compute_occupancy_sat={cal.compute_occupancy_sat:.3f},")
    print(f"    memory_level_parallelism={cal.memory_level_parallelism:.3f},")
    print(f"    coalesce_floor={cal.coalesce_floor:.3f},")
    print(f"    coalesce_gamma={cal.coalesce_gamma:.3f},")
    print(")")


if __name__ == "__main__":
    main()
