#!/usr/bin/env python3
"""Measure frames/s for every execution path and record the result.

Writes (merges into) ``BENCH_throughput.json`` at the repo root — the
machine-readable perf trajectory: frames/s for the CPU backend, for
the simulator's profiled and sampled tiers, and aggregate throughput
of the multi-stream ``StreamServer``. See CONTRIBUTING.md.

Run:  PYTHONPATH=src python tools/bench_snapshot.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.snapshot import run_snapshot  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter measurements (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None,
        help="snapshot path (default: BENCH_throughput.json at repo root)",
    )
    args = parser.parse_args(argv)
    entries = run_snapshot(quick=args.quick, path=args.out)
    width = max(len(name) for name in entries)
    for name, entry in entries.items():
        print(f"{name:<{width}}  {entry['frames_per_s']:>8.2f} frames/s  "
              f"({entry['frames_timed']} frames timed)")
    profiled = entries["sim_profiled"]["frames_per_s"]
    sampled = entries["sim_sampled_8"]["frames_per_s"]
    print(f"sim sampled/profiled speedup: {sampled / profiled:.2f}x")
    plain = entries["cpu"]["frames_per_s"]
    guarded = entries["cpu_ecc_on"]["frames_per_s"]
    print(
        f"integrity-guard (ECC-on) overhead: {plain / guarded:.2f}x "
        f"({plain:.0f} -> {guarded:.0f} frames/s)"
    )
    jit = entries["jit"]
    if jit.get("numba"):
        ratio = jit["frames_per_s"] / plain
        hd_ratio = (
            entries["jit_fullhd"]["frames_per_s"]
            / entries["cpu_fullhd"]["frames_per_s"]
        )
        print(
            f"jit speedup over cpu: {ratio:.2f}x at "
            f"{jit['frame_shape'][0]}x{jit['frame_shape'][1]}, "
            f"{hd_ratio:.2f}x at full HD "
            f"(compile {jit['compile_s']:.2f}s, excluded from timing)"
        )
    else:
        print(
            "jit entries measured the cpu fallback (numba unavailable); "
            "marked \"numba\": false in the snapshot"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
