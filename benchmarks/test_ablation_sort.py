"""Ablation: the paper's sort argument (Section IV-C).

The paper claims rank+sort+early-exit is a *CPU* optimization (the
highest-rank component usually matches first, so the scan stops after
one check) that turns into pure overhead on a GPU (lock-step warps pay
the scan's worst lane plus the sort's divergent swaps). Both directions
are measured here from the same runs:

* per-*thread* expected scan length: sorted component order beats
  stored order — the CPU win the early exit harvests;
* per-*warp* scan length (max over the 32 lanes, which is what SIMT
  executes): the sorted advantage shrinks; and the sort itself costs
  divergent branches, making the sorted kernel slower end to end.
"""

import numpy as np

from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.mog.vectorized import MoGVectorized
from repro.video.scenes import evaluation_scene


def _scan_lengths(mog: MoGVectorized, next_frame: np.ndarray) -> np.ndarray:
    """Iterations the early-exit foreground scan would run on
    ``next_frame``, checking components in the state's *stored* order
    (the sorted variant keeps them rank-ordered; nosort does not).
    Foreground pixels scan all K components."""
    st = mog.state
    p = mog.params
    x = next_frame.reshape(-1).astype(st.m.dtype)
    k_count = st.w.shape[0]
    length = np.full(x.shape, k_count, dtype=np.int64)
    for k in range(k_count - 1, -1, -1):
        hit = (st.w[k] >= p.background_weight) & (
            np.abs(x - st.m[k]) < p.match_threshold * st.sd[k]
        )
        length = np.where(hit, k + 1, length)
    return length


def test_sort_helps_threads_but_not_warps(benchmark):
    def run():
        video = evaluation_scene(height=96, width=128)
        frames = [video.frame(t) for t in range(31)]
        mog_sorted = MoGVectorized((96, 128), PAPER_BENCH_PARAMS, variant="sorted")
        mog_plain = MoGVectorized((96, 128), PAPER_BENCH_PARAMS, variant="nosort")
        for f in frames[:30]:
            mog_sorted.apply(f)
            mog_plain.apply(f)
        return (
            _scan_lengths(mog_sorted, frames[30]).astype(float),
            _scan_lengths(mog_plain, frames[30]).astype(float),
        )

    per_thread_sorted, per_thread_plain = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # CPU view: sorted order finds the background component earlier.
    thread_gain = per_thread_plain.mean() - per_thread_sorted.mean()
    assert thread_gain > 0.0

    # GPU view: a warp pays its worst lane, eroding the benefit.
    warp_sorted = per_thread_sorted.reshape(-1, 32).max(axis=1)
    warp_plain = per_thread_plain.reshape(-1, 32).max(axis=1)
    warp_gain = warp_plain.mean() - warp_sorted.mean()
    assert warp_gain < thread_gain
    # Relative to the scan work actually executed, the warp-level
    # saving is a small fraction of the thread-level one.
    assert warp_gain / max(thread_gain, 1e-9) < 0.9


def test_sorted_kernel_slower_on_gpu(ctx):
    """End to end, the no-sort kernel (D) beats the sorted kernel at
    the same layout/overlap (C) — the paper's Table III first step."""
    assert ctx.run("D").kernel_time_per_frame < ctx.run("C").kernel_time_per_frame
    c_div = ctx.run("C").report.counters.branches_divergent
    d_div = ctx.run("D").report.counters.branches_divergent
    assert d_div < c_div
