"""Tables II & III: the cumulative optimization-level definitions."""

from repro.bench.experiments import table2, table3


def test_table2_general_levels(benchmark, publish):
    exp = benchmark.pedantic(table2, rounds=1, iterations=1)
    publish(exp, "table2")
    rows = {row[0]: row[1:] for row in exp.rows}
    assert rows["Base Implementation"] == ["x", "x", "x"]
    assert rows["Memory Coalescing"] == ["", "x", "x"]
    assert rows["Overlapped Execution"] == ["", "", "x"]


def test_table3_algorithm_specific_levels(benchmark, publish):
    exp = benchmark.pedantic(table3, rounds=1, iterations=1)
    publish(exp, "table3")
    rows = {row[0]: row[1:] for row in exp.rows}
    assert rows["Branch Reduction"] == ["x", "x", "x"]
    assert rows["Predicated Execution"] == ["", "x", "x"]
    assert rows["Register Reduction"] == ["", "", "x"]
