"""Figure 7: architectural impact of the algorithm-specific
optimizations (branch reduction, predication, register reduction)."""

from repro.bench.experiments import fig7


def test_fig7_algorithm_specific_optimizations(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig7, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig7")
    rows = {row[0]: row for row in exp.rows}

    # 7a: removing the sort reduces executed branches (paper 6.7M->6.2M)
    # and branch efficiency rises monotonically C -> D -> E.
    branches = [float(rows[lv][1].rstrip("M")) for lv in "CDEF"]
    assert branches[0] > branches[1] > branches[2]
    beff = [float(rows[lv][2].rstrip("%")) for lv in "CDEF"]
    assert beff[0] < beff[1] < beff[2], beff
    assert beff[2] == beff[3]  # F changes no control flow vs E

    # 7b: transactions and memory efficiency are unchanged by the
    # algorithm-specific steps (all SoA, same traffic).
    tx = {rows[lv][4] for lv in "CDEF"}
    assert len(tx) == 1

    # 7c: the paper's register counts and the occupancy staircase they
    # cause (32 regs -> 8 blocks, 33 regs -> 7 blocks at 128 thr/blk).
    assert [rows[lv][5] for lv in "CDEF"] == [36, 32, 33, 31]
    assert [rows[lv][6] for lv in "CDEF"] == ["58%", "67%", "58%", "67%"]
