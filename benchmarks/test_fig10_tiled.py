"""Figure 10: the tiled (shared-memory) MoG over frame-group size."""

from repro.bench.experiments import fig10


def test_fig10_tiled_group_sweep(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig10, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig10")
    groups = [row[0] for row in exp.rows]
    speedups = [float(row[1].rstrip("x")) for row in exp.rows]
    meff = [float(row[2].rstrip("%")) for row in exp.rows]
    occ = [float(row[3].rstrip("%")) for row in exp.rows]

    by_group = dict(zip(groups, speedups))
    # Paper shape: strong gains up to group 8, then no further
    # improvement (the peak sits in {8, 16}; 32 is not better than 8
    # by any meaningful margin).
    assert by_group[1] < by_group[2] < by_group[4] < by_group[8]
    peak = max(speedups)
    assert peak == max(by_group[8], by_group[16])
    assert by_group[32] <= by_group[8] * 1.05

    # Memory access efficiency decays with group size (paper: >90% ->
    # <60%) as amortised parameter traffic leaves the poorly-packed
    # frame/mask bytes dominating.
    assert all(a >= b for a, b in zip(meff, meff[1:]))
    assert meff[0] > 90.0 and meff[-1] < 60.0

    # Occupancy is pinned low (~42%) by the 640-thread block whose
    # parameters fill shared memory (paper: ~40%).
    assert all(abs(o - occ[0]) < 2.0 for o in occ)
    assert 35.0 < occ[0] < 48.0
