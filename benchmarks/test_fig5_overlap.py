"""Figure 5: concurrency of data transfer and kernel execution.

The paper draws the serial (5a) and overlapped (5b) schedules; here we
*schedule* them — same kernel times, same transfer sizes, both modes —
render the timelines, and assert the properties the figure illustrates.
"""

from repro.bench.experiments import Experiment
from repro.bench.harness import PAPER_BENCH_PARAMS, steady_state_counters
from repro.core.pipeline import HostPipeline
from repro.gpusim.analysis import render_timeline
from repro.video.scenes import evaluation_scene

SHAPE = (120, 160)


def test_fig5_overlap(benchmark, publish):
    def run():
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        frames = [video.frame(t) for t in range(10)]
        out = {}
        for level in ("B", "C"):  # same kernel; serial vs overlapped
            hp = HostPipeline(SHAPE, PAPER_BENCH_PARAMS, level)
            hp.process(frames)
            out[level] = hp.report()
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = reports["B"].pipeline
    overlap = reports["C"].pipeline

    text = (
        "Figure 5(a) serial (level B):\n"
        + render_timeline(serial)
        + "\n\nFigure 5(b) overlapped (level C):\n"
        + render_timeline(overlap)
    )
    publish(
        Experiment(
            "Fig 5", "Transfer/kernel concurrency, measured",
            ["mode", "total (ms)", "kernel util", "copy util"],
            [
                ["serial (5a)", f"{serial.total_time * 1e3:.2f}",
                 f"{serial.kernel_utilisation * 100:.0f}%",
                 f"{serial.copy_utilisation * 100:.0f}%"],
                ["overlapped (5b)", f"{overlap.total_time * 1e3:.2f}",
                 f"{overlap.kernel_utilisation * 100:.0f}%",
                 f"{overlap.copy_utilisation * 100:.0f}%"],
            ],
            notes=text,
        ),
        "fig5",
    )

    # Identical kernel work...
    cb, _ = steady_state_counters(reports["B"], 4)
    cc, _ = steady_state_counters(reports["C"], 4)
    assert cb.total_warp_issues == cc.total_warp_issues
    # ...but the overlapped schedule hides the transfers:
    assert overlap.total_time < serial.total_time
    assert overlap.kernel_utilisation > serial.kernel_utilisation
    assert overlap.kernel_utilisation > 0.75
    # In the serial schedule nothing ever runs concurrently.
    for prev, cur in zip(serial.frames, serial.frames[1:]):
        assert cur.copy_in_start >= prev.copy_out_end - 1e-12
    # In the overlapped schedule copy-in genuinely overlaps a kernel.
    overlapped_pairs = sum(
        1
        for prev, cur in zip(overlap.frames, overlap.frames[1:])
        if cur.copy_in_start < prev.kernel_end
    )
    assert overlapped_pairs >= len(overlap.frames) // 2
