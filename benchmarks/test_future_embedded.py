"""The paper's §VI future work, realised: MoG on an embedded GPU.

'As a future work, we plan to realize MoG on an embedded GPU ...
achieving real-time performance will require to trade off quality for
speed.' This bench runs the fully-optimized kernel on a Tegra-K1-class
device model and asserts that prediction's shape.
"""

from repro.bench.experiments import embedded_study
from repro.gpusim.device import TEGRA_K1, TESLA_C2075


def test_embedded_study(benchmark, publish, ctx):
    exp = benchmark.pedantic(embedded_study, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "embedded")
    fps = {(row[0], row[1]): float(row[2]) for row in exp.rows}

    # Full HD is out of reach on the embedded part, in either precision.
    assert fps[("1080p", "double")] < 30.0
    assert fps[("1080p", "float")] < 30.0

    # Real time is reachable by trading resolution (and helped by
    # trading precision): the paper's predicted quality/speed trade.
    assert fps[("VGA 640x480", "float")] >= 60.0
    assert fps[("720p", "float")] >= 30.0
    # 720p sits on the 30 Hz edge; 60 Hz needs the precision trade too.
    assert fps[("720p", "double")] < 60.0 <= fps[("VGA 640x480", "double")]

    # fps scales roughly inversely with pixel count.
    assert fps[("QVGA 320x240", "float")] > 3 * fps[("720p", "float")]

    # Monotone: float never slower than double at equal resolution.
    for res in ("QVGA 320x240", "VGA 640x480", "720p", "1080p"):
        assert fps[(res, "float")] >= fps[(res, "double")]


def test_embedded_device_is_weaker():
    """Sanity of the device model vs the discrete card."""
    assert TEGRA_K1.mem_bandwidth < TESLA_C2075.mem_bandwidth / 5
    assert TEGRA_K1.num_sms == 1
    assert TEGRA_K1.flops_dp < TESLA_C2075.flops_dp / 10
