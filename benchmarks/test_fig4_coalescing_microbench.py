"""Figure 4's coalescing illustration as a measured microbenchmark.

The paper's Figure 4 draws the two data placements; here we *run* them:
one load of the same logical parameter under each layout, and read the
transaction counts off the simulator.
"""

import numpy as np

from repro.bench.experiments import Experiment
from repro.gpusim import SimtEngine
from repro.layout import AoSLayout, SoALayout
from repro.layout.base import PARAM_M
from repro.mog import MixtureState


def _measure(layout_cls, dtype):
    engine = SimtEngine()
    n = 4096
    layout = layout_cls(3, n, dtype)
    layout.allocate(engine.memory)
    rng = np.random.default_rng(0)
    layout.upload(
        MixtureState(
            rng.random((3, n)).astype(dtype),
            rng.random((3, n)).astype(dtype),
            rng.random((3, n)).astype(dtype) + 1,
        )
    )

    def kern(ctx, layout):
        pix = ctx.thread_id()
        _ = ctx.load(layout.buffer, layout.index(ctx, 0, PARAM_M, pix))

    res = engine.launch(kern, n, 128, args=(layout,))
    c = res.counters
    warps = n // 32
    return c.load_transactions / warps, c.memory_access_efficiency


def test_fig4_coalescing(benchmark, publish):
    def run():
        rows = []
        for name, layout_cls in [("AoS (Fig 4a)", AoSLayout),
                                 ("SoA (Fig 4b)", SoALayout)]:
            for dtype, label in [(np.float64, "double"), (np.float32, "float")]:
                tx, eff = _measure(layout_cls, dtype)
                rows.append([name, label, f"{tx:.1f}", f"{eff * 100:.0f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        Experiment(
            "Fig 4", "Coalescing microbenchmark: one mean-load per thread",
            ["layout", "dtype", "transactions/warp", "efficiency"],
            rows,
            notes=(
                "AoS: 32 threads x 72 B stride span 18 segments per "
                "warp; SoA: 2 (double) or 1 (float). The cold-cache "
                "single access; the full kernels additionally enjoy L1 "
                "reuse on AoS's adjacent fields."
            ),
        ),
        "fig4",
    )
    values = {(r[0], r[1]): float(r[2]) for r in rows}
    assert values[("AoS (Fig 4a)", "double")] == 18.0
    assert values[("SoA (Fig 4b)", "double")] == 2.0
    assert values[("SoA (Fig 4b)", "float")] == 1.0
    # float AoS stride is 36 B -> 9 segments.
    assert values[("AoS (Fig 4a)", "float")] == 9.0
