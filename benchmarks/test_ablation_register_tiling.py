"""Ablation: shared-memory tiling (paper level G) vs register-resident
frame groups (the design the paper did not explore)."""

import numpy as np
import pytest

from repro.bench.experiments import Experiment
from repro.bench.harness import PAPER_BENCH_PARAMS, PAPER_SCALE
from repro.errors import LaunchError
from repro.gpusim import SimtEngine
from repro.gpusim.counters import KernelCounters
from repro.gpusim.occupancy import occupancy
from repro.gpusim.registers import pinned_registers
from repro.gpusim.timing import TimingModel
from repro.kernels import (
    KernelConfig,
    make_register_tiled_kernel,
    make_tiled_kernel,
    registers_for_group_residency,
)
from repro.layout import SoALayout
from repro.mog import MixtureState
from repro.video.scenes import evaluation_scene

SHAPE = (64, 128)
GROUP = 8
FRAMES = 32


def _run(kernel_kind):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    frames = [video.frame(t) for t in range(FRAMES)]
    engine = SimtEngine()
    n = SHAPE[0] * SHAPE[1]
    cfg = KernelConfig.from_params(PAPER_BENCH_PARAMS, "double")
    layout = SoALayout(cfg.num_gaussians, n, np.float64)
    layout.allocate(engine.memory)
    layout.upload(
        MixtureState.from_first_frame(frames[0], PAPER_BENCH_PARAMS, "double")
    )
    masks = []
    for start in range(0, FRAMES, GROUP):
        grp = frames[start:start + GROUP]
        fbufs = [
            engine.memory.alloc_like(f"f{start}_{i}", f.reshape(-1))
            for i, f in enumerate(grp)
        ]
        gbufs = [
            engine.memory.alloc(f"g{start}_{i}", n, np.uint8)
            for i in range(len(grp))
        ]
        if kernel_kind == "shared":
            kern = make_tiled_kernel(layout, cfg, fbufs, gbufs, tile_pixels=640)
            engine.launch(kern, n, 640)
        else:
            kern = make_register_tiled_kernel(layout, cfg, fbufs, gbufs)
            engine.launch(kern, n, 128)
        masks.extend([(b.data != 0).reshape(SHAPE) for b in gbufs])
    counters = KernelCounters()
    for launch in engine.launches[2:]:  # steady-state groups
        counters.add(launch.counters)
    counters = counters.scaled(1.0 / max(len(engine.launches) - 2, 1))
    return np.stack(masks), counters


def test_register_residency_beats_shared_for_3g(benchmark, publish):
    masks_shared, c_shared = _run("shared")
    masks_regs, c_regs = benchmark.pedantic(
        lambda: _run("registers"), rounds=1, iterations=1
    )

    # Functionally identical designs.
    assert np.array_equal(masks_shared, masks_regs)

    tm = TimingModel()
    ratio = PAPER_SCALE.num_pixels / (SHAPE[0] * SHAPE[1])
    cfg = KernelConfig.from_params(PAPER_BENCH_PARAMS, "double")
    occ_shared = occupancy(
        TimingModel().device, 640, pinned_registers("G"), 640 * 9 * 8
    )
    regs_resident = registers_for_group_residency(cfg)
    occ_regs = occupancy(TimingModel().device, 128, regs_resident)
    t_shared = tm.kernel_timing(c_shared.scaled(ratio), occ_shared).total
    t_regs = tm.kernel_timing(c_regs.scaled(ratio), occ_regs).total

    publish(
        Experiment(
            "Ablation: group residency",
            "Shared-memory tile vs register residency (3G double, group 8)",
            ["variant", "regs/thread", "occupancy", "shared acc/group",
             "kernel/group (full HD)"],
            [
                ["shared tile (paper G)", pinned_registers("G"),
                 f"{occ_shared.occupancy * 100:.0f}%",
                 int(c_shared.shared_accesses),
                 f"{t_shared * 1e3:.1f} ms"],
                ["register resident", regs_resident,
                 f"{occ_regs.occupancy * 100:.0f}%",
                 int(c_regs.shared_accesses),
                 f"{t_regs * 1e3:.1f} ms"],
            ],
            notes=(
                "At 3 Gaussians the register file can hold the group's "
                "parameters: no staging and no shared traffic at equal "
                "occupancy — the register variant wins. At 5 Gaussians "
                "it cannot exist (register ceiling), which justifies "
                "the paper's shared-memory design for configurable K."
            ),
        ),
        "ablation_register_tiling",
    )

    assert c_regs.shared_accesses == 0
    assert c_shared.shared_accesses > 0
    assert occ_regs.occupancy >= occ_shared.occupancy
    assert t_regs < t_shared


def test_register_residency_impossible_for_5g():
    """15 persistent doubles + the working set exceed the CC 2.0
    register ceiling: the occupancy model rejects the launch, as nvcc
    would spill it to local memory."""
    cfg5 = KernelConfig.from_params(
        PAPER_BENCH_PARAMS.replace(num_gaussians=5), "double"
    )
    regs = registers_for_group_residency(cfg5)
    assert regs > 63
    with pytest.raises(LaunchError):
        occupancy(TimingModel().device, 128, regs)
