"""Figure 6: architectural impact of the general GPU optimizations
(memory coalescing and transfer overlap)."""

from repro.bench.experiments import fig6


def test_fig6_general_optimizations(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig6, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig6")
    rows = {row[0]: row for row in exp.rows}

    eff_a = float(rows["A"][1].rstrip("%"))
    eff_b = float(rows["B"][1].rstrip("%"))
    # Paper: 17% -> 78%; shape requirement: AoS far below SoA.
    assert eff_a < 25.0 < 70.0 < eff_b

    tx_a = float(rows["A"][2].rstrip("M"))
    tx_b = float(rows["B"][2].rstrip("M"))
    # Paper: 13.3M -> 2.0M store transactions (factor ~6.6); ours is the
    # pure 18-segments-vs-2 AoS/SoA ratio.
    assert 5.0 < tx_a / tx_b < 12.0

    # Registers and occupancy as reported by the paper: 30 / 36 / 36,
    # occupancy dropping once coalescing costs extra registers.
    assert [rows[lv][3] for lv in "ABC"] == [30, 36, 36]
    assert rows["A"][4] == "67%" and rows["B"][4] == "58%"


def test_fig6_level_c_is_kernel_identical_to_b(ctx):
    """Overlap is a host-side change: B and C share every kernel metric."""
    mb = ctx.run("B").metrics()
    mc = ctx.run("C").metrics()
    for key in (
        "memory_access_efficiency",
        "branch_efficiency",
        "store_transactions_per_frame",
        "registers_per_thread",
        "occupancy",
    ):
        assert mb[key] == mc[key], key
    # ... but C's pipeline hides the transfers.
    assert ctx.run("C").total_time < ctx.run("B").total_time
