"""The paper's §II related-work argument, measured.

Azmat et al. [18] speed up background modeling on low-power GPUs by
using a *variable* number of components per pixel (multimodal mean,
[19]) — eliminating standard deviations and early-exiting after the
matching component. The paper argues this is a CPU-bound optimization:
"parallel threads in a GPU execute in lock-step mode ... the thread
with the most Gaussian components determines the latency of all
parallel threads". This bench runs the baseline and quantifies both
sides of that argument.
"""

from repro.bench.experiments import Experiment
from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.baselines import MultimodalMeanVectorized
from repro.mog import MoGVectorized
from repro.video.scenes import evaluation_scene

SHAPE = (96, 128)
FRAMES = 40


def test_variable_components_help_cpu_not_gpu(benchmark, publish):
    def run():
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        frames = [video.frame(t) for t in range(FRAMES)]
        mmm = MultimodalMeanVectorized(SHAPE)
        mog = MoGVectorized(SHAPE, PAPER_BENCH_PARAMS, variant="nosort")
        for f in frames:
            mmm.apply(f)
            mog.apply(f)
        return mmm

    mmm = benchmark.pedantic(run, rounds=1, iterations=1)
    pixels_frames = mmm.num_pixels * FRAMES
    k_max = mmm.params.max_cells

    # CPU view: cells examined per pixel (early exit after the match).
    cpu_cells = mmm.thread_scan_cells / pixels_frames
    # GPU view: lane-slots executed per pixel (warps pay the max lane).
    gpu_cells = mmm.warp_scan_cells / pixels_frames
    fixed_cells = float(k_max)  # a fixed-K kernel examines every cell

    cpu_saving = 1.0 - cpu_cells / fixed_cells
    gpu_saving = 1.0 - gpu_cells / fixed_cells

    publish(
        Experiment(
            "Related work (§II)",
            "Variable-component multimodal mean: CPU vs SIMT cost",
            ["view", "cells/pixel", f"saving vs fixed K={k_max}"],
            [
                ["per-thread (CPU)", f"{cpu_cells:.2f}", f"{cpu_saving * 100:.0f}%"],
                ["per-warp (GPU)", f"{gpu_cells:.2f}", f"{gpu_saving * 100:.0f}%"],
            ],
            notes=(
                "The variable component count saves the CPU a large "
                "share of the scan; lock-step warps keep most of the "
                "cost — the paper's reason to optimize the fixed-K "
                "algorithm for GPUs instead."
            ),
        ),
        "related_work_multimodal",
    )

    # The paper's claim, quantitatively: a real CPU saving...
    assert cpu_saving > 0.30
    # ...substantially eroded under lock-step execution: the warp pays
    # ~1.5x the useful work and loses a large slice of the saving.
    assert gpu_saving < cpu_saving - 0.15
    assert gpu_cells > 1.3 * cpu_cells


def test_simulated_kernel_time_erases_the_algorithmic_saving(benchmark, publish):
    """Run both algorithms through the GPU simulator: multimodal mean
    executes a fraction of MoG's floating-point work and moves fewer
    bytes, yet its kernel is NOT correspondingly faster — divergence
    and partially-filled warp requests eat the saving. This is the §II
    claim end to end."""
    from repro.bench.harness import PAPER_SCALE, steady_state_counters
    from repro.core.pipeline import HostPipeline
    from repro.gpusim.counters import KernelCounters
    from repro.gpusim.device import TESLA_C2075
    from repro.gpusim.occupancy import occupancy
    from repro.gpusim.timing import TimingModel
    from repro.kernels.multimodal import MultimodalMeanGpu

    def run():
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        frames = [video.frame(t) for t in range(FRAMES)]
        hp = HostPipeline(SHAPE, PAPER_BENCH_PARAMS, "F")
        hp.process(frames)
        c_mog, occ_mog = steady_state_counters(hp.report(), 24)

        gpu = MultimodalMeanGpu(SHAPE)
        gpu.apply_sequence(frames)
        launches = [
            ln for ln in gpu.engine.launches if ln.name.startswith("mmm[")
        ][24:]
        c_mmm = KernelCounters()
        for launch in launches:
            c_mmm.add(launch.counters)
        c_mmm = c_mmm.scaled(1.0 / len(launches))
        # The lean kernel needs few registers; occupancy is block-capped.
        occ_mmm = occupancy(TESLA_C2075, 128, 18)
        return c_mog, occ_mog, c_mmm, occ_mmm

    c_mog, occ_mog, c_mmm, occ_mmm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    tm = TimingModel()
    ratio = PAPER_SCALE.num_pixels / (SHAPE[0] * SHAPE[1])
    t_mog = tm.kernel_timing(c_mog.scaled(ratio), occ_mog).total
    t_mmm = tm.kernel_timing(c_mmm.scaled(ratio), occ_mmm).total

    publish(
        Experiment(
            "Related work (§II), simulated",
            "Multimodal mean vs MoG level F on the simulated C2075",
            ["algorithm", "fp64/warp-frame", "branch eff", "mem eff",
             "kernel/frame (full HD)"],
            [
                ["MoG level F",
                 int(c_mog.warp_issues["fp64"] / (SHAPE[0] * SHAPE[1] / 32)),
                 f"{c_mog.branch_efficiency * 100:.1f}%",
                 f"{c_mog.memory_access_efficiency * 100:.1f}%",
                 f"{t_mog * 1e3:.2f} ms"],
                ["multimodal mean",
                 int(c_mmm.warp_issues["fp64"] / (SHAPE[0] * SHAPE[1] / 32)),
                 f"{c_mmm.branch_efficiency * 100:.1f}%",
                 f"{c_mmm.memory_access_efficiency * 100:.1f}%",
                 f"{t_mmm * 1e3:.2f} ms"],
            ],
        ),
        "related_work_simulated",
    )

    # A third of the arithmetic...
    assert c_mmm.warp_issues["fp64"] < 0.5 * c_mog.warp_issues["fp64"]
    # ...and fewer bytes moved...
    assert c_mmm.bytes_moved < c_mog.bytes_moved
    # ...yet no commensurate speedup (here: none at all).
    assert t_mmm > 0.8 * t_mog
    # The causes, visible in the counters:
    assert c_mmm.branch_efficiency < c_mog.branch_efficiency - 0.1
    assert c_mmm.memory_access_efficiency < c_mog.memory_access_efficiency - 0.2


def test_multimodal_mean_is_cheaper_but_coarser(benchmark):
    """[18]'s trade: no sd, no sqrt/divide -> cheaper per cell; but the
    fixed match half-width is a coarser model than MoG's adaptive
    2.5-sigma band. Both detect the scene's objects; MoG's masks agree
    better with itself over reruns (determinism sanity) and the two
    stay broadly consistent."""
    from repro.metrics.foreground import score_sequence

    def run():
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pairs = [video.frame_with_truth(t) for t in range(FRAMES)]
        mmm = MultimodalMeanVectorized(SHAPE)
        mog = MoGVectorized(SHAPE, PAPER_BENCH_PARAMS, variant="nosort")
        mmm_masks = [mmm.apply(f) for f, _ in pairs]
        mog_masks = [mog.apply(f) for f, _ in pairs]
        truths = [t for _, t in pairs]
        return (
            score_sequence(mmm_masks[30:], truths[30:]),
            score_sequence(mog_masks[30:], truths[30:]),
        )

    mmm_score, mog_score = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mmm_score.recall > 0.4
    assert mog_score.f1 >= mmm_score.f1 - 0.1
