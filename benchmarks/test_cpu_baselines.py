"""The CPU baseline numbers quoted in §IV-A and §V-C of the paper,
plus a real timed run of our vectorized CPU implementation and of the
simulated GPU base port."""

import pytest

from repro.bench.experiments import cpu_baselines
from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.cpu.model import CpuMode, CpuTimeModel
from repro.cpu.runner import run_cpu_reference
from repro.video.scenes import evaluation_scene


def test_cpu_baseline_model(benchmark, publish):
    exp = benchmark.pedantic(cpu_baselines, rounds=1, iterations=1)
    publish(exp, "cpu_baselines")
    for row in exp.rows:
        got = float(row[1].rstrip("s"))
        paper = float(row[2].rstrip("s"))
        assert got == pytest.approx(paper, rel=1e-6), row


def test_cpu_model_scaling_shapes():
    model = CpuTimeModel()
    base = model.paper_reference_time(3, "double", CpuMode.SCALAR)
    # More components cost more, float costs less, parallel modes less.
    assert model.paper_reference_time(5) > base
    assert model.paper_reference_time(3, "float") < base
    assert model.paper_reference_time(mode=CpuMode.SIMD) < base
    assert (
        model.paper_reference_time(mode=CpuMode.THREADS_8)
        < model.paper_reference_time(mode=CpuMode.SIMD)
    )


def test_cpu_vectorized_throughput(benchmark):
    """Wall-clock throughput of the practical (NumPy) CPU path on this
    machine — the library's fast path, measured for real."""
    video = evaluation_scene(height=120, width=160)
    frames = [video.frame(t) for t in range(10)]

    def run():
        return run_cpu_reference(frames, params=PAPER_BENCH_PARAMS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.masks.shape == (10, 120, 160)
    assert result.megapixels_per_second > 0.5
