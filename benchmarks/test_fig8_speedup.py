"""Figure 8: speedup over the serial CPU for every optimization level,
plus the efficiency summary."""

import pytest

from repro.bench.experiments import PAPER_SPEEDUPS, fig8


def test_fig8_speedup(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig8, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig8")
    speedups = {row[0]: float(row[1].rstrip("x")) for row in exp.rows}

    # The headline result: every optimization group helps, in order.
    assert speedups["A"] < speedups["B"] < speedups["C"] < speedups["D"]
    assert speedups["D"] <= speedups["E"] * 1.05  # paper: 85 vs 86 (flat)
    assert speedups["E"] < speedups["F"]

    # Rough-factor agreement with the paper (calibrated model; the
    # assertion tolerance is generous on purpose — shape, not seconds).
    for level, paper in PAPER_SPEEDUPS.items():
        if level == "G":
            continue
        assert speedups[level] == pytest.approx(paper, rel=0.25), level

    # The general optimizations alone give an order of magnitude over
    # the base GPU port; algorithm-specific roughly doubles again.
    assert speedups["C"] / speedups["A"] > 3.0
    assert speedups["F"] / speedups["C"] > 1.4
