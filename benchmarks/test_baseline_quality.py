"""§I's motivating claim, measured: "For scenes with static camera
position, Mixture of Gaussians (MoG) is most frequently used thanks to
its high quality ... in capturing multi-modal background scenes."

We pit MoG against the history-based baselines (running average with
adaptive threshold, frame differencing) on matched scenes with and
without per-pixel multi-modality. The baselines are fine — even
competitive — on the unimodal scene; on the multi-modal one they
collapse while MoG does not blink. This is the quality argument that
justifies MoG's compute cost, i.e. the whole paper.
"""

from repro.baselines import FrameDifference, RunningAverage
from repro.bench.experiments import Experiment
from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.metrics.foreground import score_sequence
from repro.mog import MoGVectorized
from repro.video.objects import Sprite, SpriteTrack, bounce_path
from repro.video.synthetic import SceneConfig, SyntheticVideo

SHAPE = (96, 128)
FRAMES = 40
WARMUP = 28


def _scene(bimodal: bool) -> SyntheticVideo:
    cfg = SceneConfig(
        height=SHAPE[0], width=SHAPE[1], noise_sd=3.0, seed=5,
        bimodal_fraction=0.9 if bimodal else 0.0, bimodal_delta=25.0,
    )
    sprite = Sprite.textured(16, 6, base=215.0, seed=5)
    tracks = [
        SpriteTrack(
            sprite,
            bounce_path((48.0, 0.0), (0.14, 1.6), SHAPE, sprite.shape),
        )
    ]
    return SyntheticVideo(cfg, tracks=tracks)


def _f1(model, pairs) -> float:
    masks = model.apply_sequence([f for f, _ in pairs])
    return score_sequence(
        list(masks[WARMUP:]), [t for _, t in pairs][WARMUP:]
    ).f1


def test_mog_survives_multimodality_baselines_do_not(benchmark, publish):
    def run():
        out = {}
        for bimodal in (False, True):
            pairs = [
                _scene(bimodal).frame_with_truth(t) for t in range(FRAMES)
            ]
            out[bimodal] = {
                "MoG": _f1(
                    MoGVectorized(SHAPE, PAPER_BENCH_PARAMS, variant="nosort"),
                    pairs,
                ),
                "running average": _f1(
                    RunningAverage(SHAPE, learning_rate=0.05), pairs
                ),
                "frame difference": _f1(FrameDifference(SHAPE), pairs),
            }
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [algo, f"{scores[False][algo]:.2f}", f"{scores[True][algo]:.2f}"]
        for algo in ("MoG", "running average", "frame difference")
    ]
    publish(
        Experiment(
            "Baseline quality (§I)",
            "F1 on matched scenes: unimodal vs multi-modal background",
            ["algorithm", "unimodal F1", "multi-modal F1"],
            rows,
            notes=(
                "MoG's mixture absorbs the second background mode; the "
                "single-model baselines turn it into a flood of false "
                "positives — the quality that justifies MoG's cost."
            ),
        ),
        "baseline_quality",
    )

    # The claim, quantified:
    assert scores[True]["MoG"] > 0.6
    assert scores[True]["MoG"] > scores[True]["running average"] + 0.4
    assert scores[True]["MoG"] > scores[True]["frame difference"] + 0.4
    # MoG barely moves between the scenes...
    assert abs(scores[True]["MoG"] - scores[False]["MoG"]) < 0.1
    # ...while the baselines crater.
    assert (
        scores[False]["running average"] - scores[True]["running average"]
        > 0.3
    )
