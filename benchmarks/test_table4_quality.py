"""Table IV: MS-SSIM output quality of every optimization level against
the double-precision CPU ground truth."""

from repro.bench.experiments import table4


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_table4_quality(benchmark, publish, ctx):
    exp = benchmark.pedantic(table4, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "table4")
    bg = [_pct(c) for c in exp.rows[0][1:]]
    fg = [_pct(c) for c in exp.rows[2][1:]]

    # Paper headline: the optimizations have practically no impact on
    # quality (all readings >= 95%). In this reproduction the claim
    # holds *exactly* — every restructuring is decision-preserving
    # (repro.mog.update step 6 note), so every level scores 100%; the
    # paper's 95-97% foreground readings are platform FP/compiler
    # artifacts it could not explain either.
    assert all(v >= 95.0 for v in bg), bg
    assert all(v >= 95.0 for v in fg), fg
    assert all(v == 100.0 for v in fg), fg
