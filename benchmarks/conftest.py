"""Shared fixtures for the paper-reproduction benchmarks.

One :class:`ExperimentContext` is shared across the whole benchmark
session so levels referenced by several figures are simulated once.
Every benchmark writes its rendered table to ``benchmarks/out/`` (and
prints it, visible with ``pytest -s``), so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
reproduced tables/figures on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import Experiment, ExperimentContext

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def publish(out_dir):
    """Write an experiment's table to disk and echo it."""

    def _publish(exp: Experiment, name: str) -> None:
        import json

        text = exp.format()
        (out_dir / f"{name}.txt").write_text(text + "\n")
        (out_dir / f"{name}.json").write_text(
            json.dumps(exp.to_dict(), indent=2) + "\n"
        )
        print("\n" + text)

    return _publish
