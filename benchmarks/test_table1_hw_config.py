"""Table I: the HW configuration description (static)."""

from repro.bench.experiments import table1
from repro.gpusim.device import TESLA_C2075, XEON_E5_2620


def test_table1_hw_config(benchmark, publish):
    exp = benchmark.pedantic(table1, rounds=1, iterations=1)
    publish(exp, "table1")
    rows = {row[0]: row[1:] for row in exp.rows}
    assert rows["Cores"] == ["6", "448"]
    assert TESLA_C2075.num_sms * TESLA_C2075.cores_per_sm == 448
    assert XEON_E5_2620.cores == 6
    assert "144" in rows["Mem. BW"][1]
