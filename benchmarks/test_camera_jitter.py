"""Extension: the fixed-camera assumption, quantified."""

from repro.bench.experiments import camera_jitter_study


def test_camera_jitter_study(benchmark, publish, ctx):
    exp = benchmark.pedantic(
        camera_jitter_study, args=(ctx,), rounds=1, iterations=1
    )
    publish(exp, "camera_jitter")
    rates = {row[0]: float(row[1].rstrip("%")) for row in exp.rows}

    # Fixed camera: essentially clean.
    assert rates["0 px"] < 0.5
    # Mild shake is (mostly) absorbed into the multimodal background.
    assert rates["1 px"] < rates["4 px"] / 3
    # Serious shake floods the mask: monotone degradation.
    assert rates["0 px"] <= rates["1 px"] <= rates["2 px"] <= rates["4 px"]
    assert rates["4 px"] > 1.0
