"""Ablation: tile size for the level-G kernel (DESIGN.md §5).

The paper fixes the tile at 640 pixels because that fills the SM's
48 KB of shared memory with one block (3 components x 3 params x 8 B x
640 px = 45 KB). Smaller tiles change both the block size and the
blocks-per-SM packing; larger tiles do not fit at all.
"""

import pytest

from repro.bench.experiments import ExperimentContext
from repro.bench.harness import PAPER_BENCH_PARAMS, run_level
from repro.config import RunConfig
from repro.core.pipeline import max_tile_pixels
from repro.errors import ConfigError
from repro.gpusim.device import TESLA_C2075


def test_tile_size_sweep(benchmark, publish, ctx: ExperimentContext):
    tiles = (128, 256, 512, 640)

    def run():
        out = {}
        for tile in tiles:
            rc = RunConfig(
                height=ctx.shape[0], width=ctx.shape[1],
                tile_pixels=tile, frame_group=8,
            )
            out[tile] = run_level(
                "G", ctx.frames(48), ctx.shape,
                params=PAPER_BENCH_PARAMS, run_config=rc, warmup_frames=24,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.bench.reporting import format_table

    rows = [
        [t, f"{r.speedup:.1f}x", f"{r.report.occupancy * 100:.0f}%"]
        for t, r in results.items()
    ]
    print("\n" + format_table(["tile px", "speedup", "occupancy"], rows,
                              title="Ablation: tile size (group 8)"))

    # The paper's 640-pixel tile is (near-)optimal: no smaller tile
    # beats it by more than a few percent.
    best = max(r.speedup for r in results.values())
    assert results[640].speedup >= best * 0.95


def test_tile_limit_is_640_for_paper_config():
    assert max_tile_pixels(PAPER_BENCH_PARAMS, "double", TESLA_C2075) == 672 // 32 * 32


def test_oversized_tile_rejected(ctx):
    rc = RunConfig(
        height=ctx.shape[0], width=ctx.shape[1],
        tile_pixels=1024, frame_group=8,
    )
    with pytest.raises(ConfigError):
        run_level("G", ctx.frames(8), ctx.shape,
                  params=PAPER_BENCH_PARAMS, run_config=rc)
