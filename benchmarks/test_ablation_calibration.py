"""Ablation: how much of the result shape survives without the fitted
timing constants?

The speedup *magnitudes* come from the calibrated model, but the paper's
qualitative story should not hinge on the fit. This bench re-times the
measured counters under perturbed calibrations and asserts the orderings
that must be calibration-robust — and documents the ones that are not
(D vs E hinges on the divergence penalty; that is the paper's own
razor-thin 85-vs-86 comparison).
"""


from repro.bench.harness import PAPER_SCALE, extrapolate
from repro.gpusim.calibration import DEFAULT_CALIBRATION


def _speedups(ctx, calibration):
    out = {}
    for level in "ABCDEF":
        r = ctx.run(level)
        _, total = extrapolate(
            r.report, PAPER_SCALE, calibration=calibration,
            warmup_launches=ctx.warmup,
        )
        out[level] = r.cpu_time / total
    return out


PERTURBATIONS = {
    "default": DEFAULT_CALIBRATION,
    "half divergence penalty": DEFAULT_CALIBRATION.replace(
        divergence_penalty_cycles=DEFAULT_CALIBRATION.divergence_penalty_cycles / 2
    ),
    "double compute scale": DEFAULT_CALIBRATION.replace(
        compute_scale=DEFAULT_CALIBRATION.compute_scale * 2
    ),
    "half MLP": DEFAULT_CALIBRATION.replace(
        memory_level_parallelism=DEFAULT_CALIBRATION.memory_level_parallelism / 2
    ),
    "no coalesce floor": DEFAULT_CALIBRATION.replace(coalesce_floor=0.05),
}


def test_orderings_robust_to_calibration(benchmark, ctx, publish):
    def run():
        return {name: _speedups(ctx, cal) for name, cal in PERTURBATIONS.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.bench.experiments import Experiment

    rows = [
        [name] + [f"{sp[lv]:.0f}x" for lv in "ABCDEF"]
        for name, sp in results.items()
    ]
    publish(
        Experiment(
            "Ablation", "Speedups under perturbed calibrations",
            ["calibration", *"ABCDEF"], rows,
        ),
        "ablation_calibration",
    )

    for name, sp in results.items():
        # The load-bearing orderings must hold under every perturbation:
        assert sp["A"] < sp["B"], name          # coalescing always wins
        assert sp["B"] < sp["C"], name          # overlap always wins
        assert sp["C"] < sp["D"], name          # de-sorting always wins
        assert sp["C"] < sp["F"], name          # alg-specific block wins
        # A stays an order of magnitude off the rest:
        assert sp["A"] * 2.5 < sp["C"], name


def test_d_vs_e_depends_on_divergence_penalty(ctx):
    """The paper's D-vs-E comparison (85x vs 86x) is genuinely
    borderline: it flips if divergent branches were cheap."""
    sp_default = _speedups(ctx, DEFAULT_CALIBRATION)
    cheap_div = DEFAULT_CALIBRATION.replace(divergence_penalty_cycles=0.0)
    sp_cheap = _speedups(ctx, cheap_div)
    assert sp_default["E"] >= sp_default["D"] * 0.97
    assert sp_cheap["E"] < sp_cheap["D"]  # predication's extra math loses
