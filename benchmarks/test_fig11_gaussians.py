"""Figure 11: effect of the number of Gaussian components (3 vs 5)."""

import pytest

from repro.bench.experiments import fig11


def test_fig11_gaussian_components(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig11, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig11")
    rows = {row[0]: row for row in exp.rows}
    s3 = {lv: float(rows[lv][1].rstrip("x")) for lv in "ABCDEF"}
    s5 = {lv: float(rows[lv][2].rstrip("x")) for lv in "ABCDEF"}

    # Paper: 5-Gaussian speedups are lower than 3-Gaussian. In our
    # model this holds strictly at the kernel-dominated levels; at B
    # and D the fixed transfer costs amortise against the 1.79x larger
    # CPU baseline and the two curves nearly touch (documented
    # deviation, EXPERIMENTS.md).
    for level in "ACF":
        assert s5[level] < s3[level], level
    for level in "ABCDEF":
        assert s5[level] < s3[level] * 1.15, level

    # Paper anchors: ~44x after the general optimizations, ~92x after
    # the algorithm-specific ones.
    assert s5["C"] == pytest.approx(44.0, rel=0.35)
    assert s5["F"] == pytest.approx(92.0, rel=0.25)

    # The optimization story still holds with 5 components.
    assert s5["A"] < s5["B"] < s5["C"] < s5["D"]

    # 5G occupancy is lower than the 3G runs' (paper Fig 11b).
    occ5 = float(rows["F"][5].rstrip("%"))
    occ3 = ctx.run("F", num_gaussians=3).metrics()["occupancy"] * 100
    assert occ5 < occ3
