"""Wall-clock throughput of the library's two execution paths on this
machine (not a paper figure — regression guard for the repo itself)."""

import os

import numpy as np

from repro import BackgroundSubtractor
from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.video.scenes import evaluation_scene

SHAPE = (120, 160)

#: Set REPRO_BENCH_QUICK=1 (the CI smoke job does) for shorter runs.
QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))


def _frames(n):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(n)]


def test_simulated_kernel_throughput(benchmark):
    """Simulator path: frames/s through the level-F kernel."""
    frames = _frames(6)
    bs = BackgroundSubtractor(SHAPE, params=PAPER_BENCH_PARAMS, level="F")
    bs.apply(frames[0])  # initialisation outside the timed region

    def run():
        for f in frames[1:]:
            bs.apply(f)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_cpu_backend_throughput(benchmark):
    """Practical path: frames/s through the vectorized CPU backend."""
    frames = _frames(12)
    bs = BackgroundSubtractor(SHAPE, params=PAPER_BENCH_PARAMS,
                              level="F", backend="cpu")
    bs.apply(frames[0])

    def run():
        for f in frames[1:]:
            bs.apply(f)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_scalar_reference_throughput(benchmark):
    """The deliberately naive scalar reference, at a tiny frame — the
    'single-threaded CPU implementation' of the paper in spirit."""
    from repro.mog.reference import MoGReference

    video = evaluation_scene(height=24, width=32)
    frames = [video.frame(t) for t in range(4)]
    ref = MoGReference((24, 32), PAPER_BENCH_PARAMS)
    ref.apply(frames[0])

    def run():
        for f in frames[1:]:
            ref.apply(f)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_two_tier_speedup(benchmark):
    """Sampled profiling (profile_every=8) must deliver >= 2x the
    frames/s of full profiling on the sim path, with bit-identical
    masks; both rates land in BENCH_throughput.json."""
    from repro.bench.snapshot import measure_fps, update_snapshot

    num_frames = 9 if QUICK else 17

    def run():
        # Best of three attempts: the ratio is ~3x when the machine is
        # quiet, but a CI neighbour stealing the CPU mid-measurement
        # can flatten a single sample.
        best = None
        for _ in range(3):
            profiled = measure_fps("sim", profile_every=1, num_frames=num_frames)
            sampled = measure_fps("sim", profile_every=8, num_frames=num_frames)
            ratio = sampled["frames_per_s"] / profiled["frames_per_s"]
            if best is None or ratio > best[0]:
                best = (ratio, profiled, sampled)
            if ratio >= 2.0:
                break
        return best

    speedup, profiled, sampled = benchmark.pedantic(run, rounds=1, iterations=1)
    update_snapshot({"sim_profiled": profiled, "sim_sampled_8": sampled})
    assert speedup >= 2.0, (
        f"expected >= 2x from sampled profiling, got {speedup:.2f}x "
        f"({profiled['frames_per_s']} -> {sampled['frames_per_s']} frames/s)"
    )

    frames = _frames(num_frames)
    full = BackgroundSubtractor(SHAPE, params=PAPER_BENCH_PARAMS, level="F")
    fast = BackgroundSubtractor(
        SHAPE, params=PAPER_BENCH_PARAMS, level="F", profile_every=8
    )
    a, _ = full.process(frames)
    b, _ = fast.process(frames)
    assert np.array_equal(a, b)


def test_sharded_beats_thread_server(benchmark):
    """The process-sharded serving tier must out-serve the GIL-bound
    worker-thread pool on the same workload (>= 4 streams): paired
    rounds (thread then sharded, back to back, so machine drift hits
    both), best of four — one noisy neighbour mid-round flattens a
    single sample, the same defence test_two_tier_speedup uses. The
    winning sharded measurement lands in BENCH_throughput.json."""
    from repro.bench.snapshot import (
        measure_server_fps,
        measure_sharded_fps,
        update_snapshot,
    )

    num_streams = 8 if QUICK else 64
    num_frames = 5 if QUICK else 17

    def run():
        best = None
        for _ in range(4):
            thread = measure_server_fps(
                num_streams=num_streams, num_frames=num_frames
            )
            shard = measure_sharded_fps(
                num_streams=num_streams, num_frames=num_frames,
                attempts=1,
            )
            ratio = shard["frames_per_s"] / thread["frames_per_s"]
            if best is None or ratio > best[0]:
                best = (ratio, thread, shard)
            if ratio > 1.0:
                break
        return best

    ratio, thread, shard = benchmark.pedantic(run, rounds=1, iterations=1)
    if not QUICK:
        update_snapshot({"server_sharded_64streams": shard})
    assert ratio > 1.0, (
        f"sharded tier ({shard['frames_per_s']} frames/s over "
        f"{shard['shards']} shards) did not beat the thread server "
        f"({thread['frames_per_s']} frames/s) at {num_streams} streams"
    )


def test_fusion_transaction_reduction(benchmark):
    """The fusion pass must strictly cut global-memory traffic vs the
    standalone post-kernel chain, eliminating at least one full frame
    of uint8 read+write (2 bytes/pixel) per fused stage; the fused
    sim throughput lands in BENCH_throughput.json as ``sim_fused``."""
    from repro.bench.snapshot import measure_fps, update_snapshot
    from repro.config import RunConfig
    from repro.core.pipeline import HostPipeline
    from repro.core.variants import OptimizationLevel, custom_level
    from repro.kernels.ir import FusionPass

    shape = (48, 64)
    num_frames = 4 if QUICK else 8
    num_pixels = shape[0] * shape[1]
    video = evaluation_scene(height=shape[0], width=shape[1], seed=11)
    frames = [video.frame(t) for t in range(num_frames)]
    run_config = RunConfig(
        height=shape[0], width=shape[1], profile_every=1
    )
    cumulative = [
        ("threshold",),
        ("threshold", "shadow"),
        ("threshold", "shadow", "histogram"),
    ]

    def bytes_moved(**kw):
        pipe = HostPipeline(
            shape, PAPER_BENCH_PARAMS, run_config=run_config, **kw
        )
        _, report = pipe.process(frames)
        return report.counters.bytes_moved

    def run():
        out = []
        for stages in cumulative:
            unfused = bytes_moved(level="F", post_stages=stages)
            fused_level = custom_level(
                OptimizationLevel.F.spec.passes + (FusionPass(stages),),
                name="F+fusion:" + "+".join(stages),
            )
            out.append((stages, unfused, bytes_moved(level=fused_level)))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    frame_rw_bytes = 2 * num_pixels * num_frames  # one uint8 frame r+w
    prev_delta = 0
    for stages, unfused, fused in results:
        assert fused < unfused, stages
        delta = unfused - fused
        assert delta - prev_delta >= frame_rw_bytes, (
            f"{stages}: stage eliminated only {delta - prev_delta} bytes, "
            f"expected >= {frame_rw_bytes}"
        )
        prev_delta = delta

    update_snapshot({
        "sim_fused": measure_fps(
            "sim", profile_every=8,
            num_frames=9 if QUICK else 17, level="F+fusion",
        ),
    })


def test_jit_faster_than_cpu_same_shape(benchmark):
    """The compiled backend must strictly beat the vectorized cpu
    backend at the snapshot shape. Skipped when numba is absent (the
    CI ``jit`` job enforces it); compile time is excluded via the
    warmup window and recorded as ``compile_s``."""
    import pytest

    pytest.importorskip("numba")
    from repro.bench.snapshot import measure_fps, update_snapshot

    num_frames = 17 if QUICK else 65

    def run():
        cpu = measure_fps("cpu", num_frames=num_frames)
        jit = measure_fps("jit", num_frames=num_frames)
        return cpu, jit

    cpu, jit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert jit["numba"] is True
    update_snapshot({"cpu": cpu, "jit": jit})
    assert jit["frames_per_s"] > cpu["frames_per_s"], (
        f"jit ({jit['frames_per_s']} frames/s) not faster than cpu "
        f"({cpu['frames_per_s']} frames/s) at {SHAPE}"
    )


def test_jit_speedup_fullhd(benchmark):
    """At the paper's full-HD geometry the compiled per-pixel kernels
    must deliver >= 5x the cpu backend's frames/s (the ISSUE's
    acceptance bar). Skipped when numba is absent; the CI ``jit`` job
    runs it for real."""
    import pytest

    pytest.importorskip("numba")
    from repro.bench.snapshot import measure_fps, update_snapshot
    from repro.config import FULL_HD

    num_cpu = 5 if QUICK else 9
    num_jit = 9 if QUICK else 17

    def run():
        cpu = measure_fps("cpu", num_frames=num_cpu, shape=FULL_HD)
        jit = measure_fps("jit", num_frames=num_jit, shape=FULL_HD)
        return cpu, jit

    cpu, jit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert jit["numba"] is True
    update_snapshot({"cpu_fullhd": cpu, "jit_fullhd": jit})
    speedup = jit["frames_per_s"] / cpu["frames_per_s"]
    assert speedup >= 5.0, (
        f"expected >= 5x jit speedup at full HD, got {speedup:.2f}x "
        f"({cpu['frames_per_s']} -> {jit['frames_per_s']} frames/s)"
    )


def test_dmsg_beats_mog_cpu(benchmark):
    """The dual-mode single Gaussian family must out-run MoG at the
    same level on the cpu backend: it carries two modes per pixel
    (background + candidate) instead of K sorted Gaussians, so the
    per-frame arithmetic and memory traffic are strictly smaller.
    Paired rounds (mog then dmsg back to back, best of three) defend
    against CI neighbours, as in test_two_tier_speedup; the winning
    pair lands in BENCH_throughput.json."""
    from repro.bench.snapshot import measure_fps, update_snapshot

    num_frames = 17 if QUICK else 65

    def run():
        best = None
        for _ in range(3):
            mog = measure_fps("cpu", num_frames=num_frames)
            dmsg = measure_fps("cpu", num_frames=num_frames, model="dmsg")
            ratio = dmsg["frames_per_s"] / mog["frames_per_s"]
            if best is None or ratio > best[0]:
                best = (ratio, mog, dmsg)
            if ratio > 1.0:
                break
        return best

    ratio, mog, dmsg = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dmsg["model"] == "dmsg" and mog["model"] == "mog"
    update_snapshot({"cpu": mog, "dmsg": dmsg})
    assert ratio > 1.0, (
        f"dmsg ({dmsg['frames_per_s']} frames/s) not faster than mog "
        f"({mog['frames_per_s']} frames/s) on cpu at {SHAPE}"
    )


def test_backends_agree(benchmark):
    """The two paths must produce identical masks (also benchmarked so
    it participates in --benchmark-only runs)."""
    frames = _frames(8)

    def run():
        sim = BackgroundSubtractor(SHAPE, params=PAPER_BENCH_PARAMS, level="F")
        cpu = BackgroundSubtractor(
            SHAPE, params=PAPER_BENCH_PARAMS, level="F", backend="cpu"
        )
        a, _ = sim.process(frames)
        b, _ = cpu.process(frames)
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(a, b)


def test_fast_path_speedup(benchmark):
    """The allocation-free FastMoG must beat the clear implementation
    (same bits, fewer temporaries — the scientific-Python optimization
    playbook, measured)."""
    import time

    from repro.mog import MoGVectorized
    from repro.mog.fast import FastMoG

    shape = (240, 320)
    video = evaluation_scene(height=shape[0], width=shape[1])
    frames = [video.frame(t) for t in range(10)]

    def timed(factory):
        mog = factory()
        mog.apply(frames[0])
        start = time.perf_counter()
        for f in frames[1:]:
            mog.apply(f)
        return time.perf_counter() - start

    def run():
        clear = timed(lambda: MoGVectorized(
            shape, PAPER_BENCH_PARAMS, variant="nosort"
        ))
        fast = timed(lambda: FastMoG(shape, PAPER_BENCH_PARAMS))
        return clear, fast

    clear_s, fast_s = benchmark.pedantic(run, rounds=3, iterations=1)
    # Conservative bound (CI noise); typically ~1.5-2x.
    assert fast_s < clear_s * 0.9
