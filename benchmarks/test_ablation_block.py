"""Ablation: threads per block (DESIGN.md §5).

The paper fixes 128 threads/block. The occupancy calculator shows why
that is a good choice for the register budgets involved — and the
simulator confirms the end-to-end effect of bad choices.
"""

from repro.bench.harness import PAPER_BENCH_PARAMS, run_level
from repro.bench.reporting import format_table
from repro.config import RunConfig
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.occupancy import occupancy
from repro.gpusim.registers import pinned_registers


def test_block_size_occupancy_staircase(benchmark, publish):
    regs = pinned_registers("F", 3, "double")  # 31

    def run():
        return {
            tpb: occupancy(TESLA_C2075, tpb, regs)
            for tpb in (32, 64, 96, 128, 192, 256, 384, 512, 768, 1024)
        }

    occ = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [tpb, f"{o.occupancy * 100:.0f}%", o.blocks_per_sm, o.limiting_factor]
        for tpb, o in occ.items()
    ]
    print("\n" + format_table(
        ["threads/block", "occupancy", "blocks/SM", "limit"], rows,
        title="Ablation: block size at 31 regs/thread",
    ))

    # Tiny blocks are block-count limited (8 blocks x 1 warp = 8/48).
    assert occ[32].limiting_factor == "blocks"
    assert occ[32].occupancy < 0.25
    # The paper's 128 sits on the best achievable occupancy plateau.
    best = max(o.occupancy for o in occ.values())
    assert occ[128].occupancy == best


def test_block_size_end_to_end(ctx):
    """A 32-thread block measurably hurts the simulated kernel."""
    small = RunConfig(height=ctx.shape[0], width=ctx.shape[1],
                      threads_per_block=32)
    r_small = run_level("F", ctx.frames(), ctx.shape,
                        params=PAPER_BENCH_PARAMS, run_config=small,
                        warmup_frames=24)
    r_paper = ctx.run("F")
    assert r_small.speedup < r_paper.speedup
