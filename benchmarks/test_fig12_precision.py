"""Figure 12: effect of the data type (double vs single precision)."""

import pytest

from repro.bench.experiments import fig12
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.occupancy import occupancy
from repro.gpusim.registers import pinned_registers


def test_fig12_precision(benchmark, publish, ctx):
    exp = benchmark.pedantic(fig12, args=(ctx,), rounds=1, iterations=1)
    publish(exp, "fig12")
    rows = {row[0]: row for row in exp.rows}
    sd = {lv: float(rows[lv][1].rstrip("x")) for lv in "ABCDEF"}
    sf = {lv: float(rows[lv][2].rstrip("x")) for lv in "ABCDEF"}

    # Paper: float tracks double's trend, ending slightly faster
    # (105x vs 97x at the end).
    assert sf["A"] < sf["B"] < sf["C"] < sf["D"] < sf["E"]
    assert sf["F"] > sd["F"]

    # Paper: "register usage reduction does not show an impact" for
    # float — halving register width already un-limits occupancy.
    assert sf["F"] == pytest.approx(sf["E"], rel=0.05)
    regs_e = pinned_registers("E", 3, "float")
    regs_f = pinned_registers("F", 3, "float")
    occ_e = occupancy(TESLA_C2075, 128, regs_e).occupancy
    occ_f = occupancy(TESLA_C2075, 128, regs_f).occupancy
    assert occ_e == occ_f, "float occupancy should not be register-limited"
