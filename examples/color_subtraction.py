#!/usr/bin/env python3
"""Color background subtraction (library extension beyond the paper):
run the spherical-covariance RGB MoG on colorized synthetic footage and
show the case grayscale subtraction cannot handle — an object whose
*luminance* matches the background but whose *hue* does not.

Run:  python examples/color_subtraction.py
"""

import numpy as np

from repro import MoGParams
from repro.metrics import foreground_score
from repro.mog import MoGVectorized
from repro.mog.color import ColorMoGVectorized
from repro.post import MaskCleaner
from repro.video.color import ColorizedVideo
from repro.video.scenes import evaluation_scene

SHAPE = (96, 128)


def isoluminant_demo() -> None:
    """A hue flip invisible to grayscale."""
    params = MoGParams(learning_rate=0.1)
    red = np.zeros((*SHAPE, 3), dtype=np.uint8)
    red[..., 0] = 150
    blue = np.zeros((*SHAPE, 3), dtype=np.uint8)
    blue[..., 2] = 150

    color = ColorMoGVectorized(SHAPE, params)
    gray = MoGVectorized(SHAPE, params, variant="nosort")
    for _ in range(8):
        color.apply(red)
        gray.apply(np.full(SHAPE, 50, dtype=np.uint8))  # equal luminance
    color_hits = color.apply(blue).mean()
    gray_hits = gray.apply(np.full(SHAPE, 50, dtype=np.uint8)).mean()
    print(
        f"isoluminant hue flip:  color model flags {color_hits * 100:.0f}% "
        f"of pixels, grayscale flags {gray_hits * 100:.0f}%"
    )


def main() -> None:
    isoluminant_demo()

    params = MoGParams(learning_rate=0.08, initial_sd=8.0)
    video = ColorizedVideo(evaluation_scene(height=SHAPE[0], width=SHAPE[1]))
    mog = ColorMoGVectorized(SHAPE, params)
    cleaner = MaskCleaner(open_radius=0, close_radius=2, min_area=6)

    raw_score = clean_score = None
    for t in range(40):
        frame, truth = video.frame_with_truth(t)
        mask = mog.apply(frame)
        if t >= 25:
            s = foreground_score(mask, truth)
            raw_score = s if raw_score is None else raw_score + s
            s2 = foreground_score(cleaner(mask), truth)
            clean_score = s2 if clean_score is None else clean_score + s2

    print(
        f"\ncolorized surveillance scene (frames 25-39):\n"
        f"  raw masks     : precision={raw_score.precision:.2f} "
        f"recall={raw_score.recall:.2f} F1={raw_score.f1:.2f}\n"
        f"  after cleanup : precision={clean_score.precision:.2f} "
        f"recall={clean_score.recall:.2f} F1={clean_score.f1:.2f}"
    )


if __name__ == "__main__":
    main()
