#!/usr/bin/env python3
"""Quickstart: subtract the background from a synthetic surveillance
clip and inspect the run report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BackgroundSubtractor
from repro.metrics import foreground_score
from repro.video import surveillance_scene


def main() -> None:
    # A deterministic synthetic scene with ground-truth masks: two
    # pedestrians over a noisy background with a flickering sign.
    video = surveillance_scene(height=120, width=160)
    frames = [video.frame_with_truth(t) for t in range(30)]

    # Level F = all of the paper's per-kernel optimizations. The "sim"
    # backend runs on the simulated Tesla C2075 and produces profiler
    # metrics; swap backend="cpu" for the fastest wall-clock path
    # (identical masks).
    subtractor = BackgroundSubtractor(video.shape, level="F")
    masks, report = subtractor.process([f for f, _ in frames])

    print(report.summary())

    # Score detection against the ground truth the synthetic scene
    # provides (skip the model's convergence phase).
    total = None
    for (_, truth), mask in list(zip(frames, masks))[15:]:
        score = foreground_score(mask, truth)
        total = score if total is None else total + score
    print(
        f"\ndetection (frames 15-29): precision={total.precision:.2f} "
        f"recall={total.recall:.2f} F1={total.f1:.2f} IoU={total.iou:.2f}"
    )

    fg_share = np.mean([m.mean() for m in masks[15:]])
    print(f"average foreground share: {fg_share * 100:.2f}%")


if __name__ == "__main__":
    main()
