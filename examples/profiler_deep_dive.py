#!/usr/bin/env python3
"""Deep profiler dive: where each optimization level actually spends
its modelled cycles, and what the transfer/kernel schedule looks like
(the paper's Figure 5, rendered).

Run:  python examples/profiler_deep_dive.py
"""

from repro.bench.harness import (
    BENCH_SHAPE,
    PAPER_BENCH_PARAMS,
    steady_state_counters,
)
from repro.core.pipeline import HostPipeline
from repro.gpusim.analysis import format_cost_breakdown, render_timeline
from repro.video.scenes import evaluation_scene


def main() -> None:
    video = evaluation_scene(height=BENCH_SHAPE[0], width=BENCH_SHAPE[1])
    frames = [video.frame(t) for t in range(32)]

    for level, story in [
        ("A", "the base port: transactions dwarf everything"),
        ("C", "coalesced + overlapped: sort divergence now shows"),
        ("F", "fully optimized: arithmetic finally dominates"),
    ]:
        hp = HostPipeline(BENCH_SHAPE, PAPER_BENCH_PARAMS, level)
        hp.process(frames)
        report = hp.report()
        counters, _ = steady_state_counters(report, 20)
        print(f"=== level {level}: {story} ===")
        print(format_cost_breakdown(counters))
        timing = report.launches[-1].timing
        print(
            f"bound by {timing.bound_by}: compute "
            f"{timing.compute_time * 1e6:.1f} us vs memory "
            f"{timing.memory_time * 1e6:.1f} us per frame (bench scale)\n"
        )

    print("=== Figure 5: serial (level B) vs overlapped (level C) ===")
    for level in ("B", "C"):
        hp = HostPipeline(BENCH_SHAPE, PAPER_BENCH_PARAMS, level)
        hp.process(frames[:6])
        mode = "overlapped" if level == "C" else "serial"
        print(f"\nlevel {level} ({mode}):")
        print(render_timeline(hp.report().pipeline))


if __name__ == "__main__":
    main()
