#!/usr/bin/env python3
"""The paper's optimization story, end to end: run every level A..G on
the same clip, print the profiler metrics and the extrapolated full-HD
speedup after each step (the living version of Figures 6-8 and 10).

Run:  python examples/optimization_tour.py
"""

from repro.bench.experiments import ExperimentContext
from repro.bench.reporting import format_table
from repro.core.variants import OptimizationLevel

STEP_NOTES = {
    "A": "direct CUDA port: AoS layout wastes 8 of 9 fetched bytes",
    "B": "SoA layout coalesces warp accesses (18 -> 2 transactions)",
    "C": "DMA overlaps kernel execution, hiding the PCIe time",
    "D": "rank/sort removed: the scan's OR needs no order",
    "E": "predicated updates: all lanes run one instruction stream",
    "F": "diff[] recomputed, not stored: occupancy 58% -> 67%",
    "G": "tile parameters in shared memory, reuse across 8 frames",
}


def main() -> None:
    ctx = ExperimentContext()
    rows = []
    for level in OptimizationLevel:
        result = ctx.run(level.letter)
        m = result.metrics()
        rows.append(
            [
                level.letter,
                level.spec.title,
                f"{result.speedup:.1f}x",
                f"{level.spec.paper_speedup:.0f}x",
                f"{m['memory_access_efficiency'] * 100:.0f}%",
                f"{m['branch_efficiency'] * 100:.1f}%",
                f"{m['occupancy'] * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["lvl", "optimization", "speedup", "paper", "mem eff",
             "branch eff", "occ"],
            rows,
            title="Step-wise optimization of MoG on the simulated C2075",
        )
    )
    print()
    for letter, note in STEP_NOTES.items():
        print(f"  {letter}: {note}")


if __name__ == "__main__":
    main()
