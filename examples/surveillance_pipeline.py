#!/usr/bin/env python3
"""The full application the paper's introduction motivates: a
surveillance pipeline — background subtraction feeding mask cleanup
feeding multi-object tracking — over a synthetic scene with ground
truth, with the subtraction stage running on the simulated GPU.

Run:  python examples/surveillance_pipeline.py
"""

from repro import BackgroundSubtractor, MoGParams
from repro.post import MaskCleaner, connected_components
from repro.track import CentroidTracker, TrackerParams
from repro.video.scenes import evaluation_scene

SHAPE = (120, 160)
FRAMES = 60
WARMUP = 20


def main() -> None:
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    subtractor = BackgroundSubtractor(
        SHAPE, MoGParams(learning_rate=0.08, initial_sd=8.0), level="F"
    )
    cleaner = MaskCleaner(open_radius=0, close_radius=2, min_area=8)
    tracker = CentroidTracker(
        TrackerParams(max_distance=22.0, min_hits=3, min_area=8)
    )

    detections_per_frame = []
    for t in range(FRAMES):
        mask = cleaner(subtractor.apply(video.frame(t)))
        if t >= WARMUP:
            tracker.update(mask, frame_index=t)
            detections_per_frame.append(len(connected_components(mask)))

    print(tracker.summary())
    avg_det = sum(detections_per_frame) / len(detections_per_frame)
    print(f"\naverage detections per frame: {avg_det:.1f}")

    report = subtractor.report()
    print(
        f"\nsubtraction stage (simulated C2075, level F): "
        f"{report.kernel_time_per_frame * 1e3:.3f} ms kernel/frame, "
        f"{report.memory_access_efficiency * 100:.0f}% memory efficiency, "
        f"{report.branch_efficiency * 100:.1f}% branch efficiency"
    )
    print(
        "At full HD the paper's optimized kernel leaves ~11 ms of the "
        "16.7 ms frame budget\nfor exactly this kind of downstream "
        "cleanup and tracking."
    )


if __name__ == "__main__":
    main()
