#!/usr/bin/env python3
"""The multi-core CPU baseline, for real: run the process-parallel MoG
on this machine and compare with the serial NumPy path (the analogue of
the paper's 227.3 s -> 99.8 s OpenMP measurement).

Run:  python examples/parallel_cpu.py [workers]
"""

import sys

from repro.cpu import CpuMode, CpuTimeModel
from repro.parallel import parallel_speedup_probe


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"probing serial vs {workers}-process MoG at 240x320 ...")
    probe = parallel_speedup_probe(workers=workers)
    print(
        f"  serial   : {probe['serial_s'] * 1e3:7.1f} ms for 12 frames\n"
        f"  parallel : {probe['parallel_s'] * 1e3:7.1f} ms\n"
        f"  speedup  : {probe['speedup']:.2f}x"
    )

    model = CpuTimeModel()
    paper_serial = model.paper_reference_time(mode=CpuMode.SCALAR)
    paper_threads = model.paper_reference_time(mode=CpuMode.THREADS_8)
    print(
        f"\npaper's Xeon E5-2620 (450 full-HD frames): "
        f"{paper_serial:.1f} s serial -> {paper_threads:.1f} s with 8 "
        f"threads ({paper_serial / paper_threads:.2f}x)"
    )
    print(
        "Either way the multi-core CPU stays ~25x short of real time —\n"
        "the gap the paper's GPU mapping closes."
    )


if __name__ == "__main__":
    main()
