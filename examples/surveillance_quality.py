#!/usr/bin/env python3
"""Output-quality study (the paper's Table IV, hands-on): compare every
optimization level's foreground against the double-precision CPU ground
truth with MS-SSIM, and against the synthetic scene's true masks with
detection metrics.

Run:  python examples/surveillance_quality.py
"""

import numpy as np

from repro import BackgroundSubtractor, MoGParams
from repro.bench.reporting import format_table
from repro.metrics import foreground_score
from repro.metrics.ms_ssim import DEFAULT_WEIGHTS, ms_ssim
from repro.video import surveillance_scene

SHAPE = (120, 160)
WARMUP, TOTAL = 20, 36


def main() -> None:
    params = MoGParams(learning_rate=0.08, initial_sd=8.0)
    video = surveillance_scene(height=SHAPE[0], width=SHAPE[1])
    pairs = [video.frame_with_truth(t) for t in range(TOTAL)]
    frames = [f for f, _ in pairs]
    truths = [t for _, t in pairs]

    # Ground truth: the CPU double-precision implementation (what the
    # paper compares against).
    reference = BackgroundSubtractor(SHAPE, params, level="C", backend="cpu")
    ref_masks, _ = reference.process(frames)

    weights = DEFAULT_WEIGHTS[:3]  # 3 scales fit a 120-pixel side
    rows = []
    for level in "ABCDEFG":
        bs = BackgroundSubtractor(SHAPE, params, level=level)
        masks, _ = bs.process(frames)
        similarity = np.mean([
            ms_ssim(
                masks[t].astype(np.uint8) * 255,
                ref_masks[t].astype(np.uint8) * 255,
                weights=weights,
            )
            for t in range(WARMUP, TOTAL)
        ])
        score = None
        for t in range(WARMUP, TOTAL):
            s = foreground_score(masks[t], truths[t])
            score = s if score is None else score + s
        rows.append(
            [
                level,
                f"{similarity * 100:.1f}%",
                f"{score.precision:.2f}",
                f"{score.recall:.2f}",
                f"{score.f1:.2f}",
            ]
        )
    print(
        format_table(
            ["level", "MS-SSIM vs CPU", "precision", "recall", "F1"],
            rows,
            title="Foreground quality per optimization level",
        )
    )
    print(
        "\nEvery level matches the double-precision CPU reference exactly:\n"
        "the paper's claim that its optimizations leave quality untouched\n"
        "holds here perfectly (its own 95-97% readings were platform FP\n"
        "artifacts; see repro.mog.update step 6 for the equivalence proof)."
    )


if __name__ == "__main__":
    main()
