#!/usr/bin/env python3
"""Tuning study: sweep the MoG parameters the paper holds fixed and see
how each moves detection quality on a ground-truth scene.

Run:  python examples/parameter_study.py
"""

from repro.bench.reporting import format_table
from repro.bench.sweeps import sweep_parameter

SWEEPS = [
    ("match_threshold", [1.5, 2.0, 2.5, 3.0, 4.0],
     "Gamma1: tighter bands flag noise; looser bands swallow objects"),
    ("background_weight", [0.05, 0.1, 0.15, 0.25, 0.4],
     "Gamma2: how much evidence a component needs to count as background"),
    ("learning_rate", [0.01, 0.03, 0.08, 0.2],
     "adaptation speed: slow models lag scene changes, fast ones absorb "
     "loiterers"),
    ("num_gaussians", [1, 2, 3, 5],
     "components per pixel vs the scene's actual modality"),
]


def main() -> None:
    for parameter, values, note in SWEEPS:
        result = sweep_parameter(parameter, values)
        print(
            format_table(
                [parameter, "precision", "recall", "F1", "fg rate", ""],
                result.rows(),
                title=f"Sweep: {parameter}",
            )
        )
        print(f"  ({note})\n")


if __name__ == "__main__":
    main()
