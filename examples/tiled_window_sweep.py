#!/usr/bin/env python3
"""Shared-memory tiling study (the paper's Figure 10): sweep the frame
group size of the level-G kernel and watch the trade-off between
parameter-traffic amortisation and memory-efficiency/latency costs.

Run:  python examples/tiled_window_sweep.py
"""

from repro.bench.experiments import ExperimentContext, fig10
from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.config import RunConfig
from repro.core.pipeline import max_tile_pixels
from repro.gpusim.device import TESLA_C2075


def main() -> None:
    tile_limit = max_tile_pixels(PAPER_BENCH_PARAMS, "double", TESLA_C2075)
    shared_kb = RunConfig().tile_pixels * 3 * 3 * 8 / 1024
    print(
        f"tile budget: {tile_limit} px max per 48 KB SM; the paper's "
        f"640-px tile uses {shared_kb:.0f} KB\n"
    )
    ctx = ExperimentContext()
    exp = fig10(ctx)
    print(exp.format())
    print(
        "\nReading the sweep: parameters travel DRAM<->shared once per\n"
        "group, so their traffic falls as 1/group; but the remaining\n"
        "traffic (frames in, masks out) is byte-packed and poorly\n"
        "coalesced, so measured memory efficiency decays, and each\n"
        "frame's result is delayed until its whole group completes.\n"
        "The sweet spot sits around a group of 8 frames - the paper's\n"
        "101x configuration."
    )


if __name__ == "__main__":
    main()
