#!/usr/bin/env python3
"""Section V of the paper: how the data type (double vs float) and the
number of Gaussian components (3 vs 5) shift the speed/quality balance.

Run:  python examples/precision_and_components.py
"""

import numpy as np

from repro import BackgroundSubtractor, MoGParams
from repro.bench.experiments import ExperimentContext
from repro.bench.reporting import format_table
from repro.video.scenes import evaluation_scene

SHAPE = (120, 160)


def quality_vs_double(params: MoGParams, dtype: str) -> float:
    """Mask agreement of a dtype run against the double ground truth."""
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    frames = [video.frame(t) for t in range(30)]
    ref = BackgroundSubtractor(SHAPE, params, level="F", backend="cpu")
    ref_masks, _ = ref.process(frames)
    from repro.config import RunConfig

    rc = RunConfig(height=SHAPE[0], width=SHAPE[1], dtype=dtype)
    test = BackgroundSubtractor(
        SHAPE, params, level="F", backend="cpu", run_config=rc
    )
    test_masks, _ = test.process(frames)
    return float(np.mean(ref_masks[20:] == test_masks[20:]))


def main() -> None:
    ctx = ExperimentContext(shape=SHAPE)
    params = ctx.params

    rows = []
    for dtype in ("double", "float"):
        for k in (3, 5):
            r = ctx.run("F", num_gaussians=k, dtype=dtype)
            rows.append(
                [
                    dtype, k,
                    f"{r.speedup:.1f}x",
                    f"{r.report.registers_per_thread}",
                    f"{r.report.occupancy * 100:.0f}%",
                    f"{r.kernel_time_per_frame * 1e3:.2f} ms",
                ]
            )
    print(
        format_table(
            ["dtype", "K", "speedup", "regs", "occupancy", "kernel/frame"],
            rows,
            title="Level F across precision and component count (full-HD extrapolated)",
        )
    )

    agreement = quality_vs_double(params, "float")
    print(
        f"\nfloat32 vs float64 mask agreement: {agreement * 100:.2f}% "
        "(the paper reports ~5% MS-SSIM loss and recommends float for "
        "its ~8% performance edge)"
    )
    print(
        "5 components cost ~1.7x CPU time and ~1.6x GPU kernel time, and\n"
        "their extra registers depress occupancy — use them only for\n"
        "scenes whose backgrounds genuinely have >2 modes per pixel."
    )


if __name__ == "__main__":
    main()
