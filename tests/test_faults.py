"""Fault-injection harness: plan validation, deterministic replay, ECC
semantics, and the per-layer hooks.

The injector is the *adversary* of the chaos suite, so its own contract
has to be airtight: a plan must replay bit-identically from its seed,
hooks must be no-ops off-schedule, and ``ecc="on"`` must model SECDED
faithfully (single-bit corrected, multi-bit uncorrectable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FaultPlan, IntegrityPolicy, MoGParams
from repro.core.stream import SurveillancePipeline
from repro.errors import ConfigError, InjectedFault, IntegrityError
from repro.faults import FaultInjector, FaultyPipeline
from repro.mog.params import MixtureState
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (16, 24)


def fresh_state(params: MoGParams, dtype="double") -> MixtureState:
    frame = evaluation_scene(height=SHAPE[0], width=SHAPE[1]).frame(0)
    return MixtureState.from_first_frame(frame, params, dtype)


class TestFaultPlanConfig:
    def test_defaults_valid(self):
        plan = FaultPlan()
        assert plan.target == "state"
        assert plan.mode == "bitflip"
        assert plan.frames == ()

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(target="register")

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(mode="gamma_ray")

    def test_mode_target_cross_validation(self):
        # Memory targets take memory modes, serve takes serve modes.
        with pytest.raises(ConfigError):
            FaultPlan(target="state", mode="stall")
        with pytest.raises(ConfigError):
            FaultPlan(target="serve", mode="bitflip")
        FaultPlan(target="serve", mode="stall")  # valid
        FaultPlan(target="dma", mode="stuck")  # valid

    def test_bad_ecc_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(ecc="secded")

    def test_negative_frames_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(frames=(3, -1))

    def test_flips_floor(self):
        with pytest.raises(ConfigError):
            FaultPlan(flips=0)

    def test_replace(self):
        plan = FaultPlan(frames=(5,), flips=2)
        other = plan.replace(seed=9)
        assert other.seed == 9 and other.frames == (5,)
        assert plan.seed == 0  # original untouched (frozen)


class TestDeterministicReplay:
    def test_same_seed_same_corruption(self, params):
        """The property every chaos test leans on: a plan replays
        bit-identically from its seed."""
        plan = FaultPlan(target="state", frames=(0,), flips=8, seed=42)
        runs = []
        for _ in range(2):
            state = fresh_state(params)
            FaultInjector(plan).on_model_state(state, 0)
            runs.append((state.w.copy(), state.m.copy(), state.sd.copy()))
        for a, b in zip(*runs):
            assert np.array_equal(a, b, equal_nan=True)

    def test_different_seed_differs(self, params):
        plan = FaultPlan(target="state", frames=(0,), flips=8, seed=1)
        s1, s2 = fresh_state(params), fresh_state(params)
        FaultInjector(plan).on_model_state(s1, 0)
        FaultInjector(plan.replace(seed=2)).on_model_state(s2, 0)
        assert not all(
            np.array_equal(a, b, equal_nan=True)
            for a, b in ((s1.w, s2.w), (s1.m, s2.m), (s1.sd, s2.sd))
        )


class TestStateTarget:
    def test_bitflip_lands_on_schedule(self, params):
        state = fresh_state(params)
        before = [state.w.copy(), state.m.copy(), state.sd.copy()]
        inj = FaultInjector(
            FaultPlan(target="state", frames=(3,), flips=4, seed=0)
        )
        assert inj.on_model_state(state, 2) == 0  # off-schedule: no-op
        for b, a in zip(before, (state.w, state.m, state.sd)):
            assert np.array_equal(b, a)
        assert inj.on_model_state(state, 3) == 4
        # Compare raw bits: a low-mantissa flip is numerically tiny but
        # must still register as a changed element.
        changed = sum(
            int((b.view(np.uint64) != a.view(np.uint64)).sum())
            for b, a in zip(before, (state.w, state.m, state.sd))
        )
        assert 1 <= changed <= 4  # flips can collide on one element
        assert inj.injected == 4

    def test_stuck_writes_value(self, params):
        state = fresh_state(params)
        inj = FaultInjector(
            FaultPlan(
                target="state", mode="stuck", frames=(0,), flips=3,
                stuck_value=1e9, seed=5,
            )
        )
        inj.on_model_state(state, 0)
        stuck = sum(
            int((a == 1e9).sum()) for a in (state.w, state.m, state.sd)
        )
        assert stuck >= 1

    def test_none_state_is_noop(self):
        inj = FaultInjector(FaultPlan(target="state", frames=(0,)))
        assert inj.on_model_state(None, 0) == 0


class TestEccSemantics:
    def test_ecc_corrects_single_bit_flips(self, params):
        """SECDED corrects every single-bit flip: memory untouched, the
        event counted in ``faults.corrected``, nothing injected."""
        reg = MetricsRegistry()
        state = fresh_state(params)
        before = [state.w.copy(), state.m.copy(), state.sd.copy()]
        inj = FaultInjector(
            FaultPlan(target="state", frames=(0,), flips=6, ecc="on"),
            telemetry=reg,
        )
        assert inj.on_model_state(state, 0) == 0
        for b, a in zip(before, (state.w, state.m, state.sd)):
            assert np.array_equal(b, a)
        assert inj.corrected == 6
        assert inj.injected == 0
        assert reg.counter("faults.corrected").value == 6
        assert "faults.injected" not in reg.snapshot()["counters"]

    def test_ecc_stuck_is_uncorrectable(self, params):
        """A stuck element differs in many bits — SECDED detects but
        cannot correct; the simulated machine-check raises."""
        reg = MetricsRegistry()
        state = fresh_state(params)
        inj = FaultInjector(
            FaultPlan(
                target="state", mode="stuck", frames=(0,), flips=2,
                ecc="on",
            ),
            telemetry=reg,
        )
        with pytest.raises(IntegrityError) as ei:
            inj.on_model_state(state, 0)
        assert ei.value.frame_index == 0
        assert ei.value.pixels == 2
        assert reg.counter("faults.uncorrectable").value == 2


class TestFrameAndDmaTargets:
    def test_on_frame_corrupts_a_copy(self):
        inj = FaultInjector(
            FaultPlan(target="frame", frames=(1,), flips=4, seed=3)
        )
        frame = evaluation_scene(height=SHAPE[0], width=SHAPE[1]).frame(1)
        original = frame.copy()
        out = inj.on_frame(frame, 1)
        assert out is not frame
        assert np.array_equal(frame, original)  # caller's array untouched
        assert (out != original).any()

    def test_on_frame_off_schedule_passthrough(self):
        inj = FaultInjector(FaultPlan(target="frame", frames=(1,)))
        frame = np.zeros(SHAPE, dtype=np.uint8)
        assert inj.on_frame(frame, 0) is frame

    def test_on_dma_corrupts_in_place(self):
        inj = FaultInjector(
            FaultPlan(target="dma", frames=(2,), flips=3, seed=7)
        )
        flat = np.zeros(SHAPE[0] * SHAPE[1], dtype=np.float64)
        out = inj.on_dma(flat, 2)
        assert out is flat
        assert (flat != 0).sum() >= 1


class _Buf:
    def __init__(self, name, data):
        self.name = name
        self.data = data


class _Mem:
    def __init__(self, bufs):
        self._bufs = bufs

    def buffers(self):
        return self._bufs


class TestSimMemoryTarget:
    def test_no_filter_targets_float_buffers_only(self):
        """Without a name filter, only state-carrying (float) buffers
        are corrupted — frame/mask buffers are transient uint8."""
        gauss = _Buf("gaussians", np.zeros(64, dtype=np.float32))
        frame = _Buf("frame_in", np.zeros(64, dtype=np.uint8))
        inj = FaultInjector(
            FaultPlan(target="state", frames=(0,), flips=4, seed=1)
        )
        landed = inj.corrupt_memory(_Mem([gauss, frame]), 0)
        assert landed == 4
        assert (gauss.data != 0).any()
        assert not frame.data.any()

    def test_buffer_substring_filter(self):
        a = _Buf("gaussians_soa", np.zeros(32, dtype=np.float64))
        b = _Buf("scratch", np.zeros(32, dtype=np.float64))
        inj = FaultInjector(
            FaultPlan(
                target="state", frames=(0,), flips=4, buffer="gauss",
                seed=1,
            )
        )
        inj.corrupt_memory(_Mem([a, b]), 0)
        assert (a.data != 0).any()
        assert not b.data.any()

    def test_on_launch_gated_by_schedule(self):
        buf = _Buf("gaussians", np.zeros(16, dtype=np.float64))
        inj = FaultInjector(FaultPlan(target="state", frames=(5,), flips=2))
        assert inj.on_launch(_Mem([buf]), 4) == 0
        assert not buf.data.any()
        assert inj.on_launch(_Mem([buf]), 5) == 2


class TestServeTarget:
    def _pipeline(self, params):
        return SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="raise"
        )

    def test_raise_mode_raises_injected_fault(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        inj = FaultInjector(
            FaultPlan(target="serve", mode="raise", frames=(1,))
        )
        faulty = FaultyPipeline(self._pipeline(params), inj)
        faulty.step(video.frame(0))  # frame 0: passthrough
        with pytest.raises(InjectedFault):
            faulty.step(video.frame(1))

    def test_stall_mode_delays_but_serves(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        reg = MetricsRegistry()
        inj = FaultInjector(
            FaultPlan(
                target="serve", mode="stall", frames=(0,), stall_s=0.01
            ),
            telemetry=reg,
        )
        faulty = FaultyPipeline(self._pipeline(params), inj)
        result = faulty.step(video.frame(0))
        assert result.frame_index == 0
        assert not result.degraded
        assert reg.counter("faults.injected").value == 1

    def test_proxy_passes_attributes_through(self, params):
        pipe = self._pipeline(params)
        faulty = FaultyPipeline(
            pipe, FaultInjector(FaultPlan(target="serve", mode="raise"))
        )
        assert faulty.frame_index == pipe.frame_index
        assert faulty.telemetry is pipe.telemetry
