"""Direct unit tests for the shared kernel building blocks
(repro.kernels.common) via tiny launches."""

import numpy as np
import pytest

from repro.bench.harness import PAPER_BENCH_PARAMS
from repro.gpusim import SimtEngine
from repro.kernels.common import (
    KernelConfig,
    branchy_update_match,
    foreground_scan_break,
    foreground_scan_flat,
    predicated_update,
    rank_and_sort,
    store_foreground,
)

N = 32
CFG = KernelConfig.from_params(PAPER_BENCH_PARAMS, "double")


def launch(kernel, buffers=()):
    engine = SimtEngine()
    handles = [engine.memory.alloc_like(f"b{i}", a) for i, a in enumerate(buffers)]
    out = engine.memory.alloc("out", N, np.float64)
    res = engine.launch(
        kernel, N, 32, args=(*handles, out) if buffers else (out,)
    )
    return out.data.copy(), res


class TestKernelConfig:
    def test_constants_cast_in_run_dtype(self):
        cfg32 = KernelConfig.from_params(PAPER_BENCH_PARAMS, "float")
        # 1 - alpha computed in float32 differs from the double value.
        assert cfg32.one_minus_alpha != CFG.one_minus_alpha
        assert cfg32.dtype == np.dtype(np.float32)

    def test_retention_complement(self):
        assert CFG.alpha + CFG.one_minus_alpha == pytest.approx(1.0)


class TestUpdateHelpers:
    def test_branchy_match_moves_mean(self):
        x_host = np.full(N, 100.0)

        def kern(ctx, xbuf, out):
            t = ctx.thread_id()
            x = ctx.load(xbuf, t)
            w = ctx.var(1.0, np.float64)
            m = ctx.var(90.0, np.float64)
            sd = ctx.var(8.0, np.float64)
            d = ctx.var(abs(x - m.get()))
            branchy_update_match(ctx, CFG, x, w, m, sd, d)
            ctx.store(out, t, m.get())

        out, _ = launch(kern, [x_host])
        assert ((out > 90.0) & (out < 100.0)).all()

    def test_predicated_update_identity_when_unmatched(self):
        x_host = np.full(N, 100.0)

        def kern(ctx, xbuf, out):
            t = ctx.thread_id()
            x = ctx.load(xbuf, t)
            w = ctx.var(0.5, np.float64)
            m = ctx.var(90.0, np.float64)
            sd = ctx.var(8.0, np.float64)
            d = abs(x - m.get())
            zero = ctx.full(0.0, np.float64)  # match predicate = 0
            predicated_update(ctx, CFG, x, w, m, sd, d, zero)
            # mean and sd untouched; weight decayed.
            ctx.store(out, t, m.get() + sd.get() + w.get())

        out, _ = launch(kern, [x_host])
        assert np.allclose(out, 90.0 + 8.0 + 0.5 * CFG.alpha)

    def test_predicated_no_branches_in_update(self):
        x_host = np.full(N, 100.0)

        def kern(ctx, xbuf, out):
            t = ctx.thread_id()
            x = ctx.load(xbuf, t)
            w = ctx.var(1.0, np.float64)
            m = ctx.var(99.0, np.float64)
            sd = ctx.var(8.0, np.float64)
            d = abs(x - m.get())
            matchf = (d < sd * CFG.gamma1).astype(np.float64)
            predicated_update(ctx, CFG, x, w, m, sd, d, matchf)
            ctx.store(out, t, m.get())

        _, res = launch(kern, [x_host])
        assert res.counters.branches_divergent == 0


class TestSortHelper:
    def test_sorts_by_rank_descending(self):
        # Pixel i gets component weights that reverse-rank; after the
        # sort the first component must hold the highest rank.
        def kern(ctx, out):
            t = ctx.thread_id()
            w = [ctx.var(0.1, np.float64), ctx.var(0.9, np.float64)]
            m = [ctx.var(1.0, np.float64), ctx.var(2.0, np.float64)]
            sd = [ctx.var(5.0, np.float64), ctx.var(5.0, np.float64)]
            d = [ctx.var(0.0, np.float64), ctx.var(0.0, np.float64)]
            rank_and_sort(ctx, w, m, sd, d)
            ctx.store(out, t, w[0].get() * 10.0 + m[0].get())

        out, _ = launch(kern)
        assert np.allclose(out, 0.9 * 10 + 2.0)  # high-rank comp first

    def test_data_dependent_sort_diverges(self):
        def kern(ctx, xbuf, out):
            t = ctx.thread_id()
            x = ctx.load(xbuf, t)
            w = [ctx.var(x, np.float64), ctx.var(0.5, np.float64)]
            m = [ctx.var(0.0, np.float64), ctx.var(0.0, np.float64)]
            sd = [ctx.var(5.0, np.float64), ctx.var(5.0, np.float64)]
            d = [ctx.var(0.0, np.float64), ctx.var(0.0, np.float64)]
            rank_and_sort(ctx, w, m, sd, d)
            ctx.store(out, t, w[0].get())

        # Alternating weights: half the lanes need a swap.
        x_host = np.where(np.arange(N) % 2 == 0, 0.1, 0.9)
        out, res = launch(kern, [x_host])
        assert np.allclose(out, np.maximum(x_host, 0.5))
        assert res.counters.branches_divergent > 0


class TestForegroundScans:
    def _components(self, ctx, w_val):
        w = [ctx.var(w_val, np.float64)]
        sd = [ctx.var(8.0, np.float64)]
        d = [ctx.var(1.0, np.float64)]
        return w, sd, d

    def test_break_and_flat_agree(self):
        results = {}
        for name, scan in [("break", foreground_scan_break),
                           ("flat", foreground_scan_flat)]:
            def kern(ctx, out, scan=scan):
                t = ctx.thread_id()
                w, sd, d = self._components(ctx, 0.9)
                bg = scan(ctx, KernelConfig.from_params(
                    PAPER_BENCH_PARAMS.replace(num_gaussians=1), "double"
                ), w, sd, d)
                store_foreground(ctx, out, t, bg)
            out, _ = launch(kern)
            results[name] = out
        assert np.array_equal(results["break"], results["flat"])
        assert (results["flat"] == 0).all()  # background -> 0

    def test_low_weight_is_foreground(self):
        def kern(ctx, out):
            t = ctx.thread_id()
            w, sd, d = self._components(ctx, 0.05)
            bg = foreground_scan_flat(ctx, KernelConfig.from_params(
                PAPER_BENCH_PARAMS.replace(num_gaussians=1), "double"
            ), w, sd, d)
            store_foreground(ctx, out, t, bg)

        out, _ = launch(kern)
        assert (out == 255).all()
