"""CPU baselines (analytic + timed) and the process-parallel path."""

import numpy as np
import pytest

from repro.config import FULL_HD, PAPER_NUM_FRAMES
from repro.cpu import CpuTimeModel, PAPER_BASELINES, run_cpu_reference
from repro.errors import ConfigError
from repro.mog import MoGVectorized
from repro.parallel import ParallelMoG
from repro.video.scenes import evaluation_scene


class TestCpuTimeModel:
    @pytest.mark.parametrize("key,expected", list(PAPER_BASELINES.items()))
    def test_reproduces_every_paper_anchor(self, key, expected):
        k, dtype, mode = key
        model = CpuTimeModel()
        assert model.paper_reference_time(k, dtype, mode) == pytest.approx(
            expected, rel=1e-9
        )

    def test_linear_in_workload(self):
        model = CpuTimeModel()
        t1 = model.time(1000, 10)
        t2 = model.time(2000, 10)
        t3 = model.time(1000, 20)
        assert t2 == pytest.approx(2 * t1)
        assert t3 == pytest.approx(2 * t1)

    def test_cycles_per_pixel_plausible(self):
        model = CpuTimeModel()
        cyc = model.cycles_per_pixel(3, "double")
        # 227.3 s for 450 full-HD frames at 2.5 GHz.
        expected = 227.3 * 2.5e9 / (FULL_HD[0] * FULL_HD[1] * PAPER_NUM_FRAMES)
        assert cyc == pytest.approx(expected)

    def test_component_count_monotone(self):
        model = CpuTimeModel()
        times = [model.time(1000, 1, k) for k in (1, 3, 5, 8)]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_workload_validation(self):
        with pytest.raises(ConfigError):
            CpuTimeModel().time(0, 10)
        with pytest.raises(ConfigError):
            CpuTimeModel().cycles_per_pixel(0)


class TestRunCpuReference:
    def test_timed_run(self, small_frames, params):
        result = run_cpu_reference(small_frames, params)
        assert result.num_frames == len(small_frames)
        assert result.elapsed_s > 0
        assert result.time_per_frame > 0
        assert result.megapixels_per_second > 0
        assert result.masks.shape == (len(small_frames), 24, 64)

    def test_variant_validation(self, small_frames):
        with pytest.raises(ConfigError):
            run_cpu_reference(small_frames, variant="bogus")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            run_cpu_reference([])


class TestParallelMoG:
    def test_matches_serial(self, params):
        video = evaluation_scene(height=32, width=40)
        frames = [video.frame(t) for t in range(5)]
        serial = MoGVectorized((32, 40), params, variant="nosort")
        expected = serial.apply_sequence(frames)
        with ParallelMoG((32, 40), params, workers=2) as par:
            got = par.apply_sequence(frames)
        assert np.array_equal(expected, got)

    def test_single_worker_matches(self, params):
        video = evaluation_scene(height=16, width=24)
        frames = [video.frame(t) for t in range(3)]
        serial = MoGVectorized((16, 24), params, variant="nosort")
        expected = serial.apply_sequence(frames)
        with ParallelMoG((16, 24), params, workers=1) as par:
            assert np.array_equal(expected, par.apply_sequence(frames))

    def test_validation(self, params):
        with pytest.raises(ConfigError):
            ParallelMoG((16, 16), params, workers=0)
        with pytest.raises(ConfigError):
            ParallelMoG((2, 16), params, workers=4)
        with pytest.raises(ConfigError):
            ParallelMoG((16, 16), params, variant="bogus")

    def test_frame_shape_checked(self, params):
        with ParallelMoG((16, 16), params, workers=2) as par:
            with pytest.raises(ConfigError):
                par.apply(np.zeros((8, 8), dtype=np.uint8))

    def test_closed_rejected(self, params):
        par = ParallelMoG((16, 16), params, workers=2)
        par.close()
        with pytest.raises(ConfigError):
            par.apply(np.zeros((16, 16), dtype=np.uint8))
        par.close()  # idempotent
