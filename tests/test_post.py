"""Morphological mask cleanup and component extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigError
from repro.post import MaskCleaner, clean_mask, connected_components


def blob_mask(h=24, w=24):
    mask = np.zeros((h, w), dtype=bool)
    mask[6:14, 6:14] = True
    return mask


class TestCleanMask:
    def test_removes_salt_noise(self):
        mask = blob_mask()
        mask[20, 20] = True  # isolated pixel
        out = clean_mask(mask, open_radius=1, close_radius=0)
        assert not out[20, 20]
        assert out[8:12, 8:12].all()  # blob interior survives

    def test_fills_pinholes(self):
        mask = blob_mask()
        mask[9, 9] = False
        out = clean_mask(mask, open_radius=0, close_radius=2)
        assert out[9, 9]

    def test_min_area_filter(self):
        mask = blob_mask()
        mask[20:22, 20:22] = True  # 4-pixel blob
        out = clean_mask(mask, open_radius=0, close_radius=0, min_area=10)
        assert not out[20:22, 20:22].any()
        assert out[8, 8]

    def test_empty_mask_stays_empty(self):
        out = clean_mask(np.zeros((16, 16), dtype=bool))
        assert not out.any()

    def test_input_untouched(self):
        mask = blob_mask()
        mask[20, 20] = True
        snapshot = mask.copy()
        clean_mask(mask)
        assert np.array_equal(mask, snapshot)

    def test_accepts_uint8(self):
        mask = blob_mask().astype(np.uint8) * 255
        out = clean_mask(mask, open_radius=1, close_radius=0)
        assert out.dtype == np.bool_
        assert out.any()

    def test_validation(self):
        with pytest.raises(ConfigError):
            clean_mask(np.zeros((2, 2, 2), dtype=bool))
        with pytest.raises(ConfigError):
            clean_mask(blob_mask(), min_area=-1)

    @given(arrays(np.bool_, (16, 16)))
    @settings(max_examples=40, deadline=None)
    def test_opening_only_removes(self, mask):
        out = clean_mask(mask, open_radius=1, close_radius=0)
        assert not (out & ~mask).any()  # opening is anti-extensive

    @given(arrays(np.bool_, (16, 16)))
    @settings(max_examples=40, deadline=None)
    def test_min_area_monotone(self, mask):
        small = clean_mask(mask, 0, 0, min_area=2)
        large = clean_mask(mask, 0, 0, min_area=6)
        assert not (large & ~small).any()


class TestConnectedComponents:
    def test_finds_blobs_largest_first(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[1:3, 1:3] = True          # area 4
        mask[10:16, 10:16] = True      # area 36
        comps = connected_components(mask)
        assert [c.area for c in comps] == [36, 4]
        assert comps[0].bbox == (10, 10, 16, 16)
        assert comps[0].centroid == (12.5, 12.5)

    def test_empty(self):
        assert connected_components(np.zeros((8, 8), dtype=bool)) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            connected_components(np.zeros(8, dtype=bool))


class TestMaskCleaner:
    def test_callable_and_sequence(self):
        cleaner = MaskCleaner(open_radius=1, close_radius=1, min_area=4)
        masks = [blob_mask(), blob_mask()]
        masks[0][0, 0] = True
        out = cleaner.apply_sequence(masks)
        assert out.shape == (2, 24, 24)
        assert not out[0, 0, 0]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigError):
            MaskCleaner().apply_sequence([])

    def test_validation(self):
        with pytest.raises(ConfigError):
            MaskCleaner(open_radius=-1)

    def test_improves_f1_on_noisy_scene(self, params):
        """End-to-end: hole-filling plus a small-area filter improves
        detection quality on the synthetic surveillance scene. (An
        opening is skipped deliberately: at this scale the pedestrians
        are only ~4 px wide, and an opening's erosion would eat them —
        structuring radii must stay below the smallest object size.)"""
        from repro import BackgroundSubtractor
        from repro.metrics.foreground import score_sequence
        from repro.video import surveillance_scene

        video = surveillance_scene(height=64, width=96)
        pairs = [video.frame_with_truth(t) for t in range(25)]
        bs = BackgroundSubtractor((64, 96), params, backend="cpu")
        masks, _ = bs.process([f for f, _ in pairs])
        truths = [t for _, t in pairs]
        raw = score_sequence(list(masks[15:]), truths[15:])
        cleaned = MaskCleaner(
            open_radius=0, close_radius=2, min_area=4
        ).apply_sequence(masks[15:])
        post = score_sequence(list(cleaned), truths[15:])
        assert post.f1 > raw.f1
