"""Parameter-sweep utilities."""

import pytest

from repro.bench.sweeps import SWEEPABLE, sweep_parameter
from repro.config import MoGParams
from repro.errors import ConfigError

FAST = dict(shape=(48, 64), num_frames=20, warmup=12)


class TestSweepParameter:
    def test_returns_curve(self):
        result = sweep_parameter("match_threshold", [2.0, 2.5, 3.0], **FAST)
        assert result.parameter == "match_threshold"
        assert len(result.points) == 3
        assert [p.value for p in result.points] == [2.0, 2.5, 3.0]
        for p in result.points:
            assert 0.0 <= p.f1 <= 1.0
            assert 0.0 <= p.foreground_rate <= 1.0

    def test_best_is_max_f1(self):
        result = sweep_parameter("background_weight", [0.1, 0.15, 0.3], **FAST)
        assert result.best.f1 == max(p.f1 for p in result.points)

    def test_rows_mark_best(self):
        result = sweep_parameter("learning_rate", [0.05, 0.1], **FAST)
        marks = [row[-1] for row in result.rows()]
        assert marks.count("<- best") == 1

    def test_num_gaussians_sweep_integer_values(self):
        result = sweep_parameter("num_gaussians", [1, 3], **FAST)
        assert len(result.points) == 2

    def test_extreme_threshold_hurts(self):
        """A wildly loose match band must cost recall (everything is
        swallowed by the background), giving the curve a real shape."""
        result = sweep_parameter("match_threshold", [2.5, 12.0], **FAST)
        tight, loose = result.points
        assert loose.score.recall < tight.score.recall

    def test_unknown_parameter(self):
        with pytest.raises(ConfigError):
            sweep_parameter("warp_size", [1, 2], **FAST)

    def test_empty_values(self):
        with pytest.raises(ConfigError):
            sweep_parameter("learning_rate", [], **FAST)

    def test_warmup_bounds(self):
        with pytest.raises(ConfigError):
            sweep_parameter(
                "learning_rate", [0.1], shape=(48, 64),
                num_frames=10, warmup=10,
            )

    def test_base_params_respected(self):
        base = MoGParams(num_gaussians=5, learning_rate=0.08, initial_sd=8.0)
        result = sweep_parameter(
            "match_threshold", [2.5], base_params=base, **FAST
        )
        assert len(result.points) == 1  # runs with K=5 without error

    def test_sweepable_fields_exist(self):
        params = MoGParams()
        for name in SWEEPABLE:
            assert hasattr(params, name)
