"""Array/RNG helper behaviour."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.utils import as_gray_frame, check_same_shape, rng_from_seed, to_uint8


class TestAsGrayFrame:
    def test_uint8_passthrough(self):
        frame = np.zeros((4, 4), dtype=np.uint8)
        assert as_gray_frame(frame) is frame

    def test_float_rounding(self):
        frame = np.array([[0.4, 254.6]])
        out = as_gray_frame(frame)
        assert out.dtype == np.uint8
        assert out.tolist() == [[0, 255]]

    def test_integer_conversion(self):
        out = as_gray_frame(np.array([[0, 255]], dtype=np.int64))
        assert out.dtype == np.uint8

    def test_rejects_3d(self):
        with pytest.raises(VideoError):
            as_gray_frame(np.zeros((2, 2, 3), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(VideoError):
            as_gray_frame(np.zeros((0, 4), dtype=np.uint8))

    def test_rejects_out_of_range_float(self):
        with pytest.raises(VideoError):
            as_gray_frame(np.array([[300.0]]))
        with pytest.raises(VideoError):
            as_gray_frame(np.array([[-1.0]]))

    def test_rejects_out_of_range_int(self):
        with pytest.raises(VideoError):
            as_gray_frame(np.array([[256]], dtype=np.int32))

    def test_rejects_bool(self):
        with pytest.raises(VideoError):
            as_gray_frame(np.array([[True]]))


class TestCheckSameShape:
    def test_ok(self):
        check_same_shape(np.zeros((2, 3)), np.ones((2, 3)))

    def test_mismatch(self):
        with pytest.raises(VideoError, match="equal shapes"):
            check_same_shape(np.zeros((2, 3)), np.zeros((3, 2)), "masks")


class TestToUint8:
    def test_bool_mask(self):
        out = to_uint8(np.array([True, False]))
        assert out.tolist() == [255, 0]
        assert out.dtype == np.uint8

    def test_nonzero_is_foreground(self):
        assert to_uint8(np.array([0, 1, 7])).tolist() == [0, 255, 255]


class TestRngFromSeed:
    def test_none_is_deterministic(self):
        a = rng_from_seed(None).random()
        b = rng_from_seed(None).random()
        assert a == b

    def test_int_seed(self):
        assert rng_from_seed(3).random() == rng_from_seed(3).random()
        assert rng_from_seed(3).random() != rng_from_seed(4).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_default_parameter(self):
        assert rng_from_seed(None, default=9).random() == rng_from_seed(9).random()
