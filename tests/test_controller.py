"""Closed-loop serving controller: pure policy, ladder construction,
quality-matrix gating, deterministic transition replay, overload
degradation + recovery, sibling isolation, sharded composition.

The replay tests use a *plug* stream — an injected stub pipeline
blocked on an event — to pin the worker while a target stream's whole
frame schedule is enqueued. With one worker, every window boundary
then sees an exact, replayable queue depth, so two runs of the same
schedule must produce byte-identical transition logs.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.config import (
    ControllerConfig,
    FaultPolicy,
    ServeConfig,
    TelemetryConfig,
)
from repro.core.stream import StreamResult, SurveillancePipeline
from repro.errors import CheckpointError, ConfigError
from repro.serve import ShardedStreamServer, StreamServer
from repro.serve.controller import (
    REASON_INTEGRITY,
    REASON_OVERLOAD,
    REASON_RECOVERED,
    Rung,
    WindowSignals,
    build_ladder,
    decide,
    load_quality_matrix,
    model_switch_tolerated,
    ensure_same_family,
)
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (24, 32)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="shard-process tests prefer fork workers"
)


def scene_frames(seed: int, num_frames: int = 10, shape=SHAPE):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=seed)
    return [video.frame(t) for t in range(num_frames)]


def wait_until(predicate, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class GatedPipeline:
    """Stub pipeline that blocks on a gate — the worker plug."""

    def __init__(self, gate: threading.Event):
        self.telemetry = MetricsRegistry(TelemetryConfig())
        self.gate = gate

    def step(self, frame: np.ndarray) -> StreamResult:
        assert self.gate.wait(60.0), "plug gate never opened"
        mask = np.zeros(frame.shape, dtype=bool)
        return StreamResult(
            frame_index=0, raw_mask=mask, mask=mask, tracks=[],
        )


# A synthetic matrix where "tolerant" allows the mog->dmsg switch and
# "fragile" does not (dmsg loses 0.4 F1).
FAKE_MATRIX = {
    "cells": [
        {"model": "mog", "scenario": "tolerant", "f1": 0.90},
        {"model": "dmsg", "scenario": "tolerant", "f1": 0.92},
        {"model": "mog", "scenario": "fragile", "f1": 0.90},
        {"model": "dmsg", "scenario": "fragile", "f1": 0.50},
    ]
}


def make_ladder(**kw):
    cfg = kw.pop("config", ControllerConfig())
    defaults = dict(
        base_level="F", base_model="mog", scenario="tolerant",
        matrix=FAKE_MATRIX, reconfigurable=True, guards_apply=True,
    )
    defaults.update(kw)
    return build_ladder(cfg, **defaults)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestControllerConfig:
    def test_defaults_valid(self):
        cfg = ControllerConfig()
        assert cfg.window_frames >= 1
        assert 0.0 <= cfg.queue_low < cfg.queue_high <= 1.0

    @pytest.mark.parametrize("kw", [
        {"window_frames": 0},
        {"queue_low": 0.8, "queue_high": 0.5},
        {"queue_high": 1.5},
        {"degrade_after": 0},
        {"recover_after": 0},
        {"level_ladder": ()},
        {"level_ladder": ("F", "F")},
        {"model_fallback": "nope"},
        {"guard_relax": 0},
        {"max_log": 0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            ControllerConfig(**kw)

    def test_replace(self):
        cfg = ControllerConfig().replace(window_frames=4)
        assert cfg.window_frames == 4
        with pytest.raises(ConfigError):
            cfg.replace(queue_low=0.9)

    def test_serve_config_carries_controller(self):
        serve = ServeConfig(controller=ControllerConfig())
        assert serve.controller is not None
        with pytest.raises(ConfigError):
            ServeConfig(controller="yes please")


# ----------------------------------------------------------------------
# Ladder construction
# ----------------------------------------------------------------------
class TestLadder:
    def test_full_ladder_shape(self):
        ladder = make_ladder()
        assert [r.kind for r in ladder] == [
            "baseline", "guards", "level", "level", "model", "shed",
        ]
        # Rungs accumulate: the level rungs keep the guard relaxation,
        # the shed rung keeps the deepest level and model.
        assert ladder[2].guard_relax == ladder[1].guard_relax
        assert [r.level for r in ladder] == ["F", "F", "D", "A", "A", "A"]
        assert ladder[-1].model == "dmsg" and ladder[-1].shed

    def test_non_reconfigurable_keeps_baseline_and_shed(self):
        ladder = make_ladder(reconfigurable=False)
        assert [r.kind for r in ladder] == ["baseline", "shed"]

    def test_guards_rung_gated(self):
        assert "guards" not in [
            r.kind for r in make_ladder(guards_apply=False)
        ]
        cfg = ControllerConfig(guard_relax=1)
        assert "guards" not in [
            r.kind for r in make_ladder(config=cfg)
        ]

    def test_base_level_outside_ladder_descends_all(self):
        ladder = make_ladder(base_level="G")
        assert [r.level for r in ladder if r.kind == "level"] == [
            "F", "D", "A",
        ]

    def test_base_level_mid_ladder_descends_rest(self):
        ladder = make_ladder(base_level="D")
        assert [r.level for r in ladder if r.kind == "level"] == ["A"]

    def test_model_rung_needs_tolerant_scenario(self):
        assert "model" not in [
            r.kind for r in make_ladder(scenario="fragile")
        ]
        assert "model" not in [r.kind for r in make_ladder(scenario=None)]
        assert "model" not in [r.kind for r in make_ladder(matrix=None)]

    def test_no_shed_rung_when_disallowed(self):
        cfg = ControllerConfig(allow_shed=False)
        assert "shed" not in [r.kind for r in make_ladder(config=cfg)]


# ----------------------------------------------------------------------
# Quality-matrix gating
# ----------------------------------------------------------------------
class TestMatrixGating:
    def test_committed_matrix_loads(self):
        matrix = load_quality_matrix()
        assert matrix is not None and matrix["cells"]

    def test_missing_matrix_is_none(self, tmp_path):
        assert load_quality_matrix(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_quality_matrix(str(bad)) is None

    def test_committed_matrix_verdicts(self):
        """The committed artifact's own numbers decide the model rung:
        dmsg holds F1 on the static control but collapses on the
        illumination step and the PTZ pan."""
        matrix = load_quality_matrix()
        margin = ControllerConfig().model_margin
        tol = {
            s: model_switch_tolerated(matrix, s, "mog", "dmsg", margin)
            for s in ("static", "jitter", "illumination", "ptz")
        }
        assert tol["static"] and tol["jitter"]
        assert not tol["illumination"] and not tol["ptz"]

    def test_unknown_scenario_never_switches(self):
        assert not model_switch_tolerated(
            FAKE_MATRIX, "underwater", "mog", "dmsg", 0.5
        )

    def test_ensure_same_family(self):
        ensure_same_family("mog", "mog")
        with pytest.raises(CheckpointError, match="model-family mismatch"):
            ensure_same_family("mog", "dmsg")


# ----------------------------------------------------------------------
# The pure policy
# ----------------------------------------------------------------------
class TestDecide:
    CFG = ControllerConfig(degrade_after=2, recover_after=2)
    LADDER = make_ladder(config=CFG)

    def sig(self, depth, capacity=8, **kw):
        return WindowSignals(
            queue_depth=depth, queue_capacity=capacity, **kw
        )

    def test_band_resets_streaks_and_holds(self):
        # capacity 8: high = ceil(.75*8) = 6, low = floor(.25*8) = 2.
        hot, cool, target, reason = decide(
            0, self.LADDER, self.sig(4), 5, 5, self.CFG
        )
        assert (hot, cool, target, reason) == (0, 0, 0, None)

    def test_degrade_needs_streak(self):
        hot, cool, target, reason = decide(
            0, self.LADDER, self.sig(8), 0, 0, self.CFG
        )
        assert (target, reason) == (0, None) and hot == 1
        hot, cool, target, reason = decide(
            0, self.LADDER, self.sig(8), hot, cool, self.CFG
        )
        assert (target, reason) == (1, REASON_OVERLOAD)
        assert (hot, cool) == (0, 0)  # streaks reset after a move

    def test_shed_activity_counts_hot(self):
        hot, _, _, _ = decide(
            0, self.LADDER, self.sig(0, shed_delta=3), 0, 0, self.CFG
        )
        assert hot == 1

    def test_recover_needs_streak(self):
        hot, cool, target, reason = decide(
            3, self.LADDER, self.sig(0), 0, 1, self.CFG
        )
        assert (target, reason) == (2, REASON_RECOVERED)
        assert (hot, cool) == (0, 0)

    def test_ladder_ends_hold(self):
        top = len(self.LADDER) - 1
        _, _, target, _ = decide(
            top, self.LADDER, self.sig(8), 9, 0, self.CFG
        )
        assert target == top
        _, _, target, _ = decide(
            0, self.LADDER, self.sig(0), 0, 9, self.CFG
        )
        assert target == 0

    def test_integrity_restores_guards_immediately(self):
        guards = [r.kind for r in self.LADDER].index("guards")
        hot, cool, target, reason = decide(
            guards, self.LADDER, self.sig(8, integrity_delta=1),
            0, 0, self.CFG,
        )
        assert (target, reason) == (guards - 1, REASON_INTEGRITY)
        assert (hot, cool) == (0, 0)

    def test_integrity_skips_guards_on_the_way_down(self):
        guards = [r.kind for r in self.LADDER].index("guards")
        _, _, target, reason = decide(
            guards - 1, self.LADDER,
            self.sig(8, integrity_delta=1), 9, 0, self.CFG,
        )
        assert target == guards + 1 and reason == REASON_OVERLOAD

    def test_integrity_skips_guards_on_the_way_up(self):
        guards = [r.kind for r in self.LADDER].index("guards")
        _, _, target, reason = decide(
            guards + 1, self.LADDER,
            self.sig(0, integrity_delta=1), 0, 9, self.CFG,
        )
        assert target == guards - 1 and reason == REASON_RECOVERED

    def test_pure_fold_is_replayable(self):
        """The whole trajectory is a fold over the window signals."""
        windows = [8, 8, 4, 8, 8, 0, 0, 0, 0, 4, 0, 0]

        def run():
            rung, hot, cool, trace = 0, 0, 0, []
            for depth in windows:
                hot, cool, target, reason = decide(
                    rung, self.LADDER, self.sig(depth),
                    hot, cool, self.CFG,
                )
                if target != rung:
                    trace.append((rung, target, reason))
                rung = target
            return trace

        first, second = run(), run()
        assert first == second
        assert first == [
            (0, 1, REASON_OVERLOAD),
            (1, 2, REASON_OVERLOAD),
            (2, 1, REASON_RECOVERED),
            (1, 0, REASON_RECOVERED),
        ]


# ----------------------------------------------------------------------
# The controlled thread server
# ----------------------------------------------------------------------
def plugged_run(serve, schedule_frames, scenario="static", extra=None):
    """Run one deterministic controlled-server schedule.

    A gated plug stream pins the single worker while ``cam0``'s whole
    schedule is enqueued; once the gate opens the worker alternates
    between the (empty) plug queue and cam0, so the queue depth at
    every window boundary is exact. Returns (log, status, results,
    counters) for cam0.
    """
    gate = threading.Event()
    server = StreamServer(SHAPE, serve=serve)
    try:
        server.add_stream("plug", pipeline=GatedPipeline(gate))
        server.add_stream("cam0", scenario=scenario)
        server.submit("plug", np.zeros(SHAPE))
        for frame in schedule_frames:
            server.submit("cam0", frame)
        gate.set()
        server.drain()
        if extra is not None:
            extra(server)
        log = server.controller_log()
        status = {s["stream"]: s for s in server.stream_status()}
        results = server.results("cam0")
        counters = server.snapshot()["counters"]
    finally:
        server.close(drain=False)
    return log, status, results, counters


class TestControlledServer:
    def controlled_serve(self, **ctrl_kw):
        defaults = dict(
            window_frames=8, degrade_after=1, recover_after=2,
            queue_high=0.5, queue_low=0.25,
        )
        defaults.update(ctrl_kw)
        return ServeConfig(
            workers=1, queue_capacity=64,
            controller=ControllerConfig(**defaults),
        )

    def test_transition_log_replays_identically(self):
        """The acceptance pin: the same stream schedule, run twice
        through real pipelines, yields byte-identical transition logs
        — depths, windows, rungs, reasons and all."""
        frames = scene_frames(seed=7, num_frames=48)
        runs = [
            plugged_run(self.controlled_serve(), frames) for _ in range(2)
        ]
        (log_a, status_a, results_a, _), (log_b, _, results_b, _) = runs
        assert log_a == log_b
        assert log_a, "schedule produced no transitions"
        # Depths at the boundaries are exact: 48 queued frames drain
        # through windows of 8, so hot (40, 32), band (24), cool
        # (16, 8) — two downshifts, then one recovery.
        assert [
            (e["action"], e["queue_depth"], e["reason"]) for e in log_a
        ] == [
            ("downshift", 40, REASON_OVERLOAD),
            ("downshift", 32, REASON_OVERLOAD),
            ("upshift", 8, REASON_RECOVERED),
        ]
        assert len(results_a) == len(results_b) == len(frames)
        assert status_a["cam0"]["controller_rung"] == 1

    def test_level_downshift_keeps_masks_well_formed(self):
        """Across the D/A downshifts every frame still emits a mask of
        the right geometry, in order."""
        frames = scene_frames(seed=9, num_frames=48)
        _, _, results, _ = plugged_run(self.controlled_serve(), frames)
        assert [r.frame_index for r in results] == list(range(48))
        assert all(r.mask.shape == SHAPE for r in results)

    def test_model_switch_preserves_continuity(self):
        """Descending to the model rung is a cross-family swap: fresh
        model state (counted), continuous frame indices, new family
        visible in status."""
        frames = scene_frames(seed=11, num_frames=48)
        serve = self.controlled_serve(
            window_frames=4, recover_after=99, allow_shed=False,
        )
        log, status, results, counters = plugged_run(serve, frames)
        assert status["cam0"]["model"] == "dmsg"
        assert status["cam0"]["level"] == "A"
        assert [r.frame_index for r in results] == list(range(48))
        assert counters["stream.cam0.controller.model_fresh_starts"] == 1
        kinds = [e["to"]["kind"] for e in log if e["action"] == "downshift"]
        assert kinds[-1] == "model"

    def test_untagged_stream_never_switches_model(self):
        frames = scene_frames(seed=13, num_frames=48)
        serve = self.controlled_serve(
            window_frames=4, recover_after=99, allow_shed=False,
        )
        log, status, _, _ = plugged_run(serve, frames, scenario=None)
        assert status["cam0"]["model"] == "mog"
        assert all(e["to"]["kind"] != "model" for e in log)

    def test_calm_sibling_masks_bit_identical_to_serial(self, params):
        """A degraded stream must not perturb its sibling: a stream
        that never crosses a watermark stays at rung 0 and its masks
        match an uninterrupted serial run."""
        hot_frames = scene_frames(seed=17, num_frames=48)
        calm_frames = scene_frames(seed=19, num_frames=12)
        serve = ServeConfig(
            workers=1, queue_capacity=64,
            controller=ControllerConfig(
                window_frames=8, degrade_after=1, recover_after=2,
                queue_high=0.5, queue_low=0.25,
            ),
        )
        gate = threading.Event()
        server = StreamServer(SHAPE, params=params, serve=serve)
        try:
            server.add_stream("plug", pipeline=GatedPipeline(gate))
            server.add_stream("hot", scenario="static")
            server.add_stream("calm", scenario="static")
            server.submit("plug", np.zeros(SHAPE))
            for frame in hot_frames:
                server.submit("hot", frame)
            gate.set()
            server.drain()
            # The calm stream arrives as a trickle after the burst:
            # one window per wave, fully drained, so its depth at
            # every boundary is 0.
            for frame in calm_frames:
                server.submit("calm", frame)
                server.drain()
            log = server.controller_log()
            got = server.results("calm")
            status = {s["stream"]: s for s in server.stream_status()}
        finally:
            server.close(drain=False)
        assert any(e["stream"] == "hot" for e in log)
        assert all(e["stream"] != "calm" for e in log)
        assert status["calm"]["controller_rung"] == 0
        pipe = SurveillancePipeline(SHAPE, params)
        for r, frame in zip(got, calm_frames):
            assert np.array_equal(r.mask, pipe.step(frame).mask)

    def test_overload_sheds_bounded_and_recovers(self):
        """The acceptance scenario: 2x overload with the controller on
        keeps every stream emitting (bounded shed, no unhandled
        BackpressureError), then a light load walks every stream back
        to baseline."""
        ctrl = ControllerConfig(
            window_frames=4, degrade_after=1, recover_after=2,
            queue_high=0.5, queue_low=0.25,
        )
        serve = ServeConfig(
            workers=2, queue_capacity=4, controller=ctrl,
        )
        streams = [f"cam{i}" for i in range(8)]
        frames = scene_frames(seed=23, num_frames=40, shape=SHAPE)
        server = StreamServer(SHAPE, serve=serve)
        try:
            for sid in streams:
                server.add_stream(sid, scenario="static")
            for frame in frames:  # the burst: 8 streams over 2 workers
                for sid in streams:
                    server.submit(sid, frame)
            server.drain()
            snap = server.snapshot()["counters"]
            shed = snap.get("server.frames_shed", 0)
            submitted = len(frames) * len(streams)
            assert shed < submitted // 2, "shed more than half the load"
            done = {
                s["stream"]: s["frames_done"]
                for s in server.stream_status()
            }
            assert all(done[sid] > 0 for sid in streams)
            assert snap["server.controller.transitions"] > 0
            # Load drops: a one-frame-at-a-time trickle (shed frames
            # during the burst leave frames_done unaligned with the
            # window, so fixed-size waves could skip every boundary).
            # Each boundary now sees an empty queue, so every stream
            # climbs back to rung 0.
            for _ in range(80):
                for sid in streams:
                    server.submit(sid, frames[-1])
                server.drain()
                status = server.stream_status()
                if all(s["controller_rung"] == 0 for s in status):
                    break
            status = {s["stream"]: s for s in server.stream_status()}
            for sid in streams:
                assert status[sid]["controller_rung"] == 0, sid
        finally:
            server.close(drain=False)

    def test_log_is_bounded(self):
        cfg = ControllerConfig(max_log=2)
        serve = ServeConfig(
            workers=1, queue_capacity=64,
            controller=cfg.replace(
                window_frames=4, degrade_after=1, recover_after=1,
                queue_high=0.5, queue_low=0.25,
            ),
        )
        frames = scene_frames(seed=29, num_frames=48)
        log, _, _, _ = plugged_run(serve, frames)
        assert len(log) <= 2

    def test_server_without_controller_has_empty_log(self):
        server = StreamServer(SHAPE, serve=ServeConfig(workers=1))
        try:
            assert server.controller_log() == []
            status = server.stream_status()
            assert status == []
        finally:
            server.close(drain=False)


# ----------------------------------------------------------------------
# Sharded composition
# ----------------------------------------------------------------------
@needs_fork
class TestShardedController:
    def test_controller_rides_into_shards_and_survives_sigkill(
        self, params, tmp_path
    ):
        """Controller + shard death compose: the burst degrades
        streams inside the shards, a SIGKILL rebalances the victims
        (scenario tags re-sent), and the merged transition log stays
        bounded — no oscillation storm."""
        ctrl = ControllerConfig(
            window_frames=4, degrade_after=1, recover_after=2,
            queue_high=0.5, queue_low=0.25,
        )
        streams = {
            f"cam{i}": scene_frames(seed=50 + i, num_frames=24)
            for i in range(4)
        }
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(
                shards=2, workers=1, queue_capacity=4,
                checkpoint_every=1, checkpoint_dir=str(tmp_path),
                controller=ctrl,
            ),
            fault_policy=FaultPolicy(
                policy="restart", stage_error="degrade"
            ),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid, scenario="static")
            for sid, frames in streams.items():
                for f in frames[:12]:
                    server.submit(sid, f)
            server.drain()

            by_shard: dict[int, list[str]] = {}
            for row in server.stream_status():
                by_shard.setdefault(row["shard"], []).append(row["stream"])
            victim = max(by_shard, key=lambda k: len(by_shard[k]))
            pid = server.shard_pids()[victim]
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            wait_until(lambda: server.shard_pids()[victim] is None)
            wait_until(lambda: all(
                r["failed"] is None for r in server.stream_status()
            ))

            for sid, frames in streams.items():
                for f in frames[12:]:
                    server.submit(sid, f)
            server.drain()

            log = server.controller_log()
            snap = server.snapshot()
            for entry in log:
                assert "shard" in entry
                assert entry["stream"] in streams
            # No oscillation: each stream commits at most one full
            # descent + one full climb per life (two lives for the
            # victims after the rebalance).
            ladder_span = 6
            per_stream: dict[str, int] = {}
            for entry in log:
                per_stream[entry["stream"]] = (
                    per_stream.get(entry["stream"], 0) + 1
                )
            for sid, count in per_stream.items():
                assert count <= 4 * ladder_span, (sid, count)
            assert snap["counters"].get("server.shard_deaths") == 1
            # Every stream kept emitting through the burst and the
            # shard death: results flow for all of them.
            for sid in streams:
                assert server.results(sid), sid

    def test_sharded_controller_log_merges_and_counts(self, params):
        """Under steady overload the per-shard governors degrade their
        streams and the gateway rolls the counters up per shard."""
        ctrl = ControllerConfig(
            window_frames=4, degrade_after=1, recover_after=99,
        )
        streams = {
            f"cam{i}": scene_frames(seed=70 + i, num_frames=20)
            for i in range(4)
        }
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(
                shards=2, workers=1, queue_capacity=4, controller=ctrl,
            ),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid, scenario="static")
            for sid, frames in streams.items():
                for f in frames:
                    server.submit(sid, f)
            server.drain()
            log = server.controller_log()
            snap = server.snapshot()
        if log:  # overload on tiny frames is scheduling-dependent
            total = sum(
                v for k, v in snap["counters"].items()
                if k.endswith("controller.transitions")
                and k.startswith("server.shard.")
            )
            assert total == len(log)
