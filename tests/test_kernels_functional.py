"""Every simulated kernel must produce bit-identical output to its
vectorized CPU variant — the library's central correctness contract."""

import numpy as np
import pytest

from repro import BackgroundSubtractor
from repro.config import RunConfig
from repro.core.variants import OptimizationLevel
from repro.video.scenes import evaluation_scene

SHAPE = (16, 64)


def _frames(n=8, seed=5):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1], seed=seed)
    return [video.frame(t) for t in range(n)]


@pytest.mark.parametrize("level", list("ABCDEFG"))
class TestSimMatchesCpu:
    def test_masks_identical(self, level, params):
        frames = _frames()
        rc = RunConfig(
            height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=4
        )
        sim = BackgroundSubtractor(SHAPE, params, level=level, run_config=rc)
        cpu = BackgroundSubtractor(SHAPE, params, level=level, backend="cpu")
        sim_masks, _ = sim.process(frames)
        cpu_masks, _ = cpu.process(frames)
        assert np.array_equal(sim_masks, cpu_masks), level

    def test_state_identical(self, level, params):
        frames = _frames()
        rc = RunConfig(
            height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=4
        )
        sim = BackgroundSubtractor(SHAPE, params, level=level, run_config=rc)
        sim.process(frames)
        from repro.mog import MoGVectorized

        variant = OptimizationLevel.parse(level).spec.mog_variant
        cpu = MoGVectorized(SHAPE, params, variant=variant)
        cpu.apply_sequence(frames)
        st_sim = sim._pipeline.state()
        assert np.array_equal(st_sim.w, cpu.state.w)
        assert np.array_equal(st_sim.m, cpu.state.m)
        assert np.array_equal(st_sim.sd, cpu.state.sd)


@pytest.mark.parametrize("level", ["A", "D", "F"])
@pytest.mark.parametrize("dtype", ["double", "float"])
def test_dtypes_match_cpu(level, dtype, params):
    frames = _frames(6)
    rc = RunConfig(height=SHAPE[0], width=SHAPE[1], dtype=dtype)
    sim = BackgroundSubtractor(SHAPE, params, level=level, run_config=rc)
    cpu = BackgroundSubtractor(
        SHAPE, params, level=level, backend="cpu", run_config=rc
    )
    a, _ = sim.process(frames)
    b, _ = cpu.process(frames)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("level", ["A", "F", "G"])
def test_five_gaussians_match_cpu(level, params):
    p5 = params.replace(num_gaussians=5)
    frames = _frames(6)
    rc = RunConfig(
        height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=3
    )
    sim = BackgroundSubtractor(SHAPE, p5, level=level, run_config=rc)
    cpu = BackgroundSubtractor(SHAPE, p5, level=level, backend="cpu")
    a, _ = sim.process(frames)
    b, _ = cpu.process(frames)
    assert np.array_equal(a, b)


def test_partial_tile_handled(params):
    """A frame size that does not divide into whole tiles must still be
    processed exactly (tail block is partially masked)."""
    shape = (10, 30)  # 300 px, tile 128 -> 2 full + 1 partial block
    video = evaluation_scene(height=shape[0], width=shape[1])
    frames = [video.frame(t) for t in range(5)]
    rc = RunConfig(height=shape[0], width=shape[1], tile_pixels=128, frame_group=2)
    sim = BackgroundSubtractor(shape, params, level="G", run_config=rc)
    cpu = BackgroundSubtractor(shape, params, level="G", backend="cpu")
    a, _ = sim.process(frames)
    b, _ = cpu.process(frames)
    assert np.array_equal(a, b)


def test_group_tail_handled(params):
    """Frame count not divisible by the group size: the tail group is
    processed with a short kernel."""
    frames = _frames(7)
    rc = RunConfig(height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=4)
    sim = BackgroundSubtractor(SHAPE, params, level="G", run_config=rc)
    cpu = BackgroundSubtractor(SHAPE, params, level="G", backend="cpu")
    a, _ = sim.process(frames)
    b, _ = cpu.process(frames)
    assert a.shape[0] == 7
    assert np.array_equal(a, b)
