"""Shared-memory buffer semantics and bank-conflict accounting."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.gpusim.sharedmem import SharedBuffer, bank_conflict_extra_cycles

WARP = 32
BANKS = 32


def _extra(indices, itemsize=4, active=None):
    indices = np.asarray(indices, dtype=np.int64)
    if active is None:
        active = np.ones(indices.shape, dtype=bool)
    return bank_conflict_extra_cycles(indices, active, itemsize, WARP, BANKS)


class TestBankConflicts:
    def test_contiguous_4byte_conflict_free(self):
        assert _extra(np.arange(WARP)) == 0

    def test_broadcast_is_free(self):
        """All lanes reading the SAME word is a broadcast, not a conflict."""
        assert _extra(np.zeros(WARP, dtype=np.int64)) == 0

    def test_stride_two_conflicts(self):
        # stride 2 words: lanes pair up on 16 banks -> 2-way conflict.
        assert _extra(np.arange(WARP) * 2) == 1

    def test_stride_32_worst_case(self):
        # Every lane hits bank 0 with a distinct word: 32-way serialised.
        assert _extra(np.arange(WARP) * 32) == 31

    def test_8byte_contiguous_two_phases_free(self):
        # Doubles: two 4-byte phases, each contiguous -> no extra.
        assert _extra(np.arange(WARP), itemsize=8) == 0

    def test_8byte_stride_conflicts_counted_per_half_warp(self):
        # Stride 16 doubles: each half-warp's 16 lanes hit banks {0, 1}
        # with 16 distinct words each -> 16-way serialisation per group.
        extra = _extra(np.arange(WARP) * 16, itemsize=8)
        assert extra == 2 * 15

    def test_unsupported_width_rejected(self):
        with pytest.raises(MemoryModelError):
            _extra(np.arange(WARP), itemsize=16)

    def test_inactive_lanes_ignored(self):
        idx = np.arange(WARP) * 32
        active = np.zeros(WARP, dtype=bool)
        active[:2] = True
        assert _extra(idx, active=active) == 1

    def test_multiple_warps_summed(self):
        idx = np.concatenate([np.arange(WARP), np.arange(WARP) * 2])
        assert _extra(idx) == 0 + 1

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(MemoryModelError):
            _extra(np.zeros(31, dtype=np.int64))


class TestSharedBuffer:
    def _buf(self, blocks=2, elems=8):
        return SharedBuffer("x", blocks, elems, np.dtype(np.float64))

    def test_properties(self):
        buf = self._buf()
        assert buf.elems_per_block == 8
        assert buf.bytes_per_block == 64
        assert buf.itemsize == 8

    def test_gather_scatter_roundtrip(self):
        buf = self._buf()
        blocks = np.array([0, 0, 1, 1])
        idx = np.array([0, 1, 0, 1])
        mask = np.ones(4, dtype=bool)
        buf.scatter(blocks, idx, np.array([1.0, 2.0, 3.0, 4.0]), mask)
        out = buf.gather(blocks, idx, mask)
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_scatter_respects_mask(self):
        buf = self._buf()
        blocks = np.zeros(2, dtype=np.int64)
        idx = np.array([0, 1])
        mask = np.array([True, False])
        buf.scatter(blocks, idx, np.array([9.0, 9.0]), mask)
        assert buf.data[0, 0] == 9.0 and buf.data[0, 1] == 0.0

    def test_out_of_bounds_rejected(self):
        buf = self._buf(elems=4)
        with pytest.raises(MemoryModelError):
            buf.gather(
                np.zeros(2, dtype=np.int64), np.array([0, 4]),
                np.ones(2, dtype=bool),
            )

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryModelError):
            SharedBuffer("x", 1, 0, np.dtype(np.float64))
