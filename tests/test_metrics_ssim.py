"""SSIM and MS-SSIM against their defining properties."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import ms_ssim, ssim
from repro.metrics.ms_ssim import (
    DEFAULT_WEIGHTS,
    min_side_for_scales,
    ms_ssim_sequence,
)
from repro.metrics.ssim import _gaussian_window, ssim_and_cs


def _test_image(rng, side=64):
    base = np.linspace(30, 220, side)[None, :] * np.ones((side, 1))
    return base + rng.normal(0, 8, (side, side))


class TestGaussianWindow:
    def test_normalised(self):
        w = _gaussian_window()
        assert w.sum() == pytest.approx(1.0)
        assert w.shape == (11, 11)

    def test_symmetric_peak_centre(self):
        w = _gaussian_window()
        assert np.array_equal(w, w.T)
        assert w[5, 5] == w.max()


class TestSsim:
    def test_identical_is_one(self, rng):
        img = _test_image(rng)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_symmetric(self, rng):
        a, b = _test_image(rng), _test_image(rng)
        assert ssim(a, b) == pytest.approx(ssim(b, a))

    def test_bounded(self, rng):
        a = _test_image(rng)
        b = 255.0 - a  # inverted: heavily dissimilar
        value = ssim(a, b)
        assert -1.0 <= value < 0.5

    def test_monotone_in_noise(self, rng):
        img = _test_image(rng)
        scores = [
            ssim(img, np.clip(img + rng.normal(0, sd, img.shape), 0, 255))
            for sd in (2, 8, 32)
        ]
        assert scores[0] > scores[1] > scores[2]

    def test_constant_shift_penalised_by_luminance_only(self, rng):
        img = _test_image(rng)
        shifted = np.clip(img + 20.0, 0, 255)
        s, cs = ssim_and_cs(img, shifted)
        assert cs > s  # structure preserved, luminance differs

    def test_too_small_rejected(self):
        with pytest.raises(MetricError):
            ssim(np.zeros((8, 8)), np.zeros((8, 8)))

    def test_shape_mismatch(self):
        with pytest.raises(MetricError):
            ssim(np.zeros((16, 16)), np.zeros((16, 17)))

    def test_non_2d_rejected(self):
        with pytest.raises(MetricError):
            ssim(np.zeros((4, 16, 16)), np.zeros((4, 16, 16)))

    def test_data_range_validated(self, rng):
        img = _test_image(rng, 16)
        with pytest.raises(MetricError):
            ssim(img, img, data_range=-1.0)


class TestMsSsim:
    def test_identical_is_one(self, rng):
        img = _test_image(rng, 192)
        assert ms_ssim(img, img) == pytest.approx(1.0)

    def test_min_side(self):
        assert min_side_for_scales(5) == 176
        assert min_side_for_scales(1) == 11

    def test_too_small_for_five_scales(self, rng):
        img = _test_image(rng, 64)
        with pytest.raises(MetricError, match="too small"):
            ms_ssim(img, img)

    def test_fewer_scales_for_small_images(self, rng):
        img = _test_image(rng, 64)
        value = ms_ssim(img, img, weights=DEFAULT_WEIGHTS[:3])
        assert value == pytest.approx(1.0)

    def test_monotone_in_noise(self, rng):
        img = _test_image(rng, 96)
        w = DEFAULT_WEIGHTS[:3]
        a = ms_ssim(img, np.clip(img + rng.normal(0, 3, img.shape), 0, 255), weights=w)
        b = ms_ssim(img, np.clip(img + rng.normal(0, 30, img.shape), 0, 255), weights=w)
        assert a > b

    def test_binary_mask_input(self, rng):
        """Table IV's use case: 0/255 foreground masks."""
        mask = (rng.random((96, 96)) < 0.2).astype(np.uint8) * 255
        assert ms_ssim(mask, mask, weights=DEFAULT_WEIGHTS[:3]) == pytest.approx(1.0)
        flipped = mask.copy()
        flipped[:10] = 255 - flipped[:10]
        assert ms_ssim(mask, flipped, weights=DEFAULT_WEIGHTS[:3]) < 0.99

    def test_empty_weights_rejected(self, rng):
        img = _test_image(rng, 32)
        with pytest.raises(MetricError):
            ms_ssim(img, img, weights=())

    def test_negative_weights_rejected(self, rng):
        img = _test_image(rng, 32)
        with pytest.raises(MetricError):
            ms_ssim(img, img, weights=(0.5, -0.5))

    def test_shape_mismatch(self):
        with pytest.raises(MetricError):
            ms_ssim(np.zeros((192, 192)), np.zeros((192, 191)))


class TestMsSsimSequence:
    def test_mean_over_frames(self, rng):
        img = _test_image(rng, 96)
        noisy = np.clip(img + rng.normal(0, 10, img.shape), 0, 255)
        w = DEFAULT_WEIGHTS[:3]
        seq = ms_ssim_sequence([img, img], [img, noisy], weights=w)
        expected = (1.0 + ms_ssim(img, noisy, weights=w)) / 2.0
        assert seq == pytest.approx(expected)

    def test_length_mismatch(self, rng):
        img = _test_image(rng, 96)
        with pytest.raises(MetricError):
            ms_ssim_sequence([img], [img, img])

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            ms_ssim_sequence([], [])
