"""Validation behaviour of MoGParams / RunConfig / dtype resolution."""

import numpy as np
import pytest

from repro.config import (
    FULL_HD,
    PAPER_NUM_FRAMES,
    MoGParams,
    RunConfig,
    resolve_dtype,
)
from repro.errors import ConfigError


class TestResolveDtype:
    def test_cuda_names(self):
        assert resolve_dtype("double") == np.dtype(np.float64)
        assert resolve_dtype("float") == np.dtype(np.float32)

    def test_numpy_names(self):
        assert resolve_dtype("float64") == np.dtype(np.float64)
        assert resolve_dtype(np.float32) == np.dtype(np.float32)
        assert resolve_dtype(np.dtype(np.float64)) == np.dtype(np.float64)

    @pytest.mark.parametrize("bad", ["int32", "float16", int, "complex128"])
    def test_rejects_non_float32_64(self, bad):
        with pytest.raises(ConfigError):
            resolve_dtype(bad)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_dtype("not-a-dtype")


class TestMoGParams:
    def test_defaults_valid(self):
        p = MoGParams()
        assert p.num_gaussians == 3
        assert 0 < p.learning_rate < 1

    @pytest.mark.parametrize("k", [0, -1, 9])
    def test_num_gaussians_bounds(self, k):
        with pytest.raises(ConfigError):
            MoGParams(num_gaussians=k)

    @pytest.mark.parametrize("lr", [0.0, 1.0, -0.1, 2.0])
    def test_learning_rate_bounds(self, lr):
        with pytest.raises(ConfigError):
            MoGParams(learning_rate=lr)

    @pytest.mark.parametrize("g1", [0.0, -2.5])
    def test_match_threshold_positive(self, g1):
        with pytest.raises(ConfigError):
            MoGParams(match_threshold=g1)

    @pytest.mark.parametrize("g2", [0.0, 1.0, 1.5])
    def test_background_weight_bounds(self, g2):
        with pytest.raises(ConfigError):
            MoGParams(background_weight=g2)

    def test_sd_fields_positive(self):
        with pytest.raises(ConfigError):
            MoGParams(initial_sd=0.0)
        with pytest.raises(ConfigError):
            MoGParams(sd_floor=-1.0)

    def test_initial_weight_bounds(self):
        with pytest.raises(ConfigError):
            MoGParams(initial_weight=0.0)
        MoGParams(initial_weight=1.0)  # inclusive upper bound

    def test_replace(self):
        p = MoGParams().replace(num_gaussians=5)
        assert p.num_gaussians == 5
        assert MoGParams().num_gaussians == 3  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            MoGParams().num_gaussians = 4


class TestRunConfig:
    def test_defaults(self):
        rc = RunConfig()
        assert rc.num_pixels == rc.height * rc.width
        assert rc.np_dtype == np.dtype(np.float64)
        assert rc.itemsize == 8

    def test_float_itemsize(self):
        assert RunConfig(dtype="float").itemsize == 4

    @pytest.mark.parametrize("h,w", [(0, 10), (10, 0), (-1, 5)])
    def test_geometry_validation(self, h, w):
        with pytest.raises(ConfigError):
            RunConfig(height=h, width=w)

    @pytest.mark.parametrize("tpb", [0, 31, 100, -32])
    def test_threads_per_block_warp_multiple(self, tpb):
        with pytest.raises(ConfigError):
            RunConfig(threads_per_block=tpb)

    @pytest.mark.parametrize("tile", [0, 100, -64])
    def test_tile_pixels_validation(self, tile):
        with pytest.raises(ConfigError):
            RunConfig(tile_pixels=tile)

    def test_frame_group_positive(self):
        with pytest.raises(ConfigError):
            RunConfig(frame_group=0)

    def test_gaussian_bytes_matches_paper(self):
        """The paper quotes 149 MB for full HD, 3 components, double."""
        rc = RunConfig(height=FULL_HD[0], width=FULL_HD[1])
        assert rc.gaussian_bytes(3) == 1080 * 1920 * 3 * 3 * 8
        assert rc.gaussian_bytes(3) / 2**20 == pytest.approx(142.4, abs=1.0)

    def test_paper_constants(self):
        assert FULL_HD == (1080, 1920)
        assert PAPER_NUM_FRAMES == 450

    def test_replace(self):
        rc = RunConfig().replace(dtype="float")
        assert rc.dtype == "float"
