"""The streaming surveillance pipeline."""

import numpy as np
import pytest

from repro.core.stream import SurveillancePipeline
from repro.errors import ConfigError
from repro.track import TrackerParams
from repro.video.scenes import evaluation_scene

SHAPE = (64, 96)


class TestStep:
    def test_result_fields(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=2)
        result = pipe.step(video.frame(0))
        assert result.frame_index == 0
        assert result.raw_mask.shape == SHAPE
        assert result.mask.shape == SHAPE
        assert result.tracks == []  # warm-up window
        assert 0.0 <= result.foreground_rate <= 1.0

    def test_tracker_gated_by_warmup(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=5)
        for t in range(5):
            pipe.step(video.frame(t))
        assert pipe.tracker.tracks == []  # nothing fed yet
        pipe.step(video.frame(5))
        # From frame 5 on the tracker sees blobs (tentative at least).
        assert pipe.frame_index == 5

    def test_cleanup_applied(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=0)
        for t in range(20):
            result = pipe.step(video.frame(t))
        # Cleaned mask never has isolated single pixels below min_area.
        from repro.post import connected_components

        comps = connected_components(result.mask)
        assert all(c.area >= 6 for c in comps)

    def test_run_and_summary(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=15,
            tracker_params=TrackerParams(max_distance=20.0, min_hits=3,
                                         min_area=6),
        )
        results = pipe.run(video.frames(40))
        assert len(results) == 40
        assert "confirmed tracks" in pipe.summary()
        # The scene's walker is tracked.
        confirmed = [t for t in pipe.tracker.tracks if t.confirmed]
        assert confirmed

    def test_empty_run_rejected(self, params):
        with pytest.raises(ConfigError):
            SurveillancePipeline(SHAPE, params).run([])

    def test_negative_warmup_rejected(self, params):
        with pytest.raises(ConfigError):
            SurveillancePipeline(SHAPE, params, warmup_frames=-1)

    def test_sim_backend_supported(self, params):
        video = evaluation_scene(height=24, width=32)
        pipe = SurveillancePipeline(
            (24, 32), params, backend="sim", level="D", warmup_frames=0
        )
        pipe.step(video.frame(0))
        report = pipe.subtractor.report()
        assert report.num_frames == 1
