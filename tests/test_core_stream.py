"""The streaming surveillance pipeline."""

import numpy as np
import pytest

from repro.config import TelemetryConfig
from repro.core.stream import SurveillancePipeline
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry
from repro.track import TrackerParams
from repro.video.scenes import evaluation_scene

SHAPE = (64, 96)


class _Boom:
    """A cleaner stand-in that fails on demand."""

    def __init__(self, inner):
        self.inner = inner
        self.armed = False

    def __call__(self, mask):
        if self.armed:
            raise RuntimeError("morphology exploded")
        return self.inner(mask)


class TestStep:
    def test_result_fields(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=2)
        result = pipe.step(video.frame(0))
        assert result.frame_index == 0
        assert result.raw_mask.shape == SHAPE
        assert result.mask.shape == SHAPE
        assert result.tracks == []  # warm-up window
        assert 0.0 <= result.foreground_rate <= 1.0

    def test_tracker_gated_by_warmup(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=5)
        for t in range(5):
            pipe.step(video.frame(t))
        assert pipe.tracker.tracks == []  # nothing fed yet
        pipe.step(video.frame(5))
        # From frame 5 on the tracker sees blobs (tentative at least).
        assert pipe.frame_index == 5

    def test_cleanup_applied(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=0)
        for t in range(20):
            result = pipe.step(video.frame(t))
        # Cleaned mask never has isolated single pixels below min_area.
        from repro.post import connected_components

        comps = connected_components(result.mask)
        assert all(c.area >= 6 for c in comps)

    def test_run_and_summary(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=15,
            tracker_params=TrackerParams(max_distance=20.0, min_hits=3,
                                         min_area=6),
        )
        results = pipe.run(video.frames(40))
        assert len(results) == 40
        assert "confirmed tracks" in pipe.summary()
        # The scene's walker is tracked.
        confirmed = [t for t in pipe.tracker.tracks if t.confirmed]
        assert confirmed

    def test_empty_run_rejected(self, params):
        with pytest.raises(ConfigError):
            SurveillancePipeline(SHAPE, params).run([])

    def test_negative_warmup_rejected(self, params):
        with pytest.raises(ConfigError):
            SurveillancePipeline(SHAPE, params, warmup_frames=-1)

    def test_sim_backend_supported(self, params):
        video = evaluation_scene(height=24, width=32)
        pipe = SurveillancePipeline(
            (24, 32), params, backend="sim", level="D", warmup_frames=0
        )
        pipe.step(video.frame(0))
        report = pipe.subtractor.report()
        assert report.num_frames == 1


class TestStepFaultSafety:
    def test_bad_shape_rejected_before_state_change(self, params):
        pipe = SurveillancePipeline(SHAPE, params)
        with pytest.raises(ConfigError):
            pipe.step(np.zeros((8, 8), dtype=np.uint8))
        assert pipe.frame_index == -1

    def test_bad_dtype_rejected(self, params):
        pipe = SurveillancePipeline(SHAPE, params)
        with pytest.raises(ConfigError):
            pipe.step(np.full(SHAPE, "x", dtype=object))
        with pytest.raises(ConfigError):
            pipe.step(np.full(SHAPE, np.nan))
        assert pipe.frame_index == -1

    def test_exception_mid_step_does_not_desync_index(self, params):
        """The original bug: frame_index incremented before the stages
        ran, so one mid-step exception permanently shifted the warm-up
        window. The index must commit only on success."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=2)
        pipe.step(video.frame(0))
        pipe.cleaner = boom = _Boom(pipe.cleaner)
        boom.armed = True
        with pytest.raises(RuntimeError):
            pipe.step(video.frame(1))
        assert pipe.frame_index == 0  # uncommitted
        boom.armed = False
        result = pipe.step(video.frame(1))  # same frame retried
        assert result.frame_index == 1
        assert pipe.telemetry.counter("stream.stage_errors").value == 1

    def test_degrade_serves_last_good_mask(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="degrade"
        )
        good = pipe.step(video.frame(0))
        pipe.cleaner = boom = _Boom(pipe.cleaner)
        boom.armed = True
        result = pipe.step(video.frame(1))
        assert result.degraded
        assert result.error is not None and "exploded" in result.error
        assert result.frame_index == 1  # the frame was consumed
        assert np.array_equal(result.mask, good.mask)
        assert result.tracks == []
        snap = result.telemetry
        assert snap["counters"]["stream.frames_degraded"] == 1
        boom.armed = False
        assert pipe.step(video.frame(2)).frame_index == 2

    def test_degrade_on_first_frame_serves_all_background(self, params):
        """Regression: a stage failing before any frame had succeeded
        used to leave ``degrade`` nothing to fall back on (the old code
        either raised or, via the serving layer, handed out a ``None``
        mask). The degraded result must always carry a real
        all-background mask of the configured shape."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="degrade"
        )
        pipe.cleaner = boom = _Boom(pipe.cleaner)
        boom.armed = True
        result = pipe.step(video.frame(0))  # frame 0 fails
        assert result.degraded
        assert result.mask is not None and result.raw_mask is not None
        assert result.mask.shape == SHAPE
        assert result.mask.dtype == np.bool_
        assert not result.mask.any()  # all background
        assert result.frame_index == 0
        assert result.telemetry["counters"]["stream.frames_degraded"] == 1
        # The stream recovers the moment the stage heals.
        boom.armed = False
        good = pipe.step(video.frame(1))
        assert not good.degraded
        assert good.frame_index == 1

    def test_degrade_every_frame_from_start_keeps_serving(self, params):
        """Fault injection: every frame fails from frame 0 — the stream
        keeps serving all-background masks instead of crashing the
        consumer on ``None``."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, on_error="degrade")
        pipe.cleaner = boom = _Boom(pipe.cleaner)
        boom.armed = True
        for t in range(3):
            result = pipe.step(video.frame(t))
            assert result.degraded
            assert result.mask.shape == SHAPE
            assert not result.mask.any()
        assert pipe.frame_index == 2
        snap = pipe.telemetry.snapshot()
        assert snap["counters"]["stream.frames_degraded"] == 3

    def test_invalid_on_error_rejected(self, params):
        with pytest.raises(ConfigError):
            SurveillancePipeline(SHAPE, params, on_error="ignore")


class TestInvalidFrameDegrade:
    """A malformed frame from a source (an npz file with one NaN frame,
    a camera that changed resolution) is a stage failure like any
    other: under ``degrade`` the stream serves the last good mask and
    keeps going instead of dying mid-sequence."""

    def test_nan_frame_degrades_and_recovers(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="degrade"
        )
        good = pipe.step(video.frame(0))
        result = pipe.step(np.full(SHAPE, np.nan))
        assert result.degraded
        assert result.frame_index == 1  # the frame was consumed
        assert np.array_equal(result.mask, good.mask)
        snap = pipe.telemetry.snapshot()["counters"]
        assert snap["stream.frames_invalid"] == 1
        assert snap["stream.stage_errors"] == 1
        # The stream recovers on the next valid frame.
        after = pipe.step(video.frame(2))
        assert not after.degraded
        assert after.frame_index == 2

    def test_shape_drift_degrades(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="degrade"
        )
        pipe.step(video.frame(0))
        result = pipe.step(np.zeros((8, 8), dtype=np.uint8))
        assert result.degraded
        assert result.mask.shape == SHAPE  # served mask keeps the
        # configured geometry, never the drifted one
        assert (
            pipe.telemetry.snapshot()["counters"]["stream.frames_invalid"]
            == 1
        )

    def test_raise_policy_still_raises(self, params):
        # The default contract is unchanged: invalid input is an error.
        pipe = SurveillancePipeline(SHAPE, params, on_error="raise")
        with pytest.raises(ConfigError):
            pipe.step(np.full(SHAPE, np.inf))
        assert pipe.frame_index == -1  # uncommitted
        assert (
            pipe.telemetry.snapshot()["counters"]["stream.frames_invalid"]
            == 1
        )


class TestStreamTelemetry:
    def test_counters_and_stage_latencies(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(SHAPE, params, warmup_frames=2)
        results = pipe.run(video.frames(5))
        snap = results[-1].telemetry
        assert snap["counters"]["stream.frames_total"] == 5
        assert snap["histograms"]["stream.subtract_s"]["count"] == 5
        assert snap["histograms"]["stream.clean_s"]["count"] == 5
        # Tracker only runs after the 2-frame warm-up window.
        assert snap["histograms"]["stream.track_s"]["count"] == 3
        assert snap["histograms"]["stream.step_s"]["total_s"] > 0

    def test_shared_registry(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        reg = MetricsRegistry()
        pipe = SurveillancePipeline(SHAPE, params, telemetry=reg)
        pipe.step(video.frame(0))
        assert reg.counter("stream.frames_total").value == 1

    def test_disabled_telemetry_empty_snapshot(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = SurveillancePipeline(
            SHAPE, params,
            telemetry=MetricsRegistry(TelemetryConfig(enabled=False)),
        )
        result = pipe.step(video.frame(0))
        assert result.telemetry == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
