"""RunReport JSON serialisation and the CLI hook."""

import json

import pytest

from repro import BackgroundSubtractor
from repro.cli import main
from repro.video.scenes import evaluation_scene

SHAPE = (16, 32)


@pytest.fixture()
def report(params):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    bs = BackgroundSubtractor(SHAPE, params, level="D")
    _, report = bs.process([video.frame(t) for t in range(4)])
    return report


class TestToDict:
    def test_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["level"] == "D"
        assert payload["num_frames"] == 4
        assert len(payload["launches"]) == 4
        assert 0 <= payload["metrics"]["branch_efficiency"] <= 1

    def test_launch_rows_named(self, report):
        names = [ln["name"] for ln in report.to_dict()["launches"]]
        assert all(name.startswith("mog_nosort") for name in names)

    def test_save_json(self, report, tmp_path):
        path = tmp_path / "report.json"
        report.save_json(path)
        payload = json.loads(path.read_text())
        assert payload["dtype"] == "double"


class TestCliReportJson:
    def test_writes_file(self, tmp_path):
        clip = tmp_path / "clip.npz"
        main(["synthesize", str(clip), "--frames", "4",
              "--height", "24", "--width", "24"])
        out = tmp_path / "masks.npz"
        rpt = tmp_path / "report.json"
        code = main(["subtract", str(clip), str(out),
                     "--backend", "sim", "--report-json", str(rpt)])
        assert code == 0
        payload = json.loads(rpt.read_text())
        assert payload["num_frames"] == 4

    def test_cpu_backend_errors(self, tmp_path, capsys):
        clip = tmp_path / "clip.npz"
        main(["synthesize", str(clip), "--frames", "3",
              "--height", "24", "--width", "24"])
        code = main(["subtract", str(clip), str(tmp_path / "m.npz"),
                     "--report-json", str(tmp_path / "r.json")])
        assert code == 2
        assert "sim" in capsys.readouterr().err
