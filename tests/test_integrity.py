"""Mixture-state integrity guards: invariant detection, surgical
repair, and the policy wiring through the model and stream layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FaultPlan, IntegrityPolicy, MoGParams
from repro.core.stream import SurveillancePipeline
from repro.errors import ConfigError, IntegrityError
from repro.faults import (
    FaultInjector,
    IntegrityGuard,
    find_corrupt_pixels,
    repair_pixels,
)
from repro.mog import MoGVectorized
from repro.mog.params import MixtureState
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (16, 24)
POLICY = IntegrityPolicy(mode="detect")


def converged_state(params: MoGParams, frames=6) -> MixtureState:
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    model = MoGVectorized(SHAPE, params)
    for t in range(frames):
        model.apply(video.frame(t))
    return model.state


class TestFindCorruptPixels:
    def test_clean_state_is_clean(self, params):
        report = find_corrupt_pixels(converged_state(params), params, POLICY)
        assert report.clean
        assert report.corrupt.size == 0
        assert report.nonfinite == report.weight == 0
        assert report.sd == report.mean == 0

    def test_nan_flagged(self, params):
        state = converged_state(params)
        state.w[0, 7] = np.nan
        report = find_corrupt_pixels(state, params, POLICY)
        assert 7 in report.corrupt
        assert report.nonfinite == 1

    def test_weight_above_one_flagged(self, params):
        state = converged_state(params)
        state.w[1, 3] = 1.5
        report = find_corrupt_pixels(state, params, POLICY)
        assert 3 in report.corrupt
        assert report.weight >= 1

    def test_zero_weight_sum_flagged(self, params):
        state = converged_state(params)
        state.w[:, 5] = 0.0
        report = find_corrupt_pixels(state, params, POLICY)
        assert 5 in report.corrupt
        assert report.weight >= 1

    def test_sd_bounds_flagged(self, params):
        state = converged_state(params)
        state.sd[0, 2] = 0.01  # below the clamp floor
        state.sd[1, 9] = 1e12  # exponent-bit blow-up past sd_cap
        report = find_corrupt_pixels(state, params, POLICY)
        assert {2, 9} <= set(report.corrupt.tolist())
        assert report.sd == 2

    def test_mean_cap_flagged(self, params):
        state = converged_state(params)
        state.m[0, 11] = -1e9
        report = find_corrupt_pixels(state, params, POLICY)
        assert 11 in report.corrupt
        assert report.mean == 1

    def test_nan_does_not_mask_other_violations(self, params):
        """Regression guard on the masked-bounds evaluation: NaN
        compares false everywhere, so a naive bound check would let a
        pixel with one NaN component hide a *bound* violation in a
        different pixel evaluated in the same vectorised expression."""
        state = converged_state(params)
        state.w[0, 1] = np.nan
        state.sd[0, 4] = 1e12
        report = find_corrupt_pixels(state, params, POLICY)
        assert {1, 4} <= set(report.corrupt.tolist())


class TestRepairPixels:
    def test_only_flagged_pixels_touched(self, params):
        state = converged_state(params)
        frame_flat = (
            evaluation_scene(height=SHAPE[0], width=SHAPE[1])
            .frame(6).reshape(-1)
        )
        before = state.copy()
        cols = np.array([3, 40])
        repair_pixels(state, frame_flat, cols, params)
        untouched = np.ones(state.num_pixels, dtype=bool)
        untouched[cols] = False
        for b, a in (
            (before.w, state.w), (before.m, state.m), (before.sd, state.sd)
        ):
            assert np.array_equal(b[:, untouched], a[:, untouched])

    def test_repaired_pixels_match_first_frame_init(self, params):
        state = converged_state(params)
        frame_flat = np.full(SHAPE[0] * SHAPE[1], 123.0)
        cols = np.array([10])
        repair_pixels(state, frame_flat, cols, params)
        k = state.num_gaussians
        assert state.w[0, 10] == 1.0
        assert np.all(state.w[1:, 10] == 0.0)
        assert state.m[0, 10] == 123.0
        for j in range(1, k):
            assert state.m[j, 10] == -1000.0 * j
        assert np.all(state.sd[:, 10] == params.initial_sd)

    def test_copy_then_rebind_preserves_snapshots(self, params):
        """state_snapshot hands out live references; repair must rebind
        fresh arrays, never mutate in place, or it would silently
        rewrite history inside a checkpoint taken earlier."""
        state = converged_state(params)
        snap_w, snap_m, snap_sd = state.w, state.m, state.sd
        w0, m0, sd0 = snap_w.copy(), snap_m.copy(), snap_sd.copy()
        repair_pixels(
            state, np.zeros(state.num_pixels), np.array([0, 1]), params
        )
        assert state.w is not snap_w  # rebound, not mutated
        assert np.array_equal(snap_w, w0)
        assert np.array_equal(snap_m, m0)
        assert np.array_equal(snap_sd, sd0)

    def test_repair_passes_validation(self, params):
        state = converged_state(params)
        state.w[:, 8] = np.nan
        state.sd[0, 20] = 1e12
        report = find_corrupt_pixels(state, params, POLICY)
        assert not report.clean
        repair_pixels(
            state, np.full(state.num_pixels, 50.0), report.corrupt, params
        )
        assert find_corrupt_pixels(state, params, POLICY).clean


class TestIntegrityPolicyConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            IntegrityPolicy(mode="paranoid")
        with pytest.raises(ConfigError):
            IntegrityPolicy(check_every=0)
        with pytest.raises(ConfigError):
            IntegrityPolicy(sd_cap=-1.0)

    def test_active(self):
        assert not IntegrityPolicy(mode="off").active
        assert IntegrityPolicy(mode="detect").active
        assert IntegrityPolicy(mode="repair").active


class TestIntegrityGuard:
    def test_detect_raises_typed_error(self, params):
        state = converged_state(params)
        state.m[0, 6] = 1e9
        guard = IntegrityGuard(IntegrityPolicy(mode="detect"), params)
        with pytest.raises(IntegrityError) as ei:
            guard.check(state, np.zeros(state.num_pixels), 12)
        assert ei.value.frame_index == 12
        assert ei.value.pixels == 1

    def test_repair_heals_and_counts(self, params):
        reg = MetricsRegistry()
        state = converged_state(params)
        state.w[0, 6] = np.nan
        state.sd[0, 30] = 1e12
        guard = IntegrityGuard(
            IntegrityPolicy(mode="repair"), params, telemetry=reg
        )
        report = guard.check(state, np.full(state.num_pixels, 80.0), 4)
        assert report is not None and report.corrupt.size == 2
        assert find_corrupt_pixels(state, params, POLICY).clean
        snap = reg.snapshot()["counters"]
        assert snap["integrity.checks"] == 1
        assert snap["integrity.violations"] == 2
        assert snap["integrity.pixels_repaired"] == 2

    def test_off_mode_skips(self, params):
        state = converged_state(params)
        state.w[0, 0] = np.nan
        guard = IntegrityGuard(IntegrityPolicy(mode="off"), params)
        assert guard.check(state, np.zeros(state.num_pixels), 0) is None

    def test_check_every_cadence(self, params):
        state = converged_state(params)
        guard = IntegrityGuard(
            IntegrityPolicy(mode="detect", check_every=3), params
        )
        flat = np.zeros(state.num_pixels)
        assert guard.check(state, flat, 1) is None  # skipped
        assert guard.check(state, flat, 2) is None  # skipped
        assert guard.check(state, flat, 3) is not None  # checked

    def test_detection_latency_histogram(self, params):
        """Latency = detection frame - last injected frame, recorded
        only when the injection harness has actually fired."""
        reg = MetricsRegistry()
        state = converged_state(params)
        state.w[0, 0] = np.nan
        guard = IntegrityGuard(
            IntegrityPolicy(mode="repair"), params, telemetry=reg
        )
        # No injection recorded yet: violation found, latency not
        # observed (manual corruption has no injection timestamp).
        guard.check(state, np.zeros(state.num_pixels), 5)
        assert (
            "integrity.detection_latency_frames"
            not in reg.snapshot()["histograms"]
        )
        reg.counter("faults.injected").inc()
        reg.gauge("faults.last_injected_frame").set(7)
        state.w[0, 1] = np.nan
        guard.check(state, np.zeros(state.num_pixels), 8)
        hist = reg.snapshot()["histograms"][
            "integrity.detection_latency_frames"
        ]
        assert hist["count"] == 1
        assert hist["max_s"] == 1.0  # injected at 7, detected at 8


class TestModelIntegration:
    def test_guard_runs_inside_apply(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        reg = MetricsRegistry()
        model = MoGVectorized(
            SHAPE, params,
            integrity=IntegrityPolicy(mode="repair"), telemetry=reg,
        )
        model.apply(video.frame(0))
        model.state.sd[0, 13] = 1e12  # soft error between frames
        model.apply(video.frame(1))
        snap = reg.snapshot()["counters"]
        assert snap["integrity.pixels_repaired"] == 1
        assert find_corrupt_pixels(model.state, params, POLICY).clean

    def test_detect_absorbed_by_degrade_stream(self, params):
        """A detect-mode violation inside a degrade-policy stream is a
        degraded frame, not a crash — the serving contract."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        inj = FaultInjector(
            FaultPlan(target="state", frames=(2,), flips=64, seed=11)
        )
        pipe = SurveillancePipeline(
            SHAPE, params, warmup_frames=0, on_error="degrade",
            integrity=IntegrityPolicy(mode="detect"), fault_injector=inj,
        )
        results = [pipe.step(video.frame(t)) for t in range(4)]
        assert not results[0].degraded
        assert any(r.degraded for r in results[2:])
        degraded = next(r for r in results[2:] if r.degraded)
        assert "integrity" in degraded.error

    def test_clean_run_zero_violations(self, params, small_frames):
        """Acceptance: the validator reports zero violations across a
        clean end-to-end run (no false positives)."""
        reg = MetricsRegistry()
        pipe = SurveillancePipeline(
            (24, 64), params, warmup_frames=0,
            integrity=IntegrityPolicy(mode="detect"), telemetry=reg,
        )
        for f in small_frames:
            pipe.step(f)  # detect mode: a violation would raise
        snap = reg.snapshot()["counters"]
        assert snap["integrity.checks"] == len(small_frames) - 1
        assert "integrity.violations" not in snap
