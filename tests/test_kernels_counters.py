"""Architectural counter relationships between the kernel levels —
the mechanisms behind the paper's figures, at test scale."""

import pytest

from repro.config import RunConfig
from repro.core.pipeline import HostPipeline
from repro.core.variants import OptimizationLevel
from repro.video.scenes import evaluation_scene

SHAPE = (32, 64)


@pytest.fixture(scope="module")
def reports(params):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    frames = [video.frame(t) for t in range(16)]
    out = {}
    for level in OptimizationLevel:
        rc = RunConfig(
            height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=8
        )
        hp = HostPipeline(SHAPE, params, level, run_config=rc)
        hp.process(frames)
        out[level.letter] = hp.report()
    return out


class TestCoalescing:
    def test_aos_many_more_transactions(self, reports):
        # ~5x rather than the raw 9x segment geometry: the L1 reuse
        # window serves most of the adjacent-field loads (which is how
        # the paper's level A reaches 17% efficiency, not 11%).
        a = reports["A"].counters.transactions
        b = reports["B"].counters.transactions
        assert a > 4 * b
        assert reports["A"].counters.l1_load_hits > 0
        assert reports["B"].counters.l1_load_hits == 0

    def test_aos_low_efficiency(self, reports):
        assert reports["A"].memory_access_efficiency < 0.2
        assert reports["B"].memory_access_efficiency > 0.8

    def test_useful_bytes_identical_a_b(self, reports):
        """Coalescing changes transactions, not the data the algorithm
        touches."""
        assert (
            reports["A"].counters.bytes_useful
            == reports["B"].counters.bytes_useful
        )


class TestBranches:
    def test_sort_removal_reduces_branches(self, reports):
        assert (
            reports["D"].counters.branches_total
            < reports["C"].counters.branches_total
        )

    def test_divergence_falls_monotonically_c_d_e(self, reports):
        div = [reports[lv].counters.branches_divergent for lv in "CDE"]
        assert div[0] > div[1] > div[2]

    def test_branch_efficiency_rises(self, reports):
        beff = [reports[lv].branch_efficiency for lv in "CDEF"]
        assert beff[0] < beff[1] < beff[2]
        assert beff[2] == pytest.approx(beff[3])

    def test_b_c_identical_counters(self, reports):
        cb, cc = reports["B"].counters, reports["C"].counters
        assert cb.branches_total == cc.branches_total
        assert cb.transactions == cc.transactions
        assert cb.warp_issues == cc.warp_issues


class TestPredication:
    def test_e_executes_more_arithmetic_than_d(self, reports):
        """Predication trades extra arithmetic for uniform control."""
        assert (
            reports["E"].counters.warp_issues["fp64"]
            > reports["D"].counters.warp_issues["fp64"]
        )

    def test_e_near_perfect_branch_efficiency(self, reports):
        # (Includes the unconverged warm-up frames, so looser than the
        # steady-state ~99.6% the figure benchmarks measure.)
        assert reports["E"].branch_efficiency > 0.95


class TestTiled:
    def test_shared_accesses_only_in_g(self, reports):
        assert reports["G"].counters.shared_accesses > 0
        for level in "ABCDEF":
            assert reports[level].counters.shared_accesses == 0

    def test_g_amortises_global_traffic(self, reports):
        """Per frame, the tiled kernel moves far fewer bytes than F:
        parameters travel once per group."""
        f_bytes = reports["F"].counters_per_frame.bytes_moved
        g_bytes = reports["G"].counters_per_frame.bytes_moved
        assert g_bytes < f_bytes / 2

    def test_g_memory_efficiency_below_f(self, reports):
        """The traffic mix shifts toward poorly-packed byte accesses."""
        assert (
            reports["G"].memory_access_efficiency
            < reports["F"].memory_access_efficiency
        )

    def test_g_contiguous_shared_is_conflict_free(self, reports):
        c = reports["G"].counters
        assert c.bank_conflict_extra_cycles == 0


class TestTimeOrdering:
    def test_kernel_times_improve_along_levels(self, reports):
        """Per-frame kernel time: A is far slower; the algorithm-
        specific levels beat the sorted kernel."""
        kt = {lv: reports[lv].kernel_time_per_frame for lv in "ABCDEFG"}
        # At this tiny grid the fixed launch overhead compresses the
        # ratio; at paper scale A/B is ~4x (see benchmarks/).
        assert kt["A"] > 2 * kt["B"]
        assert kt["D"] < kt["C"]
        assert kt["F"] < kt["C"]

    def test_overlap_reduces_total_time(self, reports):
        assert reports["C"].total_time < reports["B"].total_time
        # ... but does not change kernel time.
        assert reports["C"].kernel_time == pytest.approx(
            reports["B"].kernel_time, rel=1e-9
        )
