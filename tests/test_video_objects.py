"""Sprites, paths, and ground-truth compositing."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.objects import (
    Sprite,
    SpriteTrack,
    bounce_path,
    linear_path,
    render_tracks,
    stationary_path,
)


class TestSprite:
    def test_rectangle(self):
        s = Sprite.rectangle(3, 5, intensity=120.0)
        assert s.shape == (3, 5)
        assert s.support.all()
        assert (s.intensity == 120.0).all()

    def test_disk_support_round(self):
        s = Sprite.disk(3)
        assert s.shape == (7, 7)
        assert s.support[3, 3]          # centre opaque
        assert not s.support[0, 0]      # corner transparent
        # Symmetric support.
        assert np.array_equal(s.support, s.support[::-1])
        assert np.array_equal(s.support, s.support[:, ::-1])

    def test_textured_range_and_determinism(self):
        a = Sprite.textured(4, 6, seed=3)
        b = Sprite.textured(4, 6, seed=3)
        assert np.array_equal(a.intensity, b.intensity)
        assert a.intensity.min() >= 0.0 and a.intensity.max() <= 255.0

    @pytest.mark.parametrize("h,w", [(0, 3), (3, 0), (-1, 2)])
    def test_bad_dimensions(self, h, w):
        with pytest.raises(VideoError):
            Sprite.rectangle(h, w)

    def test_bad_radius(self):
        with pytest.raises(VideoError):
            Sprite.disk(0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VideoError):
            Sprite(np.zeros((2, 2)), np.ones((3, 3), dtype=bool))

    def test_non_bool_support_rejected(self):
        with pytest.raises(VideoError):
            Sprite(np.zeros((2, 2)), np.ones((2, 2), dtype=np.uint8))


class TestPaths:
    def test_linear(self):
        path = linear_path((1.0, 2.0), (0.5, -1.0))
        assert path(0) == (1.0, 2.0)
        assert path(4) == (3.0, -2.0)

    def test_stationary(self):
        path = stationary_path((5.0, 6.0))
        assert path(0) == path(100) == (5.0, 6.0)

    def test_bounce_stays_in_bounds(self):
        path = bounce_path((0.0, 0.0), (3.0, 7.0), (40, 60), (8, 8))
        for t in range(200):
            r, c = path(t)
            assert 0.0 <= r <= 32.0
            assert 0.0 <= c <= 52.0

    def test_bounce_reflects(self):
        path = bounce_path((0.0, 0.0), (1.0, 0.0), (10, 10), (2, 2))
        rows = [path(t)[0] for t in range(20)]
        assert max(rows) == 8.0 and min(rows) == 0.0
        assert rows[:9] == sorted(rows[:9])          # ascending leg
        assert rows[8:17] == sorted(rows[8:17], reverse=True)  # descending


class TestSpriteTrack:
    def test_active_window(self):
        track = SpriteTrack(
            Sprite.rectangle(2, 2), stationary_path((0, 0)),
            start_frame=3, end_frame=6,
        )
        assert not track.active(2)
        assert track.active(3) and track.active(5)
        assert not track.active(6)

    def test_forever_active(self):
        track = SpriteTrack(Sprite.rectangle(2, 2), stationary_path((0, 0)))
        assert track.active(10**6)

    def test_position_rounds(self):
        track = SpriteTrack(Sprite.rectangle(1, 1), linear_path((0.6, 1.4), (0, 0)))
        assert track.position(0) == (1, 1)


class TestRenderTracks:
    def test_composites_and_truth(self):
        bg = np.full((10, 10), 50.0)
        track = SpriteTrack(
            Sprite.rectangle(2, 3, intensity=200.0), stationary_path((4, 5))
        )
        frame, truth = render_tracks(bg, [track], 0)
        assert frame[4, 5] == 200.0 and frame[0, 0] == 50.0
        assert truth.sum() == 6
        assert truth[4:6, 5:8].all()

    def test_background_not_mutated(self):
        bg = np.full((6, 6), 10.0)
        track = SpriteTrack(Sprite.rectangle(2, 2, 99.0), stationary_path((1, 1)))
        render_tracks(bg, [track], 0)
        assert (bg == 10.0).all()

    def test_clipping_partial(self):
        bg = np.zeros((8, 8))
        track = SpriteTrack(
            Sprite.rectangle(4, 4, 1.0), stationary_path((6, 6))
        )
        frame, truth = render_tracks(bg, [track], 0)
        assert truth.sum() == 4  # only a 2x2 corner is inside

    def test_fully_outside(self):
        bg = np.zeros((8, 8))
        track = SpriteTrack(
            Sprite.rectangle(2, 2, 1.0), stationary_path((20, 20))
        )
        frame, truth = render_tracks(bg, [track], 0)
        assert truth.sum() == 0
        assert (frame == 0).all()

    def test_negative_position_clipped(self):
        bg = np.zeros((8, 8))
        track = SpriteTrack(
            Sprite.rectangle(4, 4, 1.0), stationary_path((-2, -2))
        )
        _, truth = render_tracks(bg, [track], 0)
        assert truth.sum() == 4
        assert truth[0:2, 0:2].all()

    def test_inactive_track_skipped(self):
        bg = np.zeros((8, 8))
        track = SpriteTrack(
            Sprite.rectangle(2, 2, 1.0), stationary_path((1, 1)), start_frame=5
        )
        _, truth = render_tracks(bg, [track], 0)
        assert truth.sum() == 0

    def test_disk_support_respected(self):
        bg = np.zeros((12, 12))
        track = SpriteTrack(Sprite.disk(2, 50.0), stationary_path((3, 3)))
        frame, truth = render_tracks(bg, [track], 0)
        assert not truth[3, 3]  # corner of the bounding box is transparent
        assert truth[5, 5]      # centre is opaque

    def test_overlapping_tracks_union(self):
        bg = np.zeros((8, 8))
        t1 = SpriteTrack(Sprite.rectangle(3, 3, 10.0), stationary_path((0, 0)))
        t2 = SpriteTrack(Sprite.rectangle(3, 3, 20.0), stationary_path((1, 1)))
        frame, truth = render_tracks(bg, [t1, t2], 0)
        assert truth.sum() == 9 + 9 - 4
        assert frame[1, 1] == 20.0  # later track paints on top
