"""CC 2.0 occupancy calculator: known values, limits, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.gpusim import TESLA_C2075, occupancy


class TestPaperAnchors:
    """The register staircase the paper's Figures 6b/7c rely on, at the
    paper's 128 threads/block."""

    @pytest.mark.parametrize("regs,blocks,occ", [
        (30, 8, 8 * 4 / 48),   # A/B: block-count limited
        (31, 8, 8 * 4 / 48),   # F
        (32, 8, 8 * 4 / 48),   # D
        (33, 7, 7 * 4 / 48),   # E: one register too many
        (36, 7, 7 * 4 / 48),   # C
        (40, 6, 6 * 4 / 48),
    ])
    def test_staircase(self, regs, blocks, occ):
        r = occupancy(TESLA_C2075, 128, regs)
        assert r.blocks_per_sm == blocks
        assert r.occupancy == pytest.approx(occ)

    def test_tiled_launch(self):
        """640 threads + 45 KB shared -> one block, 20/48 warps."""
        r = occupancy(TESLA_C2075, 640, 31, shared_bytes_per_block=640 * 9 * 8)
        assert r.blocks_per_sm == 1
        assert r.warps_per_sm == 20
        assert r.occupancy == pytest.approx(20 / 48)
        assert r.limiting_factor == "shared"


class TestLimits:
    def test_warp_limited_large_blocks(self):
        r = occupancy(TESLA_C2075, 1024, 0)
        assert r.warps_per_block == 32
        assert r.limiting_factor in ("warps", "blocks")
        assert r.warps_per_sm <= 48

    def test_block_limited_small_blocks(self):
        r = occupancy(TESLA_C2075, 32, 16)
        assert r.limiting_factor == "blocks"
        assert r.warps_per_sm == 8

    def test_zero_registers_unlimited_by_registers(self):
        r = occupancy(TESLA_C2075, 128, 0)
        assert r.limiting_factor == "blocks"

    def test_shared_memory_limits_blocks(self):
        r = occupancy(TESLA_C2075, 128, 20, shared_bytes_per_block=24 * 1024)
        assert r.blocks_per_sm == 2
        assert r.limiting_factor == "shared"

    def test_shared_allocation_granularity(self):
        # 24 KB + 1 byte rounds up to beyond half the SM.
        r = occupancy(TESLA_C2075, 128, 20, shared_bytes_per_block=24 * 1024 + 1)
        assert r.blocks_per_sm == 1


class TestErrors:
    def test_zero_threads(self):
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2075, 0, 16)

    def test_too_many_threads(self):
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2075, 2048, 16)

    def test_negative_resources(self):
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2075, 128, -1)

    def test_register_ceiling(self):
        with pytest.raises(LaunchError, match="spill"):
            occupancy(TESLA_C2075, 128, 64)

    def test_oversized_shared(self):
        with pytest.raises(LaunchError):
            occupancy(TESLA_C2075, 128, 16, shared_bytes_per_block=49 * 1024)


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=8),   # warps per block
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_in_unit_interval(self, wpb, regs):
        r = occupancy(TESLA_C2075, wpb * 32, regs)
        assert 0.0 < r.occupancy <= 1.0
        assert r.warps_per_sm <= TESLA_C2075.max_warps_per_sm

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_registers(self, wpb):
        prev = None
        for regs in range(0, 64):
            occ = occupancy(TESLA_C2075, wpb * 32, regs).occupancy
            if prev is not None:
                assert occ <= prev + 1e-12
            prev = occ

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=48 * 1024),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_shared(self, wpb, regs, shared):
        a = occupancy(TESLA_C2075, wpb * 32, regs, 0)
        b = occupancy(TESLA_C2075, wpb * 32, regs, shared)
        assert b.occupancy <= a.occupancy + 1e-12
