"""The kernel IR: KernelSpec, composable passes, and the guarantee
that levels built from their pass stacks are bit-identical to the
registry's levels."""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.variants import (
    LEVELS,
    LevelSpec,
    OptimizationLevel,
    custom_level,
    resolve_level_spec,
    table_ii_rows,
    table_iii_rows,
)
from repro.core.subtractor import BackgroundSubtractor
from repro.errors import ConfigError
from repro.kernels.ir import (
    BASE_SPEC,
    LEVEL_PASSES,
    PASS_REGISTRY,
    KernelSpec,
    PassError,
    apply_passes,
    mog_variant_for,
    register_model_for,
    spec_for_level,
)
from repro.video.scenes import evaluation_scene

SHAPE = (16, 64)


def _frames(n=6, seed=5):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1], seed=seed)
    return [video.frame(t) for t in range(n)]


def _run_config(dtype="double"):
    return RunConfig(
        height=SHAPE[0], width=SHAPE[1], dtype=dtype,
        tile_pixels=256, frame_group=3,
    )


class TestPassRegistry:
    def test_canonical_order_and_metadata(self):
        names = list(PASS_REGISTRY)
        assert names[:6] == [
            "soa-layout", "overlap", "sort-elimination",
            "predication", "register-reduction", "tiling",
        ]
        for name, p in PASS_REGISTRY.items():
            assert p.name == name
            assert p.enables  # every pass switches something on
            assert p.note     # cost/benefit note

    def test_paper_levels_are_prefixes(self):
        """Tables II/III are cumulative: each level's stack extends the
        previous level's."""
        stacks = [LEVEL_PASSES[letter] for letter in "ABCDEFG"]
        for prev, cur in zip(stacks, stacks[1:]):
            assert cur[: len(prev)] == prev

    def test_levels_match_enum_specs(self):
        for member in LEVELS:
            assert member.spec.passes == LEVEL_PASSES[member.letter]
            assert member.spec.kernel == spec_for_level(member.letter)

    def test_pass_levels_annotated(self):
        for letter in "BCDEFG":
            (new,) = set(LEVEL_PASSES[letter]) - set(
                LEVEL_PASSES[chr(ord(letter) - 1)]
            )
            assert PASS_REGISTRY[new].level == letter


class TestSpecValidation:
    def test_base_spec_is_valid(self):
        BASE_SPEC.validate()

    def test_sort_requires_break_scan(self):
        with pytest.raises(ConfigError):
            KernelSpec(sort=True, scan="flat").validate()

    def test_recompute_requires_predication(self):
        with pytest.raises(ConfigError):
            KernelSpec(sort=False, scan="recompute").validate()

    def test_tiling_requires_soa_and_recompute(self):
        with pytest.raises(ConfigError):
            KernelSpec(
                layout="aos", update="predicated", sort=False,
                scan="recompute", tiling="shared",
            ).validate()

    def test_pass_prerequisites_enforced(self):
        # register-reduction before predication is not a valid stack.
        with pytest.raises(PassError):
            apply_passes(BASE_SPEC, ("register-reduction",))
        # tiling needs the full algorithm-specific stack below it
        # (PassError is a ConfigError; the tiling invariant is caught
        # by spec validation).
        with pytest.raises(ConfigError):
            apply_passes(BASE_SPEC, ("soa-layout", "tiling"))

    def test_unknown_pass(self):
        with pytest.raises(PassError):
            apply_passes(BASE_SPEC, ("warp-shuffle",))

    def test_duplicate_pass_rejected(self):
        with pytest.raises(PassError):
            apply_passes(BASE_SPEC, ("soa-layout", "soa-layout"))


class TestDerivations:
    def test_mog_variants(self):
        expected = {
            "A": "sorted", "B": "sorted", "C": "sorted",
            "D": "nosort", "E": "predicated", "F": "regopt",
            "G": "regopt",
        }
        for letter, variant in expected.items():
            assert mog_variant_for(spec_for_level(letter)) == variant

    def test_register_models(self):
        for letter in "ABCDEFG":
            assert register_model_for(spec_for_level(letter)) == letter

    def test_custom_register_model(self):
        spec = apply_passes(BASE_SPEC, ("predication",))
        # AoS predicated kernel carries the level-E working set.
        assert register_model_for(spec) == "E"


class TestResolveLevelSpec:
    def test_member_letter_and_spec(self):
        spec = OptimizationLevel.F.spec
        assert resolve_level_spec(OptimizationLevel.F) is spec
        assert resolve_level_spec("F") is spec
        assert resolve_level_spec(spec) is spec

    def test_pass_expression(self):
        spec = resolve_level_spec("A+predication")
        assert spec.group == "custom"
        assert spec.passes == ("predication",)
        assert spec.kernel.update == "predicated"
        assert spec.kernel.layout == "aos"

    def test_expression_normalises_to_paper_level(self):
        assert resolve_level_spec("B+overlap") is OptimizationLevel.C.spec

    def test_custom_level_normalises(self):
        assert (
            custom_level(LEVEL_PASSES["D"]) is OptimizationLevel.D.spec
        )

    def test_bad_expression(self):
        with pytest.raises(ConfigError):
            resolve_level_spec("A+warp-shuffle")

    def test_unknown_letter(self):
        with pytest.raises(ConfigError):
            resolve_level_spec("Z")


@pytest.mark.parametrize("letter", list("ABCDEFG"))
@pytest.mark.parametrize("dtype", ["double", "float"])
def test_level_from_pass_stack_bit_identical(letter, dtype, params):
    """A LevelSpec hand-built from the level's pass stack (bypassing
    the registry) produces bit-identical masks and mixture state."""
    passes = LEVEL_PASSES[letter]
    rebuilt = LevelSpec(
        letter=f"custom-{letter}",
        title="rebuilt from passes",
        group="custom",
        passes=passes,
        kernel=apply_passes(BASE_SPEC, passes),
        paper_speedup=None,
    )
    frames = _frames()
    ref = BackgroundSubtractor(
        SHAPE, params, level=letter, run_config=_run_config(dtype)
    )
    alt = BackgroundSubtractor(
        SHAPE, params, level=rebuilt, run_config=_run_config(dtype)
    )
    ref_masks, _ = ref.process(frames)
    alt_masks, _ = alt.process(frames)
    assert np.array_equal(ref_masks, alt_masks)
    st_ref = ref._pipeline.state()
    st_alt = alt._pipeline.state()
    assert np.array_equal(st_ref.w, st_alt.w)
    assert np.array_equal(st_ref.m, st_alt.m)
    assert np.array_equal(st_ref.sd, st_alt.sd)


def test_novel_combo_matches_level_a(params):
    """Predication alone is a pure re-expression of the branchy update:
    A+predication must produce level A's masks exactly."""
    frames = _frames(8)
    base = BackgroundSubtractor(
        SHAPE, params, level="A", run_config=_run_config()
    )
    pred = BackgroundSubtractor(
        SHAPE, params, level="A+predication", run_config=_run_config()
    )
    a, _ = base.process(frames)
    b, _ = pred.process(frames)
    assert np.array_equal(a, b)
    # And the CPU oracle agrees with the custom sim level.
    cpu = BackgroundSubtractor(
        SHAPE, params, level="A+predication", backend="cpu"
    )
    c, _ = cpu.process(frames)
    assert np.array_equal(b, c)


class TestTablesDerivedFromPasses:
    """Regression: the derived Table II/III rows must match the paper's
    hand-written tables exactly (the pre-refactor hardcoded values)."""

    def test_table_ii_golden(self):
        assert table_ii_rows() == [
            ("Base Implementation", ["x", "x", "x"]),
            ("Memory Coalescing", ["", "x", "x"]),
            ("Overlapped Execution", ["", "", "x"]),
        ]

    def test_table_iii_golden(self):
        assert table_iii_rows() == [
            ("Branch Reduction", ["x", "x", "x"]),
            ("Predicated Execution", ["", "x", "x"]),
            ("Register Reduction", ["", "", "x"]),
        ]

    def test_rows_match_enum_enables(self):
        for title, marks in table_ii_rows():
            key = next(
                k for k, p in PASS_REGISTRY.items() if p.table == title
            ) if title != "Base Implementation" else "base"
            for member, mark in zip(
                [OptimizationLevel.A, OptimizationLevel.B,
                 OptimizationLevel.C], marks
            ):
                enables = member.spec.enables
                enabled = (
                    key == "base" or PASS_REGISTRY[key].enables in enables
                )
                assert (mark == "x") == enabled
