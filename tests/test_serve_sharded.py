"""Sharded multi-process StreamServer: placement, cross-shard oracle,
SIGKILL chaos + rebalancing, gateway admission/shedding, telemetry
rollups, rolling-restart resume.

The oracle tests pin the tentpole guarantee: masks from the sharded
tier are bit-identical to a serial SurveillancePipeline run feeding the
same frames — including across a SIGKILLed shard and the checkpoint
restore + replay that follows.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.config import FaultPolicy, ServeConfig
from repro.core.stream import SurveillancePipeline
from repro.errors import BackpressureError, ConfigError, WorkerError
from repro.serve.sharded import (
    ConsistentHashRing,
    ShardedStreamServer,
    _RoundRobinPlacement,
)
from repro.video.scenes import evaluation_scene

SHAPE = (24, 32)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="shard-process tests prefer fork workers"
)


def scene_frames(seed: int, num_frames: int = 10, shape=SHAPE):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=seed)
    return [video.frame(t) for t in range(num_frames)]


def serial_masks(frames, params, stage_error="degrade"):
    """The oracle: one uninterrupted SurveillancePipeline run."""
    pipe = SurveillancePipeline(SHAPE, params, on_error=stage_error)
    out = [pipe.step(f) for f in frames]
    return [(r.mask.copy(), r.raw_mask.copy()) for r in out]


def wait_until(predicate, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


class TestPlacement:
    def test_hash_ring_deterministic(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        keys = [f"cam{i}" for i in range(50)]
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]

    def test_hash_ring_spreads_load(self):
        ring = ConsistentHashRing(range(4))
        keys = [f"stream-{i}" for i in range(400)]
        counts = {n: 0 for n in range(4)}
        for k in keys:
            counts[ring.place(k)] += 1
        # Virtual nodes keep the split loose but never degenerate.
        assert all(c >= 40 for c in counts.values()), counts

    def test_hash_ring_minimal_movement_on_removal(self):
        ring = ConsistentHashRing(range(4))
        keys = [f"stream-{i}" for i in range(200)]
        before = {k: ring.place(k) for k in keys}
        ring.remove(2)
        assert ring.nodes == [0, 1, 3]
        moved = [k for k in keys if ring.place(k) != before[k]]
        # Only streams that lived on the removed shard may move ...
        assert all(before[k] == 2 for k in moved)
        # ... and all of them must (their shard is gone).
        assert len(moved) == sum(v == 2 for v in before.values())

    def test_hash_ring_empty_raises(self):
        ring = ConsistentHashRing([])
        with pytest.raises(WorkerError, match="no shards alive"):
            ring.place("cam")

    def test_round_robin_cycles_and_shrinks(self):
        rr = _RoundRobinPlacement(range(3))
        assert [rr.place(f"s{i}") for i in range(6)] == [0, 1, 2, 0, 1, 2]
        rr.remove(1)
        placed = {rr.place(f"t{i}") for i in range(4)}
        assert placed <= {0, 2}


@needs_fork
class TestShardedOracle:
    def test_masks_bit_identical_to_serial(self, params):
        """6 streams spread over 3 shards: every stream's mask and
        raw-mask sequence matches an uninterrupted serial run."""
        streams = {f"cam{i}": scene_frames(seed=20 + i, num_frames=8)
                   for i in range(6)}
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=3, workers=1, queue_capacity=8),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid)
            placed = {row["stream"]: row["shard"]
                      for row in server.stream_status()}
            assert len(set(placed.values())) >= 2, placed
            for sid, frames in streams.items():
                for f in frames:
                    server.submit(sid, f)
            server.drain()
            for sid, frames in streams.items():
                got = server.results(sid)
                ref = serial_masks(frames, params)
                assert [r.frame_index for r in got] == list(
                    range(len(frames))
                )
                for r, (mask, raw) in zip(got, ref):
                    assert np.array_equal(r.mask, mask), sid
                    assert np.array_equal(r.raw_mask, raw), sid

    def test_single_shard_degenerate_case(self, params):
        frames = scene_frames(seed=3, num_frames=5)
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=1, workers=1),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("solo")
            for f in frames:
                server.submit("solo", f)
            server.drain()
            got = server.results("solo")
            ref = serial_masks(frames, params)
            assert len(got) == len(ref)
            for r, (mask, _) in zip(got, ref):
                assert np.array_equal(r.mask, mask)


@needs_fork
class TestShardChaos:
    def _kill_a_hosting_shard(self, server) -> tuple[int, list[str]]:
        """SIGKILL the shard that actually hosts streams (consistent
        hashing may leave a shard empty), returning (shard, victims)."""
        by_shard: dict[int, list[str]] = {}
        for row in server.stream_status():
            by_shard.setdefault(row["shard"], []).append(row["stream"])
        victim_shard = max(by_shard, key=lambda k: len(by_shard[k]))
        victims = sorted(by_shard[victim_shard])
        pid = server.shard_pids()[victim_shard]
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        wait_until(lambda: server.shard_pids()[victim_shard] is None)
        return victim_shard, victims

    def test_sigkill_rebalances_bit_identical(self, params, tmp_path):
        """Kill one shard mid-stream: its streams restore from their
        checkpoints on survivors, the gateway replays the gap, and
        every stream's full mask sequence still matches serial."""
        streams = {f"cam{i}": scene_frames(seed=40 + i, num_frames=10)
                   for i in range(4)}
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(
                shards=2, workers=1, queue_capacity=8,
                checkpoint_every=1, checkpoint_dir=str(tmp_path),
            ),
            fault_policy=FaultPolicy(
                policy="restart", stage_error="degrade"
            ),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid)
            for sid, frames in streams.items():
                for f in frames[:5]:
                    server.submit(sid, f)
            server.drain()

            victim_shard, victims = self._kill_a_hosting_shard(server)
            wait_until(lambda: all(
                r["restarts"] == 1 and r["failed"] is None
                for r in (
                    row for row in server.stream_status()
                    if row["stream"] in victims
                )
            ))
            for sid, frames in streams.items():
                for f in frames[5:]:
                    server.submit(sid, f)
            server.drain()

            for sid, frames in streams.items():
                got = server.results(sid)
                ref = serial_masks(frames, params)
                assert [r.frame_index for r in got] == list(
                    range(len(frames))
                ), sid
                for r, (mask, raw) in zip(got, ref):
                    assert np.array_equal(r.mask, mask), sid
                    assert np.array_equal(r.raw_mask, raw), sid

            status = {r["stream"]: r for r in server.stream_status()}
            for sid in victims:
                assert status[sid]["shard"] != victim_shard
            snap = server.snapshot()
            assert snap["counters"].get("server.shard_deaths") == 1
            assert snap["counters"].get("server.rebalanced") == len(victims)
            assert "server.rebalanced_fresh" not in snap["counters"]

    def test_sigkill_without_checkpoints_fails_cleanly(self, params):
        """Default fault policy ("fail") + no durable checkpoints:
        victim streams fail cleanly, survivors keep serving with
        bit-identical masks."""
        streams = {f"cam{i}": scene_frames(seed=60 + i, num_frames=8)
                   for i in range(4)}
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=2, workers=1, queue_capacity=8),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid)
            for sid, frames in streams.items():
                for f in frames[:4]:
                    server.submit(sid, f)
            server.drain()
            early = {sid: server.results(sid) for sid in streams}

            victim_shard, victims = self._kill_a_hosting_shard(server)
            survivors = sorted(set(streams) - set(victims))
            wait_until(lambda: all(
                r["failed"] is not None
                for r in server.stream_status()
                if r["stream"] in victims
            ))
            for sid in victims:
                with pytest.raises(WorkerError, match="failed"):
                    server.submit(sid, streams[sid][4])
            for sid in survivors:
                for f in streams[sid][4:]:
                    server.submit(sid, f)
            server.drain()

            for sid in survivors:
                got = early[sid] + server.results(sid)
                ref = serial_masks(streams[sid], params)
                assert len(got) == len(ref), sid
                for r, (mask, _) in zip(got, ref):
                    assert np.array_equal(r.mask, mask), sid
            snap = server.snapshot()
            assert snap["counters"].get("server.shard_deaths") == 1
            assert "server.rebalanced" not in snap["counters"]
            assert (
                snap["counters"].get("server.streams_failed")
                == len(victims)
            )

    def test_sigkill_restart_policy_rebalances_fresh(self, params):
        """policy="restart" without checkpoints: victims re-admit fresh
        on survivors (model state reset, counted separately)."""
        streams = {f"cam{i}": scene_frames(seed=80 + i, num_frames=6)
                   for i in range(4)}
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=2, workers=1, queue_capacity=8),
            fault_policy=FaultPolicy(
                policy="restart", stage_error="degrade"
            ),
            frame_dtype=np.uint8,
        ) as server:
            for sid in streams:
                server.add_stream(sid)
            for sid, frames in streams.items():
                for f in frames[:3]:
                    server.submit(sid, f)
            server.drain()
            for sid in streams:
                server.results(sid)

            victim_shard, victims = self._kill_a_hosting_shard(server)
            wait_until(lambda: all(
                r["restarts"] == 1 and r["failed"] is None
                for r in server.stream_status()
                if r["stream"] in victims
            ))
            for sid in victims:
                for f in streams[sid][:3]:
                    server.submit(sid, f)
            server.drain()

            for sid in victims:
                got = server.results(sid)
                ref = serial_masks(streams[sid][:3], params)
                # Fresh restart: frame_index starts over from 0.
                assert [r.frame_index for r in got] == [0, 1, 2], sid
                for r, (mask, _) in zip(got, ref):
                    assert np.array_equal(r.mask, mask), sid
            status = {r["stream"]: r for r in server.stream_status()}
            for sid in victims:
                assert status[sid]["resume_note"] == (
                    "rebalanced fresh (no checkpoint)"
                )
            snap = server.snapshot()
            assert (
                snap["counters"].get("server.rebalanced_fresh")
                == len(victims)
            )
            assert snap["counters"].get("server.rebalanced") == len(victims)


@needs_fork
class TestGatewayAdmission:
    def test_max_streams_gateway_wide(self, params):
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=2, workers=1, max_streams=2),
        ) as server:
            server.add_stream("a")
            server.add_stream("b")
            with pytest.raises(ConfigError, match="max_streams"):
                server.add_stream("c")

    def test_duplicate_and_bad_ids_rejected(self, params):
        with ShardedStreamServer(
            SHAPE, params=params, serve=ServeConfig(shards=1, workers=1),
        ) as server:
            server.add_stream("a")
            with pytest.raises(ConfigError, match="already registered"):
                server.add_stream("a")
            with pytest.raises(ConfigError):
                server.add_stream("")
            with pytest.raises(ConfigError, match=r"'\.'"):
                server.add_stream("a.b")

    def test_unknown_stream_and_shape_guards(self, params):
        with ShardedStreamServer(
            SHAPE, params=params, serve=ServeConfig(shards=1, workers=1),
        ) as server:
            with pytest.raises(ConfigError, match="unknown stream"):
                server.submit("ghost", np.zeros(SHAPE))
            server.add_stream("a")
            with pytest.raises(ConfigError, match="shape"):
                server.submit("a", np.zeros((8, 8)))

    def test_lossy_frame_dtype_rejected(self, params):
        """A float frame cannot ride a uint8 ring silently."""
        with ShardedStreamServer(
            SHAPE, params=params, serve=ServeConfig(shards=1, workers=1),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("a")
            with pytest.raises(ConfigError, match="losslessly"):
                server.submit("a", np.zeros(SHAPE, dtype=np.float64))
            # The widening direction is lossless and allowed.
            server.submit("a", np.zeros(SHAPE, dtype=np.uint8))
            server.drain()


@needs_fork
class TestLoadShedding:
    def test_shed_drop_bounds_inflight(self, params):
        """shed_policy="drop": a burst past shed_inflight is shed at
        the gateway (submit returns False) and counted."""
        frames = scene_frames(seed=5, num_frames=12)
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(
                shards=1, workers=1, queue_capacity=16,
                shed_inflight=2, shed_policy="drop",
            ),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("cam")
            admitted = sum(server.submit("cam", f) for f in frames)
            # The burst outruns real MoG processing by orders of
            # magnitude, so most of it must shed.
            assert admitted < len(frames)
            server.drain()
            assert len(server.results("cam")) == admitted
            status = server.stream_status()[0]
            assert status["frames_dropped"] == len(frames) - admitted
            snap = server.snapshot()
            assert (
                snap["counters"].get("server.frames_shed")
                == len(frames) - admitted
            )

    def test_shed_reject_raises(self, params):
        frames = scene_frames(seed=6, num_frames=12)
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(
                shards=1, workers=1, queue_capacity=16,
                shed_inflight=2, shed_policy="reject",
            ),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("cam")
            rejected = 0
            for f in frames:
                try:
                    server.submit("cam", f)
                except BackpressureError:
                    rejected += 1
            assert rejected > 0
            server.drain()
            assert len(server.results("cam")) == len(frames) - rejected


@needs_fork
class TestShardedTelemetry:
    def test_snapshot_rolls_up_per_shard(self, params):
        frames = scene_frames(seed=9, num_frames=4)
        with ShardedStreamServer(
            SHAPE, params=params,
            serve=ServeConfig(shards=2, workers=1, placement="round_robin"),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("a")
            server.add_stream("b")
            for f in frames:
                server.submit("a", f)
                server.submit("b", f)
            server.drain()
            snap = server.snapshot()
            assert snap["gauges"]["server.shards_active"] == 2
            assert snap["gauges"]["server.streams_active"] == 2
            # Both shards' own server metrics appear re-keyed; with
            # round-robin placement each hosts exactly one stream.
            for k in (0, 1):
                assert snap["gauges"][
                    f"server.shard.{k}.streams_active"
                ] == 1
            assert any(
                name.startswith("stream.a.") for name in snap["counters"]
            )
            # Gateway latency histogram saw every submitted frame.
            lat = snap["histograms"]["server.latency_s"]
            assert lat["count"] == 2 * len(frames)
            assert lat["p50_s"] > 0


@needs_fork
class TestRollingRestartResume:
    def test_close_then_resume_continues_bit_identical(
        self, params, tmp_path
    ):
        """The rolling-restart path: stop the whole sharded tier, start
        a new one over the same checkpoint dir with resume=True, and
        the mask sequence continues exactly where it left off."""
        frames = scene_frames(seed=13, num_frames=10)
        serve = ServeConfig(
            shards=2, workers=1, checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        with ShardedStreamServer(
            SHAPE, params=params, serve=serve, frame_dtype=np.uint8,
        ) as server:
            server.add_stream("cam")
            for f in frames[:6]:
                server.submit("cam", f)
            server.drain()
            first = server.results("cam")
        with ShardedStreamServer(
            SHAPE, params=params, serve=serve.replace(resume=True),
            frame_dtype=np.uint8,
        ) as server:
            server.add_stream("cam")
            status = server.stream_status()[0]
            assert status["resumed_source_seq"] == 5
            for f in frames[6:]:
                server.submit("cam", f)
            server.drain()
            second = server.results("cam")
        got = first + second
        ref = serial_masks(frames, params)
        assert [r.frame_index for r in got] == list(range(len(frames)))
        for r, (mask, raw) in zip(got, ref):
            assert np.array_equal(r.mask, mask)
            assert np.array_equal(r.raw_mask, raw)
