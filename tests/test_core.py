"""The public API layer: variants, pipeline, subtractor, reports."""

import numpy as np
import pytest

from repro import BackgroundSubtractor, MoGParams, OptimizationLevel, RunConfig
from repro.core.pipeline import HostPipeline, max_tile_pixels
from repro.core.variants import LEVELS, table_ii_rows, table_iii_rows
from repro.errors import ConfigError
from repro.gpusim.device import TESLA_C2075
from repro.video.scenes import evaluation_scene

SHAPE = (16, 32)


def _frames(n=6):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(n)]


class TestOptimizationLevel:
    def test_parse_letter(self):
        assert OptimizationLevel.parse("f") is OptimizationLevel.F
        assert OptimizationLevel.parse("A") is OptimizationLevel.A

    def test_parse_member_passthrough(self):
        assert OptimizationLevel.parse(OptimizationLevel.G) is OptimizationLevel.G

    def test_parse_unknown(self):
        with pytest.raises(ConfigError):
            OptimizationLevel.parse("Z")

    def test_levels_ordered(self):
        assert [lv.letter for lv in LEVELS] == list("ABCDEFG")

    def test_cumulative_enables(self):
        for prev, cur in zip(LEVELS, LEVELS[1:]):
            assert set(prev.spec.enables) <= set(cur.spec.enables)

    def test_overlap_from_c_onward(self):
        assert not OptimizationLevel.A.spec.overlapped
        assert not OptimizationLevel.B.spec.overlapped
        for level in "CDEFG":
            assert OptimizationLevel.parse(level).spec.overlapped

    def test_layouts(self):
        assert OptimizationLevel.A.spec.layout == "aos"
        for level in "BCDEFG":
            assert OptimizationLevel.parse(level).spec.layout == "soa"

    def test_tables_shape(self):
        assert len(table_ii_rows()) == 3
        assert len(table_iii_rows()) == 3


class TestHostPipeline:
    def test_apply_returns_mask(self, params):
        hp = HostPipeline(SHAPE, params, "F")
        mask = hp.apply(_frames(1)[0])
        assert mask.shape == SHAPE and mask.dtype == np.bool_

    def test_wrong_frame_shape(self, params):
        hp = HostPipeline(SHAPE, params, "F")
        with pytest.raises(ConfigError):
            hp.apply(np.zeros((4, 4), dtype=np.uint8))

    def test_apply_rejected_for_g(self, params):
        rc = RunConfig(height=SHAPE[0], width=SHAPE[1], tile_pixels=256)
        hp = HostPipeline(SHAPE, params, "G", run_config=rc)
        with pytest.raises(ConfigError, match="group"):
            hp.apply(_frames(1)[0])

    def test_apply_group_rejected_for_f(self, params):
        hp = HostPipeline(SHAPE, params, "F")
        with pytest.raises(ConfigError):
            hp.apply_group(_frames(2))

    def test_apply_group_size_limits(self, params):
        rc = RunConfig(
            height=SHAPE[0], width=SHAPE[1], tile_pixels=256, frame_group=2
        )
        hp = HostPipeline(SHAPE, params, "G", run_config=rc)
        with pytest.raises(ConfigError):
            hp.apply_group([])
        with pytest.raises(ConfigError):
            hp.apply_group(_frames(3))

    def test_geometry_mismatch_with_run_config(self, params):
        with pytest.raises(ConfigError):
            HostPipeline(SHAPE, params, "F", run_config=RunConfig(height=8, width=8))

    def test_empty_process_rejected(self, params):
        with pytest.raises(ConfigError):
            HostPipeline(SHAPE, params, "F").process([])

    def test_report_accumulates_launches(self, params):
        hp = HostPipeline(SHAPE, params, "F")
        hp.process(_frames(4))
        rep = hp.report()
        assert rep.num_frames == 4
        assert len(rep.launches) == 4
        assert rep.pipeline is not None

    def test_state_before_frames_rejected(self, params):
        hp = HostPipeline(SHAPE, params, "F")
        with pytest.raises(ConfigError):
            hp.state()
        with pytest.raises(ConfigError):
            hp.background_image()

    def test_registers_modes(self, params):
        pinned = HostPipeline(SHAPE, params, "F", registers="pinned")
        assert pinned.registers_per_thread == 31
        fixed = HostPipeline(SHAPE, params, "F", registers=40)
        assert fixed.registers_per_thread == 40
        bad = HostPipeline(SHAPE, params, "F", registers="wild-guess")
        with pytest.raises(ConfigError):
            _ = bad.registers_per_thread

    def test_estimated_registers_mode(self, params):
        hp = HostPipeline(SHAPE, params, "F", registers="estimated")
        hp.apply(_frames(1)[0])
        rep = hp.report()
        assert rep.registers_per_thread == hp.engine.launches[-1].estimated_registers

    def test_oversized_tile_rejected(self, params):
        rc = RunConfig(height=SHAPE[0], width=SHAPE[1], tile_pixels=1024)
        with pytest.raises(ConfigError, match="shared memory"):
            HostPipeline(SHAPE, params, "G", run_config=rc)

    def test_max_tile_pixels(self):
        assert max_tile_pixels(MoGParams(), "double", TESLA_C2075) == 672
        assert max_tile_pixels(MoGParams(num_gaussians=5), "double", TESLA_C2075) == 384


class TestBackgroundSubtractor:
    def test_backend_validation(self, params):
        with pytest.raises(ConfigError):
            BackgroundSubtractor(SHAPE, params, backend="tpu")

    def test_cpu_backend_has_no_report(self, params):
        bs = BackgroundSubtractor(SHAPE, params, backend="cpu")
        bs.apply(_frames(1)[0])
        with pytest.raises(ConfigError):
            bs.report()

    def test_process_returns_report_for_sim(self, params):
        bs = BackgroundSubtractor(SHAPE, params, level="D")
        masks, report = bs.process(_frames(4))
        assert masks.shape == (4, *SHAPE)
        assert report is not None
        assert report.level == "D"

    def test_process_cpu_returns_none_report(self, params):
        bs = BackgroundSubtractor(SHAPE, params, backend="cpu")
        masks, report = bs.process(_frames(3))
        assert report is None

    def test_background_image_both_backends(self, params):
        frames = _frames(6)
        sim = BackgroundSubtractor(SHAPE, params, level="F")
        cpu = BackgroundSubtractor(SHAPE, params, level="F", backend="cpu")
        sim.process(frames)
        cpu.process(frames)
        assert np.allclose(sim.background_image(), cpu.background_image())

    def test_default_level_is_f(self, params):
        bs = BackgroundSubtractor(SHAPE, params)
        assert bs.level is OptimizationLevel.F


class TestRunReport:
    def test_metrics_and_summary(self, params):
        bs = BackgroundSubtractor(SHAPE, params, level="C")
        _, report = bs.process(_frames(4))
        m = report.metrics()
        assert m["level"] == "C"
        assert 0 < m["time_per_frame"]
        assert 0 <= m["branch_efficiency"] <= 1
        text = report.summary()
        assert "level C" in text
        assert "occupancy" in text

    def test_counters_per_frame_scaling(self, params):
        bs = BackgroundSubtractor(SHAPE, params, level="C")
        _, report = bs.process(_frames(4))
        total = report.counters
        per_frame = report.counters_per_frame
        assert per_frame.transactions == pytest.approx(
            total.transactions / 4, rel=0.01
        )

    def test_total_time_includes_transfers(self, params):
        bs = BackgroundSubtractor(SHAPE, params, level="B")  # serial
        _, report = bs.process(_frames(4))
        assert report.total_time > report.kernel_time
