"""The centroid tracker: association, lifecycle, end-to-end trajectories."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.track import CentroidTracker, TrackerParams


def mask_with_blob(center, size=3, shape=(48, 64)):
    mask = np.zeros(shape, dtype=bool)
    r, c = center
    mask[max(r - size // 2, 0):r + size // 2 + 1,
         max(c - size // 2, 0):c + size // 2 + 1] = True
    return mask


class TestParams:
    @pytest.mark.parametrize("kw", [
        {"max_distance": 0.0}, {"max_misses": -1},
        {"min_hits": 0}, {"min_area": -1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            TrackerParams(**kw)


class TestLifecycle:
    def test_track_confirmed_after_min_hits(self):
        tracker = CentroidTracker(TrackerParams(min_hits=3))
        for t in range(3):
            active = tracker.update(mask_with_blob((10, 10 + 2 * t)))
        assert len(active) == 1
        assert active[0].confirmed
        assert active[0].hits == 3

    def test_tentative_track_not_reported(self):
        tracker = CentroidTracker(TrackerParams(min_hits=3))
        active = tracker.update(mask_with_blob((10, 10)))
        assert active == []
        assert len(tracker.tracks) == 1  # exists but tentative

    def test_track_dies_after_misses(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1, max_misses=2))
        tracker.update(mask_with_blob((10, 10)))
        empty = np.zeros((48, 64), dtype=bool)
        for _ in range(3):
            tracker.update(empty)
        assert not tracker.tracks[0].alive
        assert tracker.active_tracks == []

    def test_track_survives_short_occlusion(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1, max_misses=3))
        tracker.update(mask_with_blob((10, 10)))
        tracker.update(np.zeros((48, 64), dtype=bool))  # occluded
        active = tracker.update(mask_with_blob((10, 12)))
        assert len(active) == 1
        assert active[0].track_id == 1  # same identity

    def test_small_blobs_ignored(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1, min_area=10))
        active = tracker.update(mask_with_blob((10, 10), size=2))  # 4 px
        assert active == [] and tracker.tracks == []


class TestAssociation:
    def test_two_objects_two_tracks(self):
        tracker = CentroidTracker(TrackerParams(min_hits=2))
        for t in range(3):
            mask = (
                mask_with_blob((10, 10 + 2 * t))
                | mask_with_blob((38, 50 - 2 * t))
            )
            active = tracker.update(mask)
        assert len(active) == 2
        ids = {t.track_id for t in active}
        assert len(ids) == 2

    def test_gate_prevents_teleport_association(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1, max_distance=5.0))
        tracker.update(mask_with_blob((10, 10)))
        tracker.update(mask_with_blob((40, 55)))  # far away: new object
        assert len(tracker.tracks) == 2

    def test_velocity_prediction_holds_identity(self):
        """A fast mover is re-associated via its predicted position even
        when the raw jump exceeds a naive static gate."""
        tracker = CentroidTracker(TrackerParams(min_hits=1, max_distance=6.0))
        for t in range(5):
            tracker.update(mask_with_blob((10, 5 + 5 * t)))
        confirmed = [t for t in tracker.tracks if t.alive]
        assert len(confirmed) == 1
        assert confirmed[0].length == 5

    def test_equidistant_ties_break_by_track_id_then_blob_order(self):
        """Regression: with many equidistant track↔blob pairs, the
        association order came from an unstable sort of the distance
        matrix, so which track claimed which blob depended on numpy's
        introsort partitioning (matrix-size dependent) rather than on
        any documented key. Ties must break by (distance, track id,
        blob order), which a stable sort of the flattened matrix gives
        for free."""
        from repro.track import Track

        tracker = CentroidTracker(
            TrackerParams(min_hits=1, max_distance=30.0, min_area=4)
        )
        # Six tracks, all predicting the same point: every blob is
        # equidistant from every track (6-way ties per blob).
        for i in range(6):
            track = Track(track_id=i + 1)
            track.positions.append((10.5, 30.5))
            track.frames.append(0)
            track.hits = 1
            track.confirmed = True
            tracker.tracks.append(track)
        tracker._next_id = 7
        tracker.frame_index = 0
        # Six 2x2 blobs at strictly increasing distances from the
        # shared prediction (cols 33, 36, ..., 48 -> distances 3..18).
        cols = [33, 36, 39, 42, 45, 48]
        mask = np.zeros((48, 64), dtype=bool)
        for c in cols:
            mask[10:12, c:c + 2] = True
        tracker.update(mask, frame_index=1)
        # Stable tie-break: the closest blob goes to the lowest track
        # id, the next closest to the next id, and so on.
        for i, track in enumerate(tracker.tracks[:6]):
            assert track.misses == 0, f"track {track.track_id} unmatched"
            assert track.positions[-1][1] == pytest.approx(cols[i] + 0.5)
        assert len(tracker.tracks) == 6  # no spurious spawns

    def test_greedy_prefers_closest(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1))
        tracker.update(mask_with_blob((10, 10)) | mask_with_blob((10, 30)))
        tracker.update(mask_with_blob((10, 12)) | mask_with_blob((10, 28)))
        a, b = [t for t in tracker.tracks if t.alive]
        assert a.positions[-1][1] < 20  # track 1 stayed left
        assert b.positions[-1][1] > 20


class TestTrackGeometry:
    def test_velocity_and_prediction(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1))
        tracker.update(mask_with_blob((10, 10)))
        tracker.update(mask_with_blob((12, 14)))
        track = tracker.tracks[0]
        vr, vc = track.velocity
        assert vr == pytest.approx(2.0)
        assert vc == pytest.approx(4.0)
        # Last observation was frame 1; predicting frame 3 is dt=2.
        assert track.predict(3)[1] == pytest.approx(14 + 2 * 4.0)

    def test_displacement(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1))
        tracker.update(mask_with_blob((10, 10)))
        tracker.update(mask_with_blob((10, 20)))
        assert tracker.tracks[0].total_displacement() == pytest.approx(10.0)

    def test_summary_text(self):
        tracker = CentroidTracker(TrackerParams(min_hits=1))
        tracker.update(mask_with_blob((10, 10)))
        text = tracker.summary()
        assert "1 confirmed tracks" in text
        assert "track 1" in text


class TestEndToEnd:
    def test_tracks_scene_objects(self, params):
        """Full pipeline: subtract -> clean -> track on the evaluation
        scene; the two moving sprites become two long tracks."""
        from repro.mog import MoGVectorized
        from repro.post import MaskCleaner
        from repro.video.scenes import evaluation_scene

        shape = (96, 128)
        video = evaluation_scene(height=shape[0], width=shape[1])
        mog = MoGVectorized(shape, params, variant="nosort")
        cleaner = MaskCleaner(open_radius=0, close_radius=2, min_area=6)
        tracker = CentroidTracker(
            TrackerParams(max_distance=20.0, min_hits=3, min_area=6)
        )
        for t in range(45):
            mask = cleaner(mog.apply(video.frame(t)))
            if t >= 18:  # let the model converge first
                tracker.update(mask, frame_index=t)
        long_tracks = [
            t for t in tracker.tracks
            if t.confirmed and t.length >= 10 and t.total_displacement() > 15
        ]
        assert len(long_tracks) >= 2, tracker.summary()
