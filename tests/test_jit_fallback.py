"""Graceful degradation when numba is missing: ``backend="jit"`` must
warn, fall back to the cpu backend with bit-identical masks, and count
the event — never crash. The probe is forced off with monkeypatch so
these tests mean the same thing whether or not numba is installed.
"""

import numpy as np
import pytest

import repro.kernels.jit as jitmod
from repro.config import MoGParams, RunConfig, ServeConfig
from repro.core.subtractor import BackgroundSubtractor
from repro.errors import ConfigError, JitUnavailableError
from repro.kernels.jit import NumbaStatus
from repro.mog.jit import MoGJit
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (8, 10)
PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)


@pytest.fixture()
def no_numba(monkeypatch):
    monkeypatch.setattr(
        jitmod, "_NUMBA_STATUS", NumbaStatus(False, "forced off by test")
    )


def _frames(n, shape=SHAPE):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=3)
    return [video.frame(t) for t in range(n)]


class TestProbe:
    def test_forced_status_is_visible(self, no_numba):
        assert jitmod.numba_available() is False
        assert "forced off" in jitmod.numba_unavailable_reason()

    def test_reset_hook_reprobes(self, no_numba):
        jitmod._reset_numba_probe()
        # Re-probed from the real environment: reason is either None
        # (numba installed) or a real import failure, not our marker.
        reason = jitmod.numba_unavailable_reason()
        assert reason is None or "forced off" not in reason


class TestModelFallback:
    def test_auto_engine_raises_when_numba_missing(self, no_numba):
        with pytest.raises(JitUnavailableError, match="forced off"):
            MoGJit(SHAPE, PARAMS)

    def test_numba_engine_raises_when_numba_missing(self, no_numba):
        from repro.kernels.ir import BASE_SPEC

        with pytest.raises(JitUnavailableError):
            jitmod.KernelCache().get(
                BASE_SPEC, 4, "double", SHAPE, engine="numba"
            )

    def test_python_engine_unaffected(self, no_numba):
        jit = MoGJit(SHAPE, PARAMS, engine="python")
        mask = jit.apply(_frames(1)[0])
        assert mask.shape == SHAPE


class TestSubtractorFallback:
    def test_warns_counts_and_matches_cpu(self, no_numba):
        frames = _frames(6)
        tel = MetricsRegistry()
        with pytest.warns(RuntimeWarning, match="falling back"):
            jit = BackgroundSubtractor(
                SHAPE, PARAMS, level="F", backend="jit", telemetry=tel
            )
        assert jit.backend == "jit"  # what was asked for
        assert jit.active_backend == "cpu"  # what actually runs
        assert tel.snapshot()["counters"]["jit.fallbacks"] == 1
        cpu = BackgroundSubtractor(SHAPE, PARAMS, level="F", backend="cpu")
        for frame in frames:
            assert np.array_equal(jit.apply(frame), cpu.apply(frame))

    def test_fused_level_falls_back_with_full_outputs(self, no_numba):
        frames = _frames(5)
        with pytest.warns(RuntimeWarning):
            jit = BackgroundSubtractor(
                SHAPE, PARAMS, level="F+fusion", backend="jit"
            )
        cpu = BackgroundSubtractor(
            SHAPE, PARAMS, level="F+fusion", backend="cpu"
        )
        for frame in frames:
            assert np.array_equal(jit.apply(frame), cpu.apply(frame))
        assert np.array_equal(jit.shadow_map(), cpu.shadow_map())
        assert np.array_equal(jit.class_map(), cpu.class_map())

    def test_run_config_backend_selects_jit(self, no_numba):
        cfg = RunConfig(height=SHAPE[0], width=SHAPE[1], backend="jit")
        with pytest.warns(RuntimeWarning):
            bs = BackgroundSubtractor(SHAPE, PARAMS, run_config=cfg)
        assert bs.backend == "jit"
        assert bs.active_backend == "cpu"

    def test_report_error_names_active_backend(self, no_numba):
        with pytest.warns(RuntimeWarning):
            bs = BackgroundSubtractor(SHAPE, PARAMS, backend="jit")
        with pytest.raises(ConfigError, match="'cpu' backend"):
            bs.report()


class TestConfigValidation:
    def test_backends_tuple(self):
        from repro.config import BACKENDS

        assert BACKENDS == ("cpu", "sim", "jit")

    def test_run_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            RunConfig(backend="gpu")

    def test_serve_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            ServeConfig(backend="gpu")

    def test_subtractor_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            BackgroundSubtractor(SHAPE, PARAMS, backend="gpu")


class TestServerFallback:
    def test_serve_config_jit_serves_identical_masks(self, no_numba):
        from repro.serve import StreamServer

        shape = (16, 20)
        frames = _frames(8, shape=shape)

        def run(serve_cfg):
            server = StreamServer(
                shape, params=PARAMS,
                serve=serve_cfg,
            )
            try:
                server.add_stream("cam")
                for f in frames:
                    server.submit("cam", f)
                server.drain()
                return [r.mask for r in server.results("cam")]
            finally:
                server.close(drain=False)

        with pytest.warns(RuntimeWarning):
            jit_masks = run(ServeConfig(workers=1, backend="jit"))
        cpu_masks = run(ServeConfig(workers=1, backend="cpu"))
        assert len(jit_masks) == len(frames)
        for a, b in zip(jit_masks, cpu_masks):
            assert np.array_equal(a, b)
