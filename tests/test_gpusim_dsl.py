"""The kernel DSL and SIMT engine: functional semantics, divergence
accounting, masking, register tracking, error handling."""

import numpy as np
import pytest

from repro.errors import (
    KernelDivergenceError,
    LaunchError,
    MemoryModelError,
)
from repro.gpusim import SimtEngine


@pytest.fixture()
def engine():
    return SimtEngine()


def launch(engine, kernel, n=128, tpb=128, args=()):
    return engine.launch(kernel, grid_threads=n, threads_per_block=tpb, args=args)


class TestArithmetic:
    def test_elementwise_ops(self, engine):
        out = engine.memory.alloc("out", 64, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id().astype(np.float64)
            v = (t * 2.0 + 1.0 - 0.5) / 2.0
            ctx.store(out, ctx.thread_id(), v)

        launch(engine, kern, n=64, tpb=32, args=(out,))
        t = np.arange(64)
        assert np.allclose(out.data, (t * 2.0 + 0.5) / 2.0)

    def test_sqrt_abs_min_max(self, engine):
        out = engine.memory.alloc("out", 32, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id().astype(np.float64)
            v = ctx.sqrt(t) + abs(t - 16.0) + ctx.minimum(t, 4.0) + ctx.maximum(t, 30.0)
            ctx.store(out, ctx.thread_id(), v)

        launch(engine, kern, n=32, tpb=32, args=(out,))
        t = np.arange(32.0)
        expected = np.sqrt(t) + np.abs(t - 16) + np.minimum(t, 4) + np.maximum(t, 30)
        assert np.allclose(out.data, expected)

    def test_comparisons_and_logic(self, engine):
        out = engine.memory.alloc("out", 32, np.uint8)

        def kern(ctx, out):
            t = ctx.thread_id()
            p = (t < 10) | ((t >= 20) & ~(t.eq(25)))
            ctx.store(out, t, ctx.select(p, np.uint8(1), np.uint8(0)))

        launch(engine, kern, n=32, tpb=32, args=(out,))
        t = np.arange(32)
        expected = (t < 10) | ((t >= 20) & (t != 25))
        assert np.array_equal(out.data.astype(bool), expected)

    def test_select_is_lane_wise(self, engine):
        out = engine.memory.alloc("out", 32, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id()
            ctx.store(out, t, ctx.select(t < 16, 1.0, 2.0))

        launch(engine, kern, n=32, tpb=32, args=(out,))
        assert (out.data[:16] == 1.0).all() and (out.data[16:] == 2.0).all()


class TestControlFlow:
    def test_if_else_masking(self, engine):
        out = engine.memory.alloc("out", 64, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id()
            v = ctx.var(0.0, np.float64)
            with ctx.if_(t < 20):
                v.set(1.0)
            with ctx.else_():
                v.set(2.0)
            ctx.store(out, t, v.get())

        launch(engine, kern, n=64, tpb=32, args=(out,))
        assert (out.data[:20] == 1.0).all() and (out.data[20:] == 2.0).all()

    def test_nested_if(self, engine):
        out = engine.memory.alloc("out", 64, np.int64)

        def kern(ctx, out):
            t = ctx.thread_id()
            v = ctx.var(0, np.int64)
            with ctx.if_(t < 32):
                with ctx.if_(t < 16):
                    v.set(1)
                with ctx.else_():
                    v.set(2)
            with ctx.else_():
                v.set(3)
            ctx.store(out, t, v.get())

        launch(engine, kern, n=64, tpb=32, args=(out,))
        expected = np.where(np.arange(64) < 16, 1, np.where(np.arange(64) < 32, 2, 3))
        assert np.array_equal(out.data, expected)

    def test_mutvar_preserves_inactive_lanes(self, engine):
        out = engine.memory.alloc("out", 32, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id()
            v = ctx.var(7.0, np.float64)
            with ctx.if_(t < 4):
                v.set(1.0)
                v.set(v.get() + 1.0)  # two writes in the same branch
            ctx.store(out, t, v.get())

        launch(engine, kern, n=32, tpb=32, args=(out,))
        assert (out.data[:4] == 2.0).all() and (out.data[4:] == 7.0).all()

    def test_else_without_if_rejected(self, engine):
        def kern(ctx):
            with ctx.else_():
                pass

        with pytest.raises(KernelDivergenceError):
            launch(engine, kern)

    def test_else_binds_to_matching_depth(self, engine):
        out = engine.memory.alloc("out", 32, np.int64)

        def kern(ctx, out):
            t = ctx.thread_id()
            v = ctx.var(0, np.int64)
            with ctx.if_(t < 16):
                with ctx.if_(t < 8):
                    v.set(1)
                # no else for the inner if
            with ctx.else_():  # must pair with the OUTER if
                v.set(9)
            ctx.store(out, t, v.get())

        launch(engine, kern, n=32, tpb=32, args=(out,))
        assert (out.data[16:] == 9).all()
        assert (out.data[:8] == 1).all()
        assert (out.data[8:16] == 0).all()

    def test_loop_counts_match_range(self, engine):
        seen = []

        def kern(ctx):
            for i in ctx.loop(4):
                seen.append(i)

        launch(engine, kern)
        assert seen == [0, 1, 2, 3]

    def test_negative_loop_rejected(self, engine):
        def kern(ctx):
            for _ in ctx.loop(-1):
                pass

        with pytest.raises(KernelDivergenceError):
            launch(engine, kern)


class TestDivergenceCounters:
    def test_uniform_branch_not_divergent(self, engine):
        def kern(ctx):
            t = ctx.thread_id()
            with ctx.if_(t < 64):  # whole warps either side
                pass

        res = launch(engine, kern, n=128, tpb=32)
        assert res.counters.branches_total == 4
        assert res.counters.branches_divergent == 0
        assert res.counters.branch_efficiency == 1.0

    def test_intra_warp_split_is_divergent(self, engine):
        def kern(ctx):
            t = ctx.thread_id()
            with ctx.if_(t < 16):  # splits the first warp only
                pass

        res = launch(engine, kern, n=128, tpb=32)
        assert res.counters.branches_total == 4
        assert res.counters.branches_divergent == 1

    def test_every_warp_divergent(self, engine):
        def kern(ctx):
            t = ctx.thread_id()
            with ctx.if_((t % 2).eq(0)):
                pass

        res = launch(engine, kern, n=128, tpb=32)
        assert res.counters.branches_divergent == 4

    def test_issues_charged_per_participating_warp(self, engine):
        def kern(ctx):
            t = ctx.thread_id()
            with ctx.if_(t < 32):  # only warp 0 enters
                _ = t.astype(np.float64) * 2.0

        res = launch(engine, kern, n=128, tpb=32)
        # The multiply inside the branch is charged to one warp only.
        assert res.counters.warp_issues["fp64"] == 1

    def test_loop_branches_uniform(self, engine):
        def kern(ctx):
            for _ in ctx.loop(3):
                pass

        res = launch(engine, kern, n=64, tpb=32)
        assert res.counters.branches_total == 2 * 4  # (3+1) per warp
        assert res.counters.branches_divergent == 0


class TestMemoryAccounting:
    def test_load_store_efficiency(self, engine):
        buf = engine.memory.alloc_like("a", np.arange(64, dtype=np.float64))
        out = engine.memory.alloc("o", 64, np.float64)

        def kern(ctx, buf, out):
            t = ctx.thread_id()
            ctx.store(out, t, ctx.load(buf, t))

        res = launch(engine, kern, n=64, tpb=32, args=(buf, out))
        c = res.counters
        assert c.load_transactions == 4   # 2 per warp for doubles
        assert c.store_transactions == 4
        assert c.load_bytes_useful == 64 * 8
        assert c.memory_access_efficiency == pytest.approx(1.0)

    def test_strided_access_inefficient(self, engine):
        buf = engine.memory.alloc("a", 64 * 9, np.float64)

        def kern(ctx, buf):
            t = ctx.thread_id()
            _ = ctx.load(buf, t * 9)

        res = launch(engine, kern, n=64, tpb=32, args=(buf,))
        assert res.counters.memory_access_efficiency < 0.3

    def test_out_of_bounds_load_rejected(self, engine):
        buf = engine.memory.alloc("a", 10, np.float64)

        def kern(ctx, buf):
            _ = ctx.load(buf, ctx.thread_id())

        with pytest.raises(MemoryModelError, match="out-of-bounds"):
            launch(engine, kern, n=64, tpb=32, args=(buf,))

    def test_masked_lanes_do_not_access(self, engine):
        buf = engine.memory.alloc("a", 16, np.float64)

        def kern(ctx, buf):
            t = ctx.thread_id()
            with ctx.if_(t < 16):
                _ = ctx.load(buf, t)  # lanes >= 16 masked off: no OOB

        launch(engine, kern, n=64, tpb=32, args=(buf,))

    def test_padding_threads_inert(self, engine):
        buf = engine.memory.alloc("a", 40, np.float64)
        out = engine.memory.alloc("o", 40, np.float64)

        def kern(ctx, buf, out):
            t = ctx.thread_id()
            ctx.store(out, t, ctx.load(buf, t) + 1.0)

        # 40 threads pad to 64; tail lanes must neither fault nor store.
        res = launch(engine, kern, n=40, tpb=32, args=(buf, out))
        assert (out.data == 1.0).all()
        assert res.counters.load_bytes_useful == 40 * 8

    def test_store_respects_mask(self, engine):
        out = engine.memory.alloc("o", 32, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id()
            with ctx.if_(t < 5):
                ctx.store(out, t, 1.0)

        launch(engine, kern, n=32, tpb=32, args=(out,))
        assert out.data.sum() == 5.0


class TestSharedMemory:
    def test_roundtrip_within_block(self, engine):
        out = engine.memory.alloc("o", 64, np.float64)

        def kern(ctx, out):
            lane = ctx.lane_id()
            sh = ctx.shared_alloc("buf", 32, np.float64)
            ctx.shared_store(sh, lane, lane.astype(np.float64) * 3.0)
            ctx.syncthreads()
            # Read the reversed lane within the same block.
            ctx.store(out, ctx.thread_id(), ctx.shared_load(sh, 31 - lane))

        launch(engine, kern, n=64, tpb=32, args=(out,))
        expected = np.tile((31 - np.arange(32)) * 3.0, 2)
        assert np.array_equal(out.data, expected)

    def test_blocks_isolated(self, engine):
        out = engine.memory.alloc("o", 64, np.float64)

        def kern(ctx, out):
            lane = ctx.lane_id()
            blk = ctx.block_id()
            sh = ctx.shared_alloc("buf", 32, np.float64)
            ctx.shared_store(sh, lane, blk.astype(np.float64))
            ctx.store(out, ctx.thread_id(), ctx.shared_load(sh, lane))

        launch(engine, kern, n=64, tpb=32, args=(out,))
        assert (out.data[:32] == 0.0).all() and (out.data[32:] == 1.0).all()

    def test_capacity_enforced(self, engine):
        def kern(ctx):
            ctx.shared_alloc("big", 7000, np.float64)  # 56 KB > 48 KB

        with pytest.raises(MemoryModelError, match="shared memory"):
            launch(engine, kern, n=32, tpb=32)

    def test_duplicate_name_rejected(self, engine):
        def kern(ctx):
            ctx.shared_alloc("x", 8, np.float64)
            ctx.shared_alloc("x", 8, np.float64)

        with pytest.raises(MemoryModelError):
            launch(engine, kern, n=32, tpb=32)

    def test_shared_oob_rejected(self, engine):
        def kern(ctx):
            sh = ctx.shared_alloc("x", 8, np.float64)
            ctx.shared_store(sh, ctx.lane_id(), 0.0)

        with pytest.raises(MemoryModelError):
            launch(engine, kern, n=32, tpb=32)


class TestRegistersAndLaunch:
    def test_register_estimate_tracks_live_values(self, engine):
        def lean(ctx):
            t = ctx.thread_id().astype(np.float64)
            _ = t + 1.0

        def fat(ctx):
            t = ctx.thread_id().astype(np.float64)
            live = [t * float(i) for i in range(8)]  # 8 doubles live
            _ = sum(live[1:], live[0])

        lean_regs = launch(engine, lean).estimated_registers
        fat_regs = launch(engine, fat).estimated_registers
        assert fat_regs > lean_regs + 8

    def test_unbalanced_if_detected(self, engine):
        leaked = []  # keep the context manager alive past kernel return

        def kern(ctx):
            cm = ctx.if_(ctx.thread_id() < 4)
            cm.__enter__()  # never exited
            leaked.append(cm)

        with pytest.raises(KernelDivergenceError, match="unclosed"):
            launch(engine, kern)

    @pytest.mark.parametrize("n,tpb", [(0, 32), (64, 0), (64, 33), (64, 2048)])
    def test_launch_shape_validation(self, engine, n, tpb):
        with pytest.raises(LaunchError):
            engine.launch(lambda ctx: None, grid_threads=n, threads_per_block=tpb)

    def test_launch_result_geometry(self, engine):
        res = launch(engine, lambda ctx: None, n=100, tpb=32)
        assert res.num_blocks == 4
        assert res.grid_threads == 100
        assert res.num_warps == 4

    def test_launches_recorded(self, engine):
        launch(engine, lambda ctx: None)
        launch(engine, lambda ctx: None)
        assert len(engine.launches) == 2
