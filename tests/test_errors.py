"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "ConfigError", "LaunchError", "MemoryModelError",
        "KernelDivergenceError", "VideoError", "MetricError",
        "WorkerError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError), name


def test_value_error_compatibility():
    """Config and metric errors double as ValueError for idiomatic
    catching by callers that do not know this library."""
    assert issubclass(errors.ConfigError, ValueError)
    assert issubclass(errors.MetricError, ValueError)


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.LaunchError("nope")
