"""The stressor scenario suite and the model-quality matrix.

The scenarios are the quality side of the model-family axis: each
scene violates one background-model assumption while keeping exact
ground truth, and :mod:`repro.bench.quality` scores every
``(model, level, scenario)`` cell with F1 and MS-SSIM. CI runs a
reduced-resolution matrix and pins the DMSG static-scene F1 floor.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.quality import (
    MATRIX_LEVELS,
    MATRIX_MODELS,
    MATRIX_SCENARIOS,
    quality_cell,
    quality_matrix,
    write_matrix_json,
)
from repro.errors import ConfigError
from repro.video.scenes import (
    illumination_scene,
    jitter_scene,
    ptz_scene,
    rain_scene,
    shadow_scene,
    static_scene,
)

SHAPE = (48, 64)
BUILDERS = {
    "static": static_scene,
    "jitter": jitter_scene,
    "illumination": illumination_scene,
    "rain": rain_scene,
    "shadows": shadow_scene,
    "ptz": ptz_scene,
}


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
class TestStressorScenes:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_frames_and_truth_shape(self, name):
        video = BUILDERS[name](height=SHAPE[0], width=SHAPE[1])
        frame, truth = video.frame_with_truth(10)
        assert frame.shape == SHAPE and frame.dtype == np.uint8
        assert truth.shape == SHAPE and truth.dtype == np.bool_
        assert truth.any()  # the stressor targets are on screen

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_deterministic(self, name):
        a = BUILDERS[name](height=SHAPE[0], width=SHAPE[1])
        b = BUILDERS[name](height=SHAPE[0], width=SHAPE[1])
        for t in (0, 7, 23):
            fa, ta = a.frame_with_truth(t)
            fb, tb = b.frame_with_truth(t)
            assert np.array_equal(fa, fb), (name, t)
            assert np.array_equal(ta, tb), (name, t)

    def test_illumination_step_brightens_background(self):
        video = illumination_scene(height=SHAPE[0], width=SHAPE[1])
        before = float(video.background(39).mean())
        after = float(video.background(41).mean())
        assert after > before * 1.15

    def test_illumination_step_not_in_truth(self):
        video = illumination_scene(height=SHAPE[0], width=SHAPE[1])
        _, t39 = video.frame_with_truth(39)
        _, t41 = video.frame_with_truth(41)
        # Truth tracks the sprites only; the global step adds nothing.
        assert abs(int(t41.sum()) - int(t39.sum())) < t39.size // 4

    def test_rain_streaks_are_transient(self):
        rainy = rain_scene(height=SHAPE[0], width=SHAPE[1])
        calm = static_scene(height=SHAPE[0], width=SHAPE[1])
        # Rain brightens pixels that are background in both scenes and
        # never repeats: consecutive rain fields differ.
        f1, truth1 = rainy.frame_with_truth(5)
        f2, _ = rainy.frame_with_truth(6)
        assert not np.array_equal(f1, f2)
        assert truth1.mean() < 0.5  # streaks are not ground truth

    def test_shadows_darken_but_are_background(self):
        shadowed = shadow_scene(height=SHAPE[0], width=SHAPE[1])
        frame, truth = shadowed.frame_with_truth(12)
        # Shadow pixels are darker than the clean background but the
        # truth stays sprite-only, so raw-mask precision must pay.
        clean = shadowed.background(12)
        dark = (frame.astype(float) < clean - 20) & ~truth
        assert dark.any()


# ----------------------------------------------------------------------
# Quality matrix
# ----------------------------------------------------------------------
class TestQualityMatrix:
    def test_axes(self):
        assert MATRIX_MODELS == ("mog", "dmsg")
        assert MATRIX_LEVELS == ("A", "D", "F")
        assert set(MATRIX_SCENARIOS) == set(BUILDERS)

    def test_cell_scores(self):
        cell = quality_cell(
            "dmsg", "F", "static",
            shape=(32, 40), num_frames=10, warmup=4,
        )
        assert cell["model"] == "dmsg" and cell["level"] == "F"
        assert cell["frames_scored"] == 6
        for key in ("f1", "precision", "recall", "iou", "ms_ssim"):
            assert 0.0 <= cell[key] <= 1.0, key

    def test_cell_validation(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            quality_cell("mog", "F", "underwater")
        with pytest.raises(ConfigError, match="warmup"):
            quality_cell("mog", "F", "static", num_frames=5, warmup=5)

    def test_matrix_structure_and_json(self, tmp_path):
        matrix = quality_matrix(
            models=("dmsg",), levels=("F",), scenarios=("static",),
            shape=(32, 40), num_frames=10, warmup=4,
        )
        assert matrix["kind"] == "model_quality_matrix"
        assert len(matrix["cells"]) == 1
        path = write_matrix_json(tmp_path / "m.json", matrix)
        assert json.loads(path.read_text()) == matrix

    def test_models_experiment_registered(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        assert "models" in ALL_EXPERIMENTS


# ----------------------------------------------------------------------
# The committed artifact
# ----------------------------------------------------------------------
class TestCommittedMatrix:
    def test_committed_matrix_covers_acceptance_grid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "QUALITY_MATRIX.json"
        matrix = json.loads(path.read_text())
        assert matrix["kind"] == "model_quality_matrix"
        assert len(matrix["models"]) >= 2
        assert len(matrix["levels"]) >= 3
        assert len(matrix["scenarios"]) >= 4
        expected = (
            len(matrix["models"]) * len(matrix["levels"])
            * len(matrix["scenarios"])
        )
        assert len(matrix["cells"]) == expected
        for cell in matrix["cells"]:
            assert 0.0 <= cell["f1"] <= 1.0
            assert 0.0 <= cell["ms_ssim"] <= 1.0
