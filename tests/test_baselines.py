"""The multimodal-mean related-work baseline (§II)."""

import numpy as np
import pytest

from repro.baselines import MultimodalMeanParams, MultimodalMeanVectorized
from repro.errors import ConfigError
from repro.video.scenes import evaluation_scene

SHAPE = (24, 32)


class TestParams:
    @pytest.mark.parametrize("kw", [
        {"max_cells": 0}, {"max_cells": 9}, {"epsilon": 0.0},
        {"background_fraction": 0.0}, {"background_fraction": 1.0},
        {"decay_period": 0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            MultimodalMeanParams(**kw)


class TestAlgorithm:
    def test_constant_scene_background(self):
        mmm = MultimodalMeanVectorized(SHAPE)
        frame = np.full(SHAPE, 80, dtype=np.uint8)
        for _ in range(5):
            mask = mmm.apply(frame)
        assert not mask.any()

    def test_step_change_foreground_then_absorbed(self):
        mmm = MultimodalMeanVectorized(SHAPE)
        a = np.full(SHAPE, 40, dtype=np.uint8)
        b = np.full(SHAPE, 200, dtype=np.uint8)
        for _ in range(6):
            mmm.apply(a)
        assert mmm.apply(b).all()
        for _ in range(12):
            last = mmm.apply(b)
        assert not last.any()

    def test_bimodal_pixels_grow_two_cells(self):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mmm = MultimodalMeanVectorized(SHAPE)
        for t in range(40):
            mmm.apply(video.frame(t))
        live = mmm.live_cells()
        assert live.mean() > 1.3  # the bimodal 90% of pixels split
        assert live.max() <= mmm.params.max_cells

    def test_variable_cost_early_exit(self):
        """Most pixels resolve at the first cell — the CPU advantage."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mmm = MultimodalMeanVectorized(SHAPE)
        for t in range(30):
            mmm.apply(video.frame(t))
        per_pixel = mmm.thread_scan_cells / (30 * mmm.num_pixels)
        assert per_pixel < mmm.params.max_cells * 0.6

    def test_warp_cost_exceeds_thread_cost(self):
        """...and the SIMT view erodes it: lane-slots executed per warp
        exceed the useful per-thread work (the paper's §II argument)."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mmm = MultimodalMeanVectorized(SHAPE)
        for t in range(30):
            mmm.apply(video.frame(t))
        assert mmm.warp_scan_cells > mmm.thread_scan_cells

    def test_decay_ages_out_stale_modes(self):
        p = MultimodalMeanParams(decay_period=4)
        mmm = MultimodalMeanVectorized(SHAPE, p)
        a = np.full(SHAPE, 40, dtype=np.uint8)
        b = np.full(SHAPE, 200, dtype=np.uint8)
        for _ in range(8):
            mmm.apply(a)
        for _ in range(30):
            mmm.apply(b)
        # The old mode's cell decays to low counts vs the new one's.
        live = mmm.live_cells()
        best = mmm.counts.max(axis=0)
        total = mmm.counts.sum(axis=0)
        assert (best / np.maximum(total, 1)).min() > 0.6

    def test_counts_never_negative(self):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mmm = MultimodalMeanVectorized(SHAPE, MultimodalMeanParams(decay_period=3))
        for t in range(20):
            mmm.apply(video.frame(t))
        assert (mmm.counts >= 0).all()
        assert np.isfinite(mmm.sums).all()

    def test_background_image(self):
        mmm = MultimodalMeanVectorized(SHAPE)
        frame = np.full(SHAPE, 123, dtype=np.uint8)
        for _ in range(4):
            mmm.apply(frame)
        assert np.allclose(mmm.background_image(), 123.0, atol=1.0)

    def test_api_validation(self):
        mmm = MultimodalMeanVectorized(SHAPE)
        with pytest.raises(ConfigError):
            mmm.apply(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ConfigError):
            mmm.apply_sequence([])
        with pytest.raises(ConfigError):
            MultimodalMeanVectorized(SHAPE).background_image()
        with pytest.raises(ConfigError):
            MultimodalMeanVectorized((0, 4))

    def test_detects_objects_on_scene(self):
        from repro.metrics import foreground_score

        video = evaluation_scene(height=48, width=64)
        mmm = MultimodalMeanVectorized((48, 64))
        score = None
        for t in range(40):
            frame, truth = video.frame_with_truth(t)
            mask = mmm.apply(frame)
            if t >= 30:
                s = foreground_score(mask, truth)
                score = s if score is None else score + s
        assert score.recall > 0.4
