"""MixtureState container behaviour."""

import numpy as np
import pytest

from repro.config import MoGParams
from repro.errors import ConfigError
from repro.mog import MixtureState


def _state(k=3, n=8, dtype=np.float64):
    w = np.linspace(0.1, 1.0, k * n).reshape(k, n).astype(dtype)
    m = np.arange(k * n, dtype=dtype).reshape(k, n)
    sd = np.full((k, n), 5.0, dtype=dtype)
    return MixtureState(w, m, sd)


class TestConstruction:
    def test_properties(self):
        st = _state()
        assert st.num_gaussians == 3
        assert st.num_pixels == 8
        assert st.dtype == np.float64

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MixtureState(np.zeros((3, 8)), np.zeros((3, 7)), np.zeros((3, 8)))

    def test_rank_validated(self):
        with pytest.raises(ConfigError):
            MixtureState(np.zeros(8), np.zeros(8), np.zeros(8))

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MixtureState(
                np.zeros((2, 4), dtype=np.float32),
                np.zeros((2, 4)),
                np.zeros((2, 4)),
            )


class TestFromFirstFrame:
    def test_component_zero_owns_frame(self):
        frame = np.arange(12, dtype=np.uint8).reshape(3, 4)
        st = MixtureState.from_first_frame(frame, MoGParams())
        assert np.array_equal(st.m[0], frame.reshape(-1))
        assert (st.w[0] == 1.0).all()
        assert (st.w[1:] == 0.0).all()

    def test_unused_means_never_match(self):
        """Spare components must not accidentally match 0..255 pixels."""
        frame = np.zeros((2, 2), dtype=np.uint8)
        p = MoGParams()
        st = MixtureState.from_first_frame(frame, p)
        for k in range(1, p.num_gaussians):
            assert (np.abs(st.m[k]) > p.match_threshold * p.initial_sd).all()

    def test_dtype_selection(self):
        frame = np.zeros((2, 2), dtype=np.uint8)
        st = MixtureState.from_first_frame(frame, MoGParams(), "float")
        assert st.dtype == np.float32


class TestOps:
    def test_copy_is_deep(self):
        st = _state()
        cp = st.copy()
        cp.w[0, 0] = 99.0
        assert st.w[0, 0] != 99.0

    def test_astype(self):
        st = _state().astype("float")
        assert st.dtype == np.float32

    def test_background_image_picks_heaviest(self):
        st = _state(k=2, n=4)
        st.w[0] = [0.9, 0.1, 0.9, 0.1]
        st.w[1] = [0.1, 0.9, 0.1, 0.9]
        st.m[0] = [10, 20, 30, 40]
        st.m[1] = [50, 60, 70, 80]
        bg = st.background_image((2, 2))
        assert bg.reshape(-1).tolist() == [10, 60, 30, 80]

    def test_background_image_clipped(self):
        st = _state(k=1, n=1)
        st.m[0] = [400.0]
        assert st.background_image((1, 1))[0, 0] == 255.0

    def test_background_shape_validation(self):
        with pytest.raises(ConfigError):
            _state(n=8).background_image((3, 3))

    def test_permute(self):
        st = _state(k=3, n=2)
        order = np.array([[2, 0], [0, 1], [1, 2]])
        w0 = st.w.copy()
        st.permute(order)
        assert st.w[0, 0] == w0[2, 0]
        assert st.w[0, 1] == w0[0, 1]
        assert st.w[2, 1] == w0[2, 1]

    def test_permute_shape_validation(self):
        with pytest.raises(ConfigError):
            _state().permute(np.zeros((2, 8), dtype=int))

    def test_allclose(self):
        st = _state()
        other = st.copy()
        assert st.allclose(other)
        other.m[0, 0] += 1.0
        assert not st.allclose(other)
