"""The pinned scalar update semantics (repro.mog.update) — the single
source of truth every implementation mirrors."""

import math

import pytest

from repro.config import MoGParams
from repro.mog.update import ScalarComponent, update_pixel

P = MoGParams()
ALPHA = 1.0 - P.learning_rate


def comp(w=1.0, m=100.0, sd=5.0):
    return ScalarComponent(w, m, sd)


def components(*cs):
    return [ScalarComponent(c.w, c.m, c.sd) for c in cs]


class TestMatch:
    def test_exact_pixel_matches(self):
        cs = [comp()]
        fg = update_pixel(100.0, cs, P)
        assert not fg
        assert cs[0].w == pytest.approx(ALPHA * 1.0 + (1 - ALPHA))

    def test_match_boundary_is_exclusive(self):
        # diff == Gamma1 * sd exactly -> no match.
        cs = [comp(m=100.0, sd=4.0)]
        fg = update_pixel(110.0, cs, P)  # diff = 10 = 2.5 * 4
        assert fg
        assert cs[0].w < 1.0  # decayed, virtual component replaced it? (single comp)

    def test_matched_mean_moves_toward_pixel(self):
        cs = [comp(m=100.0)]
        update_pixel(104.0, cs, P)
        assert 100.0 < cs[0].m < 104.0

    def test_nonmatch_decays_weight_only(self):
        far = comp(w=0.5, m=100.0, sd=5.0)
        near = comp(w=0.5, m=10.0, sd=5.0)
        cs = [near, far]
        update_pixel(10.0, cs, P, sort=False)
        assert cs[1].w == pytest.approx(0.5 * ALPHA)
        assert cs[1].m == 100.0 and cs[1].sd == 5.0  # untouched

    def test_sd_floor_enforced(self):
        cs = [comp(m=100.0, sd=P.sd_floor)]
        for _ in range(50):
            update_pixel(100.0, cs, P)
        assert cs[0].sd >= P.sd_floor

    def test_sd_grows_with_spread(self):
        cs = [comp(m=100.0, sd=5.0)]
        update_pixel(110.0, cs, P, sort=False)  # diff 10 < 12.5: match
        assert cs[0].sd > 5.0


class TestVirtualComponent:
    def test_created_on_total_miss(self):
        cs = components(comp(w=0.6, m=10.0), comp(w=0.3, m=50.0), comp(w=0.1, m=90.0))
        fg = update_pixel(200.0, cs, P, sort=False)
        assert fg  # fresh component has w < Gamma2
        weakest = min(cs, key=lambda c: c.w)
        # The weakest slot (index 2, after decay) was replaced.
        assert cs[2].m == 200.0
        assert cs[2].sd == P.initial_sd
        assert cs[2].w == P.initial_weight
        assert weakest is cs[2]

    def test_tie_breaks_to_lowest_index(self):
        cs = components(comp(w=0.1, m=10.0), comp(w=0.1, m=50.0))
        update_pixel(200.0, cs, P, sort=False)
        assert cs[0].m == 200.0  # first minimum wins
        assert cs[1].m == 50.0

    def test_repeated_pixel_becomes_background(self):
        """A persistent new mode is absorbed within ~1/lr frames."""
        p = MoGParams(learning_rate=0.1)
        cs = components(comp(w=1.0, m=10.0, sd=5.0), comp(w=0.0, m=-1000.0), comp(w=0.0, m=-2000.0))
        results = [update_pixel(200.0, cs, p, sort=False) for _ in range(40)]
        assert results[0] is True
        assert results[-1] is False


class TestForegroundRule:
    def test_low_weight_match_is_foreground(self):
        cs = [comp(w=0.05, m=100.0)]
        assert update_pixel(100.0, cs, P) is True

    def test_uses_post_update_weight(self):
        # Weight just below Gamma2 crosses it via the matched update.
        w0 = (P.background_weight - (1 - ALPHA)) / ALPHA + 1e-6
        cs = [comp(w=w0, m=100.0)]
        assert update_pixel(100.0, cs, P) is False

    @pytest.mark.parametrize("x_offset", [0.0, 5.0, 9.95, 10.05, 60.0])
    def test_recompute_diff_never_changes_decision(self, x_offset):
        """The regopt (level F) foreground rule is decision-equivalent
        to the stored-diff rule (proof in repro.mog.update, step 6):
        probe pixels straddling every regime — deep match, borderline
        match (the threshold is 2.5 * 4 = 10 here), and total miss."""
        p = MoGParams(learning_rate=0.3, sd_floor=1.0)
        x = 100.0 + x_offset
        plain = [comp(w=1.0, m=100.0, sd=4.0)]
        reopt = [comp(w=1.0, m=100.0, sd=4.0)]
        fg_plain = update_pixel(x, plain, p, recompute_diff=False, sort=False)
        fg_reopt = update_pixel(x, reopt, p, recompute_diff=True, sort=False)
        assert fg_plain == fg_reopt

    def test_foreground_when_nothing_qualifies(self):
        cs = components(comp(w=0.01, m=0.0), comp(w=0.01, m=50.0))
        assert update_pixel(255.0, cs, P) is True


class TestSort:
    def test_sorted_by_rank_descending(self):
        cs = components(
            comp(w=0.2, m=10.0, sd=10.0),   # rank 0.02
            comp(w=0.9, m=200.0, sd=5.0),   # rank 0.18
        )
        update_pixel(10.0, cs, P, sort=True)
        ranks = [c.w / c.sd for c in cs]
        assert ranks == sorted(ranks, reverse=True)

    def test_sort_stable_on_ties(self):
        cs = components(
            comp(w=0.4, m=10.0, sd=4.0),
            comp(w=0.4, m=20.0, sd=4.0),
        )
        # Pixel matches neither strongly; pick one far away so both decay
        # equally and ranks stay tied.
        update_pixel(200.0, cs, P, sort=True)
        non_virtual = [c for c in cs if c.m in (10.0, 20.0)]
        assert non_virtual  # tie survivors keep relative order
        if len(non_virtual) == 2:
            assert non_virtual[0].m == 10.0

    def test_sort_false_keeps_order(self):
        cs = components(
            comp(w=0.1, m=10.0, sd=10.0),
            comp(w=0.9, m=10.0, sd=5.0),
        )
        update_pixel(10.0, cs, P, sort=False)
        assert cs[0].w < cs[1].w  # low-rank first, untouched order

    def test_sort_does_not_change_decision(self):
        for x in (10.0, 90.0, 200.0):
            a = components(comp(w=0.5, m=10.0), comp(w=0.4, m=90.0), comp(w=0.1, m=170.0))
            b = components(comp(w=0.5, m=10.0), comp(w=0.4, m=90.0), comp(w=0.1, m=170.0))
            assert update_pixel(x, a, P, sort=True) == update_pixel(x, b, P, sort=False)


class TestNumericalDetails:
    def test_rho_clamped_for_tiny_weights(self):
        cs = [comp(w=1e-12, m=100.0, sd=5.0)]
        update_pixel(100.0, cs, P, sort=False)
        assert math.isfinite(cs[0].m)
        assert cs[0].m == pytest.approx(100.0)

    def test_weight_stays_in_unit_interval(self):
        cs = [comp(w=1.0, m=100.0, sd=5.0)]
        for _ in range(100):
            update_pixel(100.0, cs, P, sort=False)
        assert 0.0 < cs[0].w <= 1.0
