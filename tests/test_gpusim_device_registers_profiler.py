"""Device specs, the pinned register model, counters, and the profiler."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim import (
    TESLA_C2075,
    XEON_E5_2620,
    KernelCounters,
    Profiler,
    SimtEngine,
)
from repro.gpusim.device import hw_config_table
from repro.gpusim.profiler import format_reports
from repro.gpusim.registers import pinned_registers


class TestDeviceSpecs:
    def test_c2075_headline_numbers(self):
        dev = TESLA_C2075
        assert dev.total_cores == 448
        assert dev.num_sms == 14
        assert dev.shared_mem_per_sm == 48 * 1024
        assert dev.registers_per_sm == 32768
        assert dev.mem_bandwidth == 144e9

    def test_replace(self):
        dev = TESLA_C2075.replace(num_sms=16)
        assert dev.num_sms == 16
        assert TESLA_C2075.num_sms == 14

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            TESLA_C2075.replace(num_sms=0)
        with pytest.raises(ConfigError):
            TESLA_C2075.replace(max_threads_per_sm=10_000)

    def test_cpu_spec(self):
        assert XEON_E5_2620.cores == 6
        assert XEON_E5_2620.clock_hz == 2.5e9

    def test_table_i_rows(self):
        rows = dict((r[0], (r[1], r[2])) for r in hw_config_table())
        assert rows["Cores"] == ("6", "448")
        assert "GFLOPS" in rows["FLOPS (single)"][0]
        assert "TFLOPS" in rows["FLOPS (single)"][1]


class TestPinnedRegisters:
    def test_paper_values_3g_double(self):
        expected = {"A": 30, "B": 36, "C": 36, "D": 32, "E": 33, "F": 31}
        for level, regs in expected.items():
            assert pinned_registers(level, 3, "double") == regs, level

    def test_float_halves_fp_width(self):
        for level in "ABCDEF":
            d = pinned_registers(level, 3, "double")
            f = pinned_registers(level, 3, "float")
            assert f < d

    def test_more_gaussians_more_registers(self):
        for level in "ABCDEF":
            assert pinned_registers(level, 5) > pinned_registers(level, 3)

    def test_unknown_level(self):
        with pytest.raises(ConfigError):
            pinned_registers("Z")

    def test_bad_gaussians(self):
        with pytest.raises(ConfigError):
            pinned_registers("A", 0)


class TestCounters:
    def test_add_and_scaled(self):
        a = KernelCounters()
        a.warp_issues["fp64"] = 10
        a.load_transactions = 4
        a.load_bytes_useful = 256
        a.branches_total = 8
        a.branches_divergent = 2
        b = a.copy()
        b.add(a)
        assert b.warp_issues["fp64"] == 20
        assert b.load_transactions == 8
        half = b.scaled(0.5)
        assert half.warp_issues["fp64"] == 10
        assert half.branches_divergent == 2

    def test_scaling_preserves_ratios(self):
        c = KernelCounters()
        c.load_transactions = 100
        c.load_bytes_useful = 6400
        c.branches_total = 50
        c.branches_divergent = 5
        s = c.scaled(7.0)
        assert s.memory_access_efficiency == pytest.approx(
            c.memory_access_efficiency
        )
        assert s.branch_efficiency == pytest.approx(c.branch_efficiency)

    def test_efficiencies_with_no_activity(self):
        c = KernelCounters()
        assert c.memory_access_efficiency == 1.0
        assert c.branch_efficiency == 1.0

    def test_plus_operator_fresh_object(self):
        a = KernelCounters()
        a.thread_instructions = 3
        b = KernelCounters()
        b.thread_instructions = 4
        c = a + b
        assert c.thread_instructions == 7
        assert a.thread_instructions == 3


class TestProfiler:
    def _launch(self):
        engine = SimtEngine()
        buf = engine.memory.alloc_like("a", np.arange(256, dtype=np.float64))
        out = engine.memory.alloc("o", 256, np.float64)

        def kern(ctx, buf, out):
            t = ctx.thread_id()
            ctx.store(out, t, ctx.load(buf, t) * 2.0)

        return engine.launch(kern, 256, 128, args=(buf, out))

    def test_report_defaults_to_estimated_registers(self):
        launch = self._launch()
        rep = Profiler().report(launch)
        assert rep.registers_per_thread == launch.estimated_registers

    def test_report_with_pinned_registers(self):
        rep = Profiler().report(self._launch(), registers_per_thread=31)
        assert rep.registers_per_thread == 31
        assert rep.occupancy.occupancy == pytest.approx(8 * 4 / 48)

    def test_metrics_keys(self):
        rep = Profiler().report(self._launch(), 31)
        m = rep.metrics()
        for key in ("branch_efficiency", "memory_access_efficiency",
                    "occupancy", "time_s", "registers_per_thread"):
            assert key in m

    def test_format_reports(self):
        rep = Profiler().report(self._launch(), 31)
        text = format_reports([rep])
        assert "kern" in text
        assert "mem_eff" in text

    def test_format_empty(self):
        assert "kernel" in format_reports([])
