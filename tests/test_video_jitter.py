"""Camera jitter: the generator knob and MoG's fixed-camera assumption."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.mog import MoGVectorized
from repro.video.synthetic import SceneConfig, SyntheticVideo, _shift_replicate


class TestShiftReplicate:
    def test_identity(self):
        img = np.arange(12.0).reshape(3, 4)
        assert _shift_replicate(img, 0, 0) is img

    def test_shift_down_right(self):
        img = np.arange(9.0).reshape(3, 3)
        out = _shift_replicate(img, 1, 1)
        assert out[1, 1] == img[0, 0]
        assert out[0, 0] == img[0, 0]  # replicated corner

    def test_shift_up_left(self):
        img = np.arange(9.0).reshape(3, 3)
        out = _shift_replicate(img, -1, -1)
        assert out[0, 0] == img[1, 1]
        assert out[2, 2] == img[2, 2]

    def test_preserves_dtype_and_shape(self):
        img = np.ones((4, 5), dtype=bool)
        out = _shift_replicate(img, 2, -1)
        assert out.shape == img.shape and out.dtype == img.dtype


class TestJitterConfig:
    def test_negative_rejected(self):
        with pytest.raises(VideoError):
            SceneConfig(height=16, width=16, jitter_px=-1)

    def test_oversized_rejected(self):
        with pytest.raises(VideoError):
            SceneConfig(height=8, width=8, jitter_px=8)

    def test_zero_jitter_unchanged(self):
        a = SyntheticVideo(SceneConfig(height=16, width=16, seed=3))
        b = SyntheticVideo(SceneConfig(height=16, width=16, seed=3, jitter_px=0))
        assert np.array_equal(a.frame(5), b.frame(5))

    def test_jitter_moves_the_frame(self):
        cfg = SceneConfig(
            height=32, width=32, noise_sd=0.0, jitter_px=3, seed=1
        )
        video = SyntheticVideo(cfg)
        frames = [video.frame(t).astype(float) for t in range(6)]
        diffs = [np.abs(a - b).mean() for a, b in zip(frames, frames[1:])]
        assert max(diffs) > 0.5  # the scene visibly moves

    def test_jitter_deterministic(self):
        cfg = SceneConfig(height=16, width=16, jitter_px=2, seed=7)
        a, b = SyntheticVideo(cfg), SyntheticVideo(cfg)
        assert np.array_equal(a.frame(4), b.frame(4))


class TestFixedCameraAssumption:
    def test_jitter_floods_mog_with_false_positives(self, params):
        """The reason the paper (and MoG deployments generally) demand
        a fixed camera: a couple of pixels of shake turns edges into
        permanent foreground."""
        def false_positive_rate(jitter):
            cfg = SceneConfig(
                height=48, width=48, noise_sd=2.0,
                background_smoothness=6,  # busy texture: worst case
                jitter_px=jitter, seed=2,
            )
            video = SyntheticVideo(cfg)
            mog = MoGVectorized((48, 48), params)
            rates = [mog.apply(video.frame(t)).mean() for t in range(25)]
            # No true foreground exists: every sustained hit is false.
            return float(np.mean(rates[-5:]))

        steady = false_positive_rate(0)
        shaken = false_positive_rate(4)
        assert steady < 0.005
        assert shaken > 0.015
        # Interestingly, MoG *absorbs* mild (1 px) shake into its
        # multimodal background — the degradation is nonlinear:
        mild = false_positive_rate(1)
        assert mild < shaken / 5
