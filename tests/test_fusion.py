"""The fusion pass: bit-identity against the unfused oracles, counter
deltas, fused analytics, and stage/pass validation."""

import numpy as np
import pytest

from repro.config import FusionParams, RunConfig
from repro.core.pipeline import HostPipeline
from repro.core.subtractor import BackgroundSubtractor
from repro.core.variants import (
    OptimizationLevel,
    custom_level,
    resolve_level_spec,
)
from repro.errors import ConfigError
from repro.kernels.fusion import (
    CLASS_BACKGROUND,
    CLASS_FOREGROUND,
    CLASS_SHADOW,
    check_fused_buffers,
)
from repro.kernels.ir import (
    FUSED_STAGES,
    FusionPass,
    apply_passes,
    canonical_fused_stages,
    spec_for_level,
)
from repro.post.analytics import (
    integral_histogram,
    occupancy_heatmap,
    region_counts,
)
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (24, 48)


def scene_frames(n, seed=5):
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1], seed=seed)
    return [video.frame(t) for t in range(n)]


def run_config(dtype="double", **kw):
    return RunConfig(height=SHAPE[0], width=SHAPE[1], dtype=dtype, **kw)


# ----------------------------------------------------------------------
# Bit-identity: fused sim kernels vs the CPU (NumPy) oracle
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("dtype", ["double", "float"])
    @pytest.mark.parametrize("level", list("ABCDEFG"))
    def test_sim_matches_cpu_oracle(self, level, dtype, params):
        frames = scene_frames(9)
        sim = BackgroundSubtractor(
            SHAPE, params, level=f"{level}+fusion", backend="sim",
            run_config=run_config(dtype), profile_every=8,
        )
        cpu = BackgroundSubtractor(
            SHAPE, params, level=f"{level}+fusion", backend="cpu",
            run_config=run_config(dtype),
        )
        sim_masks, _ = sim.process(frames)
        cpu_masks, _ = cpu.process(frames)
        assert np.array_equal(sim_masks, cpu_masks), (level, dtype)
        assert np.array_equal(sim.shadow_map(), cpu.shadow_map())
        assert np.array_equal(sim.class_map(), cpu.class_map())
        # Histogram totals: the integral histogram's far corner is the
        # whole-frame class count.
        hist = integral_histogram(sim.class_map())
        counts = np.bincount(sim.class_map().ravel(), minlength=3)
        assert np.array_equal(hist[:, -1, -1], counts)

    @pytest.mark.parametrize("dtype", ["double", "float"])
    def test_fused_matches_unfused_post_chain(self, dtype, params):
        """The fused kernel and the standalone post-kernel chain must
        agree bit for bit — and the fused run must move strictly fewer
        global-memory transactions."""
        frames = scene_frames(8)
        rc = run_config(dtype, profile_every=1)
        unfused = HostPipeline(
            SHAPE, params, level="F", run_config=rc,
            post_stages=FUSED_STAGES,
        )
        fused = HostPipeline(
            SHAPE, params, level=resolve_level_spec("F+fusion"),
            run_config=rc,
        )
        masks_u, rep_u = unfused.process(frames)
        masks_f, rep_f = fused.process(frames)
        assert np.array_equal(masks_u, masks_f)
        assert np.array_equal(unfused.shadow_map(), fused.shadow_map())
        assert np.array_equal(unfused.class_map(), fused.class_map())
        assert rep_f.counters.transactions < rep_u.counters.transactions

    @pytest.mark.parametrize("stages", [
        ("threshold",),
        ("shadow",),
        ("threshold", "histogram"),
    ])
    def test_stage_subsets_agree(self, stages, params):
        """Partial fusions (ablation subsets) also match the chain."""
        frames = scene_frames(7)
        rc = run_config(profile_every=1)
        unfused = HostPipeline(
            SHAPE, params, level="F", run_config=rc, post_stages=stages,
        )
        fused = HostPipeline(
            SHAPE, params,
            level=custom_level(
                OptimizationLevel.F.spec.passes + (FusionPass(stages),),
                name="F+" + "+".join(stages),
            ),
            run_config=rc,
        )
        masks_u, rep_u = unfused.process(frames)
        masks_f, rep_f = fused.process(frames)
        assert np.array_equal(masks_u, masks_f)
        if "shadow" in stages:
            assert np.array_equal(unfused.shadow_map(), fused.shadow_map())
        if "histogram" in stages:
            assert np.array_equal(unfused.class_map(), fused.class_map())
        assert rep_f.counters.transactions < rep_u.counters.transactions


# ----------------------------------------------------------------------
# Edge-case scenes
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_all_background_frame(self, params):
        flat = np.full(SHAPE, 100, np.uint8)
        bs = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="sim",
        )
        for _ in range(6):
            mask = bs.apply(flat)
        assert not mask.any()
        assert not bs.shadow_map().any()
        assert (bs.class_map() == CLASS_BACKGROUND).all()
        assert (bs.fused_analytics()["occupancy"] == 0.0).all()

    def test_all_foreground_frame(self, params):
        flat = np.full(SHAPE, 40, np.uint8)
        bs = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="sim",
        )
        for _ in range(6):
            bs.apply(flat)
        mask = bs.apply(np.full(SHAPE, 255, np.uint8))
        assert mask.all()
        assert not bs.shadow_map().any()  # 255/40 is no dimming
        assert (bs.class_map() == CLASS_FOREGROUND).all()
        assert (bs.fused_analytics()["occupancy"] == 1.0).all()

    def test_empty_post_cleanup_mask(self, params):
        """A cleaner that wipes the mask must leave the analytics
        well-defined (all-zero occupancy), not crash them."""
        from repro.post.morphology import MaskCleaner

        bs = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="cpu",
        )
        for frame in scene_frames(8):
            mask = bs.apply(frame)
        cleaned = MaskCleaner(min_area=SHAPE[0] * SHAPE[1] + 1)(mask)
        assert not cleaned.any()
        assert (occupancy_heatmap(cleaned) == 0.0).all()

    @pytest.mark.parametrize("backend", ["sim", "cpu"])
    def test_shadow_heavy_scene(self, backend, params):
        """A dimmed copy of the background is shadow (removed from the
        mask); a bright object stays foreground."""
        base = np.full(SHAPE, 120, np.uint8)
        bs = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend=backend,
        )
        for _ in range(20):
            bs.apply(base)
        test = base.copy()
        test[8:16, 8:24] = 84    # ratio 0.7: inside the shadow band
        test[4:8, 30:40] = 250   # brightened: genuine foreground
        mask = bs.apply(test)
        shadow = bs.shadow_map()
        classes = bs.class_map()
        assert shadow[8:16, 8:24].all()
        assert not mask[8:16, 8:24].any()  # suppressed from the mask
        assert mask[4:8, 30:40].all()
        assert not shadow[4:8, 30:40].any()
        assert (classes[8:16, 8:24] == CLASS_SHADOW).all()
        assert (classes[4:8, 30:40] == CLASS_FOREGROUND).all()
        counts = bs.fused_analytics()["region_counts"]
        assert counts.sum() == SHAPE[0] * SHAPE[1]
        assert counts[:, :, CLASS_SHADOW].sum() == int(shadow.sum())


# ----------------------------------------------------------------------
# Fused analytics and telemetry
# ----------------------------------------------------------------------
class TestAnalytics:
    def test_region_counts_partition_the_frame(self):
        rng = np.random.default_rng(0)
        classes = rng.integers(0, 3, size=SHAPE).astype(np.uint8)
        counts = region_counts(classes, grid=(3, 5))
        assert counts.shape == (3, 5, 3)
        assert counts.sum() == SHAPE[0] * SHAPE[1]
        totals = np.bincount(classes.ravel(), minlength=3)
        assert np.array_equal(counts.sum(axis=(0, 1)), totals)

    def test_occupancy_bounds_and_values(self):
        mask = np.zeros(SHAPE, bool)
        mask[: SHAPE[0] // 2] = True  # top half foreground
        occ = occupancy_heatmap(mask, grid=(2, 2))
        assert occ.shape == (2, 2)
        assert np.allclose(occ[0], 1.0) and np.allclose(occ[1], 0.0)

    def test_grid_must_fit_the_frame(self):
        mask = np.zeros(SHAPE, bool)
        with pytest.raises(ConfigError):
            occupancy_heatmap(mask, grid=(SHAPE[0] + 1, 2))
        with pytest.raises(ConfigError):
            occupancy_heatmap(mask, grid=(0, 2))

    def test_telemetry_keys(self, params):
        telemetry = MetricsRegistry()
        bs = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="cpu",
            telemetry=telemetry,
        )
        for frame in scene_frames(4):
            bs.apply(frame)
        snap = telemetry.snapshot()
        assert snap["counters"]["fusion.frames"] == 4
        assert "fusion.motion_pixels" in snap["counters"]
        assert "fusion.shadow_pixels" in snap["counters"]
        assert snap["counters"]["fusion.class_frames"] == 4
        assert any(
            name.startswith("fusion.occupancy.") for name in snap["gauges"]
        )


# ----------------------------------------------------------------------
# Pass and parameter validation
# ----------------------------------------------------------------------
class TestFusionPassValidation:
    def test_canonical_order_is_dataflow_order(self):
        assert canonical_fused_stages(("histogram", "threshold")) == (
            "threshold", "histogram",
        )
        assert canonical_fused_stages(FUSED_STAGES) == FUSED_STAGES

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError):
            canonical_fused_stages(("threshold", "blur"))

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ConfigError):
            canonical_fused_stages(("shadow", "shadow"))

    def test_fusing_twice_raises(self):
        spec = apply_passes(spec_for_level("F"), ("fusion",))
        with pytest.raises(ConfigError):
            FusionPass().apply(spec)

    def test_empty_stage_selection_raises(self):
        with pytest.raises(ConfigError):
            FusionPass(stages=()).apply(spec_for_level("F"))

    def test_spec_requires_canonical_fused_order(self):
        with pytest.raises(ConfigError):
            spec_for_level("F").replace(fused=("shadow", "threshold"))

    def test_missing_output_buffers_rejected(self):
        spec = apply_passes(spec_for_level("F"), ("fusion",))
        with pytest.raises(ConfigError):
            check_fused_buffers(spec, None, object())
        with pytest.raises(ConfigError):
            check_fused_buffers(spec, object(), None)

    def test_custom_level_keeps_pass_configuration(self):
        spec = custom_level(
            OptimizationLevel.F.spec.passes
            + (FusionPass(("threshold",)),),
        )
        assert spec.kernel.fused == ("threshold",)

    def test_post_stages_exclusive_with_fused_level(self, params):
        with pytest.raises(ConfigError):
            HostPipeline(
                SHAPE, params, level=resolve_level_spec("F+fusion"),
                post_stages=("threshold",),
            )

    def test_post_stages_rejected_for_tiled_level(self, params):
        with pytest.raises(ConfigError):
            HostPipeline(
                SHAPE, params, level="G", post_stages=("threshold",),
            )

    def test_cpu_backend_rejects_post_stages(self, params):
        with pytest.raises(ConfigError):
            BackgroundSubtractor(
                SHAPE, params, level="F", backend="cpu",
                post_stages=("threshold",),
            )


class TestFusionParams:
    def test_defaults_valid(self):
        p = FusionParams()
        assert 0.0 < p.shadow_alpha_low < p.shadow_alpha_high <= 1.0

    def test_negative_contrast_rejected(self):
        with pytest.raises(ConfigError):
            FusionParams(min_contrast=-1.0)

    def test_alpha_band_must_be_ordered_and_dimming(self):
        with pytest.raises(ConfigError):
            FusionParams(shadow_alpha_low=0.9, shadow_alpha_high=0.5)
        with pytest.raises(ConfigError):
            FusionParams(shadow_alpha_high=1.2)
        FusionParams(shadow_alpha_high=1.0)  # boundary allowed

    def test_replace(self):
        p = FusionParams().replace(min_contrast=5.0)
        assert p.min_contrast == 5.0

    def test_params_reach_the_kernel(self, params):
        """A custom threshold changes the fused mask the way the oracle
        says it should."""
        frames = scene_frames(8)
        loose = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="sim",
            fusion=FusionParams(min_contrast=0.0),
        )
        strict = BackgroundSubtractor(
            SHAPE, params, level="F+fusion", backend="sim",
            fusion=FusionParams(min_contrast=60.0),
        )
        masks_loose, _ = loose.process(frames)
        masks_strict, _ = strict.process(frames)
        assert masks_strict.sum() <= masks_loose.sum()
