"""The two execution tiers: functional results must be bit-identical
to profiled results at every optimization level, profiled counters must
be unperturbed by sampling, and the supporting machinery (scratch pool,
deterministic register release) must hold its invariants."""

import numpy as np
import pytest

from repro.config import MoGParams, RunConfig
from repro.core.pipeline import HostPipeline
from repro.core.variants import OptimizationLevel
from repro.errors import ConfigError, LaunchError
from repro.gpusim import FunctionalContext, SimtEngine
from repro.gpusim.counters import KernelCounters

SHAPE = (16, 32)
PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)


def _frames(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=SHAPE, dtype=np.uint8) for _ in range(n)
    ]


def _pipeline(level, profile_every=1):
    return HostPipeline(
        SHAPE, PARAMS, level,
        run_config=RunConfig(
            height=SHAPE[0], width=SHAPE[1], profile_every=profile_every
        ),
    )


class TestCrossTierExactness:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_masks_and_state_bit_identical(self, level):
        """A fully-profiled run and a mostly-functional run must agree
        on every mask and on the final mixture state, at every level."""
        frames = _frames(6)
        full = _pipeline(level, profile_every=1)
        sampled = _pipeline(level, profile_every=4)
        masks_full, _ = full.process(frames)
        masks_sampled, _ = sampled.process(frames)
        assert np.array_equal(masks_full, masks_sampled)
        sf, ss = full.state(), sampled.state()
        for attr in ("w", "m", "sd"):
            assert np.array_equal(getattr(sf, attr), getattr(ss, attr))

    @pytest.mark.parametrize("level", ["A", "F", "G"])
    def test_profiled_counters_unperturbed_by_sampling(self, level):
        """Sampling changes how often launches are measured, never what
        a measured launch reports: a profiled launch's counters under
        profile_every=N equal the same launch's under profile_every=1."""
        frames = _frames(9, seed=1)
        full = _pipeline(level, profile_every=1)
        sampled = _pipeline(level, profile_every=2)
        full.process(frames)
        sampled.process(frames)
        full_by_name = {rep.name: rep for rep in full._launch_reports}
        assert sampled._launch_reports
        for rep in sampled._launch_reports:
            twin = full_by_name[rep.name]
            assert rep.counters == twin.counters
            assert rep.registers_per_thread == twin.registers_per_thread

    def test_functional_launch_result_shape(self):
        """Functional launches are marked and carry zeroed measurements."""
        frames = _frames(3)
        pipe = _pipeline("F", profile_every=4)
        for f in frames:
            pipe.apply(f)
        launches = pipe.engine.launches
        assert [ln.profiled for ln in launches] == [True, False, False]
        for launch in launches[1:]:
            assert launch.counters == KernelCounters(
                transaction_bytes=launch.counters.transaction_bytes
            )
            assert launch.estimated_registers == 0

    def test_report_accounting_under_sampling(self):
        frames = _frames(9)
        pipe = _pipeline("F", profile_every=4)
        _, report = pipe.process(frames)
        assert report.num_frames == 9
        assert report.frames_profiled == 3  # frames 0, 4, 8
        assert len(report.launches) == 3
        assert pipe.profiled_frame_indices == [0, 4, 8]
        # Per-frame counters are normalised by profiled frames, so they
        # match an unsampled run's exactly.
        _, full_report = _pipeline("F", profile_every=1).process(_frames(9))
        assert (
            report.counters_per_frame.transactions
            == full_report.counters_per_frame.transactions
        )
        # The DMA schedule still covers all 9 frames (carry-forward).
        assert abs(report.total_time - full_report.total_time) < 1e-12


class TestEngineKnob:
    def test_profile_every_validated(self):
        with pytest.raises(LaunchError):
            SimtEngine(profile_every=0)
        with pytest.raises(ConfigError):
            RunConfig(profile_every=0)

    def test_sampling_pattern(self):
        engine = SimtEngine(profile_every=3)
        out = engine.memory.alloc("out", 32, np.float64)

        def kern(ctx, out):
            ctx.store(out, ctx.thread_id(), 1.0)

        flags = [
            engine.launch(kern, 32, 32, args=(out,)).profiled
            for _ in range(7)
        ]
        assert flags == [True, False, False, True, False, False, True]

    def test_explicit_profile_overrides_sampler(self):
        engine = SimtEngine(profile_every=1)
        out = engine.memory.alloc("out", 32, np.float64)

        def kern(ctx, out):
            ctx.store(out, ctx.thread_id(), 1.0)

        forced = engine.launch(kern, 32, 32, args=(out,), profile=False)
        assert not forced.profiled
        assert engine.launch(kern, 32, 32, args=(out,)).profiled


class TestScratchPool:
    def test_functional_launches_recycle_arrays(self):
        engine = SimtEngine(profile_every=1)
        out = engine.memory.alloc("out", 256, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id().astype(np.float64)
            v = ctx.var(0.0, np.float64)
            for _ in ctx.loop(4):
                v.set(v.get() + t * 2.0 + 1.0)
            ctx.store(out, ctx.thread_id(), v.get())

        engine.launch(kern, 256, 128, args=(out,), profile=False)
        first = out.data.copy()
        warm_misses = engine.scratch_pool.misses
        engine.launch(kern, 256, 128, args=(out,), profile=False)
        # Steady state: the second launch reuses the first's arrays.
        assert engine.scratch_pool.hits > 0
        assert engine.scratch_pool.misses == warm_misses
        assert np.array_equal(out.data, first)

    def test_pool_never_exceeds_cap(self):
        from repro.gpusim import ScratchPool

        pool = ScratchPool(max_arrays_per_key=2)
        arrays = [np.empty(8, dtype=np.float64) for _ in range(5)]
        for arr in arrays:
            pool.release(arr)
        assert pool.pooled_arrays == 2

    def test_profiled_launches_do_not_pool(self):
        engine = SimtEngine(profile_every=1)
        out = engine.memory.alloc("out", 64, np.float64)

        def kern(ctx, out):
            ctx.store(out, ctx.thread_id(), 1.0)

        engine.launch(kern, 64, 32, args=(out,))
        assert engine.scratch_pool.pooled_arrays == 0


class TestDeterministicRegisterRelease:
    def test_leaked_vecs_released_by_finalize(self):
        """A Vec kept alive past the kernel body (here: closed over by
        the caller) must be released by ctx.finalize(), not left to GC
        timing — peak_registers must not depend on the interpreter."""
        engine = SimtEngine()
        out = engine.memory.alloc("out", 32, np.float64)
        leaked = []

        def kern(ctx, out):
            v = ctx.thread_id().astype(np.float64)
            leaked.append(v)
            ctx.store(out, ctx.thread_id(), v)

        engine.launch(kern, 32, 32, args=(out,))
        assert leaked[0]._released
        # Releasing again must be a no-op (idempotent).
        leaked[0]._release()

    def test_estimated_registers_pinned_for_known_kernel(self):
        """Regression pin: the register estimate for a fixed kernel is
        part of the simulator's contract (occupancy depends on it)."""
        engine = SimtEngine()
        out = engine.memory.alloc("out", 64, np.float64)

        def kern(ctx, out):
            t = ctx.thread_id().astype(np.float64)
            acc = ctx.var(0.0, np.float64)
            for _ in ctx.loop(3):
                acc.set(acc.get() + t * 2.0)
            with ctx.if_(t > 8.0):
                acc.set(acc.get() - 1.0)
            ctx.store(out, ctx.thread_id(), acc.get())

        result = engine.launch(kern, 64, 32, args=(out,))
        assert result.estimated_registers == 9

    def test_level_f_registers_pinned(self):
        """The real level-F kernel's estimate, end to end."""
        pipe = _pipeline("F")
        pipe.apply(_frames(1)[0])
        assert pipe.engine.launches[0].estimated_registers == 41

    def test_estimate_stable_across_repeats(self):
        """With deterministic release the estimate cannot drift from
        launch to launch."""
        pipe = _pipeline("F")
        for f in _frames(3):
            pipe.apply(f)
        regs = [ln.estimated_registers for ln in pipe.engine.launches]
        assert len(set(regs)) == 1


class TestFunctionalContextDirect:
    def test_divergent_kernel_masks_match(self):
        """Engine-level cross-tier check on a kernel exercising nested
        divergence, loops, MutVar merging and shared memory."""

        def kern(ctx, out, inp):
            t = ctx.thread_id()
            x = ctx.load(inp, t)
            v = ctx.var(0.0, np.float64)
            tile = ctx.shared_alloc("tile", 64, np.float64)
            ctx.shared_store(tile, ctx.lane_id(), x)
            ctx.syncthreads()
            y = ctx.shared_load(tile, ctx.lane_id())
            with ctx.if_(y > 50.0):
                v.set(y * 2.0)
                with ctx.if_(y > 100.0):
                    v.set(v.get() + 1.0)
            with ctx.else_():
                for _ in ctx.loop(2):
                    v.set(v.get() - y)
            ctx.store(out, t, v.get())

        rng = np.random.default_rng(5)
        values = rng.uniform(0.0, 150.0, size=128)
        results = {}
        for profile in (True, False):
            engine = SimtEngine()
            inp = engine.memory.alloc_like("inp", values)
            out = engine.memory.alloc("out", 128, np.float64)
            launch = engine.launch(
                kern, 128, 64, args=(out, inp), profile=profile
            )
            assert launch.profiled is profile
            results[profile] = out.data.copy()
        assert np.array_equal(results[True], results[False])

    def test_functional_context_is_used(self):
        engine = SimtEngine(profile_every=2)
        out = engine.memory.alloc("out", 32, np.float64)
        seen = []

        def kern(ctx, out):
            seen.append(type(ctx))
            ctx.store(out, ctx.thread_id(), 1.0)

        engine.launch(kern, 32, 32, args=(out,))
        engine.launch(kern, 32, 32, args=(out,))
        assert not issubclass(seen[0], FunctionalContext)
        assert seen[1] is FunctionalContext
