"""Property-based tests (hypothesis) for the core MoG invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import MoGParams
from repro.mog import MoGVectorized
from repro.mog.rank import rank_order, replace_weakest

pixels = st.integers(min_value=0, max_value=255)
frames_strategy = arrays(
    np.uint8, (6, 8, 8), elements=st.integers(min_value=0, max_value=255)
)

PARAMS = MoGParams(learning_rate=0.1, initial_sd=8.0)


class TestStateInvariants:
    @given(frames_strategy)
    @settings(max_examples=25, deadline=None)
    def test_weights_bounded(self, frames):
        mog = MoGVectorized((8, 8), PARAMS)
        for frame in frames:
            mog.apply(frame)
        assert (mog.state.w >= 0.0).all()
        assert (mog.state.w <= 1.0).all()

    @given(frames_strategy)
    @settings(max_examples=25, deadline=None)
    def test_sd_floor_and_finite(self, frames):
        mog = MoGVectorized((8, 8), PARAMS)
        for frame in frames:
            mog.apply(frame)
        sd = mog.state.sd
        assert np.isfinite(sd).all()
        # Components that were ever matched or replaced respect the
        # floor; untouched spares keep their initial sd (also >= floor
        # since initial_sd >= sd_floor here).
        assert (sd >= min(PARAMS.sd_floor, PARAMS.initial_sd) - 1e-12).all()

    @given(frames_strategy)
    @settings(max_examples=25, deadline=None)
    def test_means_finite(self, frames):
        mog = MoGVectorized((8, 8), PARAMS)
        for frame in frames:
            mog.apply(frame)
        assert np.isfinite(mog.state.m).all()

    @given(frames_strategy)
    @settings(max_examples=20, deadline=None)
    def test_variant_mask_equality(self, frames):
        """sorted == nosort == predicated masks on arbitrary input."""
        mogs = [
            MoGVectorized((8, 8), PARAMS, variant=v)
            for v in ("sorted", "nosort", "predicated")
        ]
        for frame in frames:
            masks = [m.apply(frame) for m in mogs]
            assert np.array_equal(masks[0], masks[1])
            assert np.array_equal(masks[1], masks[2])

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_constant_scene_is_background(self, value):
        mog = MoGVectorized((8, 8), PARAMS)
        frame = np.full((8, 8), value, dtype=np.uint8)
        for _ in range(5):
            mask = mog.apply(frame)
        assert not mask.any()

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=150, max_value=255),
    )
    @settings(max_examples=20, deadline=None)
    def test_step_change_is_foreground_then_absorbed(self, before, after):
        mog = MoGVectorized((8, 8), PARAMS)
        a = np.full((8, 8), before, dtype=np.uint8)
        b = np.full((8, 8), after, dtype=np.uint8)
        for _ in range(5):
            mog.apply(a)
        first = mog.apply(b)
        assert first.all()  # a large jump is foreground...
        for _ in range(60):
            last = mog.apply(b)
        assert not last.any()  # ...until the model adapts


class TestRankHelpers:
    @given(
        arrays(np.float64, (3, 16), elements=st.floats(0.01, 1.0)),
        arrays(np.float64, (3, 16), elements=st.floats(1.0, 30.0)),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_order_is_permutation_sorted_descending(self, w, sd):
        order = rank_order(w, sd)
        rank = w / sd
        n = w.shape[1]
        for p in range(n):
            col = order[:, p]
            assert sorted(col.tolist()) == [0, 1, 2]
            ranked = rank[col, p]
            assert (np.diff(ranked) <= 1e-15).all()

    @given(arrays(np.float64, (3, 8), elements=st.floats(0.0, 1.0)))
    @settings(max_examples=40, deadline=None)
    def test_replace_weakest_targets_minimum(self, w):
        m = np.zeros_like(w)
        sd = np.ones_like(w)
        pixels_arr = np.full(8, 42.0)
        no_match = np.ones(8, dtype=bool)
        w_before = w.copy()
        weakest = replace_weakest(w, m, sd, pixels_arr, no_match, 0.05, 30.0)
        for p in range(8):
            k = weakest[p]
            assert w_before[k, p] == w_before[:, p].min()
            assert m[k, p] == 42.0 and sd[k, p] == 30.0 and w[k, p] == 0.05

    def test_replace_weakest_respects_mask(self):
        w = np.array([[0.1, 0.1], [0.9, 0.9]])
        m = np.zeros_like(w)
        sd = np.ones_like(w)
        no_match = np.array([True, False])
        replace_weakest(w, m, sd, np.array([7.0, 7.0]), no_match, 0.05, 30.0)
        assert m[0, 0] == 7.0
        assert (m[:, 1] == 0.0).all()  # pixel 1 untouched


class TestDeterminism:
    @given(frames_strategy)
    @settings(max_examples=15, deadline=None)
    def test_same_input_same_output(self, frames):
        a = MoGVectorized((8, 8), PARAMS)
        b = MoGVectorized((8, 8), PARAMS)
        for frame in frames:
            assert np.array_equal(a.apply(frame), b.apply(frame))
