"""The metrics registry: counters, gauges, histograms, rendering."""

import json

import pytest

from repro.bench.reporting import format_metrics
from repro.config import TelemetryConfig
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("x") is c  # get-or-create

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.002, 0.002, 0.02, 0.2, 2.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["total_s"] == pytest.approx(2.224)
        assert d["min_s"] == pytest.approx(0.002)
        assert d["max_s"] == pytest.approx(2.0)
        assert d["mean_s"] == pytest.approx(2.224 / 5)
        assert d["min_s"] <= d["p50_s"] <= d["p95_s"] <= d["max_s"]
        assert sum(d["buckets"].values()) == 5

    def test_histogram_empty(self):
        d = MetricsRegistry().histogram("lat").to_dict()
        assert d["count"] == 0
        assert d["p95_s"] == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("lat").quantile(1.5)

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_timer_records(self):
        reg = MetricsRegistry()
        with reg.time("op"):
            pass
        assert reg.histogram("op").count == 1

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.time("op"):
                raise RuntimeError("boom")
        assert reg.histogram("op").count == 1


class TestRegistry:
    def test_snapshot_shape_and_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["gauges"] == {"b": 2.0}
        assert snap["histograms"]["c"]["count"] == 1
        json.dumps(snap)  # JSON-ready

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert list(reg.names()) == ["a", "b"]

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(TelemetryConfig(enabled=False))
        reg.counter("a").inc(10)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(5.0)
        with reg.time("d"):
            pass
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestTelemetryConfig:
    def test_defaults_valid(self):
        cfg = TelemetryConfig()
        assert cfg.enabled
        assert cfg.latency_buckets_s == tuple(sorted(cfg.latency_buckets_s))

    @pytest.mark.parametrize("buckets", [
        (), (0.0, 1.0), (2.0, 1.0), (1.0, 1.0), (-1.0,),
    ])
    def test_bad_buckets_rejected(self, buckets):
        with pytest.raises(ConfigError):
            TelemetryConfig(latency_buckets_s=buckets)


class TestFormatMetrics:
    def test_renders_all_sections(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(3)
        reg.gauge("depth").set(2.5)
        reg.histogram("step_s").observe(0.02)
        text = format_metrics(reg.snapshot())
        assert "frames" in text and "3" in text
        assert "depth" in text and "2.5" in text
        assert "step_s" in text and "p95 ms" in text

    def test_empty_snapshot(self):
        text = format_metrics(MetricsRegistry().snapshot())
        assert "no metrics recorded" in text
