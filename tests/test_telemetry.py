"""The metrics registry: counters, gauges, histograms, rendering."""

import json
import sys
import threading

import pytest

from repro.bench.reporting import format_metrics
from repro.config import TelemetryConfig
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("x") is c  # get-or-create

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.002, 0.002, 0.02, 0.2, 2.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["total_s"] == pytest.approx(2.224)
        assert d["min_s"] == pytest.approx(0.002)
        assert d["max_s"] == pytest.approx(2.0)
        assert d["mean_s"] == pytest.approx(2.224 / 5)
        assert d["min_s"] <= d["p50_s"] <= d["p95_s"] <= d["max_s"]
        assert sum(d["buckets"].values()) == 5

    def test_histogram_empty(self):
        d = MetricsRegistry().histogram("lat").to_dict()
        assert d["count"] == 0
        assert d["p95_s"] == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("lat").quantile(1.5)

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_timer_records(self):
        reg = MetricsRegistry()
        with reg.time("op"):
            pass
        assert reg.histogram("op").count == 1

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.time("op"):
                raise RuntimeError("boom")
        assert reg.histogram("op").count == 1


class TestRegistry:
    def test_snapshot_shape_and_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["gauges"] == {"b": 2.0}
        assert snap["histograms"]["c"]["count"] == 1
        json.dumps(snap)  # JSON-ready

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert list(reg.names()) == ["a", "b"]

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(TelemetryConfig(enabled=False))
        reg.counter("a").inc(10)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(5.0)
        with reg.time("d"):
            pass
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestDelta:
    def test_delta_since_none_equals_totals(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.histogram("h").observe(0.5)
        d = reg.delta()
        assert d["counters"]["a"] == 3
        assert d["histograms"]["h"]["count"] == 1
        assert d["histograms"]["h"]["mean_s"] == pytest.approx(0.5)

    def test_delta_chains_via_end(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        first = reg.delta()
        reg.counter("a").inc(4)
        reg.counter("fresh").inc()  # registered after the baseline
        second = reg.delta(first["end"])
        assert second["counters"]["a"] == 4
        assert second["counters"]["fresh"] == 1
        assert second["end"]["counters"]["a"] == 7

    def test_gauges_are_point_in_time(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(5.0)
        base = reg.delta()
        reg.gauge("depth").set(2.0)
        assert reg.delta(base["end"])["gauges"]["depth"] == 2.0

    def test_histogram_window_stats(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        base = reg.delta()
        reg.histogram("h").observe(3.0)
        reg.histogram("h").observe(5.0)
        win = reg.delta(base["end"])["histograms"]["h"]
        assert win["count"] == 2
        assert win["total_s"] == pytest.approx(8.0)
        assert win["mean_s"] == pytest.approx(4.0)

    def test_rates_per_frame(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(6)
        d = reg.delta(frames=3)
        assert d["frames"] == 3
        assert d["rates_per_frame"]["a"] == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            reg.delta(frames=0)

    def test_delta_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        json.dumps(reg.delta(frames=1))


class TestConcurrency:
    def test_to_dict_reads_multifield_state_under_the_lock(self):
        """Regression: ``to_dict()`` held the instrument lock only for
        the bucket copy and read count/total (and derived the mean and
        quantiles) after releasing it, so a snapshot racing a writer
        could pair a bucket state with a later count. The window is a
        few bytecodes wide — far too narrow to catch reliably by
        racing threads — so this probes the locking discipline
        directly: every read of the multi-field state during a
        snapshot must happen while the instrument lock is held."""
        from repro.telemetry.registry import LatencyHistogram

        naked_reads = []

        class Probe(LatencyHistogram):
            @property
            def count(self):
                if not self._lock.locked():
                    naked_reads.append("count")
                return LatencyHistogram.count.__get__(self)

            @count.setter
            def count(self, value):
                LatencyHistogram.count.__set__(self, value)

            @property
            def total(self):
                if not self._lock.locked():
                    naked_reads.append("total")
                return LatencyHistogram.total.__get__(self)

            @total.setter
            def total(self, value):
                LatencyHistogram.total.__set__(self, value)

        hist = Probe(TelemetryConfig().latency_buckets_s)
        for v in (0.002, 0.02, 0.2):
            hist.observe(v)
        naked_reads.clear()  # only the snapshot path is under test
        d = hist.to_dict()
        assert d["count"] == 3
        assert sum(d["buckets"].values()) == 3
        assert naked_reads == [], (
            f"snapshot read {sorted(set(naked_reads))} outside the "
            "instrument lock"
        )

    def test_histogram_snapshot_never_tears(self):
        """Regression: ``to_dict()`` held the instrument lock only
        while copying the buckets, then read count/total and derived
        the quantiles from post-release state — a snapshot racing
        writers could report a count inconsistent with its own bucket
        sum. Every field must come from one lock acquisition."""
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        stop = threading.Event()

        def writer(k: int) -> None:
            values = [0.001 * ((i + k) % 40 + 1) for i in range(64)]
            while not stop.is_set():
                for v in values:
                    hist.observe(v)

        threads = [
            threading.Thread(target=writer, args=(k,), daemon=True)
            for k in range(4)
        ]
        # A tiny switch interval forces thread preemption between
        # nearly every bytecode, so an unlocked multi-field read tears
        # within a few hundred snapshots instead of once a blue moon.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        self._stress(hist, threads, stop, old_interval)

    def _stress(self, hist, threads, stop, old_interval) -> None:
        for t in threads:
            t.start()
        try:
            last_count = 0
            for _ in range(2000):
                d = hist.to_dict()
                assert sum(d["buckets"].values()) == d["count"]
                assert d["mean_s"] * d["count"] == pytest.approx(
                    d["total_s"]
                )
                assert d["count"] >= last_count  # counts only grow
                if d["count"]:
                    assert (
                        d["min_s"] <= d["p50_s"] <= d["p95_s"] <= d["max_s"]
                    )
                last_count = d["count"]
        finally:
            stop.set()
            sys.setswitchinterval(old_interval)
            for t in threads:
                t.join(10.0)

    def test_registry_snapshot_under_concurrent_writers(self):
        """A full-registry snapshot taken mid-write is internally
        consistent and JSON-serialisable."""
        reg = MetricsRegistry()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                reg.counter("frames").inc()
                reg.histogram("step_s").observe(0.01)
                reg.gauge("depth").set(1.0)

        threads = [
            threading.Thread(target=writer, daemon=True) for _ in range(3)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(100):
                snap = reg.snapshot()
                json.dumps(snap)  # always serialisable
                hist = snap["histograms"].get("step_s")
                if hist:
                    assert sum(hist["buckets"].values()) == hist["count"]
        finally:
            stop.set()
            for t in threads:
                t.join(10.0)


class TestTelemetryConfig:
    def test_defaults_valid(self):
        cfg = TelemetryConfig()
        assert cfg.enabled
        assert cfg.latency_buckets_s == tuple(sorted(cfg.latency_buckets_s))

    @pytest.mark.parametrize("buckets", [
        (), (0.0, 1.0), (2.0, 1.0), (1.0, 1.0), (-1.0,),
    ])
    def test_bad_buckets_rejected(self, buckets):
        with pytest.raises(ConfigError):
            TelemetryConfig(latency_buckets_s=buckets)


class TestFormatMetrics:
    def test_renders_all_sections(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(3)
        reg.gauge("depth").set(2.5)
        reg.histogram("step_s").observe(0.02)
        text = format_metrics(reg.snapshot())
        assert "frames" in text and "3" in text
        assert "depth" in text and "2.5" in text
        assert "step_s" in text and "p95 ms" in text

    def test_empty_snapshot(self):
        text = format_metrics(MetricsRegistry().snapshot())
        assert "no metrics recorded" in text


class TestHistogramRegressions:
    """Pinned fixes: overflow-bucket quantiles and bad observations."""

    def test_overflow_heavy_quantiles_interpolate(self):
        """With most observations past the last bound, p50 and p99 must
        spread across [last_bound, max], not both collapse to max."""
        from repro.telemetry.registry import LatencyHistogram

        h = LatencyHistogram(bounds=(0.01, 0.1))
        h.observe(0.005)
        for v in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 90.0):
            h.observe(v)  # 9 of 10 in the overflow bucket
        p50 = h.quantile(0.50)
        p99 = h.quantile(0.99)
        assert p50 != p99
        assert 0.1 <= p50 <= 90.0
        assert 0.1 <= p99 <= 90.0
        assert p50 < p99

    def test_all_overflow_quantiles_bounded(self):
        from repro.telemetry.registry import LatencyHistogram

        h = LatencyHistogram(bounds=(0.001,))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert 0.001 <= h.quantile(0.25) <= 4.0
        assert h.quantile(0.25) < h.quantile(0.75)
        assert h.quantile(1.0) == 4.0

    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), float("-inf"), -1.0, -0.001,
    ])
    def test_bad_observation_rejected_without_state_change(self, bad):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.02)
        before = h.to_dict()
        with pytest.raises(ConfigError):
            h.observe(bad)
        after = h.to_dict()
        assert after == before  # rejection left no trace
        assert sum(after["buckets"].values()) == after["count"] == 1
