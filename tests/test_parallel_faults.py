"""Fault injection against the supervised parallel path.

These tests SIGKILL real worker processes and assert the supervision
layer's contract: bounded waits, typed errors, policy-driven recovery,
and graceful shutdown. Everything runs on tiny frames so even the
restart paths complete in well under a second of compute.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.config import FaultPolicy, TelemetryConfig
from repro.errors import ConfigError, WorkerError
# kill_stripe moved into the faults package (the process-level "hard"
# fault of the unified injection harness); the tests use it from there.
from repro.faults import kill_stripe
from repro.mog import MoGVectorized
from repro.parallel import ParallelMoG
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (16, 24)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="monkeypatched module state requires fork workers"
)


@pytest.fixture()
def frames():
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(6)]


def serial_masks(frames, params):
    return MoGVectorized(SHAPE, params, variant="nosort").apply_sequence(frames)


class TestConfig:
    def test_policy_validated(self):
        with pytest.raises(ConfigError):
            FaultPolicy(policy="retry")
        with pytest.raises(ConfigError):
            FaultPolicy(timeout_s=0.0)
        with pytest.raises(ConfigError):
            FaultPolicy(max_restarts=-1)
        with pytest.raises(ConfigError):
            FaultPolicy(stage_error="ignore")

    def test_checkpoint_only_active_off_fail(self):
        assert not FaultPolicy(policy="fail").wants_checkpoint
        assert FaultPolicy(policy="restart").wants_checkpoint
        assert not FaultPolicy(
            policy="restart", checkpoint=False
        ).wants_checkpoint

    def test_worker_error_carries_stripe(self):
        exc = WorkerError("stripe 3 died", stripe=3)
        assert exc.stripe == 3
        assert isinstance(exc, Exception)


class TestRestartPolicy:
    def test_sigkill_recovers_with_serial_masks(self, params, frames):
        """The acceptance scenario: kill a worker mid-sequence; the run
        completes, masks stay identical to serial (checkpoint restore),
        exactly one restart is recorded, and nothing blocks past the
        configured timeout."""
        expected = serial_masks(frames, params)
        policy = FaultPolicy(
            policy="restart", timeout_s=10.0, shutdown_timeout_s=5.0
        )
        with ParallelMoG(
            SHAPE, params, workers=2, fault_policy=policy
        ) as par:
            got = [par.apply(f) for f in frames[:3]]
            kill_stripe(par, 0)
            t0 = time.monotonic()
            got.append(par.apply(frames[3]))
            # One bounded collect + one restart turnaround, not a hang.
            assert time.monotonic() - t0 < 3 * policy.timeout_s
            got += [par.apply(f) for f in frames[4:]]
            snap = par.telemetry.snapshot()
            status = par.stripe_status()
        assert np.array_equal(expected, np.stack(got))
        assert snap["counters"]["parallel.worker_restarts"] == 1
        assert status[0]["restarts"] == 1
        assert status[0]["mode"] == "worker"
        assert snap["counters"]["parallel.frames"] == len(frames)

    def test_restarted_worker_gets_fresh_pid(self, params, frames):
        policy = FaultPolicy(policy="restart", timeout_s=10.0)
        with ParallelMoG(
            SHAPE, params, workers=2, fault_policy=policy
        ) as par:
            par.apply(frames[0])
            old = par.worker_pids()[1]
            kill_stripe(par, 1)
            par.apply(frames[1])
            assert par.worker_pids()[1] not in (None, old)


class TestSerialFallbackPolicy:
    def test_stripe_degrades_in_process(self, params, frames):
        expected = serial_masks(frames, params)
        policy = FaultPolicy(policy="serial_fallback", timeout_s=10.0)
        with ParallelMoG(
            SHAPE, params, workers=2, fault_policy=policy
        ) as par:
            got = [par.apply(f) for f in frames[:3]]
            kill_stripe(par, 1)
            got += [par.apply(f) for f in frames[3:]]
            snap = par.telemetry.snapshot()
            status = par.stripe_status()
        # Checkpoint restore keeps even the fallen-back stripe serial.
        assert np.array_equal(expected, np.stack(got))
        assert snap["counters"]["parallel.serial_fallbacks"] == 1
        assert status[1]["mode"] == "fallback"
        assert status[0]["mode"] == "worker"
        assert par.worker_pids()[1] is None


class TestFailPolicy:
    def test_dead_worker_raises_typed_error(self, params, frames):
        policy = FaultPolicy(policy="fail", timeout_s=2.0)
        par = ParallelMoG(SHAPE, params, workers=2, fault_policy=policy)
        try:
            par.apply(frames[0])
            kill_stripe(par, 0)
            t0 = time.monotonic()
            with pytest.raises(WorkerError) as ei:
                par.apply(frames[1])
            assert time.monotonic() - t0 < 2 * policy.timeout_s
            assert ei.value.stripe == 0
            assert "stripe 0" in str(ei.value)
        finally:
            par.close()

    def test_in_worker_exception_surfaces(self, params):
        """A frame the model itself rejects is reported, not hung on."""
        policy = FaultPolicy(policy="fail", timeout_s=10.0)
        with ParallelMoG(
            SHAPE, params, workers=2, fault_policy=policy
        ) as par:
            bad = np.full(SHAPE, np.nan)
            # NaNs propagate through the mixture without raising, so
            # inject the failure by violating the stripe contract at
            # the worker instead: send a malformed message directly.
            par._workers[0]._conn.send(("apply", bad[:4]))
            with pytest.raises(WorkerError) as ei:
                par._workers[0].collect(policy.timeout_s)
            assert "raised" in str(ei.value)


class TestStartupProbe:
    @needs_fork
    def test_init_failure_surfaces_at_construction(self, params, monkeypatch):
        import repro.parallel.frames as frames_mod

        class Exploding:
            def __init__(self, *a, **k):
                raise RuntimeError("no memory for stripe state")

        monkeypatch.setattr(frames_mod, "MoGVectorized", Exploding)
        policy = FaultPolicy(probe_timeout_s=10.0)
        with pytest.raises(WorkerError) as ei:
            ParallelMoG(SHAPE, params, workers=2, fault_policy=policy)
        assert "initialise" in str(ei.value)
        assert "no memory" in str(ei.value)


class TestGracefulClose:
    def test_workers_exit_cleanly(self, params, frames):
        par = ParallelMoG(SHAPE, params, workers=2)
        par.apply(frames[0])
        procs = [w._proc for w in par._workers]
        par.close()
        assert all(p.exitcode == 0 for p in procs)  # not terminated
        snap = par.telemetry.snapshot()
        assert "parallel.forced_terminations" not in snap["counters"]

    def test_close_idempotent_and_apply_rejected(self, params, frames):
        par = ParallelMoG(SHAPE, params, workers=2)
        par.close()
        par.close()
        with pytest.raises(ConfigError):
            par.apply(frames[0])

    @needs_fork
    def test_close_escalates_on_hung_worker(self, params, frames, monkeypatch):
        import repro.parallel.frames as frames_mod

        real = frames_mod.MoGVectorized

        class Sluggish(real):
            def apply(self, frame):
                time.sleep(60.0)
                return super().apply(frame)

        monkeypatch.setattr(frames_mod, "MoGVectorized", Sluggish)
        policy = FaultPolicy(
            policy="fail", timeout_s=0.3, shutdown_timeout_s=0.3
        )
        par = ParallelMoG(SHAPE, params, workers=2, fault_policy=policy)
        with pytest.raises(WorkerError):
            par.apply(frames[0])
        t0 = time.monotonic()
        par.close()
        assert time.monotonic() - t0 < 10.0
        assert all(w._proc is None for w in par._workers)
        # fail-policy kill of the timed-out stripe happens in apply();
        # close() then escalates on the other stripe, which is still
        # asleep inside its 60 s apply and cannot drain the stop.
        snap = par.telemetry.snapshot()
        assert snap["counters"]["parallel.forced_terminations"] >= 1


class TestCheckpointAliasing:
    def test_restore_state_copies_snapshot_arrays(self, params, frames):
        """Regression: ``restore_state`` must deep-copy. A snapshot is
        the *live* state of the source model (``state_snapshot`` hands
        out references); a restore that aliased those arrays would
        couple the two models' histories."""
        source = MoGVectorized(SHAPE, params)
        for f in frames[:3]:
            source.apply(f)
        snap = source.state_snapshot()
        w0, m0, sd0 = (np.array(a, copy=True) for a in snap[:3])

        restored = MoGVectorized(SHAPE, params)
        restored.restore_state(snap)
        assert restored.frames_processed == 3
        for ours, theirs in zip(
            (restored.state.w, restored.state.m, restored.state.sd), snap
        ):
            assert ours is not theirs
            assert not np.shares_memory(ours, theirs)
        # Mutation after restore: the checkpoint must not move.
        restored.state.w += 0.25
        restored.state.sd *= 2.0
        assert np.array_equal(snap[0], w0)
        assert np.array_equal(snap[1], m0)
        assert np.array_equal(snap[2], sd0)

    def test_fallback_mutation_does_not_corrupt_checkpoint(
        self, params, frames
    ):
        """The ParallelMoG restart path: a stripe's checkpointed state
        seeds the fallback model; mutating the live fallback must leave
        the stored checkpoint bit-identical (it may be needed again)."""
        policy = FaultPolicy(policy="serial_fallback", timeout_s=10.0)
        with ParallelMoG(
            SHAPE, params, workers=2, fault_policy=policy
        ) as par:
            for f in frames[:3]:
                par.apply(f)
            kill_stripe(par, 0)
            par.apply(frames[3])  # degrades stripe 0 to fallback
            worker = par._workers[0]
            assert worker.fallback is not None
            ckpt = worker.last_state
            saved = [np.array(a, copy=True) for a in ckpt[:3]]
            worker.fallback.state.w += 0.5  # in-place corruption
            for kept, want in zip(ckpt, saved):
                assert np.array_equal(kept, want)

class TestSharedTelemetry:
    def test_external_registry_is_used(self, params, frames):
        reg = MetricsRegistry()
        with ParallelMoG(SHAPE, params, workers=2, telemetry=reg) as par:
            par.apply(frames[0])
        assert reg.counter("parallel.frames").value == 1
        assert reg.histogram("parallel.apply_s").count == 1

    def test_disabled_telemetry(self, params, frames):
        reg = MetricsRegistry(TelemetryConfig(enabled=False))
        with ParallelMoG(SHAPE, params, workers=2, telemetry=reg) as par:
            par.apply(frames[0])
        assert reg.snapshot()["counters"] == {}
