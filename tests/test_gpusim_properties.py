"""Property-based tests of the SIMT engine: for random data and random
branch conditions, the DSL must compute exactly what NumPy computes,
and its counters must respect structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpusim import SimtEngine

N = 128  # grid size used by the random programs (4 warps)

data_arrays = arrays(
    np.float64, N,
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
thresholds = st.floats(min_value=-100, max_value=100, allow_nan=False)


def run_kernel(kernel, buffers):
    engine = SimtEngine()
    handles = [engine.memory.alloc_like(f"buf{i}", arr) for i, arr in enumerate(buffers)]
    out = engine.memory.alloc("out", N, np.float64)
    res = engine.launch(kernel, N, 32, args=(*handles, out))
    return out.data.copy(), res


class TestFunctionalEquivalence:
    @given(data_arrays, thresholds)
    @settings(max_examples=50, deadline=None)
    def test_if_else_equals_where(self, data, threshold):
        def kern(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            v = ctx.var(0.0, np.float64)
            with ctx.if_(x < threshold):
                v.set(x * 2.0 + 1.0)
            with ctx.else_():
                v.set(x - 3.0)
            ctx.store(out, t, v.get())

        got, _ = run_kernel(kern, [data])
        expected = np.where(data < threshold, data * 2.0 + 1.0, data - 3.0)
        assert np.array_equal(got, expected)

    @given(data_arrays, data_arrays)
    @settings(max_examples=50, deadline=None)
    def test_arithmetic_chain(self, a_data, b_data):
        def kern(ctx, a, b, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            y = ctx.load(b, t)
            v = abs(x - y) + ctx.minimum(x, y) * 0.5 - ctx.maximum(x, 0.0)
            ctx.store(out, t, v)

        got, _ = run_kernel(kern, [a_data, b_data])
        expected = (
            np.abs(a_data - b_data)
            + np.minimum(a_data, b_data) * 0.5
            - np.maximum(a_data, 0.0)
        )
        assert np.array_equal(got, expected)

    @given(data_arrays, thresholds, thresholds)
    @settings(max_examples=50, deadline=None)
    def test_nested_branches(self, data, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)

        def kern(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            v = ctx.var(0.0, np.float64)
            with ctx.if_(x < hi):
                with ctx.if_(x < lo):
                    v.set(1.0)
                with ctx.else_():
                    v.set(2.0)
            with ctx.else_():
                v.set(3.0)
            ctx.store(out, t, v.get())

        got, _ = run_kernel(kern, [data])
        expected = np.where(data < lo, 1.0, np.where(data < hi, 2.0, 3.0))
        assert np.array_equal(got, expected)

    @given(data_arrays)
    @settings(max_examples=30, deadline=None)
    def test_select_equals_branch(self, data):
        """select() and if_/else_ must agree (predication soundness)."""
        def with_select(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            ctx.store(out, t, ctx.select(x < 0.0, -x, x * 3.0))

        def with_branch(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            v = ctx.var(0.0, np.float64)
            with ctx.if_(x < 0.0):
                v.set(-x)
            with ctx.else_():
                v.set(x * 3.0)
            ctx.store(out, t, v.get())

        a, _ = run_kernel(with_select, [data])
        b, _ = run_kernel(with_branch, [data])
        assert np.array_equal(a, b)


class TestCounterInvariants:
    @given(data_arrays, thresholds)
    @settings(max_examples=50, deadline=None)
    def test_divergent_never_exceeds_total(self, data, threshold):
        def kern(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            with ctx.if_(x < threshold):
                ctx.store(out, t, x)

        _, res = run_kernel(kern, [data])
        c = res.counters
        assert 0 <= c.branches_divergent <= c.branches_total
        assert 0.0 <= c.branch_efficiency <= 1.0

    @given(data_arrays, thresholds)
    @settings(max_examples=50, deadline=None)
    def test_divergence_matches_ground_truth(self, data, threshold):
        """The engine's divergent count must equal the analytic count:
        warps whose condition is non-uniform."""
        def kern(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            with ctx.if_(x < threshold):
                pass

        _, res = run_kernel(kern, [data])
        cond = (data < threshold).reshape(-1, 32)
        expected = int((cond.any(axis=1) & ~cond.all(axis=1)).sum())
        assert res.counters.branches_divergent == expected

    @given(arrays(np.int64, N, elements=st.integers(0, N - 1)))
    @settings(max_examples=50, deadline=None)
    def test_gather_transactions_bounded(self, indices):
        """Arbitrary gathers: 1..32 transactions per warp and the
        functional result equals a NumPy fancy-index."""
        src = np.arange(N, dtype=np.float64) * 1.5

        def kern(ctx, a, b, out):
            t = ctx.thread_id()
            idx = ctx.load(b, t)
            ctx.store(out, t, ctx.load(a, idx))

        engine = SimtEngine()
        a = engine.memory.alloc_like("a", src)
        b = engine.memory.alloc_like("b", indices)
        out = engine.memory.alloc("out", N, np.float64)
        res = engine.launch(kern, N, 32, args=(a, b, out))
        assert np.array_equal(out.data, src[indices])
        tx = res.counters.load_transactions
        warps = N // 32
        # idx load (2 tx/warp for int64) + gather (1..32) per warp.
        assert 2 * warps + warps <= tx <= 2 * warps + 32 * warps

    @given(data_arrays, thresholds)
    @settings(max_examples=30, deadline=None)
    def test_useful_bytes_track_active_lanes(self, data, threshold):
        def kern(ctx, a, out):
            t = ctx.thread_id()
            x = ctx.load(a, t)
            with ctx.if_(x < threshold):
                ctx.store(out, t, x)

        _, res = run_kernel(kern, [data])
        active = int((data < threshold).sum())
        assert res.counters.store_bytes_useful == active * 8
        assert res.counters.load_bytes_useful == N * 8


class TestRegisterInvariant:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_estimate_scales_with_live_doubles(self, live):
        def kern(ctx):
            t = ctx.thread_id().astype(np.float64)
            vals = [t + float(i) for i in range(live)]
            total = vals[0]
            for v in vals[1:]:
                total = total + v
            _ = total

        engine = SimtEngine()
        res = engine.launch(kern, N, 32)
        assert res.estimated_registers >= 2 * live
