"""The analytic timing model: directional behaviour, not constants."""

import pytest

from repro.gpusim.calibration import DEFAULT_CALIBRATION
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import TimingModel


def make_counters(fp64=0, transactions=0, useful_fraction=1.0, divergent=0,
                  mem=0, branch=0):
    c = KernelCounters()
    c.warp_issues["fp64"] = fp64
    c.warp_issues["mem"] = mem
    c.warp_issues["branch"] = branch
    c.load_transactions = transactions
    c.load_bytes_useful = int(transactions * 128 * useful_fraction)
    c.branches_total = max(branch, divergent)
    c.branches_divergent = divergent
    return c


@pytest.fixture()
def model():
    return TimingModel()


@pytest.fixture()
def occ_full():
    return occupancy(TESLA_C2075, 128, 30)  # 67%


@pytest.fixture()
def occ_low():
    return occupancy(TESLA_C2075, 128, 40)  # 50%


class TestComputeTime:
    def test_linear_in_issues(self, model, occ_full):
        t1 = model.compute_time(make_counters(fp64=1000), occ_full)
        t2 = model.compute_time(make_counters(fp64=2000), occ_full)
        assert t2 == pytest.approx(2 * t1)

    def test_divergence_penalty(self, model, occ_full):
        base = model.compute_time(make_counters(fp64=1000), occ_full)
        div = model.compute_time(make_counters(fp64=1000, divergent=100), occ_full)
        assert div > base
        expected_extra = (
            100 * DEFAULT_CALIBRATION.divergence_penalty_cycles
            * DEFAULT_CALIBRATION.compute_scale
            / TESLA_C2075.num_sms / TESLA_C2075.clock_hz
        )
        assert div - base == pytest.approx(expected_extra)

    def test_low_occupancy_starves_issue(self, model):
        c = make_counters(fp64=1000)
        occ_tiled = occupancy(TESLA_C2075, 640, 31, 640 * 72)  # ~42%
        occ_high = occupancy(TESLA_C2075, 128, 30)             # 67%
        assert model.compute_time(c, occ_tiled) > model.compute_time(c, occ_high)

    def test_saturated_occupancy_plateau(self, model):
        """Above the saturation point extra occupancy gains nothing."""
        c = make_counters(fp64=1000)
        occ_a = occupancy(TESLA_C2075, 128, 30)  # 67%
        occ_b = occupancy(TESLA_C2075, 128, 20)  # 67% too (blocks cap)
        assert model.compute_time(c, occ_a) == model.compute_time(c, occ_b)


class TestMemoryTime:
    def test_linear_in_transactions(self, model, occ_full):
        t1 = model.memory_bandwidth_time(make_counters(transactions=10_000))
        t2 = model.memory_bandwidth_time(make_counters(transactions=20_000))
        assert t2 == pytest.approx(2 * t1)

    def test_poor_coalescing_derates_bandwidth(self, model):
        good = make_counters(transactions=10_000, useful_fraction=1.0)
        bad = make_counters(transactions=10_000, useful_fraction=0.1)
        assert model.memory_bandwidth_time(bad) > model.memory_bandwidth_time(good)

    def test_coalesce_factor_monotone(self, model):
        fractions = [0.1, 0.3, 0.6, 1.0]
        factors = [
            model.coalesce_factor(make_counters(transactions=100, useful_fraction=f))
            for f in fractions
        ]
        assert factors == sorted(factors)
        assert factors[-1] == pytest.approx(1.0)
        assert factors[0] >= DEFAULT_CALIBRATION.coalesce_floor

    def test_latency_rewards_occupancy(self, model, occ_full, occ_low):
        c = make_counters(transactions=10_000)
        assert model.memory_latency_time(c, occ_low) > model.memory_latency_time(
            c, occ_full
        )

    def test_no_memory_no_time(self, model, occ_full):
        c = make_counters(fp64=10)
        assert model.memory_bandwidth_time(c) == 0.0
        assert model.memory_latency_time(c, occ_full) == 0.0


class TestKernelTiming:
    def test_total_composition(self, model, occ_full):
        c = make_counters(fp64=500, transactions=5_000, mem=100)
        t = model.kernel_timing(c, occ_full)
        assert t.total == pytest.approx(
            t.compute_time + max(t.memory_bandwidth_time, t.memory_latency_time)
            + t.launch_overhead
        )

    def test_bound_by_labels(self, model, occ_full):
        heavy_compute = model.kernel_timing(make_counters(fp64=10**7), occ_full)
        assert heavy_compute.bound_by == "compute"
        heavy_mem = model.kernel_timing(
            make_counters(transactions=10**7), occ_full
        )
        assert heavy_mem.bound_by.startswith("memory")

    def test_empty_kernel_costs_launch_overhead(self, model, occ_full):
        t = model.kernel_timing(make_counters(), occ_full)
        assert t.total == pytest.approx(TESLA_C2075.kernel_launch_overhead_s)
