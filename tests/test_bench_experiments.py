"""The experiment layer itself: context memoisation, formatting, and
fast-scale sanity of each experiment function."""

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    Experiment,
    ExperimentContext,
    camera_jitter_study,
    cpu_baselines,
    embedded_study,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def fast_ctx():
    return ExperimentContext(shape=(48, 64), num_frames=14, warmup=8)


class TestExperimentContext:
    def test_frames_cached(self, fast_ctx):
        a = fast_ctx.frames()
        b = fast_ctx.frames()
        assert a is b

    def test_runs_memoised(self, fast_ctx):
        r1 = fast_ctx.run("D")
        r2 = fast_ctx.run("D")
        assert r1 is r2

    def test_distinct_configs_not_conflated(self, fast_ctx):
        r3 = fast_ctx.run("D", num_gaussians=3)
        r5 = fast_ctx.run("D", num_gaussians=5)
        assert r3 is not r5
        rd = fast_ctx.run("D", dtype="float")
        assert rd is not r3

    def test_g_frames_rounded_to_groups(self, fast_ctx):
        r = fast_ctx.run("G", frame_group=4)
        assert r.report.num_frames % 4 == 0


class TestExperimentFormatting:
    def test_format_contains_title_and_rows(self):
        exp = Experiment(
            "Fig X", "Demo", ["a", "b"], [[1, 2], [3, 4]], notes="note!"
        )
        text = exp.format()
        assert "Fig X: Demo" in text
        assert "note!" in text
        assert "3" in text

    def test_registry_complete(self):
        expected = {
            "table1", "table2", "table3", "table4", "fig6", "fig7",
            "fig8", "fig10", "fig11", "fig12", "cpu_baselines",
            "embedded", "jitter", "fusion", "jit", "models",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestStaticExperiments:
    def test_table1(self):
        assert len(table1().rows) == 7

    def test_table2_table3(self):
        assert len(table2().rows) == 3
        assert len(table3().rows) == 3

    def test_cpu_baselines(self):
        exp = cpu_baselines()
        assert len(exp.rows) == 5
        for row in exp.rows:
            assert row[1] == row[2]  # model reproduces every anchor


class TestDynamicExperimentsFastScale:
    """Smoke the expensive experiments at a small context — shapes are
    asserted for real in benchmarks/."""

    def test_embedded(self, fast_ctx):
        exp = embedded_study(fast_ctx)
        assert len(exp.rows) == 8
        assert {row[3] for row in exp.rows} <= {"60 Hz", "30 Hz", "below RT"}

    def test_jitter(self, fast_ctx):
        exp = camera_jitter_study(fast_ctx)
        rates = [float(r[1].rstrip("%")) for r in exp.rows]
        assert rates[0] <= rates[-1]

    def test_jit_speedup_table(self):
        from repro.bench.experiments import jit_speedup
        from repro.kernels.jit import numba_available

        exp = jit_speedup()
        assert [row[0] for row in exp.rows] == list("ABCDEFG")
        engines = {row[5] for row in exp.rows}
        if numba_available():
            assert engines == {"numba"}
        else:
            assert engines == {"cpu fallback"}
            assert "NOT installed" in exp.notes

    def test_fusion_counters(self):
        from repro.bench.experiments import fusion_counters

        exp = fusion_counters()
        assert len(exp.rows) == 3
        eliminated = []
        for row in exp.rows:
            unfused, fused, delta = (float(c) for c in row[1:])
            assert fused < unfused
            assert delta == pytest.approx(unfused - fused)
            eliminated.append(delta)
        # Each additional fused stage eliminates strictly more traffic.
        assert eliminated == sorted(eliminated) and len(set(eliminated)) == 3
