"""Vectorized MoG: equivalence to the scalar reference and variant
relationships."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mog import MoGReference, MoGVectorized
from repro.video.scenes import evaluation_scene

SHAPE = (16, 32)


@pytest.fixture(scope="module")
def frames():
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(10)]


class TestReferenceEquivalence:
    @pytest.mark.parametrize("variant,ref_kwargs", [
        ("sorted", dict(sort=True)),
        ("nosort", dict(sort=False)),
        ("predicated", dict(sort=False)),
        ("regopt", dict(sort=False, recompute_diff=True)),
    ])
    def test_masks_match_reference(self, frames, params, variant, ref_kwargs):
        vec = MoGVectorized(SHAPE, params, variant=variant)
        ref = MoGReference(SHAPE, params, **ref_kwargs)
        for t, frame in enumerate(frames):
            assert np.array_equal(vec.apply(frame), ref.apply(frame)), (
                f"{variant} diverged from reference at frame {t}"
            )

    def test_state_matches_reference_exactly(self, frames, params):
        vec = MoGVectorized(SHAPE, params, variant="sorted")
        ref = MoGReference(SHAPE, params, sort=True)
        for frame in frames:
            vec.apply(frame)
            ref.apply(frame)
        st_ref = ref.state()
        assert np.array_equal(st_ref.w, vec.state.w)
        assert np.array_equal(st_ref.m, vec.state.m)
        assert np.array_equal(st_ref.sd, vec.state.sd)


class TestVariantRelationships:
    def test_sorted_nosort_predicated_identical(self, frames, params):
        mogs = {
            v: MoGVectorized(SHAPE, params, variant=v)
            for v in ("sorted", "nosort", "predicated")
        }
        for frame in frames:
            masks = {v: m.apply(frame) for v, m in mogs.items()}
            assert np.array_equal(masks["sorted"], masks["nosort"])
            assert np.array_equal(masks["nosort"], masks["predicated"])

    def test_nosort_predicated_bitwise_state(self, frames, params):
        a = MoGVectorized(SHAPE, params, variant="nosort")
        b = MoGVectorized(SHAPE, params, variant="predicated")
        for frame in frames:
            a.apply(frame)
            b.apply(frame)
        assert np.array_equal(a.state.w, b.state.w)
        assert np.array_equal(a.state.m, b.state.m)
        assert np.array_equal(a.state.sd, b.state.sd)

    def test_regopt_provably_equivalent(self, params):
        """The level-F restructuring (diff recomputed from updated
        means) cannot change any decision: for a matched component,
        ``diff >= Gamma1 * sd_post`` is algebraically impossible given
        the match condition and the sd update, and unmatched components
        keep their diffs (see repro.mog.update, step 6 note). This test
        pins that proof empirically over a long multimodal run."""
        video = evaluation_scene(height=32, width=64, seed=9)
        a = MoGVectorized((32, 64), params, variant="nosort")
        b = MoGVectorized((32, 64), params, variant="regopt")
        for t in range(40):
            frame = video.frame(t)
            assert np.array_equal(a.apply(frame), b.apply(frame)), t
        assert np.array_equal(a.state.m, b.state.m)
        assert np.array_equal(a.state.w, b.state.w)
        assert np.array_equal(a.state.sd, b.state.sd)


class TestApi:
    def test_frame_shape_validated(self, params):
        mog = MoGVectorized(SHAPE, params)
        with pytest.raises(ConfigError):
            mog.apply(np.zeros((8, 8), dtype=np.uint8))

    def test_unknown_variant(self, params):
        with pytest.raises(ConfigError):
            MoGVectorized(SHAPE, params, variant="fancy")

    def test_invalid_shape(self, params):
        with pytest.raises(ConfigError):
            MoGVectorized((0, 4), params)

    def test_apply_sequence_stacks(self, frames, params):
        mog = MoGVectorized(SHAPE, params)
        masks = mog.apply_sequence(frames)
        assert masks.shape == (len(frames), *SHAPE)
        assert masks.dtype == np.bool_

    def test_apply_sequence_empty(self, params):
        with pytest.raises(ConfigError):
            MoGVectorized(SHAPE, params).apply_sequence([])

    def test_background_before_frames_rejected(self, params):
        with pytest.raises(ConfigError):
            MoGVectorized(SHAPE, params).background_image()

    def test_background_image_converges(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mog = MoGVectorized(SHAPE, params)
        for t in range(30):
            mog.apply(video.frame(t))
        bg = mog.background_image()
        # The estimated background tracks the true noiseless scene to
        # within the bimodal amplitude.
        truth = video.background(29)
        close = np.abs(bg - truth) < 30.0
        assert close.mean() > 0.9

    def test_frames_processed_counter(self, frames, params):
        mog = MoGVectorized(SHAPE, params)
        mog.apply_sequence(frames)
        assert mog.frames_processed == len(frames)

    def test_float32_runs(self, frames, params):
        mog = MoGVectorized(SHAPE, params, dtype="float")
        masks = mog.apply_sequence(frames)
        assert mog.state.dtype == np.float32
        assert masks.any() or True  # runs to completion

    def test_float32_close_to_float64(self, frames, params):
        d = MoGVectorized(SHAPE, params, dtype="double")
        f = MoGVectorized(SHAPE, params, dtype="float")
        agree = 0
        total = 0
        for frame in frames:
            md, mf = d.apply(frame), f.apply(frame)
            agree += np.count_nonzero(md == mf)
            total += md.size
        assert agree / total > 0.98

    def test_first_frame_is_background(self, params):
        """Component 0 owns the first frame with full weight, so the
        first mask is (almost) everywhere background."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mog = MoGVectorized(SHAPE, params)
        mask = mog.apply(video.frame(0))
        assert mask.mean() < 0.05


class TestFiveGaussians:
    def test_runs_and_matches_reference(self, params):
        p5 = params.replace(num_gaussians=5)
        video = evaluation_scene(height=12, width=32)
        vec = MoGVectorized((12, 32), p5)
        ref = MoGReference((12, 32), p5)
        for t in range(6):
            frame = video.frame(t)
            assert np.array_equal(vec.apply(frame), ref.apply(frame))
