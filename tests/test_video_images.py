"""PGM/PPM image export/import and the run dumper."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.images import dump_run, read_image, write_image


class TestWriteRead:
    def test_gray_roundtrip(self, tmp_path, rng):
        img = (rng.random((12, 17)) * 255).astype(np.uint8)
        path = write_image(tmp_path / "x.pgm", img)
        assert path.suffix == ".pgm"
        assert np.array_equal(read_image(path), img)

    def test_rgb_roundtrip(self, tmp_path, rng):
        img = (rng.random((8, 9, 3)) * 255).astype(np.uint8)
        path = write_image(tmp_path / "x.ppm", img)
        assert path.suffix == ".ppm"
        assert np.array_equal(read_image(path), img)

    def test_bool_becomes_0_255(self, tmp_path):
        mask = np.array([[True, False]])
        path = write_image(tmp_path / "m", mask)
        assert read_image(path).tolist() == [[255, 0]]

    def test_suffix_corrected(self, tmp_path):
        path = write_image(tmp_path / "x.png", np.zeros((2, 2), np.uint8))
        assert path.suffix == ".pgm"

    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(VideoError):
            write_image(tmp_path / "x", np.zeros((2, 2), np.float64))

    def test_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(VideoError):
            write_image(tmp_path / "x", np.zeros((2, 2, 4), np.uint8))
        with pytest.raises(VideoError):
            write_image(tmp_path / "x", np.zeros((0, 2), np.uint8))

    def test_read_rejects_non_netpbm(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"JUNK")
        with pytest.raises(VideoError):
            read_image(path)

    def test_read_handles_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 1\n255\n\x07\x09")
        assert read_image(path).tolist() == [[7, 9]]

    def test_read_rejects_truncated(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\nxx")
        with pytest.raises(VideoError, match="truncated"):
            read_image(path)

    def test_read_rejects_16bit(self, tmp_path):
        path = tmp_path / "w.pgm"
        path.write_bytes(b"P5\n1 1\n65535\n\x00\x00")
        with pytest.raises(VideoError, match="8-bit"):
            read_image(path)


class TestDumpRun:
    def test_dumps_frames_and_masks(self, tmp_path):
        frames = [np.full((4, 4), t, np.uint8) for t in range(6)]
        masks = [np.zeros((4, 4), bool) for _ in range(6)]
        written = dump_run(tmp_path / "out", frames, masks, stride=2)
        names = sorted(p.name for p in written)
        assert "frame_0000.pgm" in names and "mask_0004.pgm" in names
        assert "frame_0001.pgm" not in names  # stride respected
        assert len(written) == 6  # 3 dumped steps x 2 files

    def test_background_included(self, tmp_path):
        written = dump_run(
            tmp_path, [np.zeros((4, 4), np.uint8)],
            [np.zeros((4, 4), bool)],
            background=np.full((4, 4), 7.6),
        )
        bg = [p for p in written if "background" in p.name]
        assert bg and read_image(bg[0])[0, 0] == 8  # rounded

    def test_stride_validated(self, tmp_path):
        with pytest.raises(VideoError):
            dump_run(tmp_path, [], [], stride=0)

    def test_cli_dump_dir(self, tmp_path, capsys):
        from repro.cli import main

        clip = tmp_path / "clip.npz"
        main(["synthesize", str(clip), "--frames", "6",
              "--height", "24", "--width", "24"])
        out = tmp_path / "masks.npz"
        dump = tmp_path / "dump"
        code = main(["subtract", str(clip), str(out),
                     "--dump-dir", str(dump), "--dump-stride", "3"])
        assert code == 0
        assert (dump / "frame_0000.pgm").exists()
        assert (dump / "mask_0003.pgm").exists()
        assert (dump / "background.pgm").exists()
