"""Global paper-shape assertions (fast versions of the benchmark
checks; see benchmarks/ for the full-size reproductions)."""

import pytest

from repro.bench.experiments import ExperimentContext

# A smaller context than the benchmarks use: shapes, not precision.


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(shape=(96, 128), num_frames=32, warmup=20)


def test_speedup_ordering(ctx):
    speedups = {lv: ctx.run(lv).speedup for lv in "ABCDEF"}
    assert speedups["A"] < speedups["B"] < speedups["C"] < speedups["D"]
    assert speedups["E"] < speedups["F"]
    assert speedups["F"] > 2 * speedups["B"]


def test_paper_magnitudes(ctx):
    """Loose factor agreement at reduced scale."""
    paper = {"A": 13, "B": 41, "C": 57, "D": 85, "E": 86, "F": 97}
    for level, expected in paper.items():
        got = ctx.run(level).speedup
        assert expected * 0.6 < got < expected * 1.4, (level, got)


def test_tiled_beats_flat_at_group_8(ctx):
    assert ctx.run("G", frame_group=8).speedup > ctx.run("F").speedup


def test_group_one_tiling_is_a_loss(ctx):
    """Without reuse, staging through shared memory only costs."""
    assert ctx.run("G", frame_group=1).speedup < ctx.run("F").speedup


def test_memory_efficiency_shape(ctx):
    assert ctx.run("A").metrics()["memory_access_efficiency"] < 0.2
    assert ctx.run("B").metrics()["memory_access_efficiency"] > 0.8


def test_branch_efficiency_shape(ctx):
    beff = [ctx.run(lv).metrics()["branch_efficiency"] for lv in "CDE"]
    assert beff[0] < beff[1] < beff[2]


def test_float_matches_double_trend(ctx):
    double_f = ctx.run("F", dtype="double").speedup
    float_f = ctx.run("F", dtype="float").speedup
    assert float_f > double_f * 0.95


def test_five_gaussians_slower_absolute(ctx):
    """In absolute kernel time, 5 components always cost more."""
    for level in ("C", "F"):
        t3 = ctx.run(level, num_gaussians=3).kernel_time_per_frame
        t5 = ctx.run(level, num_gaussians=5).kernel_time_per_frame
        assert t5 > 1.3 * t3
