"""Throughput-snapshot path resolution and merge semantics."""

import json

import pytest

from repro.bench.snapshot import (
    BENCH_DIR_ENV,
    SNAPSHOT_NAME,
    resolve_snapshot_dir,
    update_snapshot,
)
from repro.errors import ConfigError


class TestResolveDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        target = tmp_path / "bench" / "nested"
        monkeypatch.setenv(BENCH_DIR_ENV, str(target))
        assert resolve_snapshot_dir() == target.resolve()
        assert target.is_dir()  # created on demand

    def test_checkout_found_from_cwd(self, tmp_path, monkeypatch):
        root = tmp_path / "checkout"
        (root / "src" / "repro").mkdir(parents=True)
        (root / "pyproject.toml").write_text("[project]\n")
        inner = root / "docs"
        inner.mkdir()
        monkeypatch.delenv(BENCH_DIR_ENV, raising=False)
        monkeypatch.chdir(inner)
        assert resolve_snapshot_dir() == root.resolve()

    def test_non_checkout_cwd_raises(self, tmp_path, monkeypatch):
        """Regression: the snapshot path used to be derived from
        ``__file__`` (``parents[3]``), which points into site-packages
        once the package is installed — the file silently landed next
        to the installed library. A cwd with no checkout in sight must
        be a clear ConfigError naming the env override instead."""
        monkeypatch.delenv(BENCH_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ConfigError, match=BENCH_DIR_ENV):
            resolve_snapshot_dir()

    def test_update_snapshot_honours_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        path = update_snapshot({"x": {"frames_per_s": 1.0}})
        assert path == tmp_path / SNAPSHOT_NAME
        data = json.loads(path.read_text())
        assert data["entries"]["x"]["frames_per_s"] == 1.0


class TestMerge:
    def test_merge_preserves_other_entries(self, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        update_snapshot({"a": {"v": 1}}, path)
        update_snapshot({"b": {"v": 2}}, path)
        data = json.loads(path.read_text())
        assert set(data["entries"]) == {"a", "b"}
        assert data["schema"] == 1

    def test_corrupt_snapshot_rewritten(self, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        path.write_text("{not json")
        update_snapshot({"a": {"v": 1}}, path)
        data = json.loads(path.read_text())
        assert data["entries"] == {"a": {"v": 1}}
