"""End-to-end chaos acceptance: seeded bit-flips into live MoG state
mid-run, through the full surveillance pipeline.

The contract under test (the PR's acceptance scenario):

- with ``IntegrityPolicy(mode="repair")`` the corruption is detected
  within one frame, only the affected pixels are re-initialised, and
  the served masks re-converge to the fault-free baseline (MS-SSIM
  >= 0.98) within 30 frames;
- with ``mode="off"`` the *same* injection (same plan, same seed)
  demonstrably degrades the served output;
- ECC-on absorbs the same plan entirely: masks identical to baseline.

The seed/flip count are pinned: random low-order mantissa flips often
perturb a value without violating any invariant (physically accurate —
most soft errors are benign), so the plan is sized to guarantee
exponent-bit hits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FaultPlan, IntegrityPolicy, MoGParams
from repro.core.stream import SurveillancePipeline
from repro.faults import FaultInjector
from repro.metrics.ms_ssim import ms_ssim
from repro.telemetry import MetricsRegistry
from repro.utils.arrays import to_uint8
from repro.video.scenes import evaluation_scene

SHAPE = (24, 64)
NUM_FRAMES = 75
INJECT_AT = 40
PLAN = FaultPlan(target="state", frames=(INJECT_AT,), flips=256, seed=7)
#: Two MS-SSIM scales — SHAPE's short side (24) cannot hold the
#: default five-scale pyramid.
WEIGHTS = (0.5, 0.5)


@pytest.fixture(scope="module")
def chaos_params():
    return MoGParams(learning_rate=0.08, initial_sd=8.0)


@pytest.fixture(scope="module")
def chaos_frames():
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(NUM_FRAMES)]


@pytest.fixture(scope="module")
def baseline(chaos_params, chaos_frames):
    pipe = SurveillancePipeline(SHAPE, chaos_params, warmup_frames=5)
    return [pipe.step(f) for f in chaos_frames]


def chaos_run(params, frames, mode, plan=PLAN):
    reg = MetricsRegistry()
    injector = FaultInjector(plan, telemetry=reg)
    pipe = SurveillancePipeline(
        SHAPE, params, warmup_frames=5, on_error="raise",
        integrity=IntegrityPolicy(mode=mode), fault_injector=injector,
        telemetry=reg,
    )
    results = [pipe.step(f) for f in frames]
    return results, reg.snapshot()


def mask_ssim(a, b):
    return ms_ssim(to_uint8(a), to_uint8(b), weights=WEIGHTS)


class TestRepairMode:
    @pytest.fixture(scope="class")
    def repaired(self, chaos_params, chaos_frames):
        return chaos_run(chaos_params, chaos_frames, "repair")

    def test_pre_injection_masks_untouched(self, repaired, baseline):
        """The harness and the guard are pure observers until the
        plan fires: every pre-injection mask is bit-identical."""
        results, _ = repaired
        for got, want in zip(results[:INJECT_AT], baseline[:INJECT_AT]):
            assert np.array_equal(got.mask, want.mask)
            assert np.array_equal(got.raw_mask, want.raw_mask)

    def test_detected_within_one_frame(self, repaired):
        _, snap = repaired
        assert snap["counters"]["faults.injected"] == PLAN.flips
        assert snap["counters"]["integrity.violations"] >= 1
        latency = snap["histograms"]["integrity.detection_latency_frames"]
        assert latency["count"] >= 1
        assert latency["max_s"] <= 1.0

    def test_repairs_only_affected_pixels(self, repaired):
        """256 flips land on a handful of pixels; the repair must be
        surgical — a full reset would count every pixel here."""
        _, snap = repaired
        repaired_px = snap["counters"]["integrity.pixels_repaired"]
        num_pixels = SHAPE[0] * SHAPE[1]
        assert 1 <= repaired_px <= PLAN.flips
        assert repaired_px < 0.05 * num_pixels
        assert repaired_px == snap["counters"]["integrity.violations"]

    def test_masks_reconverge(self, repaired, baseline):
        """Acceptance bound: MS-SSIM >= 0.98 against the fault-free
        baseline within 30 frames of the injection, and it *stays*
        converged (not a lucky single frame)."""
        results, _ = repaired
        scores = [
            mask_ssim(results[t].mask, baseline[t].mask)
            for t in range(INJECT_AT, NUM_FRAMES)
        ]
        converged_at = next(
            (t for t, s in enumerate(scores) if s >= 0.98), None
        )
        assert converged_at is not None and converged_at <= 30
        assert all(s >= 0.98 for s in scores[-5:])

    def test_no_crash_no_degraded_frames(self, repaired):
        results, _ = repaired
        assert len(results) == NUM_FRAMES
        assert not any(r.degraded for r in results)


class TestOffMode:
    # Unguarded NaN/overflow values flowing through the update
    # arithmetic is exactly the failure mode under test.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_same_injection_degrades_output(
        self, chaos_params, chaos_frames, baseline
    ):
        """The control arm: identical plan and seed, no guard — the
        corruption reaches the served masks and nothing notices."""
        results, snap = chaos_run(chaos_params, chaos_frames, "off")
        assert snap["counters"]["faults.injected"] == PLAN.flips
        # No guard ran, so no detection of any kind.
        assert "integrity.checks" not in snap["counters"]
        assert "integrity.violations" not in snap["counters"]
        diff_frames = sum(
            1
            for t in range(INJECT_AT, NUM_FRAMES)
            if (results[t].mask != baseline[t].mask).any()
        )
        assert diff_frames >= 3  # served masks demonstrably wrong
        raw_diff_frames = sum(
            1
            for t in range(INJECT_AT, NUM_FRAMES)
            if (results[t].raw_mask != baseline[t].raw_mask).any()
        )
        assert raw_diff_frames >= diff_frames


class TestEccOn:
    def test_ecc_absorbs_the_same_plan(
        self, chaos_params, chaos_frames, baseline
    ):
        """With ECC on, every single-bit flip is corrected in flight:
        the run is bit-identical to the fault-free baseline and the
        guard (repair mode, checking every frame) finds nothing."""
        results, snap = chaos_run(
            chaos_params, chaos_frames, "repair", plan=PLAN.replace(ecc="on")
        )
        assert snap["counters"]["faults.corrected"] == PLAN.flips
        assert "faults.injected" not in snap["counters"]
        assert "integrity.violations" not in snap["counters"]
        for got, want in zip(results, baseline):
            assert np.array_equal(got.mask, want.mask)


class TestSimBackendChaos:
    def test_sim_state_injection_repaired(self, chaos_params):
        """The same plan family through the simulated-GPU backend:
        faults land in the float global-memory buffers before a launch,
        the guard downloads, repairs, and re-uploads the state."""
        shape = (16, 24)
        video = evaluation_scene(height=shape[0], width=shape[1])
        reg = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(target="state", frames=(6,), flips=96, seed=5),
            telemetry=reg,
        )
        pipe = SurveillancePipeline(
            shape, chaos_params, backend="sim", level="F",
            warmup_frames=0, on_error="raise",
            integrity=IntegrityPolicy(mode="repair"),
            fault_injector=injector, telemetry=reg,
        )
        for t in range(12):
            pipe.step(video.frame(t))
        counters = reg.snapshot()["counters"]
        assert counters["faults.injected"] == 96
        assert counters["integrity.pixels_repaired"] >= 1
        # After repair the model keeps serving clean state: the last
        # guard checks found nothing further to fix.
        assert (
            counters["integrity.pixels_repaired"]
            == counters["integrity.violations"]
        )
