"""Global-memory model: allocation and the coalescing transaction count."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.gpusim.memory import GlobalMemory, count_transactions

WARP = 32
TX = 128


def _tx(addresses, active=None):
    addresses = np.asarray(addresses, dtype=np.int64)
    if active is None:
        active = np.ones(addresses.shape, dtype=bool)
    return count_transactions(addresses, np.asarray(active), WARP, TX)


class TestCountTransactions:
    def test_contiguous_4byte_one_transaction(self):
        addrs = np.arange(WARP) * 4
        assert _tx(addrs) == 1

    def test_contiguous_8byte_two_transactions(self):
        addrs = np.arange(WARP) * 8
        assert _tx(addrs) == 2

    def test_aos_stride_72_is_18_segments(self):
        """The paper's AoS pattern: 3 double Gaussians -> 72 B stride."""
        addrs = np.arange(WARP) * 72
        assert _tx(addrs) == 18

    def test_broadcast_single_transaction(self):
        addrs = np.zeros(WARP, dtype=np.int64)
        assert _tx(addrs) == 1

    def test_fully_scattered(self):
        addrs = np.arange(WARP) * TX * 7  # every lane its own segment
        assert _tx(addrs) == WARP

    def test_unaligned_contiguous_crosses_boundary(self):
        addrs = 64 + np.arange(WARP) * 4  # 128 B spanning two segments
        assert _tx(addrs) == 2

    def test_inactive_lanes_free(self):
        addrs = np.arange(WARP) * TX
        active = np.zeros(WARP, dtype=bool)
        active[3] = True
        assert _tx(addrs, active) == 1

    def test_all_inactive_zero(self):
        addrs = np.arange(WARP) * 4
        assert _tx(addrs, np.zeros(WARP, dtype=bool)) == 0

    def test_multiple_warps_summed(self):
        addrs = np.concatenate([np.arange(WARP) * 4, np.arange(WARP) * 72])
        assert _tx(addrs) == 1 + 18

    def test_warp_boundary_not_shared(self):
        """Two warps touching the same segment still pay twice."""
        addrs = np.zeros(2 * WARP, dtype=np.int64)
        assert _tx(addrs) == 2

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(MemoryModelError):
            _tx(np.zeros(33, dtype=np.int64))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MemoryModelError):
            count_transactions(
                np.zeros(32, dtype=np.int64), np.ones(64, dtype=bool), WARP, TX
            )

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_stride_formula(self, stride_bytes):
        """For an aligned strided access, transactions per warp equal
        the span in segments (ceil(32*stride/128) when stride<=128)."""
        addrs = np.arange(WARP) * stride_bytes
        expected = addrs[-1] // TX - addrs[0] // TX + 1
        assert _tx(addrs) == expected

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=WARP, max_size=WARP,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, addr_list):
        tx = _tx(np.array(addr_list))
        assert 1 <= tx <= WARP
        assert tx == len({a // TX for a in addr_list})


class TestGlobalMemory:
    def test_alloc_and_alignment(self):
        mem = GlobalMemory()
        a = mem.alloc("a", 100, np.float64)
        b = mem.alloc("b", 10, np.uint8)
        assert a.base % 256 == 0 and b.base % 256 == 0
        assert b.base >= a.base + a.nbytes

    def test_alloc_like_copies(self):
        mem = GlobalMemory()
        src = np.arange(6, dtype=np.float32)
        buf = mem.alloc_like("x", src.reshape(2, 3))
        assert np.array_equal(buf.data, src)
        src[0] = 99  # original mutation must not leak in
        assert buf.data[0] == 0

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory()
        mem.alloc("x", 4, np.uint8)
        with pytest.raises(MemoryModelError):
            mem.alloc("x", 4, np.uint8)

    def test_get_and_free(self):
        mem = GlobalMemory()
        mem.alloc("x", 4, np.uint8)
        assert mem.get("x").num_elements == 4
        mem.free("x")
        with pytest.raises(MemoryModelError):
            mem.get("x")
        with pytest.raises(MemoryModelError):
            mem.free("x")

    def test_bytes_allocated(self):
        mem = GlobalMemory()
        mem.alloc("x", 10, np.float64)
        mem.alloc("y", 10, np.uint8)
        assert mem.bytes_allocated == 80 + 10

    def test_bad_transaction_size(self):
        with pytest.raises(MemoryModelError):
            GlobalMemory(transaction_bytes=100)

    def test_addresses(self):
        mem = GlobalMemory()
        buf = mem.alloc("x", 8, np.float64)
        idx = np.array([0, 2])
        assert np.array_equal(buf.addresses(idx), buf.base + idx * 8)
