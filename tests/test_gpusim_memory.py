"""Global-memory model: allocation and the coalescing transaction count."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.gpusim.memory import (
    GlobalMemory,
    _distinct_mask,
    count_transactions,
    count_transactions_with_l1,
)

WARP = 32
TX = 128


def _tx(addresses, active=None):
    addresses = np.asarray(addresses, dtype=np.int64)
    if active is None:
        active = np.ones(addresses.shape, dtype=bool)
    return count_transactions(addresses, np.asarray(active), WARP, TX)


class TestCountTransactions:
    def test_contiguous_4byte_one_transaction(self):
        addrs = np.arange(WARP) * 4
        assert _tx(addrs) == 1

    def test_contiguous_8byte_two_transactions(self):
        addrs = np.arange(WARP) * 8
        assert _tx(addrs) == 2

    def test_aos_stride_72_is_18_segments(self):
        """The paper's AoS pattern: 3 double Gaussians -> 72 B stride."""
        addrs = np.arange(WARP) * 72
        assert _tx(addrs) == 18

    def test_broadcast_single_transaction(self):
        addrs = np.zeros(WARP, dtype=np.int64)
        assert _tx(addrs) == 1

    def test_fully_scattered(self):
        addrs = np.arange(WARP) * TX * 7  # every lane its own segment
        assert _tx(addrs) == WARP

    def test_unaligned_contiguous_crosses_boundary(self):
        addrs = 64 + np.arange(WARP) * 4  # 128 B spanning two segments
        assert _tx(addrs) == 2

    def test_inactive_lanes_free(self):
        addrs = np.arange(WARP) * TX
        active = np.zeros(WARP, dtype=bool)
        active[3] = True
        assert _tx(addrs, active) == 1

    def test_all_inactive_zero(self):
        addrs = np.arange(WARP) * 4
        assert _tx(addrs, np.zeros(WARP, dtype=bool)) == 0

    def test_multiple_warps_summed(self):
        addrs = np.concatenate([np.arange(WARP) * 4, np.arange(WARP) * 72])
        assert _tx(addrs) == 1 + 18

    def test_warp_boundary_not_shared(self):
        """Two warps touching the same segment still pay twice."""
        addrs = np.zeros(2 * WARP, dtype=np.int64)
        assert _tx(addrs) == 2

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(MemoryModelError):
            _tx(np.zeros(33, dtype=np.int64))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MemoryModelError):
            count_transactions(
                np.zeros(32, dtype=np.int64), np.ones(64, dtype=bool), WARP, TX
            )

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_stride_formula(self, stride_bytes):
        """For an aligned strided access, transactions per warp equal
        the span in segments (ceil(32*stride/128) when stride<=128)."""
        addrs = np.arange(WARP) * stride_bytes
        expected = addrs[-1] // TX - addrs[0] // TX + 1
        assert _tx(addrs) == expected

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=WARP, max_size=WARP,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, addr_list):
        tx = _tx(np.array(addr_list))
        assert 1 <= tx <= WARP
        assert tx == len({a // TX for a in addr_list})


def _brute_force_tx(addresses, active):
    """Set-based oracle: distinct segments per warp, summed."""
    total = 0
    for w in range(0, len(addresses), WARP):
        segs = {
            addresses[i] // TX
            for i in range(w, w + WARP)
            if active[i]
        }
        total += len(segs)
    return total


class TestAffineShortcut:
    """The O(warps) analytic path must agree with the sort-based model
    for every affine pattern, and must not trigger for anything else."""

    @pytest.mark.parametrize("stride", [0, 1, 4, 8, 72, 128, 136, 256])
    @pytest.mark.parametrize("base", [0, 64, 100])
    @pytest.mark.parametrize("num_warps", [1, 2, 3])
    def test_matches_brute_force(self, stride, base, num_warps):
        addrs = base + np.arange(num_warps * WARP, dtype=np.int64) * stride
        active = np.ones(addrs.size, dtype=bool)
        assert _tx(addrs) == _brute_force_tx(addrs, active)

    @pytest.mark.parametrize("stride", [4, 72, 136])
    def test_negative_stride(self, stride):
        addrs = 100_000 - np.arange(2 * WARP, dtype=np.int64) * stride
        assert _tx(addrs) == _brute_force_tx(
            addrs, np.ones(addrs.size, dtype=bool)
        )

    def test_non_affine_falls_back(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 50_000, size=2 * WARP).astype(np.int64)
        assert _tx(addrs) == _brute_force_tx(
            addrs, np.ones(addrs.size, dtype=bool)
        )

    def test_shuffled_contiguous_counts_like_sorted(self):
        """Per-warp distinctness is order-independent."""
        rng = np.random.default_rng(3)
        addrs = np.arange(WARP, dtype=np.int64) * 8
        rng.shuffle(addrs)
        assert _tx(addrs) == 2

    def test_partially_active_never_uses_shortcut(self):
        """An affine pattern with inactive lanes must count only the
        active lanes' segments."""
        addrs = np.arange(WARP, dtype=np.int64) * TX
        active = np.ones(WARP, dtype=bool)
        active[::2] = False
        assert _tx(addrs, active) == WARP // 2

    def test_empty_grid(self):
        assert _tx(np.zeros(0, dtype=np.int64)) == 0


class TestL1EdgeCases:
    def _l1(self, addresses, active=None, window_cap=4, num_warps=None):
        addresses = np.asarray(addresses, dtype=np.int64)
        if active is None:
            active = np.ones(addresses.shape, dtype=bool)
        if num_warps is None:
            num_warps = addresses.size // WARP
        window = np.full((num_warps, window_cap), -1, dtype=np.int64)
        tx, hits = count_transactions_with_l1(
            addresses, np.asarray(active), WARP, TX, window
        )
        return tx, hits, window

    def test_fully_inactive_warp(self):
        """A fully-inactive warp issues nothing and caches nothing."""
        addrs = np.arange(WARP, dtype=np.int64) * 4
        tx, hits, window = self._l1(addrs, active=np.zeros(WARP, dtype=bool))
        assert (tx, hits) == (0, 0)
        assert (window == -1).all()

    def test_unaligned_base_straddles_segment(self):
        """A 128 B contiguous access starting at offset 64 touches two
        segments; both must miss cold and both must be cached."""
        addrs = 64 + np.arange(WARP, dtype=np.int64) * 4
        tx, hits, window = self._l1(addrs)
        assert (tx, hits) == (2, 0)
        assert set(window[0]) - {-1} == {0, 1}

    def test_window_smaller_than_distinct_segments(self):
        """An access touching more segments than the window holds keeps
        only the most recent ones (and never overflows)."""
        addrs = np.arange(WARP, dtype=np.int64) * TX  # 32 distinct segments
        tx, hits, window = self._l1(addrs, window_cap=4)
        assert (tx, hits) == (WARP, 0)
        assert window.shape == (1, 4)
        assert (window >= 0).all()
        # A repeat of the *cached* tail segments hits; the evicted ones
        # miss again.
        cached = set(window[0].tolist())
        tx2, hits2 = count_transactions_with_l1(
            addrs, np.ones(WARP, dtype=bool), WARP, TX, window
        )
        assert hits2 == len(cached)
        assert tx2 == WARP - len(cached)

    def test_window_warp_count_mismatch_rejected(self):
        addrs = np.arange(2 * WARP, dtype=np.int64) * 4
        with pytest.raises(MemoryModelError):
            self._l1(addrs, num_warps=1)

    def test_distinct_mask_inactive_sentinel(self):
        """Inactive lanes carry -1 and are never marked distinct."""
        addrs = np.arange(WARP, dtype=np.int64) * 4
        active = np.zeros(WARP, dtype=bool)
        active[5] = True
        segments, distinct = _distinct_mask(addrs, active, WARP, TX)
        assert distinct.sum() == 1
        assert (segments == -1).sum() == WARP - 1
        assert segments[distinct][0] == (5 * 4) // TX


class TestGlobalMemory:
    def test_alloc_and_alignment(self):
        mem = GlobalMemory()
        a = mem.alloc("a", 100, np.float64)
        b = mem.alloc("b", 10, np.uint8)
        assert a.base % 256 == 0 and b.base % 256 == 0
        assert b.base >= a.base + a.nbytes

    def test_alloc_like_copies(self):
        mem = GlobalMemory()
        src = np.arange(6, dtype=np.float32)
        buf = mem.alloc_like("x", src.reshape(2, 3))
        assert np.array_equal(buf.data, src)
        src[0] = 99  # original mutation must not leak in
        assert buf.data[0] == 0

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory()
        mem.alloc("x", 4, np.uint8)
        with pytest.raises(MemoryModelError):
            mem.alloc("x", 4, np.uint8)

    def test_zero_sized_alloc_rejected(self):
        mem = GlobalMemory()
        with pytest.raises(MemoryModelError, match="zero-sized"):
            mem.alloc("x", 0, np.float64)
        with pytest.raises(MemoryModelError, match="zero-sized"):
            mem.alloc("y", (4, 0), np.uint8)

    def test_zero_sized_alloc_like_rejected(self):
        mem = GlobalMemory()
        with pytest.raises(MemoryModelError, match="zero-sized"):
            mem.alloc_like("x", np.zeros((0,), dtype=np.float32))

    def test_get_and_free(self):
        mem = GlobalMemory()
        mem.alloc("x", 4, np.uint8)
        assert mem.get("x").num_elements == 4
        mem.free("x")
        with pytest.raises(MemoryModelError):
            mem.get("x")
        with pytest.raises(MemoryModelError):
            mem.free("x")

    def test_bytes_allocated(self):
        mem = GlobalMemory()
        mem.alloc("x", 10, np.float64)
        mem.alloc("y", 10, np.uint8)
        assert mem.bytes_allocated == 80 + 10

    def test_bad_transaction_size(self):
        with pytest.raises(MemoryModelError):
            GlobalMemory(transaction_bytes=100)

    def test_addresses(self):
        mem = GlobalMemory()
        buf = mem.alloc("x", 8, np.float64)
        idx = np.array([0, 2])
        assert np.array_equal(buf.addresses(idx), buf.base + idx * 8)
