"""The allocation-free fast path must be bit-identical to `nosort`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mog import MoGVectorized
from repro.mog.fast import FastMoG
from repro.video.scenes import evaluation_scene

SHAPE = (32, 64)


class TestEquivalence:
    @pytest.mark.parametrize("dtype", ["double", "float"])
    def test_bitwise_masks_and_state(self, params, dtype):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        clear = MoGVectorized(SHAPE, params, variant="nosort", dtype=dtype)
        fast = FastMoG(SHAPE, params, dtype=dtype)
        for t in range(20):
            frame = video.frame(t)
            assert np.array_equal(clear.apply(frame), fast.apply(frame)), t
        assert np.array_equal(clear.state.w, fast.state.w)
        assert np.array_equal(clear.state.m, fast.state.m)
        assert np.array_equal(clear.state.sd, fast.state.sd)

    def test_five_gaussians(self, params):
        p5 = params.replace(num_gaussians=5)
        video = evaluation_scene(height=16, width=32)
        clear = MoGVectorized((16, 32), p5, variant="nosort")
        fast = FastMoG((16, 32), p5)
        for t in range(8):
            frame = video.frame(t)
            assert np.array_equal(clear.apply(frame), fast.apply(frame))

    def test_returned_masks_independent(self, params):
        """apply() must hand out masks the caller can keep."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        fast = FastMoG(SHAPE, params)
        m1 = fast.apply(video.frame(0))
        snapshot = m1.copy()
        fast.apply(video.frame(1))
        assert np.array_equal(m1, snapshot)


class TestApi:
    def test_shape_validated(self, params):
        fast = FastMoG(SHAPE, params)
        with pytest.raises(ConfigError):
            fast.apply(np.zeros((4, 4), dtype=np.uint8))

    def test_empty_sequence(self, params):
        with pytest.raises(ConfigError):
            FastMoG(SHAPE, params).apply_sequence([])

    def test_background_image(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        fast = FastMoG(SHAPE, params)
        clear = MoGVectorized(SHAPE, params, variant="nosort")
        for t in range(6):
            fast.apply(video.frame(t))
            clear.apply(video.frame(t))
        assert np.array_equal(fast.background_image(), clear.background_image())

    def test_background_before_frames(self, params):
        with pytest.raises(ConfigError):
            FastMoG(SHAPE, params).background_image()
