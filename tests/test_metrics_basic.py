"""MSE / PSNR behaviour."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import mse, psnr


class TestMse:
    def test_identical_is_zero(self, rng):
        img = rng.random((8, 8)) * 255
        assert mse(img, img) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 3.0)
        assert mse(a, b) == 9.0

    def test_symmetric(self, rng):
        a, b = rng.random((6, 6)), rng.random((6, 6))
        assert mse(a, b) == mse(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(MetricError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            mse(np.zeros((0, 2)), np.zeros((0, 2)))


class TestPsnr:
    def test_identical_is_inf(self):
        img = np.full((4, 4), 7.0)
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_more_noise_lower_psnr(self, rng):
        img = rng.random((16, 16)) * 255
        small = img + rng.normal(0, 1, img.shape)
        large = img + rng.normal(0, 10, img.shape)
        assert psnr(img, small) > psnr(img, large)

    def test_data_range_validated(self):
        with pytest.raises(MetricError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)), data_range=0.0)
