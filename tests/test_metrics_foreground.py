"""Foreground detection metrics, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import MetricError
from repro.metrics import ForegroundScore, foreground_score
from repro.metrics.foreground import score_sequence

mask_pairs = st.tuples(
    arrays(np.bool_, (8, 8)), arrays(np.bool_, (8, 8))
)


class TestForegroundScore:
    def test_perfect_prediction(self):
        truth = np.zeros((4, 4), dtype=bool)
        truth[1:3, 1:3] = True
        s = foreground_score(truth, truth)
        assert s.precision == s.recall == s.f1 == s.iou == 1.0
        assert s.true_positives == 4 and s.false_positives == 0

    def test_all_wrong(self):
        truth = np.zeros((2, 2), dtype=bool)
        pred = np.ones((2, 2), dtype=bool)
        s = foreground_score(pred, truth)
        assert s.precision == 0.0
        assert s.recall == 1.0  # nothing true to miss
        assert s.iou == 0.0

    def test_empty_prediction_empty_truth(self):
        zeros = np.zeros((3, 3), dtype=bool)
        s = foreground_score(zeros, zeros)
        assert s.precision == 1.0 and s.recall == 1.0 and s.iou == 1.0
        assert s.accuracy == 1.0

    def test_half_overlap(self):
        truth = np.array([[True, True, False, False]])
        pred = np.array([[True, False, True, False]])
        s = foreground_score(pred, truth)
        assert (s.true_positives, s.false_positives, s.false_negatives,
                s.true_negatives) == (1, 1, 1, 1)
        assert s.precision == 0.5 and s.recall == 0.5 and s.f1 == 0.5
        assert s.iou == pytest.approx(1 / 3)

    def test_nonzero_means_foreground(self):
        s = foreground_score(np.array([[0, 255]]), np.array([[0, 1]]))
        assert s.true_positives == 1 and s.true_negatives == 1

    def test_shape_mismatch(self):
        with pytest.raises(MetricError):
            foreground_score(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            foreground_score(np.zeros((0,)), np.zeros((0,)))

    def test_addition_accumulates(self):
        a = ForegroundScore(1, 2, 3, 4)
        b = ForegroundScore(10, 20, 30, 40)
        c = a + b
        assert (c.true_positives, c.false_positives,
                c.false_negatives, c.true_negatives) == (11, 22, 33, 44)


class TestScoreSequence:
    def test_accumulates_frames(self):
        truth = np.zeros((2, 2), dtype=bool)
        truth[0, 0] = True
        total = score_sequence([truth, truth], [truth, truth])
        assert total.true_positives == 2
        assert total.true_negatives == 6

    def test_length_mismatch(self):
        m = np.zeros((2, 2), dtype=bool)
        with pytest.raises(MetricError):
            score_sequence([m], [m, m])

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            score_sequence([], [])


class TestProperties:
    @given(mask_pairs)
    @settings(max_examples=50, deadline=None)
    def test_counts_partition_pixels(self, masks):
        pred, truth = masks
        s = foreground_score(pred, truth)
        assert (
            s.true_positives + s.false_positives
            + s.false_negatives + s.true_negatives
        ) == pred.size

    @given(mask_pairs)
    @settings(max_examples=50, deadline=None)
    def test_metrics_in_unit_interval(self, masks):
        pred, truth = masks
        s = foreground_score(pred, truth)
        for value in (s.precision, s.recall, s.f1, s.iou, s.accuracy):
            assert 0.0 <= value <= 1.0

    @given(arrays(np.bool_, (8, 8)))
    @settings(max_examples=50, deadline=None)
    def test_self_is_perfect(self, mask):
        s = foreground_score(mask, mask)
        assert s.f1 == 1.0 and s.iou == 1.0

    @given(mask_pairs)
    @settings(max_examples=50, deadline=None)
    def test_swap_transposes_precision_recall(self, masks):
        pred, truth = masks
        a = foreground_score(pred, truth)
        b = foreground_score(truth, pred)
        assert a.true_positives == b.true_positives
        assert a.false_positives == b.false_negatives
        # precision/recall swap roles except for empty-side conventions.
        if pred.any() and truth.any():
            assert a.precision == pytest.approx(b.recall)
