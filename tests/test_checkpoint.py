"""Crash-safe durable checkpoints: file format, corruption rejection,
bit-identical pipeline resume, and survival of a real SIGKILL.
"""

from __future__ import annotations

import os
import signal
import struct
import subprocess
import sys
import time
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.config import MoGParams
from repro.core.stream import SurveillancePipeline
from repro.errors import CheckpointError, ReproError
from repro.faults import (
    MAGIC,
    SCHEMA_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from repro.video.scenes import evaluation_scene

SHAPE = (16, 24)


def sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "w": rng.random((3, 8), dtype=np.float64),
        "m": rng.random((3, 8), dtype=np.float32),
        "mask": np.array([[0, 255], [255, 0]], dtype=np.uint8),
        "flags": np.array([True, False]),
    }


class TestFileFormat:
    def test_roundtrip_bit_identical(self, tmp_path):
        arrays = sample_arrays()
        meta = {"kind": "test", "frame_index": 17, "nested": {"a": [1, 2]}}
        path = write_checkpoint(tmp_path / "ck.ckpt", arrays, meta)
        got_arrays, got_meta = read_checkpoint(path)
        assert got_meta == meta
        assert set(got_arrays) == set(arrays)
        for name, arr in arrays.items():
            assert got_arrays[name].dtype == arr.dtype
            assert np.array_equal(got_arrays[name], arr)

    def test_no_temporary_left_behind(self, tmp_path):
        write_checkpoint(tmp_path / "ck.ckpt", sample_arrays(), {})
        assert os.listdir(tmp_path) == ["ck.ckpt"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        write_checkpoint(path, {"x": np.zeros(4)}, {"gen": 1})
        write_checkpoint(path, {"x": np.ones(4)}, {"gen": 2})
        arrays, meta = read_checkpoint(path)
        assert meta["gen"] == 2
        assert np.array_equal(arrays["x"], np.ones(4))

    def test_unserialisable_meta_rejected_before_write(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        with pytest.raises(CheckpointError):
            write_checkpoint(path, {"x": np.zeros(2)}, {"bad": object()})
        assert not path.exists()

    def test_checkpoint_error_is_repro_error(self):
        # A corrupt file must surface as the library's typed error, so
        # CLI/serving layers can catch one base class.
        assert issubclass(CheckpointError, ReproError)


class TestCorruptionRejection:
    def _write(self, tmp_path):
        return write_checkpoint(
            tmp_path / "ck.ckpt", sample_arrays(), {"kind": "test"}
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_truncated_header(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(path.read_bytes()[:5])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_truncated_body_fails_crc(self, tmp_path):
        """The SIGKILL-mid-write shape: a torn tail must be rejected
        deterministically, not parsed into garbage state."""
        path = self._write(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="CRC"):
            read_checkpoint(path)

    def test_single_flipped_byte_fails_crc(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40  # bit-rot in the npz payload
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            read_checkpoint(path)

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"JUNK"
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint(path)

    def test_future_schema_rejected(self, tmp_path):
        path = self._write(tmp_path)
        raw = path.read_bytes()
        body = raw[12:]
        header = struct.pack(
            "<4sII", MAGIC, SCHEMA_VERSION + 1, zlib.crc32(body) & 0xFFFFFFFF
        )
        path.write_bytes(header + body)
        with pytest.raises(CheckpointError, match="schema version"):
            read_checkpoint(path)

    def test_valid_crc_malformed_payload(self, tmp_path):
        # CRC intact but the body is not meta+npz: a writer bug, still
        # a typed error rather than a parser crash.
        body = struct.pack("<I", 2) + b"{}" + b"this is not an npz"
        header = struct.pack(
            "<4sII", MAGIC, SCHEMA_VERSION, zlib.crc32(body) & 0xFFFFFFFF
        )
        path = tmp_path / "ck.ckpt"
        path.write_bytes(header + body)
        with pytest.raises(CheckpointError, match="malformed"):
            read_checkpoint(path)


def make_pipeline(params, **kw):
    return SurveillancePipeline(SHAPE, params, warmup_frames=0, **kw)


class TestPipelineCheckpoint:
    def test_save_before_first_frame_rejected(self, params, tmp_path):
        pipe = make_pipeline(params)
        with pytest.raises(CheckpointError, match="before the first frame"):
            pipe.save_checkpoint(tmp_path / "ck.ckpt")

    def test_resume_is_bit_identical(self, params, tmp_path):
        """The headline contract: restore from a checkpoint taken at
        frame k, replay k+1..n, and every mask equals the
        uninterrupted run's bit for bit."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        frames = [video.frame(t) for t in range(24)]
        pipe = make_pipeline(params)
        baseline = [pipe.step(f).mask for f in frames]

        first = make_pipeline(params)
        for f in frames[:10]:
            first.step(f)
        first.save_checkpoint(tmp_path / "ck.ckpt")

        resumed = make_pipeline(params)
        at = resumed.restore_checkpoint(tmp_path / "ck.ckpt")
        assert at == 9  # last served frame index
        assert resumed.frame_index == 9
        masks = [resumed.step(f).mask for f in frames[10:]]
        for got, want in zip(masks, baseline[10:]):
            assert np.array_equal(got, want)
        snap = resumed.telemetry.snapshot()["counters"]
        assert snap["checkpoint.restored"] == 1

    def test_checkpoint_does_not_perturb_the_run(self, params, tmp_path):
        """Saving must be a pure observer: a run that checkpoints every
        frame produces the same masks as one that never does."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        frames = [video.frame(t) for t in range(8)]
        quiet = make_pipeline(params)
        expected = [quiet.step(f).mask for f in frames]
        noisy = make_pipeline(params)
        got = []
        for f in frames:
            got.append(noisy.step(f).mask)
            noisy.save_checkpoint(tmp_path / "every.ckpt")
        for a, b in zip(got, expected):
            assert np.array_equal(a, b)

    def test_config_mismatch_rejected(self, params, tmp_path):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = make_pipeline(params)
        pipe.step(video.frame(0))
        pipe.save_checkpoint(tmp_path / "ck.ckpt")
        other = make_pipeline(MoGParams(learning_rate=0.02))
        with pytest.raises(CheckpointError, match="params mismatch"):
            other.restore_checkpoint(tmp_path / "ck.ckpt")
        wrong_level = SurveillancePipeline(
            SHAPE, params, level="A", warmup_frames=0
        )
        with pytest.raises(CheckpointError, match="level mismatch"):
            wrong_level.restore_checkpoint(tmp_path / "ck.ckpt")

    def test_missing_state_array_rejected(self, params, tmp_path):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        pipe = make_pipeline(params)
        pipe.step(video.frame(0))
        pipe.save_checkpoint(tmp_path / "ck.ckpt")
        arrays, meta = read_checkpoint(tmp_path / "ck.ckpt")
        del arrays["sd"]
        write_checkpoint(tmp_path / "partial.ckpt", arrays, meta)
        with pytest.raises(CheckpointError, match="missing state array"):
            make_pipeline(params).restore_checkpoint(
                tmp_path / "partial.ckpt"
            )

    def test_wrong_kind_rejected(self, params, tmp_path):
        write_checkpoint(
            tmp_path / "other.ckpt", {"x": np.zeros(3)}, {"kind": "bench"}
        )
        with pytest.raises(CheckpointError, match="not a surveillance"):
            make_pipeline(params).restore_checkpoint(tmp_path / "other.ckpt")


_CHILD_SCRIPT = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.config import MoGParams
from repro.core.stream import SurveillancePipeline
from repro.video.scenes import evaluation_scene

video = evaluation_scene(height={h}, width={w})
pipe = SurveillancePipeline(
    ({h}, {w}),
    MoGParams(learning_rate=0.08, initial_sd=8.0),
    warmup_frames=0,
)
for t in range(200):
    pipe.step(video.frame(t))
    if (pipe.frame_index + 1) % 5 == 0:
        pipe.save_checkpoint({ckpt!r})
    time.sleep(0.02)  # stay killable mid-run
"""


class TestCrashResume:
    def test_sigkill_then_resume_bit_identical(self, params, tmp_path):
        """End-to-end crash scenario: a stream process checkpointing
        every 5 frames is SIGKILLed mid-run; a fresh process resumes
        from the durable file and serves masks bit-identical to an
        uninterrupted run from the checkpoint frame onward."""
        ckpt = tmp_path / "stream.ckpt"
        src = str(Path(__file__).resolve().parent.parent / "src")
        code = _CHILD_SCRIPT.format(
            src=src, h=SHAPE[0], w=SHAPE[1], ckpt=str(ckpt)
        )
        child = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not ckpt.exists():
                if child.poll() is not None:
                    pytest.fail(
                        "child exited before checkpointing: "
                        + child.stderr.read().decode()
                    )
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.02)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=10.0)
        finally:
            if child.poll() is None:
                child.kill()
            child.stderr.close()

        # The same parameters the child used (not the session fixture).
        child_params = MoGParams(learning_rate=0.08, initial_sd=8.0)
        resumed = SurveillancePipeline(
            SHAPE, child_params, warmup_frames=0
        )
        at = resumed.restore_checkpoint(ckpt)
        assert at >= 4  # first checkpoint lands after frame 4
        assert (at + 1) % 5 == 0

        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        baseline = SurveillancePipeline(
            SHAPE, child_params, warmup_frames=0
        )
        expected = [baseline.step(video.frame(t)).mask for t in range(at + 11)]
        got = [
            resumed.step(video.frame(t)).mask for t in range(at + 1, at + 11)
        ]
        for off, mask in enumerate(got):
            assert np.array_equal(mask, expected[at + 1 + off])
