"""Prebuilt scenes and sequence I/O."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.io import ArraySource, load_sequence, record, save_sequence
from repro.video.scenes import (
    evaluation_scene,
    patient_room_scene,
    surveillance_scene,
    traffic_scene,
)


@pytest.mark.parametrize(
    "builder",
    [evaluation_scene, surveillance_scene, traffic_scene, patient_room_scene],
)
class TestPrebuiltScenes:
    def test_produces_frames(self, builder):
        video = builder(height=48, width=64)
        frame, truth = video.frame_with_truth(8)
        assert frame.shape == (48, 64)
        assert frame.dtype == np.uint8

    def test_has_moving_foreground(self, builder):
        video = builder(height=48, width=64)
        truths = [video.frame_with_truth(t)[1] for t in range(12)]
        assert any(t.any() for t in truths), "scene never shows an object"
        positions = {tuple(np.argwhere(t)[0]) for t in truths if t.any()}
        assert len(positions) > 1, "objects never move"

    def test_deterministic(self, builder):
        a = builder(height=32, width=32)
        b = builder(height=32, width=32)
        assert np.array_equal(a.frame(5), b.frame(5))

    def test_num_frames_forwarded(self, builder):
        video = builder(height=32, width=32, num_frames=7)
        assert len(video) == 7


class TestArraySource:
    def test_from_stack(self):
        stack = np.zeros((3, 4, 5), dtype=np.uint8)
        src = ArraySource(stack)
        assert src.shape == (4, 5)
        assert len(src) == 3 and src.num_frames == 3

    def test_from_list(self):
        src = ArraySource([np.zeros((4, 5), dtype=np.uint8)] * 2)
        assert len(src) == 2

    def test_empty_list_rejected(self):
        with pytest.raises(VideoError):
            ArraySource([])

    def test_wrong_ndim_rejected(self):
        with pytest.raises(VideoError):
            ArraySource(np.zeros((4, 5), dtype=np.uint8))

    def test_index_bounds(self):
        src = ArraySource(np.zeros((2, 4, 4), dtype=np.uint8))
        src.frame(1)
        with pytest.raises(VideoError):
            src.frame(2)
        with pytest.raises(VideoError):
            src.frame(-1)

    def test_float_frames_converted(self):
        src = ArraySource(np.full((2, 4, 4), 5.4))
        assert src.frame(0).dtype == np.uint8

    def test_frames_generator(self):
        src = ArraySource(np.arange(2 * 4 * 4, dtype=np.uint8).reshape(2, 4, 4))
        frames = list(src.frames(2))
        assert np.array_equal(frames[1], src.frame(1))


class TestRecord:
    def test_records_synthetic(self):
        video = evaluation_scene(height=16, width=16)
        src = record(video, 4, start=2)
        assert len(src) == 4
        assert np.array_equal(src.frame(0), video.frame(2))

    def test_rejects_nonpositive(self):
        video = evaluation_scene(height=16, width=16)
        with pytest.raises(VideoError):
            record(video, 0)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        frames = np.arange(2 * 4 * 4, dtype=np.uint8).reshape(2, 4, 4)
        truth = frames > 10
        path = tmp_path / "seq.npz"
        save_sequence(path, frames, truth, fps=30.0)
        src, loaded_truth, meta = load_sequence(path)
        assert np.array_equal(src._frames, frames)
        assert np.array_equal(loaded_truth, truth)
        assert meta == {"fps": 30.0}

    def test_roundtrip_without_truth(self, tmp_path):
        frames = np.zeros((2, 4, 4), dtype=np.uint8)
        path = tmp_path / "seq.npz"
        save_sequence(path, frames)
        src, truth, meta = load_sequence(path)
        assert truth is None and meta == {}

    def test_truth_shape_mismatch(self, tmp_path):
        with pytest.raises(VideoError):
            save_sequence(
                tmp_path / "x.npz",
                np.zeros((2, 4, 4), dtype=np.uint8),
                np.zeros((2, 4, 5), dtype=bool),
            )

    def test_wrong_rank_rejected(self, tmp_path):
        with pytest.raises(VideoError):
            save_sequence(tmp_path / "x.npz", np.zeros((4, 4), dtype=np.uint8))

    def test_not_a_sequence_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(VideoError):
            load_sequence(path)
