"""Structural tests of the CUDA source generator (no nvcc offline)."""

import re

import pytest

from repro.config import MoGParams, RunConfig
from repro.cudagen import CudaGenConfig, generate_kernel, generate_project
from repro.errors import ConfigError


def cfg(dtype="double", **kw):
    return CudaGenConfig(
        params=MoGParams(**{k: v for k, v in kw.items() if k in
                            ("num_gaussians", "learning_rate")}),
        run_config=RunConfig(dtype=dtype),
    )


def balanced(text: str) -> bool:
    return text.count("{") == text.count("}") and text.count("(") == text.count(")")


class TestGenerateKernel:
    @pytest.mark.parametrize("level", list("ABCDEFG"))
    def test_braces_and_parens_balanced(self, level):
        assert balanced(generate_kernel(level, cfg())), level

    def test_level_a_uses_aos(self):
        src = generate_kernel("A", cfg())
        assert "AOS_IDX" in src and "SOA_IDX" not in src

    @pytest.mark.parametrize("level", list("BDEF"))
    def test_soa_levels(self, level):
        src = generate_kernel(level, cfg())
        assert "SOA_IDX" in src and "AOS_IDX" not in src

    def test_sorted_levels_have_sort_and_break(self):
        src = generate_kernel("B", cfg())
        assert "bubble sort" in src
        assert "break;" in src

    def test_level_d_drops_sort_keeps_branches(self):
        src = generate_kernel("D", cfg())
        assert "bubble sort" not in src
        assert "if (d < GAMMA1 * sd)" in src
        assert "Algorithm 3" in src

    def test_level_e_predicated(self):
        src = generate_kernel("E", cfg())
        assert "matched * ONE_MINUS_ALPHA" in src
        assert "if (d < GAMMA1 * sd)" not in src  # update is branchless

    def test_level_f_has_no_diff_array(self):
        src = generate_kernel("F", cfg())
        assert "scalar_t diff[NUM_GAUSSIANS];" not in src
        assert "fabs(x - g[SOA_IDX(k, P_M, pix)])" in src  # recomputed

    def test_level_g_shared_memory(self):
        src = generate_kernel("G", cfg())
        assert "extern __shared__ scalar_t tile[];" in src
        assert "__syncthreads();" in src
        assert "SH_IDX" in src

    def test_unknown_level(self):
        with pytest.raises(ConfigError):
            generate_kernel("Z", cfg())


class TestGoldenTokens:
    """Per-level golden tokens: which constructs each level's source
    must (and must not) contain, keyed off the shared KernelSpec."""

    @pytest.mark.parametrize("level", list("DEFG"))
    def test_no_sort_at_d_plus(self, level):
        src = generate_kernel(level, cfg())
        assert "bubble sort" not in src and "rank[" not in src

    @pytest.mark.parametrize("level", list("ABC"))
    def test_sort_below_d(self, level):
        src = generate_kernel(level, cfg())
        assert "bubble sort" in src and "break;" in src

    @pytest.mark.parametrize("level", list("ABCDEF"))
    def test_shared_only_at_g(self, level):
        assert "__shared__" not in generate_kernel(level, cfg())

    def test_g_has_shared(self):
        assert "__shared__" in generate_kernel("G", cfg())

    @pytest.mark.parametrize("level", list("ABCD"))
    def test_branchy_update_below_e(self, level):
        src = generate_kernel(level, cfg())
        assert "if (d < GAMMA1 * sd)" in src

    @pytest.mark.parametrize("level", list("EFG"))
    def test_predicated_at_e_plus(self, level):
        src = generate_kernel(level, cfg())
        assert "matched * ONE_MINUS_ALPHA" in src
        assert "if (d < GAMMA1 * sd)" not in src

    @pytest.mark.parametrize(
        "level, has_diff", [("A", True), ("E", True), ("F", False)]
    )
    def test_diff_array_dropped_at_f(self, level, has_diff):
        src = generate_kernel(level, cfg())
        assert ("scalar_t diff[NUM_GAUSSIANS];" in src) is has_diff


class TestGenerateFromSpec:
    """cudagen consumes the same KernelSpec the simulator builds from."""

    def test_spec_matches_letter(self):
        from repro.kernels.ir import spec_for_level

        for level in "ABCDEF":
            by_letter = generate_kernel(level, cfg())
            by_spec = generate_kernel(spec_for_level(level), cfg())
            # Same body; only the kernel/file name differs.
            def strip(s):
                return [
                    line for line in s.splitlines()
                    if "mog_kernel" not in line
                ]

            assert strip(by_spec) == strip(by_letter), level

    def test_custom_pass_stack(self):
        from repro.kernels.ir import apply_passes, spec_for_level

        spec = apply_passes(spec_for_level("A"), ("predication",))
        src = generate_kernel(spec, cfg())
        assert "AOS_IDX" in src                       # still level-A layout
        assert "matched * ONE_MINUS_ALPHA" in src     # predicated update
        assert "bubble sort" in src                   # sort not eliminated
        assert balanced(src)

    def test_register_tiling_has_no_cuda_template(self):
        from repro.kernels.ir import apply_passes, spec_for_level

        spec = apply_passes(spec_for_level("F"), ("register-tiling",))
        with pytest.raises(ConfigError):
            generate_kernel(spec, cfg())


class TestFusedKernel:
    """Golden tokens of the fusion pass's CUDA artifact."""

    @staticmethod
    def fused_spec(base="F", stages=None):
        from repro.kernels.ir import FusionPass, apply_passes, spec_for_level

        passes = ("fusion",) if stages is None else (FusionPass(stages),)
        return apply_passes(spec_for_level(base), passes)

    def test_fused_f_has_tail_and_params(self):
        src = generate_kernel(self.fused_spec(), cfg())
        assert balanced(src)
        assert "Fused post stages" in src
        assert "scalar_t bg_est" in src
        assert "MIN_CONTRAST" in src
        assert "SHADOW_ALPHA_LOW" in src and "SHADOW_ALPHA_HIGH" in src
        assert "unsigned char* __restrict__ shadow" in src
        assert "unsigned char* __restrict__ classes" in src
        assert "shadow[pix]" in src and "classes[pix]" in src

    @pytest.mark.parametrize("level", list("ABCDEFG"))
    def test_unfused_levels_have_no_tail(self, level):
        src = generate_kernel(level, cfg())
        assert "Fused post stages" not in src
        assert "MIN_CONTRAST" not in src
        assert "shadow" not in src and "classes" not in src

    def test_threshold_only_subset_drops_outputs(self):
        src = generate_kernel(self.fused_spec(stages=("threshold",)), cfg())
        assert balanced(src)
        assert "MIN_CONTRAST" in src
        assert "shadow[pix]" not in src and "classes[pix]" not in src
        assert "__restrict__ shadow" not in src
        assert "__restrict__ classes" not in src

    def test_fused_tiled_reads_the_tile(self):
        src = generate_kernel(self.fused_spec(base="G"), cfg())
        assert balanced(src)
        assert "Fused post stages" in src
        assert "tile[SH_IDX(k, P_W, lane)]" in src
        assert "shadows[f][pix]" in src and "classes[f][pix]" in src
        assert "unsigned char* const* __restrict__ shadows" in src

    def test_header_has_fusion_constants(self):
        from repro.cudagen.generator import _header
        from repro.config import FusionParams

        header = _header(
            CudaGenConfig(
                MoGParams(), RunConfig(),
                fusion=FusionParams(min_contrast=7.0),
            )
        )
        assert "#define MIN_CONTRAST 7.0" in header
        assert "#define SHADOW_ALPHA_LOW" in header
        assert "#define SHADOW_ALPHA_HIGH" in header

    def test_project_ships_fused_f(self, tmp_path):
        generate_project(tmp_path / "cuda")
        src = (tmp_path / "cuda" / "mog_kernel_F_fused.cu").read_text()
        assert "mog_kernel_F_fused" in src
        assert "Fused post stages" in src
        mk = (tmp_path / "cuda" / "Makefile").read_text()
        assert "mog_kernel_F_fused.cu" in mk


class TestParameterPropagation:
    def test_dtype_double(self):
        from repro.cudagen.generator import _header

        header = _header(cfg("double"))
        assert "typedef double scalar_t;" in header

    def test_dtype_float_literals(self):
        from repro.cudagen.generator import _header

        header = _header(cfg("float"))
        assert "typedef float scalar_t;" in header
        assert re.search(r"#define GAMMA1 [\d.]+f", header)

    def test_gaussian_count(self):
        from repro.cudagen.generator import _header

        header = _header(
            CudaGenConfig(MoGParams(num_gaussians=5), RunConfig())
        )
        assert "#define NUM_GAUSSIANS 5" in header

    def test_learning_rate_becomes_alpha(self):
        from repro.cudagen.generator import _header

        header = _header(
            CudaGenConfig(MoGParams(learning_rate=0.25), RunConfig())
        )
        assert "#define ALPHA 0.75" in header


class TestGenerateProject:
    def test_writes_all_files(self, tmp_path):
        written = generate_project(tmp_path / "cuda")
        names = {p.name for p in written}
        assert names == {
            "mog_common.cuh", "mog_kernel_A.cu", "mog_kernel_B.cu",
            "mog_kernel_D.cu", "mog_kernel_E.cu", "mog_kernel_F.cu",
            "mog_kernel_F_fused.cu", "mog_kernel_G.cu", "main.cu",
            "Makefile",
        }
        for path in written:
            assert path.exists() and path.stat().st_size > 0

    def test_sources_balanced(self, tmp_path):
        for path in generate_project(tmp_path / "cuda"):
            if path.suffix in (".cu", ".cuh"):
                assert balanced(path.read_text()), path.name

    def test_host_driver_has_pipeline(self, tmp_path):
        generate_project(tmp_path / "cuda")
        main = (tmp_path / "cuda" / "main.cu").read_text()
        assert "cudaMemcpyAsync" in main
        assert "cudaMallocHost" in main          # pinned buffers
        assert "copy_stream" in main and "exec_stream" in main
        assert "init_gaussians" in main

    def test_makefile_lists_all_kernels(self, tmp_path):
        generate_project(tmp_path / "cuda")
        mk = (tmp_path / "cuda" / "Makefile").read_text()
        for level in "ABDEFG":
            assert f"mog_kernel_{level}.cu" in mk


class TestDmsgKernel:
    def _src(self, level="F", dtype="double"):
        from repro.core.variants import resolve_level_spec

        spec = resolve_level_spec(level, model="dmsg").kernel
        return generate_kernel(spec, cfg(dtype=dtype))

    @pytest.mark.parametrize("level", ["A", "F", "A+predication"])
    def test_braces_balanced(self, level):
        assert balanced(self._src(level))

    def test_family_prefixed_name_and_macros(self):
        src = self._src("F")
        assert "__global__ void dmsg_kernel_regopt(" in src
        assert "DMSG_SOA_IDX" in src
        assert "NUM_GAUSSIANS" not in src  # family-neutral header stays

    def test_level_a_uses_aos_macro(self):
        assert "DMSG_AOS_IDX" in self._src("A")

    def test_no_sort_tokens(self):
        # DMSG has nothing to rank: the sort-elimination pass is a
        # no-op and the rendered kernel never sorts.
        for level in ("A", "D", "F"):
            src = self._src(level)
            assert "sort" not in src.lower()

    def test_update_style_tracks_level(self):
        assert "if (mb)" in self._src("A") or "else" in self._src("A")
        predicated = self._src("F")
        assert "mb *" in predicated or "(1.0 - mb)" in predicated \
            or "* mb" in predicated

    def test_swap_precedes_fused_tail(self):
        src = self._src("F+fusion")
        assert balanced(src)
        swap = src.index("a1 > a0")
        tail = src.index("bg_est")
        assert swap < tail
        assert "shadow[pix]" in src and "classes[pix]" in src

    def test_tiled_dmsg_rejected(self):
        from repro.core.variants import resolve_level_spec

        spec = resolve_level_spec("G", model="dmsg").kernel
        with pytest.raises(ConfigError, match="no tiled CUDA template"):
            generate_kernel(spec, cfg())

    def test_header_carries_dmsg_constants(self, tmp_path):
        generate_project(tmp_path)
        header = (tmp_path / "mog_common.cuh").read_text()
        assert "#define DMSG_MODES 2" in header
        assert "DMSG_AGE_CAP" in header
