"""The simulated multimodal-mean GPU kernel vs its vectorized CPU twin."""

import numpy as np
import pytest

from repro.baselines import MultimodalMeanParams, MultimodalMeanVectorized
from repro.errors import LaunchError
from repro.kernels.multimodal import MultimodalMeanGpu
from repro.video.scenes import evaluation_scene

SHAPE = (16, 64)


@pytest.fixture(scope="module")
def frames():
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(20)]


class TestEquivalence:
    def test_masks_and_state_identical(self, frames):
        cpu = MultimodalMeanVectorized(SHAPE)
        gpu = MultimodalMeanGpu(SHAPE)
        for frame in frames:
            assert np.array_equal(cpu.apply(frame), gpu.apply(frame))
        assert np.array_equal(cpu.sums.reshape(-1), gpu.sums.data)
        assert np.array_equal(
            cpu.counts.reshape(-1).astype(np.float64), gpu.counts.data
        )

    def test_decay_kernel_matches(self, frames):
        p = MultimodalMeanParams(decay_period=4)
        cpu = MultimodalMeanVectorized(SHAPE, p)
        gpu = MultimodalMeanGpu(SHAPE, p)
        for frame in frames[:9]:  # crosses two decay boundaries
            assert np.array_equal(cpu.apply(frame), gpu.apply(frame))
        assert np.array_equal(
            cpu.counts.reshape(-1).astype(np.float64), gpu.counts.data
        )

    def test_frame_shape_validated(self):
        gpu = MultimodalMeanGpu(SHAPE)
        with pytest.raises(LaunchError):
            gpu.apply(np.zeros((4, 4), dtype=np.uint8))


class TestSimtCosts:
    """The §II argument as measured by the simulator."""

    @pytest.fixture(scope="class")
    def converged_gpu(self, frames):
        gpu = MultimodalMeanGpu(SHAPE)
        gpu.apply_sequence(frames)
        return gpu

    def _frame_launches(self, gpu):
        return [ln for ln in gpu.engine.launches if ln.name.startswith("mmm[")]

    def test_scan_branches_divergent(self, converged_gpu):
        launches = self._frame_launches(converged_gpu)[10:]
        total = sum(ln.counters.branches_total for ln in launches)
        divergent = sum(ln.counters.branches_divergent for ln in launches)
        beff = 1 - divergent / total
        # Far below the fixed-K predicated kernel's ~99.5%.
        assert beff < 0.95

    def test_masked_loads_hurt_coalescing(self, converged_gpu):
        launches = self._frame_launches(converged_gpu)[10:]
        eff = np.mean(
            [ln.counters.memory_access_efficiency for ln in launches]
        )
        # Lanes drop out of the scan at different cells, so warp
        # requests are partially filled.
        assert eff < 0.8

    def test_decay_kernel_is_uniform(self, frames):
        gpu = MultimodalMeanGpu(SHAPE, MultimodalMeanParams(decay_period=6))
        gpu.apply_sequence(frames)
        decays = [ln for ln in gpu.engine.launches if ln.name == "mmm_decay"]
        assert decays, "decay kernel never ran"
        for launch in decays:
            assert launch.counters.branches_divergent == 0
            assert launch.counters.memory_access_efficiency > 0.95
