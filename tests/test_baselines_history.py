"""The history-based baselines (frame differencing, running average)."""

import numpy as np
import pytest

from repro.baselines import FrameDifference, RunningAverage
from repro.errors import ConfigError

SHAPE = (16, 16)


def const(value):
    return np.full(SHAPE, value, dtype=np.uint8)


class TestFrameDifference:
    def test_first_frame_empty(self):
        fd = FrameDifference(SHAPE)
        assert not fd.apply(const(100)).any()

    def test_detects_change(self):
        fd = FrameDifference(SHAPE, threshold=25.0)
        fd.apply(const(100))
        assert fd.apply(const(180)).all()

    def test_below_threshold_ignored(self):
        fd = FrameDifference(SHAPE, threshold=25.0)
        fd.apply(const(100))
        assert not fd.apply(const(110)).any()

    def test_stationary_object_vanishes(self):
        """The classic frame-differencing failure: anything that stops
        moving disappears immediately."""
        fd = FrameDifference(SHAPE)
        fd.apply(const(50))
        frame = const(50)
        frame[4:8, 4:8] = 200
        assert fd.apply(frame)[5, 5]          # appears
        assert not fd.apply(frame)[5, 5]      # gone while stationary

    def test_validation(self):
        with pytest.raises(ConfigError):
            FrameDifference((0, 4))
        with pytest.raises(ConfigError):
            FrameDifference(SHAPE, threshold=0.0)
        with pytest.raises(ConfigError):
            FrameDifference(SHAPE).apply(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ConfigError):
            FrameDifference(SHAPE).apply_sequence([])


class TestRunningAverage:
    def test_constant_scene_background(self):
        ra = RunningAverage(SHAPE)
        for _ in range(5):
            mask = ra.apply(const(90))
        assert not mask.any()

    def test_step_change_detected_then_persistent(self):
        """Selective update: foreground does NOT bleed into the model,
        so (unlike MoG) a parked object stays foreground forever."""
        ra = RunningAverage(SHAPE, learning_rate=0.2)
        for _ in range(5):
            ra.apply(const(40))
        for _ in range(30):
            mask = ra.apply(const(200))
        assert mask.all()

    def test_slow_drift_absorbed(self):
        ra = RunningAverage(SHAPE, learning_rate=0.3)
        level = 60.0
        for _ in range(40):
            level += 1.0
            mask = ra.apply(const(int(level)))
        assert not mask.any()

    def test_background_image_tracks_scene(self):
        ra = RunningAverage(SHAPE)
        for _ in range(10):
            ra.apply(const(123))
        assert np.allclose(ra.background_image(), 123.0, atol=1.0)

    def test_bimodal_background_floods(self):
        """The unimodal failure that motivates MoG: a two-mode pixel
        keeps tripping the single-model detector."""
        ra = RunningAverage(SHAPE, learning_rate=0.05)
        fg_hits = 0
        for t in range(60):
            value = 60 if (t // 8) % 2 == 0 else 140
            fg_hits += int(ra.apply(const(value)).any())
        assert fg_hits > 5

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunningAverage(SHAPE, learning_rate=0.0)
        with pytest.raises(ConfigError):
            RunningAverage(SHAPE, k=0.0)
        with pytest.raises(ConfigError):
            RunningAverage(SHAPE).background_image()
        with pytest.raises(ConfigError):
            RunningAverage(SHAPE).apply(np.zeros((4, 4), dtype=np.uint8))
