"""PCIe transfer model and the stream scheduler (paper Figure 5)."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.dma import StreamScheduler, transfer_time

DEV = TESLA_C2075


class TestTransferTime:
    def test_zero_bytes_free(self):
        assert transfer_time(0) == 0.0

    def test_linear_in_bytes_plus_latency(self):
        small = transfer_time(1_000_000)
        large = transfer_time(2_000_000)
        assert large - small == pytest.approx(1_000_000 / DEV.pcie_bandwidth)
        assert small > 1_000_000 / DEV.pcie_bandwidth  # latency included

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            transfer_time(-1)


class TestSerialSchedule:
    def test_total_is_sum_of_phases(self):
        sched = StreamScheduler(DEV, overlapped=False)
        kt = 0.005
        n = 10
        res = sched.run([kt] * n, bytes_in=2_000_000, bytes_out=2_000_000)
        t_in = transfer_time(2_000_000)
        expected = n * (t_in + kt + t_in)
        assert res.total_time == pytest.approx(expected)

    def test_phases_never_overlap(self):
        sched = StreamScheduler(DEV, overlapped=False)
        res = sched.run([0.01] * 4, bytes_in=1_000_000, bytes_out=1_000_000)
        for prev, cur in zip(res.frames, res.frames[1:]):
            assert cur.copy_in_start >= prev.copy_out_end


class TestOverlappedSchedule:
    def test_steady_state_is_max_of_engines(self):
        """Paper Fig 5(b): once the pipeline fills, throughput is set by
        the slowest engine — the kernel when compute-bound."""
        sched = StreamScheduler(DEV, overlapped=True)
        kt = 0.008
        n = 50
        res = sched.run([kt] * n, bytes_in=2_000_000, bytes_out=2_000_000)
        # Total ~ fill + n * kt (kernel-bound since kt > transfer).
        assert res.total_time == pytest.approx(n * kt, rel=0.15)

    def test_transfer_bound_when_kernel_tiny(self):
        sched = StreamScheduler(DEV, overlapped=True)
        n = 50
        res = sched.run([1e-6] * n, bytes_in=4_000_000, bytes_out=1000)
        t_in = transfer_time(4_000_000)
        assert res.total_time == pytest.approx(n * t_in, rel=0.15)

    def test_overlap_beats_serial(self):
        kt = [0.005] * 20
        serial = StreamScheduler(DEV, overlapped=False).run(kt, 2_000_000, 2_000_000)
        overlap = StreamScheduler(DEV, overlapped=True).run(kt, 2_000_000, 2_000_000)
        assert overlap.total_time < serial.total_time * 0.75

    def test_copy_in_overlaps_previous_kernel(self):
        sched = StreamScheduler(DEV, overlapped=True)
        res = sched.run([0.01] * 4, bytes_in=2_000_000, bytes_out=2_000_000)
        f0, f1 = res.frames[0], res.frames[1]
        assert f1.copy_in_start < f0.kernel_end  # genuine overlap

    def test_double_buffer_dependency(self):
        """Copy-in of frame i reuses frame i-2's buffer: with a slow
        kernel, copy-in i cannot start before kernel i-2 ends."""
        sched = StreamScheduler(DEV, overlapped=True)
        res = sched.run([0.1] * 5, bytes_in=1000, bytes_out=1000)
        for i in range(2, 5):
            assert (
                res.frames[i].copy_in_start
                >= res.frames[i - 2].kernel_end - 1e-12
            )

    def test_kernel_waits_for_its_input(self):
        sched = StreamScheduler(DEV, overlapped=True)
        res = sched.run([0.001] * 6, bytes_in=3_000_000, bytes_out=1000)
        for f in res.frames:
            assert f.kernel_start >= f.copy_in_end - 1e-12

    def test_per_slot_transfer_sizes(self):
        sched = StreamScheduler(DEV, overlapped=True)
        res = sched.run(
            [0.001, 0.001], bytes_in=[1_000_000, 8_000_000], bytes_out=[0, 0]
        )
        d0 = res.frames[0].copy_in_end - res.frames[0].copy_in_start
        d1 = res.frames[1].copy_in_end - res.frames[1].copy_in_start
        assert d1 > d0 * 4

    def test_size_list_length_validated(self):
        sched = StreamScheduler(DEV)
        with pytest.raises(ConfigError):
            sched.run([0.001] * 3, bytes_in=[1, 2], bytes_out=0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            StreamScheduler(DEV).run([], 0, 0)

    def test_negative_kernel_time_rejected(self):
        with pytest.raises(ConfigError):
            StreamScheduler(DEV).run([-0.1], 0, 0)

    def test_utilisation_fields(self):
        res = StreamScheduler(DEV, overlapped=True).run(
            [0.01] * 5, bytes_in=1_000_000, bytes_out=1_000_000
        )
        assert 0.0 < res.kernel_utilisation <= 1.0
        assert 0.0 < res.copy_utilisation <= 1.0
        assert res.kernel_busy == pytest.approx(0.05)
