"""Text-table rendering and example-script health."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.bench.reporting import format_table, millions, pct

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Columns align: every row has the separator at the same offset.
        sep_col = lines[0].index("v")
        assert lines[2][sep_col] in "1 "
        assert lines[3].index("22") == sep_col

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Title")
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_empty_rows(self):
        text = format_table(["col1", "col2"], [])
        assert "col1" in text

    def test_cells_stringified(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14159" in text

    def test_pct_and_millions(self):
        assert pct(0.1234) == "12.3%"
        assert millions(6_700_000) == "6.70M"


class TestExamples:
    """Every example must at least import cleanly and expose main()."""

    @pytest.mark.parametrize(
        "script", sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    )
    def test_importable_with_main(self, script):
        path = EXAMPLES_DIR / script
        spec = importlib.util.spec_from_file_location(
            f"example_{script[:-3]}", path
        )
        module = importlib.util.module_from_spec(spec)
        # Register so dataclasses/typing introspection inside works.
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            assert callable(getattr(module, "main", None)), script
        finally:
            sys.modules.pop(spec.name, None)

    def test_expected_example_set(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "optimization_tour.py",
            "surveillance_quality.py",
            "tiled_window_sweep.py",
            "precision_and_components.py",
            "parallel_cpu.py",
            "color_subtraction.py",
            "parameter_study.py",
            "profiler_deep_dive.py",
            "surveillance_pipeline.py",
        } <= names
