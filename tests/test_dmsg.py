"""The dual-mode single Gaussian (DMSG) model family.

Covers the model-family axis of the kernel IR (registry, per-family
pass applicability, ``model:`` level expressions), the cross-emitter
bit-identity pin — gpusim vs the :mod:`repro.dmsg` NumPy oracle vs the
jit emitter's interpreted engine, both dtypes — and the checkpoint /
serving interop rules (cross-family restore fails typed; per-stream
model choice on the thread server).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MoGParams, RunConfig, ServeConfig
from repro.core.stream import SurveillancePipeline
from repro.core.subtractor import BackgroundSubtractor
from repro.core.variants import (
    backend_availability,
    custom_level,
    level_spec_for,
    resolve_level_spec,
)
from repro.dmsg import DmsgVectorized, dmsg_state_from_first_frame
from repro.errors import CheckpointError, ConfigError
from repro.kernels.ir import (
    DMSG_FAMILY,
    MODEL_FAMILIES,
    MOG_FAMILY,
    KernelSpec,
    applicable_passes,
    base_spec_for,
    resolve_model,
    spec_for_level,
)
from repro.kernels.jit import spec_fingerprint
from repro.mog.jit import MoGJit
from repro.serve import StreamServer
from repro.video.scenes import evaluation_scene

SHAPE = (8, 10)
PARAMS = MoGParams(initial_sd=8.0)
#: Levels the cross-emitter suite pins (the satellite's floor: A, F and
#: the explicit custom stack).
LEVELS = ["A", "F", "A+predication"]
DTYPES = ("double", "float")


def _frames(n, shape=SHAPE, seed=3):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=seed)
    return [video.frame(t) for t in range(n)]


def _dmsg_jit(level, dtype="double"):
    spec = resolve_level_spec(level, model="dmsg").kernel
    return MoGJit(SHAPE, PARAMS, spec=spec, dtype=dtype, engine="python")


# ----------------------------------------------------------------------
# Model-family registry and spec axis
# ----------------------------------------------------------------------
class TestModelFamilies:
    def test_registry(self):
        assert set(MODEL_FAMILIES) == {"mog", "dmsg"}
        assert MODEL_FAMILIES["mog"] is MOG_FAMILY
        assert MODEL_FAMILIES["dmsg"] is DMSG_FAMILY

    def test_resolve_model(self):
        assert resolve_model("dmsg") is DMSG_FAMILY
        assert resolve_model(" MOG ") is MOG_FAMILY
        assert resolve_model(DMSG_FAMILY) is DMSG_FAMILY
        with pytest.raises(ConfigError, match="unknown model family"):
            resolve_model("knn")

    def test_component_count(self):
        assert MOG_FAMILY.component_count(PARAMS) == PARAMS.num_gaussians
        assert DMSG_FAMILY.component_count(PARAMS) == 2

    def test_base_spec_for_dmsg_is_unsorted_flat(self):
        spec = base_spec_for("dmsg")
        assert spec.model is DMSG_FAMILY
        assert spec.name == "dmsg_base"
        assert spec.sort is False and spec.scan == "flat"

    def test_default_model_shim_keeps_mog(self):
        # The pre-family signature must keep returning MoG specs so
        # existing callers see no change.
        assert spec_for_level("F").model is MOG_FAMILY
        assert spec_for_level("F") == spec_for_level("F", MOG_FAMILY)

    def test_sort_invalid_without_sort_semantics(self):
        with pytest.raises(ConfigError, match="no rank/sort"):
            KernelSpec(model=DMSG_FAMILY, sort=True).validate()

    def test_kernel_names_derive_from_family(self):
        assert spec_for_level("F", "dmsg").name == "dmsg_regopt"
        assert spec_for_level("F", "mog").name == "mog_regopt"
        assert spec_for_level("B", "dmsg").name == "dmsg_coalesced"

    def test_fingerprint_discriminates_families(self):
        mog = spec_for_level("F")
        dmsg = spec_for_level("F", "dmsg")
        assert spec_fingerprint(mog, 4) != spec_fingerprint(dmsg, 2)


class TestPassApplicability:
    def test_sort_elimination_is_mog_only(self):
        from repro.kernels.ir import PASS_REGISTRY

        assert PASS_REGISTRY["sort-elimination"].families == ("mog",)
        for name in ("soa-layout", "predication", "fusion"):
            assert "dmsg" in PASS_REGISTRY[name].families
            assert "mog" in PASS_REGISTRY[name].families

    def test_inapplicable_pass_is_noop_with_warning(self):
        from repro.kernels.ir import PASS_REGISTRY

        spec = base_spec_for("dmsg")
        with pytest.warns(RuntimeWarning, match="does not apply"):
            out = PASS_REGISTRY["sort-elimination"](spec)
        assert out == spec

    def test_applicable_passes_filters(self):
        stack = ("soa-layout", "sort-elimination", "predication")
        assert applicable_passes(stack, "dmsg") == (
            "soa-layout", "predication",
        )
        assert applicable_passes(stack, "mog") == stack

    def test_cumulative_levels_filter_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = spec_for_level("D", "dmsg")
        assert spec.sort is False

    def test_custom_level_warns_on_explicit_request(self):
        with pytest.warns(RuntimeWarning, match="sort-elimination"):
            custom_level(["sort-elimination"], model="dmsg")


class TestLevelExpressions:
    def test_model_prefix_resolves(self):
        spec = resolve_level_spec("dmsg:F")
        assert spec.model is DMSG_FAMILY and spec.letter == "F"
        custom = resolve_level_spec("dmsg:A+predication")
        assert custom.model is DMSG_FAMILY
        assert custom.kernel.update == "predicated"

    def test_prefix_and_model_must_agree(self):
        with pytest.raises(ConfigError):
            resolve_level_spec("dmsg:F", model="mog")
        spec = resolve_level_spec("dmsg:F", model="dmsg")
        assert spec.model is DMSG_FAMILY

    def test_dmsg_levels_have_no_paper_speedup(self):
        assert level_spec_for("F", "dmsg").paper_speedup is None
        assert level_spec_for("F", "mog").paper_speedup is not None

    def test_tiled_dmsg_has_no_cuda_rendering(self):
        avail = backend_availability("dmsg:G")
        assert avail["cpu"]["available"] and avail["sim"]["available"]
        assert not avail["cuda-text"]["available"]
        assert "dmsg" in avail["cuda-text"]["reason"]


# ----------------------------------------------------------------------
# Oracle behaviour
# ----------------------------------------------------------------------
class TestDmsgOracle:
    def test_variant_validation(self):
        with pytest.raises(ConfigError, match="unknown variant"):
            DmsgVectorized(SHAPE, PARAMS, variant="sorted")

    def test_first_frame_is_all_background(self):
        model = DmsgVectorized(SHAPE, PARAMS)
        mask = model.apply(_frames(1)[0])
        assert mask.dtype == np.bool_ and not mask.any()

    def test_candidate_age_never_exceeds_background(self):
        model = DmsgVectorized(SHAPE, PARAMS)
        for frame in _frames(12):
            model.apply(frame)
            ages = model.state.w
            assert (ages[1] <= ages[0]).all()

    def test_scene_change_swaps_candidate_in(self):
        # A hard global scene change: the candidate mode accumulates
        # age on the new plateau and swaps in, so the model re-learns
        # instead of flagging foreground forever.
        model = DmsgVectorized(SHAPE, PARAMS)
        dark = np.full(SHAPE, 30.0)
        bright = np.full(SHAPE, 200.0)
        for _ in range(6):
            model.apply(dark)
        masks = [model.apply(bright) for _ in range(10)]
        assert masks[0].all()        # the step itself is foreground
        assert not masks[-1].any()   # absorbed after the swap
        assert float(model.background_image().mean()) == pytest.approx(
            200.0, abs=1.0
        )

    def test_state_initialiser_matches_first_apply(self):
        frame = _frames(1)[0]
        state = dmsg_state_from_first_frame(
            frame.reshape(-1), PARAMS, dtype=np.float64
        )
        model = DmsgVectorized(SHAPE, PARAMS)
        model.apply(frame)
        # Background mode mean is the first frame; candidate is dormant.
        np.testing.assert_array_equal(state.m[0], frame.reshape(-1))
        assert (state.w[1] == 0).all()


# ----------------------------------------------------------------------
# Cross-emitter bit-identity (the oracle pin)
# ----------------------------------------------------------------------
class TestCrossEmitterBitIdentity:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_jit_masks_and_state_match_oracle(self, level, dtype):
        frames = _frames(7)
        jit = _dmsg_jit(level, dtype)
        cpu = DmsgVectorized(SHAPE, PARAMS, dtype=dtype)
        for frame in frames:
            assert np.array_equal(jit.apply(frame), cpu.apply(frame)), level
        # Full state identity in BOTH dtypes (stronger than the MoG
        # float suite): every DMSG intermediate stays in the run dtype.
        for name in ("w", "m", "sd"):
            assert np.array_equal(
                getattr(jit.state, name), getattr(cpu.state, name)
            ), (level, dtype, name)

    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_sim_masks_match_oracle(self, level, dtype):
        frames = _frames(6)
        run_config = RunConfig(
            height=SHAPE[0], width=SHAPE[1], dtype=dtype
        )
        sim = BackgroundSubtractor(
            SHAPE, PARAMS, level=level, model="dmsg", backend="sim",
            run_config=run_config,
        )
        cpu = DmsgVectorized(SHAPE, PARAMS, dtype=dtype)
        for frame in frames:
            assert np.array_equal(sim.apply(frame), cpu.apply(frame)), level

    def test_all_dmsg_levels_agree(self):
        # DMSG ignores the sort/scan axes entirely, so every level's
        # masks (not just the decision-preserving pairs) are identical.
        frames = _frames(6)
        reference = None
        for letter in "ABCDEFG":
            sub = BackgroundSubtractor(
                SHAPE, PARAMS, level=letter, model="dmsg", backend="cpu"
            )
            masks = np.stack([sub.apply(f) for f in frames])
            if reference is None:
                reference = masks
            else:
                assert np.array_equal(masks, reference), letter

    def test_subtractor_model_resolution(self):
        sub = BackgroundSubtractor(SHAPE, level="dmsg:F", backend="cpu")
        assert sub.model is DMSG_FAMILY
        cfg = RunConfig(height=8, width=10, model="dmsg")
        sub2 = BackgroundSubtractor(
            SHAPE, level="F", backend="cpu", run_config=cfg
        )
        assert sub2.model is DMSG_FAMILY
        with pytest.raises(ConfigError):
            BackgroundSubtractor(
                SHAPE, level="dmsg:F", model="mog", backend="cpu"
            )


# ----------------------------------------------------------------------
# Checkpoint interop
# ----------------------------------------------------------------------
def _pipeline(model, **kw):
    return SurveillancePipeline(
        SHAPE, PARAMS, warmup_frames=0, backend="cpu", model=model, **kw
    )


class TestCheckpointInterop:
    def _checkpoint(self, tmp_path, model):
        pipe = _pipeline(model)
        for frame in _frames(4):
            pipe.step(frame)
        path = tmp_path / f"{model}.ckpt"
        pipe.save_checkpoint(path)
        return path

    @pytest.mark.parametrize(
        "saved,restored", [("dmsg", "mog"), ("mog", "dmsg")]
    )
    def test_cross_family_restore_fails_typed(
        self, tmp_path, saved, restored
    ):
        path = self._checkpoint(tmp_path, saved)
        victim = _pipeline(restored)
        with pytest.raises(CheckpointError) as err:
            victim.restore_checkpoint(path)
        message = str(err.value)
        assert "model-family mismatch" in message
        assert saved in message and restored in message

    def test_same_family_roundtrip(self, tmp_path):
        path = self._checkpoint(tmp_path, "dmsg")
        frames = _frames(8)
        resumed = _pipeline("dmsg")
        resumed.restore_checkpoint(path)
        baseline = _pipeline("dmsg")
        for frame in frames[:4]:
            baseline.step(frame)
        for frame in frames[4:]:
            assert np.array_equal(
                resumed.step(frame).mask, baseline.step(frame).mask
            )

    def test_serve_resume_mismatch_fresh_readmits_and_counts(
        self, tmp_path
    ):
        # A DMSG checkpoint on disk, a MoG server resuming over it:
        # the default policy fails admission; "fresh" re-admits the
        # stream fresh and counts the fallback in telemetry.
        path = tmp_path / "cam.ckpt"
        donor = _pipeline("dmsg")
        for frame in _frames(4):
            donor.step(frame)
        donor.save_checkpoint(path)

        with StreamServer(
            SHAPE,
            serve=ServeConfig(
                resume=True, checkpoint_dir=str(tmp_path),
            ),
        ) as server:
            with pytest.raises(CheckpointError, match="model-family"):
                server.add_stream("cam")

        with StreamServer(
            SHAPE,
            serve=ServeConfig(
                resume=True, checkpoint_dir=str(tmp_path),
                resume_mismatch="fresh",
            ),
        ) as server:
            server.add_stream("cam")
            status = server.stream_status()[0]
            assert status["model"] == "mog"
            assert "started fresh" in status["resume_note"]
            snap = server.registry.snapshot()
            assert snap["counters"]["server.resume_fallbacks"] == 1


# ----------------------------------------------------------------------
# Per-stream model choice on the thread server
# ----------------------------------------------------------------------
class TestServeModels:
    def test_mixed_models_serve_bit_identical(self):
        frames = _frames(8, shape=SHAPE)
        with StreamServer(SHAPE, params=PARAMS) as server:
            server.add_stream("mog-cam")
            server.add_stream("dmsg-cam", model="dmsg")
            by_model = {
                row["stream"]: row["model"]
                for row in server.stream_status()
            }
            assert by_model == {"mog-cam": "mog", "dmsg-cam": "dmsg"}
            for frame in frames:
                server.submit("mog-cam", frame)
                server.submit("dmsg-cam", frame)
            server.drain()
            dmsg_masks = [r.mask for r in server.results("dmsg-cam")]
            mog_masks = [r.mask for r in server.results("mog-cam")]
        serial = _pipeline("dmsg")
        for frame, mask in zip(frames, dmsg_masks):
            assert np.array_equal(serial.step(frame).mask, mask)
        # The two families genuinely diverge on this scene.
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(dmsg_masks, mog_masks)
        )

    def test_model_conflicts_with_injected_pipeline(self):
        with StreamServer(SHAPE) as server:
            with pytest.raises(ConfigError, match="default-built"):
                server.add_stream(
                    "cam", pipeline=_pipeline("dmsg"), model="dmsg"
                )

    def test_server_default_model(self):
        with StreamServer(
            SHAPE, serve=ServeConfig(model="dmsg")
        ) as server:
            server.add_stream("cam")
            assert server.stream_status()[0]["model"] == "dmsg"


# ----------------------------------------------------------------------
# Family-aware integrity guard
# ----------------------------------------------------------------------
class TestDmsgIntegrity:
    def test_healthy_dmsg_state_passes(self):
        from repro.config import IntegrityPolicy
        from repro.faults.integrity import find_corrupt_pixels

        model = DmsgVectorized(SHAPE, PARAMS)
        for frame in _frames(6):
            model.apply(frame)
        # Ages exceed 1.0 — the MoG weight rule would flag every pixel;
        # the DMSG rule must not.
        assert float(model.state.w[0].max()) > 1.0
        report = find_corrupt_pixels(
            model.state, PARAMS, IntegrityPolicy(mode="detect"),
            model="dmsg",
        )
        assert report.corrupt.size == 0

    def test_repair_reinitialises_corrupt_pixels(self):
        from repro.config import IntegrityPolicy
        from repro.telemetry import MetricsRegistry

        policy = IntegrityPolicy(mode="repair", check_every=1)
        registry = MetricsRegistry()
        model = DmsgVectorized(
            SHAPE, PARAMS, integrity=policy, telemetry=registry,
        )
        frames = _frames(6)
        for frame in frames[:3]:
            model.apply(frame)
        w = model.state.w.copy()
        w[0, 5] = -4.0  # negative age: impossible
        model.restore_state((w, model.state.m, model.state.sd, 3))
        model.apply(frames[3])
        snap = registry.snapshot()
        assert snap["counters"]["integrity.pixels_repaired"] >= 1
        assert (model.state.w[0] >= 1.0).all()
