"""The `repro` command-line interface, end to end on tmp files."""

import numpy as np
import pytest

from repro.cli import main
from repro.video.io import load_sequence


@pytest.fixture()
def clip(tmp_path):
    path = tmp_path / "clip.npz"
    code = main([
        "synthesize", str(path), "--scene", "surveillance",
        "--frames", "12", "--height", "32", "--width", "48",
    ])
    assert code == 0
    return path


class TestSynthesize:
    def test_writes_sequence_with_truth(self, clip):
        source, truth, _ = load_sequence(clip)
        assert source.num_frames == 12
        assert source.shape == (32, 48)
        assert truth is not None and truth.shape == (12, 32, 48)

    def test_scene_choices(self, tmp_path, capsys):
        for scene in ("evaluation", "traffic", "patient-room"):
            path = tmp_path / f"{scene}.npz"
            assert main([
                "synthesize", str(path), "--scene", scene,
                "--frames", "2", "--height", "24", "--width", "24",
            ]) == 0

    def test_seed_determinism(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for path in (a, b):
            main(["synthesize", str(path), "--frames", "3",
                  "--height", "24", "--width", "24", "--seed", "9"])
        fa, _, _ = load_sequence(a)
        fb, _, _ = load_sequence(b)
        assert np.array_equal(fa._frames, fb._frames)


class TestSubtract:
    def test_cpu_backend(self, clip, tmp_path, capsys):
        out = tmp_path / "masks.npz"
        code = main(["subtract", str(clip), str(out),
                     "--learning-rate", "0.08"])
        assert code == 0
        masks, _, _ = load_sequence(out)
        assert masks.num_frames == 12
        assert "foreground share" in capsys.readouterr().out

    def test_sim_backend_with_report(self, clip, tmp_path, capsys):
        out = tmp_path / "masks.npz"
        code = main([
            "subtract", str(clip), str(out),
            "--backend", "sim", "--level", "D", "--report",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "level D" in text
        assert "occupancy" in text

    def test_cpu_report_notice(self, clip, tmp_path, capsys):
        out = tmp_path / "masks.npz"
        main(["subtract", str(clip), str(out), "--report"])
        assert "no report" in capsys.readouterr().out

    def test_backends_agree(self, clip, tmp_path):
        out_cpu = tmp_path / "cpu.npz"
        out_sim = tmp_path / "sim.npz"
        main(["subtract", str(clip), str(out_cpu), "--level", "F"])
        main(["subtract", str(clip), str(out_sim), "--level", "F",
              "--backend", "sim"])
        a, _, _ = load_sequence(out_cpu)
        b, _, _ = load_sequence(out_sim)
        assert np.array_equal(a._frames, b._frames)

    def test_invalid_level_reports_error(self, clip, tmp_path, capsys):
        code = main(["subtract", str(clip), str(tmp_path / "x.npz"),
                     "--level", "Q"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestEvaluate:
    def test_scores_masks(self, clip, tmp_path, capsys):
        out = tmp_path / "masks.npz"
        main(["subtract", str(clip), str(out), "--learning-rate", "0.08"])
        code = main(["evaluate", str(out), str(clip), "--skip", "6"])
        assert code == 0
        text = capsys.readouterr().out
        assert "precision" in text and "F1" in text

    def test_missing_truth_is_error(self, clip, tmp_path, capsys):
        masks = tmp_path / "masks.npz"
        main(["subtract", str(clip), str(masks)])
        # masks.npz itself has no truth channel:
        code = main(["evaluate", str(masks), str(masks)])
        assert code == 2
        assert "ground truth" in capsys.readouterr().err


class TestExperiments:
    def test_static_tables(self, capsys):
        assert main(["experiments", "table1", "table2"]) == 0
        text = capsys.readouterr().out
        assert "Tesla C2075" in text
        assert "Memory Coalescing" in text

    def test_unknown_name(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestLevels:
    def test_all_levels(self, capsys):
        assert main(["levels"]) == 0
        out = capsys.readouterr().out
        for letter in "ABCDEFG":
            assert f"{letter}: " in out
        assert "soa-layout" in out
        assert "paper speedup : 101x" in out

    def test_single_level(self, capsys):
        assert main(["levels", "F"]) == 0
        out = capsys.readouterr().out
        assert "F: register reduction" in out
        assert "register-reduction" in out

    def test_custom_pass_expression(self, capsys):
        assert main(["levels", "A+predication"]) == 0
        out = capsys.readouterr().out
        assert "custom" in out
        assert "layout=aos" in out
        assert "paper speedup : n/a" in out

    def test_json_payload(self, capsys):
        import json

        assert main(["levels", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["letter"] for d in data] == list("ABCDEFG")
        assert data[6]["group_structured"] is True
        assert data[0]["passes"] == []

    def test_unknown_level(self, capsys):
        assert main(["levels", "Z"]) == 1
        assert "error" in capsys.readouterr().err

    def test_text_output_lists_backends(self, capsys):
        assert main(["levels", "F"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out
        assert "cpu" in out and "sim" in out and "jit" in out

    def test_json_backend_availability(self, capsys, monkeypatch):
        import json

        import repro.kernels.jit as jitmod
        from repro.kernels.jit import NumbaStatus

        monkeypatch.setattr(
            jitmod, "_NUMBA_STATUS", NumbaStatus(False, "forced off")
        )
        assert main(["levels", "F", "--json"]) == 0
        (data,) = json.loads(capsys.readouterr().out)
        backends = data["backends"]
        assert backends["cpu"] == {"available": True}
        assert backends["sim"] == {"available": True}
        assert backends["jit"]["available"] is False
        assert "forced off" in backends["jit"]["reason"]
        assert backends["cuda-text"] == {"available": True}

    def test_register_tiling_has_no_cuda_rendering(self, capsys):
        import json

        assert main(["levels", "F+register-tiling", "--json"]) == 0
        (data,) = json.loads(capsys.readouterr().out)
        cuda = data["backends"]["cuda-text"]
        assert cuda["available"] is False
        assert "simulator-only" in cuda["reason"]

    def test_subtract_accepts_pass_expression(self, clip, tmp_path):
        out = tmp_path / "masks.npz"
        code = main(["subtract", str(clip), str(out),
                     "--level", "A+predication",
                     "--learning-rate", "0.08"])
        assert code == 0
        masks, _, _ = load_sequence(out)
        assert masks.num_frames == 12


class TestBench:
    def test_cpu_smoke(self, capsys):
        code = main(["bench", "--backend", "cpu", "--frames", "4",
                     "--height", "16", "--width", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frames/s" in out
        assert "warmup" in out

    def test_jit_reports_fallback(self, capsys, monkeypatch, recwarn):
        import repro.kernels.jit as jitmod
        from repro.kernels.jit import NumbaStatus

        monkeypatch.setattr(
            jitmod, "_NUMBA_STATUS", NumbaStatus(False, "forced off")
        )
        code = main(["bench", "--backend", "jit", "--frames", "6",
                     "--height", "16", "--width", "20"])
        assert code == 0
        assert "numba unavailable" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        import json

        code = main(["bench", "--backend", "cpu", "--frames", "4",
                     "--height", "16", "--width", "20", "--json"])
        assert code == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["backend"] == "cpu"
        assert entry["frames_timed"] == 3
        assert "warmup_s" in entry and "compile_s" in entry


class TestTrack:
    def test_prints_track_summary(self, clip, capsys):
        code = main(["track", str(clip), "--warmup", "4",
                     "--learning-rate", "0.1"])
        assert code == 0
        assert "confirmed tracks" in capsys.readouterr().out


class TestTrackChaos:
    def test_injection_with_repair_reports_metrics(self, clip, tmp_path,
                                                   capsys):
        metrics = tmp_path / "metrics.json"
        code = main([
            "track", str(clip), "--warmup", "2",
            "--integrity", "repair",
            "--inject-target", "state", "--inject-frames", "5",
            "--inject-flips", "64", "--inject-seed", "7",
            "--metrics-json", str(metrics),
        ])
        assert code == 0
        import json

        snap = json.loads(metrics.read_text())
        assert snap["counters"]["faults.injected"] == 64
        assert snap["counters"]["integrity.checks"] >= 1

    def test_checkpoint_then_resume(self, clip, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        code = main([
            "track", str(clip), "--warmup", "2",
            "--checkpoint-dir", str(ckpts), "--checkpoint-every", "5",
        ])
        assert code == 0
        assert (ckpts / "clip.ckpt").exists()
        capsys.readouterr()
        code = main([
            "track", str(clip), "--warmup", "2",
            "--checkpoint-dir", str(ckpts), "--resume",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "at frame 10" in out  # 12 frames, period 5: last at idx 9

    def test_resume_requires_checkpoint_dir(self, clip, capsys):
        code = main(["track", str(clip), "--resume"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestServe:
    def test_synthetic_streams(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main([
            "serve", "--streams", "3", "--frames", "8",
            "--height", "32", "--width", "48", "--workers", "2",
            "--warmup", "4", "--metrics-json", str(metrics),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "served 24 frames across 3 streams" in text
        assert "cam0: 8 frames" in text
        import json

        snap = json.loads(metrics.read_text())
        assert snap["counters"]["server.frames_total"] == 24
        assert snap["counters"]["stream.cam2.frames_total"] == 8
        assert "stream.cam0.step_s" in snap["histograms"]

    def test_npz_inputs(self, clip, capsys):
        code = main(["serve", str(clip), "--warmup", "4"])
        assert code == 0
        text = capsys.readouterr().out
        assert "clip: 12 frames" in text
        assert "across 1 streams" in text

    def test_npz_inputs_same_file_conflict(self, clip, capsys):
        # Two streams from the same file share a stem -> duplicate id.
        code = main(["serve", str(clip), str(clip)])
        assert code == 2
        assert "duplicate stream id" in capsys.readouterr().err

    def test_mismatched_shapes_rejected(self, clip, tmp_path, capsys):
        other = tmp_path / "other.npz"
        main(["synthesize", str(other), "--frames", "4",
              "--height", "24", "--width", "24"])
        code = main(["serve", str(clip), str(other)])
        assert code == 2
        assert "all streams must match" in capsys.readouterr().err

    def test_sharded_smoke(self, capsys):
        code = main([
            "serve", "--streams", "4", "--frames", "6",
            "--height", "24", "--width", "32", "--workers", "1",
            "--warmup", "4", "--shards", "2",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "served 24 frames across 4 streams" in text
        assert "2 shards x 1 workers" in text
        assert "latency p50" in text


class TestServeResume:
    """`repro serve --resume` against missing, partial, and mismatched
    checkpoint state."""

    def _serve(self, *extra):
        return main([
            "serve", "--streams", "1", "--frames", "6",
            "--height", "24", "--width", "32", "--workers", "1",
            "--warmup", "4", "--checkpoint-every", "2",
            *extra,
        ])

    def test_missing_checkpoint_dir_starts_fresh(self, tmp_path, capsys):
        ckpts = tmp_path / "never_written"
        code = self._serve("--checkpoint-dir", str(ckpts), "--resume")
        assert code == 0
        text = capsys.readouterr().out
        assert "no checkpoint for 'cam0'; started fresh" in text
        assert "cam0: 6 frames" in text

    def test_missing_stream_checkpoint_in_partial_dir(
        self, tmp_path, capsys
    ):
        ckpts = tmp_path / "ckpts"
        assert self._serve("--checkpoint-dir", str(ckpts)) == 0
        capsys.readouterr()
        # Second run adds a stream the first never checkpointed.
        code = main([
            "serve", "--streams", "2", "--frames", "6",
            "--height", "24", "--width", "32", "--workers", "1",
            "--warmup", "4", "--checkpoint-every", "2",
            "--checkpoint-dir", str(ckpts), "--resume",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "cam0: resumed at source frame 6" in text
        assert "no checkpoint for 'cam1'; started fresh" in text

    def test_wrong_model_params_fresh_by_default(self, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        assert self._serve(
            "--checkpoint-dir", str(ckpts), "--learning-rate", "0.2"
        ) == 0
        capsys.readouterr()
        code = self._serve("--checkpoint-dir", str(ckpts), "--resume")
        assert code == 0
        text = capsys.readouterr().out
        assert "checkpoint unusable, started fresh" in text
        assert "cam0: 6 frames" in text

    def test_wrong_model_params_fail_policy(self, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        assert self._serve(
            "--checkpoint-dir", str(ckpts), "--learning-rate", "0.2"
        ) == 0
        capsys.readouterr()
        code = self._serve(
            "--checkpoint-dir", str(ckpts), "--resume",
            "--resume-mismatch", "fail",
        )
        assert code == 1
        assert "mismatch" in capsys.readouterr().err


class TestExportCuda:
    def test_writes_project(self, tmp_path, capsys):
        out = tmp_path / "cuda"
        code = main(["export-cuda", str(out), "--height", "240",
                     "--width", "320", "--dtype", "float"])
        assert code == 0
        assert (out / "mog_kernel_F.cu").exists()
        header = (out / "mog_common.cuh").read_text()
        assert "typedef float scalar_t;" in header
        assert "#define NUM_PIXELS 76800" in header
        assert "Makefile" in capsys.readouterr().out


class TestModelFlag:
    def test_levels_model_column(self, capsys):
        assert main(["levels", "F"]) == 0
        assert "model         : mog" in capsys.readouterr().out
        assert main(["levels", "--model", "dmsg"]) == 0
        out = capsys.readouterr().out
        assert "model         : dmsg" in out
        assert "dmsg_regopt" in out

    def test_levels_json_model_key(self, capsys):
        import json

        assert main(["levels", "dmsg:A+predication", "--json"]) == 0
        (spec,) = json.loads(capsys.readouterr().out)
        assert spec["model"] == "dmsg"
        assert spec["kernel"] == "dmsg_predicated"

    def test_subtract_model_flag(self, clip, tmp_path):
        out_flag = tmp_path / "flag.npz"
        out_prefix = tmp_path / "prefix.npz"
        assert main(["subtract", str(clip), str(out_flag),
                     "--model", "dmsg"]) == 0
        assert main(["subtract", str(clip), str(out_prefix),
                     "--level", "dmsg:F"]) == 0
        flag = np.load(out_flag)["frames"]
        prefix = np.load(out_prefix)["frames"]
        assert np.array_equal(flag, prefix)

    def test_bench_model_flag(self, capsys):
        code = main(["bench", "--backend", "cpu", "--frames", "4",
                     "--warmup", "2", "--height", "16", "--width", "16",
                     "--model", "dmsg", "--json"])
        assert code == 0
        import json

        entry = json.loads(capsys.readouterr().out)
        assert entry["model"] == "dmsg"

    def test_serve_model_flag(self, capsys):
        code = main([
            "serve", "--streams", "2", "--frames", "4",
            "--height", "16", "--width", "16", "--model", "dmsg",
        ])
        assert code == 0

    def test_stressor_scenes_synthesize(self, tmp_path):
        for scene in ("static", "jitter", "illumination", "rain",
                      "shadows"):
            path = tmp_path / f"{scene}.npz"
            assert main([
                "synthesize", str(path), "--scene", scene,
                "--frames", "2", "--height", "24", "--width", "24",
            ]) == 0
