"""Shared test fixtures: small deterministic scenes and frame sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MoGParams
from repro.video.scenes import evaluation_scene

#: Frame geometry used by most functional tests (tiny = fast).
SMALL_SHAPE = (24, 64)


@pytest.fixture(scope="session")
def small_shape():
    return SMALL_SHAPE


@pytest.fixture(scope="session")
def params():
    """Fast-converging parameters for short test runs."""
    return MoGParams(learning_rate=0.08, initial_sd=8.0)


@pytest.fixture(scope="session")
def small_frames():
    """A dozen frames of the evaluation scene at the small geometry."""
    video = evaluation_scene(height=SMALL_SHAPE[0], width=SMALL_SHAPE[1])
    return [video.frame(t) for t in range(12)]


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
