"""The per-warp L1 reuse window (loads only)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.gpusim import SimtEngine
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.memory import count_transactions, count_transactions_with_l1

WARP = 32
TX = 128


def fresh_window(warps=1, cap=16):
    return np.full((warps, cap), -1, dtype=np.int64)


def addrs(stride, n=WARP):
    return np.arange(n, dtype=np.int64) * stride


ACTIVE = np.ones(WARP, dtype=bool)


class TestL1Window:
    def test_cold_miss_equals_plain_count(self):
        window = fresh_window()
        a = addrs(72)
        tx, hits = count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        assert tx == count_transactions(a, ACTIVE, WARP, TX)
        assert hits == 0

    def test_repeat_access_fully_hits(self):
        window = fresh_window()
        a = addrs(8)  # 2 segments
        count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        tx, hits = count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        assert tx == 0 and hits == 2

    def test_adjacent_field_access_hits(self):
        """The AoS pattern: the +8-byte field lives in the same lines."""
        window = fresh_window()
        base = addrs(72)
        tx1, _ = count_transactions_with_l1(base, ACTIVE, WARP, TX, window)
        tx2, hits2 = count_transactions_with_l1(
            base + 8, ACTIVE, WARP, TX, window
        )
        assert tx1 == 18
        assert hits2 >= 16  # nearly all lines already resident

    def test_capacity_evicts(self):
        window = fresh_window(cap=2)
        a = addrs(TX)  # 32 distinct segments >> capacity
        count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        tx, hits = count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        assert hits <= 2
        assert tx >= 30

    def test_windows_are_per_warp(self):
        window = fresh_window(warps=2)
        a = np.concatenate([addrs(8), addrs(8)])  # both warps same segs
        act = np.ones(2 * WARP, dtype=bool)
        tx, hits = count_transactions_with_l1(a, act, WARP, TX, window)
        # Warp 1 cannot hit on warp 0's lines within one access.
        assert tx == 4 and hits == 0
        tx2, hits2 = count_transactions_with_l1(a, act, WARP, TX, window)
        assert tx2 == 0 and hits2 == 4

    def test_inactive_lanes_do_not_touch_window(self):
        window = fresh_window()
        count_transactions_with_l1(
            addrs(8), np.zeros(WARP, dtype=bool), WARP, TX, window
        )
        assert (window == -1).all()

    def test_window_shape_validated(self):
        with pytest.raises(MemoryModelError):
            count_transactions_with_l1(
                addrs(8), ACTIVE, WARP, TX, fresh_window(warps=3)
            )

    @given(st.lists(st.integers(0, 500), min_size=WARP, max_size=WARP))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_plain_count(self, idx):
        a = np.array(idx, dtype=np.int64) * 8
        window = fresh_window()
        count_transactions_with_l1(addrs(8), ACTIVE, WARP, TX, window)
        tx, hits = count_transactions_with_l1(a, ACTIVE, WARP, TX, window)
        plain = count_transactions(a, ACTIVE, WARP, TX)
        assert tx + hits == plain
        assert 0 <= tx <= plain


class TestEngineIntegration:
    def test_kernel_reload_is_free(self):
        engine = SimtEngine()
        buf = engine.memory.alloc_like("a", np.arange(64, dtype=np.float64))

        def kern(ctx, buf):
            t = ctx.thread_id()
            _ = ctx.load(buf, t)
            _ = ctx.load(buf, t)  # same lines: L1 hit

        res = engine.launch(kern, 64, 32, args=(buf,))
        assert res.counters.load_transactions == 4
        assert res.counters.l1_load_hits == 4

    def test_window_cold_per_launch(self):
        engine = SimtEngine()
        buf = engine.memory.alloc_like("a", np.arange(64, dtype=np.float64))

        def kern(ctx, buf):
            _ = ctx.load(buf, ctx.thread_id())

        r1 = engine.launch(kern, 64, 32, args=(buf,))
        r2 = engine.launch(kern, 64, 32, args=(buf,))
        assert r1.counters.load_transactions == r2.counters.load_transactions
        assert r2.counters.l1_load_hits == 0

    def test_stores_bypass_l1(self):
        engine = SimtEngine()
        buf = engine.memory.alloc("a", 64, np.float64)

        def kern(ctx, buf):
            t = ctx.thread_id()
            ctx.store(buf, t, 1.0)
            ctx.store(buf, t, 2.0)  # write-evict: full price again

        res = engine.launch(kern, 64, 32, args=(buf,))
        assert res.counters.store_transactions == 8

    def test_disabled_window_device(self):
        device = TESLA_C2075.replace(l1_window_segments=1)
        engine = SimtEngine(device)
        buf = engine.memory.alloc_like("a", np.arange(64, dtype=np.float64))

        def kern(ctx, buf):
            t = ctx.thread_id()
            _ = ctx.load(buf, t)

        res = engine.launch(kern, 64, 32, args=(buf,))
        assert res.counters.load_transactions == 4
