"""Adversarial input frames: the MoG invariants must survive every
dtype and value range the public API accepts — and the frame validator
must reject what would silently poison the state.

Covers the numeric edge of the input space: infinities, float64 values
that overflow the float32 run dtype, denormals, and full-range unsigned
integers — across every vectorized variant and both precisions, plus
every optimization level A-G on the simulated backend. The mixture
integrity validator is the oracle: zero violations on every accepted
input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import IntegrityPolicy, MoGParams, RunConfig
from repro.core.subtractor import BackgroundSubtractor
from repro.errors import ConfigError
from repro.faults import find_corrupt_pixels
from repro.kernels import LEVEL_PASSES
from repro.mog import VARIANTS, MoGVectorized
from repro.mog.params import MixtureState
from repro.video.scenes import evaluation_scene

SHAPE = (8, 24)
POLICY = IntegrityPolicy(mode="detect")
LEVELS = sorted(LEVEL_PASSES)  # "A".."G"
DTYPES = ("float", "double")


def assert_invariants(state, params, data_max=255.0):
    """Direct invariant asserts plus the validator as cross-check.

    The default ``sd_cap``/``mean_cap`` are plausibility bounds for
    image-range intensities; for wider input dtypes (e.g. full-range
    uint32) the caps scale with the data while the hard invariants
    (finiteness, weight normalisation, the sd clamp floor) stay fixed.
    """
    k = params.num_gaussians
    tol = POLICY.weight_tol
    assert np.isfinite(state.w).all()
    assert np.isfinite(state.m).all()
    assert np.isfinite(state.sd).all()
    assert (state.w >= -tol).all() and (state.w <= 1.0 + tol).all()
    sums = state.w.sum(axis=0)
    assert (sums > 0.0).all() and (sums <= k * (1.0 + tol)).all()
    floor = min(params.sd_floor, params.initial_sd) * (1.0 - 1e-6)
    assert (state.sd >= floor).all()
    policy = IntegrityPolicy(
        mode="detect",
        sd_cap=max(POLICY.sd_cap, 10.0 * data_max),
        mean_cap=max(POLICY.mean_cap, 10.0 * data_max),
    )
    report = find_corrupt_pixels(state, params, policy)
    assert report.clean, f"validator flagged {report.corrupt.size} pixels"


def adversarial_frames(dtype):
    """Extreme-but-valid frames in the given dtype."""
    h, w = SHAPE
    rng = np.random.default_rng(99)
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        lo = np.full(SHAPE, info.min, dtype=dtype)
        hi = np.full(SHAPE, info.max, dtype=dtype)
        checker = np.indices(SHAPE).sum(axis=0) % 2
        alt = np.where(checker == 0, info.min, info.max).astype(dtype)
        noise = rng.integers(
            info.min, int(info.max) + 1, size=SHAPE
        ).astype(dtype)
        return [lo, hi, alt, noise, lo]
    tiny = np.finfo(dtype).tiny
    return [
        np.zeros(SHAPE, dtype=dtype),
        np.full(SHAPE, tiny, dtype=dtype),  # smallest normal
        np.full(SHAPE, tiny / 4, dtype=dtype),  # denormal
        np.full(SHAPE, np.finfo(dtype).smallest_subnormal, dtype=dtype),
        (rng.random(SHAPE) * 255).astype(dtype),
    ]


class TestRejection:
    @pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan])
    def test_nonfinite_float_rejected(self, params, bad):
        model = MoGVectorized(SHAPE, params)
        frame = np.full(SHAPE, 10.0)
        frame[3, 5] = bad
        with pytest.raises(ConfigError, match="finite"):
            model.apply(frame)

    # The downcast itself warns before the validator rejects the frame.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overflow_hidden_by_downcast_rejected(self, params):
        """A float64 frame whose values overflow float32 becomes inf
        only *after* the cast to the run dtype — the check must run on
        the post-cast values."""
        model = MoGVectorized(SHAPE, params, dtype="float")
        frame = np.full(SHAPE, 1e300, dtype=np.float64)  # finite in f64
        with pytest.raises(ConfigError, match="finite"):
            model.apply(frame)

    def test_image_range_float64_accepted_in_float32_run(self, params):
        # Control: an ordinary image-range float64 frame survives the
        # downcast and must be accepted by the float32 run dtype.
        model = MoGVectorized(SHAPE, params, dtype="float")
        model.apply(np.full(SHAPE, 254.75, dtype=np.float64))
        assert_invariants(model.state, params)

    def test_non_numeric_rejected(self, params):
        model = MoGVectorized(SHAPE, params)
        with pytest.raises(ConfigError, match="dtype"):
            model.apply(np.full(SHAPE, "x", dtype=object))


class TestVectorizedSweep:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize(
        "frame_dtype", [np.uint8, np.uint16, np.uint32, np.int16]
    )
    def test_extreme_integer_ranges(self, params, variant, dtype, frame_dtype):
        """Full-range unsigned/signed integers: weights stay
        normalised, variances stay clamped, nothing overflows into the
        state."""
        model = MoGVectorized(SHAPE, params, variant=variant, dtype=dtype)
        for frame in adversarial_frames(frame_dtype):
            mask = model.apply(frame)
            assert mask.shape == SHAPE and mask.dtype == np.bool_
        info = np.iinfo(frame_dtype)
        assert_invariants(
            model.state, params, data_max=float(max(abs(info.min), info.max))
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_denormal_floats(self, params, variant, dtype):
        model = MoGVectorized(SHAPE, params, variant=variant, dtype=dtype)
        np_dtype = np.float32 if dtype == "float" else np.float64
        for frame in adversarial_frames(np_dtype):
            model.apply(frame)
        assert_invariants(model.state, params)


class TestLevelSweep:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("level", LEVELS)
    def test_clean_run_zero_violations(self, params, level, dtype):
        """Every optimization level, both precisions, through the
        simulated GPU: after a clean run the downloaded state passes
        the integrity validator with zero violations."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        bs = BackgroundSubtractor(
            SHAPE, params, level=level, backend="sim",
            run_config=RunConfig(
                height=SHAPE[0], width=SHAPE[1], dtype=dtype
            ),
            profile_every=1000,  # functional tier: fast, same masks
        )
        # process() handles both per-frame and group-structured (G)
        # pipelines.
        bs.process([video.frame(t) for t in range(8)])
        w, m, sd, frames = bs.state_snapshot()
        assert frames == 8
        state = MixtureState(
            np.asarray(w), np.asarray(m), np.asarray(sd)
        )
        assert state.dtype == np.dtype(
            np.float32 if dtype == "float" else np.float64
        )
        assert_invariants(state, params)
