"""Multi-stream StreamServer: scheduling, admission, backpressure,
fault isolation, telemetry aggregation.

The SIGKILL test reuses the supervised parallel path as a stream's
subtractor, so a real worker process dies mid-run; everything else uses
tiny frames or stub pipelines to stay deterministic and fast.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.config import FaultPolicy, ServeConfig, TelemetryConfig
from repro.core.stream import StreamResult, SurveillancePipeline
from repro.errors import BackpressureError, ConfigError, WorkerError
from repro.mog import MoGVectorized
from repro.parallel import ParallelMoG
from repro.serve import StreamServer, serve_sequences
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (24, 32)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker-process tests prefer fork workers"
)


def scene_frames(seed: int, num_frames: int = 10, shape=SHAPE):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=seed)
    return [video.frame(t) for t in range(num_frames)]


def tagged_frame(tag: int, shape=SHAPE) -> np.ndarray:
    """A frame whose identity survives the queue (pixel [0, 0])."""
    frame = np.zeros(shape, dtype=np.float64)
    frame[0, 0] = tag
    return frame


class StubPipeline:
    """Minimal pipeline double: records the frames it steps, can block
    on a gate, and can raise on chosen step numbers."""

    def __init__(self, gate: threading.Event | None = None,
                 fail_on: set[int] | None = None):
        self.telemetry = MetricsRegistry(TelemetryConfig())
        self.gate = gate
        self.fail_on = fail_on or set()
        self.seen: list[int] = []
        self.calls = 0

    def step(self, frame: np.ndarray) -> StreamResult:
        call = self.calls
        self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(30.0), "test gate never opened"
        if call in self.fail_on:
            raise RuntimeError(f"stub failure at step {call}")
        self.seen.append(int(frame[0, 0]))
        mask = np.zeros(frame.shape, dtype=bool)
        return StreamResult(
            frame_index=len(self.seen) - 1, raw_mask=mask, mask=mask,
            tracks=[],
        )


def wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestConfig:
    @pytest.mark.parametrize("kw", [
        {"workers": 0}, {"max_streams": 0}, {"queue_capacity": 0},
        {"backpressure": "spill"}, {"batch_frames": 0},
        {"submit_timeout_s": 0.0}, {"drain_timeout_s": -1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            ServeConfig(**kw)

    def test_replace(self):
        cfg = ServeConfig().replace(workers=7)
        assert cfg.workers == 7


class TestAdmission:
    def test_max_streams_enforced(self):
        with StreamServer(
            SHAPE, serve=ServeConfig(max_streams=2)
        ) as server:
            server.add_stream("a")
            server.add_stream("b")
            with pytest.raises(ConfigError, match="max_streams"):
                server.add_stream("c")

    def test_duplicate_and_bad_ids_rejected(self):
        with StreamServer(SHAPE) as server:
            server.add_stream("a")
            with pytest.raises(ConfigError, match="already registered"):
                server.add_stream("a")
            with pytest.raises(ConfigError):
                server.add_stream("")
            with pytest.raises(ConfigError, match=r"'\.'"):
                server.add_stream("cam.0")

    def test_unknown_stream_rejected(self):
        with StreamServer(SHAPE) as server:
            with pytest.raises(ConfigError, match="unknown stream"):
                server.submit("ghost", tagged_frame(0))
            with pytest.raises(ConfigError, match="unknown stream"):
                server.results("ghost")

    def test_closed_server_rejects_everything(self):
        server = StreamServer(SHAPE)
        server.add_stream("a")
        server.close()
        with pytest.raises(ConfigError, match="closed"):
            server.submit("a", tagged_frame(0))
        with pytest.raises(ConfigError, match="closed"):
            server.add_stream("b")

    def test_remove_stream_frees_a_slot(self):
        with StreamServer(
            SHAPE, serve=ServeConfig(max_streams=1)
        ) as server:
            stub = StubPipeline()
            server.add_stream("a", pipeline=stub)
            server.submit("a", tagged_frame(7))
            wait_until(lambda: stub.seen == [7])
            leftovers = server.remove_stream("a")
            assert [int(r.frame_index) for r in leftovers] == [0]
            server.add_stream("b")  # slot is free again


class TestScheduling:
    def test_masks_bit_identical_to_serial(self, params):
        """The acceptance scenario: 8 streams multiplexed over a small
        pool produce exactly the masks of 8 serial pipeline runs."""
        sequences = {
            f"cam{i}": scene_frames(seed=20 + i, num_frames=10)
            for i in range(8)
        }
        served = serve_sequences(
            SHAPE, sequences, params=params,
            serve=ServeConfig(workers=3, queue_capacity=4),
        )
        for sid, frames in sequences.items():
            serial = SurveillancePipeline(SHAPE, params).run(frames)
            assert len(served[sid]) == len(serial)
            for got, want in zip(served[sid], serial):
                assert got.frame_index == want.frame_index
                assert np.array_equal(got.mask, want.mask)
                assert np.array_equal(got.raw_mask, want.raw_mask)

    def test_per_stream_order_preserved(self):
        with StreamServer(
            SHAPE, serve=ServeConfig(workers=4, queue_capacity=32)
        ) as server:
            stubs = {sid: StubPipeline() for sid in ("a", "b", "c")}
            for sid, stub in stubs.items():
                server.add_stream(sid, pipeline=stub)
            for t in range(20):
                for sid in stubs:
                    server.submit(sid, tagged_frame(t))
            server.drain()
            for stub in stubs.values():
                assert stub.seen == list(range(20))

    def test_round_robin_shares_a_single_worker(self):
        """A hot stream with a deep queue cannot starve a sibling: with
        one worker, the sibling's lone frame is served after at most
        ``batch_frames`` of the hot stream's backlog."""
        gate = threading.Event()
        hot = StubPipeline(gate=gate)
        cold = StubPipeline(gate=gate)
        with StreamServer(
            SHAPE,
            serve=ServeConfig(workers=1, queue_capacity=16, batch_frames=2),
        ) as server:
            server.add_stream("hot", pipeline=hot)
            server.add_stream("cold", pipeline=cold)
            for t in range(10):
                server.submit("hot", tagged_frame(t))
            server.submit("cold", tagged_frame(99))
            gate.set()
            server.drain()
            assert cold.seen == [99]
            # The cold frame was served before the hot backlog finished:
            # the worker had at most one batch in flight plus one batch
            # taken before the cold frame's turn.
            assert hot.seen == list(range(10))


class TestBackpressure:
    def _gated_server(self, policy: str, capacity: int = 2):
        gate = threading.Event()
        stub = StubPipeline(gate=gate)
        server = StreamServer(
            SHAPE,
            serve=ServeConfig(
                workers=1, queue_capacity=capacity, backpressure=policy,
                submit_timeout_s=0.2,
            ),
        )
        server.add_stream("s", pipeline=stub)
        # Occupy the only worker so queued frames stay queued.
        server.submit("s", tagged_frame(0))
        wait_until(lambda: stub.calls >= 1)  # worker is inside step()
        return server, stub, gate

    def test_reject_raises_when_full(self):
        server, stub, gate = self._gated_server("reject")
        try:
            server.submit("s", tagged_frame(1))
            server.submit("s", tagged_frame(2))
            with pytest.raises(BackpressureError) as err:
                server.submit("s", tagged_frame(3))
            assert err.value.stream_id == "s"
            gate.set()
            server.drain()
            assert stub.seen == [0, 1, 2]
        finally:
            gate.set()
            server.close(drain=False)

    def test_drop_oldest_evicts_and_counts(self):
        server, stub, gate = self._gated_server("drop_oldest")
        try:
            assert server.submit("s", tagged_frame(1))
            assert server.submit("s", tagged_frame(2))
            assert not server.submit("s", tagged_frame(3))  # evicts 1
            gate.set()
            server.drain()
            assert stub.seen == [0, 2, 3]
            snap = server.snapshot()
            assert snap["counters"]["server.frames_dropped"] == 1
            assert snap["counters"]["stream.s.frames_dropped"] == 1
        finally:
            gate.set()
            server.close(drain=False)

    def test_block_times_out_under_slow_consumer(self):
        server, stub, gate = self._gated_server("block")
        try:
            server.submit("s", tagged_frame(1))
            server.submit("s", tagged_frame(2))
            t0 = time.monotonic()
            with pytest.raises(BackpressureError, match="still full"):
                server.submit("s", tagged_frame(3))
            assert 0.1 < time.monotonic() - t0 < 5.0
        finally:
            gate.set()
            server.close(drain=False)

    def test_block_admits_once_consumer_catches_up(self):
        server, stub, gate = self._gated_server("block")
        try:
            server.submit("s", tagged_frame(1))
            server.submit("s", tagged_frame(2))
            threading.Timer(0.05, gate.set).start()
            # Space frees as the worker drains; the blocked submit lands.
            server.submit("s", tagged_frame(3), timeout_s=10.0)
            server.drain()
            assert stub.seen == [0, 1, 2, 3]
        finally:
            gate.set()
            server.close(drain=False)


class TestFaultIsolation:
    def test_failed_stream_does_not_touch_siblings(self, params):
        """One stream's pipeline raises mid-run under policy="fail":
        that stream is marked failed, its backlog is dropped, and the
        sibling streams' results are complete and correct."""
        bad = StubPipeline(fail_on={2})
        with StreamServer(
            SHAPE, params=params,
            serve=ServeConfig(workers=2, queue_capacity=16),
            fault_policy=FaultPolicy(policy="fail", stage_error="degrade"),
        ) as server:
            good = StubPipeline()
            server.add_stream("bad", pipeline=bad)
            server.add_stream("good", pipeline=good)
            for t in range(6):
                try:
                    server.submit("bad", tagged_frame(t))
                except WorkerError:
                    pass  # workers may mark 'bad' failed mid-loop
                server.submit("good", tagged_frame(t))
            server.drain()
            assert good.seen == list(range(6))
            status = {s["stream"]: s for s in server.stream_status()}
            assert status["bad"]["failed"] is not None
            assert status["good"]["failed"] is None
            with pytest.raises(WorkerError, match="has failed"):
                server.submit("bad", tagged_frame(9))
            server.submit("good", tagged_frame(6))  # sibling still serves
            server.drain()
            snap = server.snapshot()
            assert snap["counters"]["server.streams_failed"] == 1
            assert snap["counters"]["server.stream_errors"] == 1

    def test_restart_policy_rebuilds_the_pipeline(self):
        built = []

        def factory(registry):
            stub = StubPipeline(fail_on={1} if not built else set())
            built.append(stub)
            return stub

        with StreamServer(
            SHAPE,
            serve=ServeConfig(workers=1, queue_capacity=16),
            fault_policy=FaultPolicy(policy="restart", max_restarts=2,
                                     stage_error="degrade"),
        ) as server:
            server.add_stream("s", pipeline_factory=factory)
            for t in range(4):
                server.submit("s", tagged_frame(t))
            server.drain()
            status = server.stream_status()[0]
            assert status["failed"] is None
            assert status["restarts"] == 1
            assert len(built) == 2
            # Frame 1 crashed the first stub and was replayed on its
            # replacement; no frame was lost.
            assert built[0].seen == [0]
            assert built[1].seen == [1, 2, 3]
            snap = server.snapshot()
            assert snap["counters"]["server.stream_restarts"] == 1
            assert snap["counters"]["stream.s.restarts"] == 1

    @needs_fork
    def test_sigkill_worker_leaves_siblings_serial_identical(self, params):
        """One stream runs on the supervised parallel path; its worker
        process is SIGKILLed mid-run. The stream restarts the worker
        (checkpoint restore keeps its masks serial-identical) and the
        sibling streams never notice."""
        num_frames = 8
        sequences = {
            "victim": scene_frames(seed=1, num_frames=num_frames),
            "calm0": scene_frames(seed=2, num_frames=num_frames),
            "calm1": scene_frames(seed=3, num_frames=num_frames),
        }
        par_policy = FaultPolicy(policy="restart", timeout_s=10.0)
        par = ParallelMoG(SHAPE, params, workers=2, fault_policy=par_policy)

        class ParallelSubtractor:
            shape = SHAPE

            def apply(self, frame):
                return par.apply(frame)

        victim_pipe = SurveillancePipeline(SHAPE, params, warmup_frames=2)
        victim_pipe.subtractor = ParallelSubtractor()

        try:
            with StreamServer(
                SHAPE, params=params,
                serve=ServeConfig(workers=2, queue_capacity=num_frames),
                warmup_frames=2,
            ) as server:
                server.add_stream("victim", pipeline=victim_pipe)
                server.add_stream("calm0")
                server.add_stream("calm1")
                for t in range(3):
                    for sid in sequences:
                        server.submit(sid, sequences[sid][t])
                server.drain()
                pid = par.worker_pids()[0]
                os.kill(pid, signal.SIGKILL)
                wait_until(lambda: not par._workers[0]._proc.is_alive())
                for t in range(3, num_frames):
                    for sid in sequences:
                        server.submit(sid, sequences[sid][t])
                server.drain()
                results = {sid: server.results(sid) for sid in sequences}
                assert par.telemetry.snapshot()["counters"][
                    "parallel.worker_restarts"
                ] == 1
        finally:
            par.close()

        # The victim's masks match a serial in-process run of the same
        # model (checkpoint restore across the SIGKILL).
        serial = MoGVectorized(SHAPE, params, variant="nosort")
        for t, result in enumerate(results["victim"]):
            assert not result.degraded
            assert np.array_equal(result.raw_mask, serial.apply(
                sequences["victim"][t]
            ))
        # Siblings are untouched: identical to their own serial runs.
        for sid in ("calm0", "calm1"):
            want = SurveillancePipeline(
                SHAPE, params, warmup_frames=2
            ).run(sequences[sid])
            assert len(results[sid]) == num_frames
            for got, exp in zip(results[sid], want):
                assert np.array_equal(got.mask, exp.mask)


class TestTelemetry:
    def test_snapshot_has_per_stream_and_rollups(self, params):
        sequences = {
            "a": scene_frames(seed=5, num_frames=4),
            "b": scene_frames(seed=6, num_frames=4),
        }
        with StreamServer(
            SHAPE, params=params, serve=ServeConfig(workers=2)
        ) as server:
            for sid, frames in sequences.items():
                server.add_stream(sid)
                for frame in frames:
                    server.submit(sid, frame)
            server.drain()
            snap = server.snapshot()
        counters = snap["counters"]
        assert counters["server.frames_total"] == 8
        assert counters["stream.a.frames_total"] == 4
        assert counters["stream.b.frames_total"] == 4
        assert snap["gauges"]["server.streams_active"] == 2
        assert snap["gauges"]["server.queue_depth"] == 0
        hists = snap["histograms"]
        assert hists["server.step_s"]["count"] == 8
        assert hists["stream.a.step_s"]["count"] == 4
        assert hists["stream.b.subtract_s"]["count"] == 4

    def test_disabled_telemetry_is_empty(self, params):
        with StreamServer(
            SHAPE, params=params,
            telemetry=TelemetryConfig(enabled=False),
        ) as server:
            server.add_stream("a")
            server.submit("a", scene_frames(seed=5, num_frames=1)[0])
            server.drain()
            snap = server.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestDurableCheckpoints:
    def _config(self, tmp_path, **kw):
        base = dict(
            workers=1, queue_capacity=32,
            checkpoint_dir=str(tmp_path),
        )
        base.update(kw)
        return ServeConfig(**base)

    def test_periodic_checkpoints_written(self, params, tmp_path):
        frames = scene_frames(seed=3, num_frames=10)
        cfg = self._config(tmp_path, checkpoint_every=5)
        with StreamServer(SHAPE, params=params, serve=cfg) as server:
            server.add_stream("cam")
            for f in frames:
                server.submit("cam", f)
            server.drain()
            snap = server.snapshot()["counters"]
        assert (tmp_path / "cam.ckpt").exists()
        # Frames 0..9 with a period of 5: after frame indices 4 and 9.
        assert snap["server.checkpoints_written"] == 2
        assert snap["stream.cam.checkpoint.written"] == 2

    def test_resume_continues_bit_identically(self, params, tmp_path):
        """Serving acceptance: kill a server after frame 9, bring up a
        fresh one with ``resume=True``, feed the remaining frames — the
        masks match an uninterrupted server run bit for bit."""
        frames = scene_frames(seed=5, num_frames=16)
        with StreamServer(
            SHAPE, params=params, serve=ServeConfig(workers=1)
        ) as server:
            server.add_stream("cam")
            for f in frames:
                server.submit("cam", f)
            server.drain()
            expected = server.results("cam")

        cfg = self._config(tmp_path, checkpoint_every=5)
        with StreamServer(SHAPE, params=params, serve=cfg) as first:
            first.add_stream("cam")
            for f in frames[:10]:
                first.submit("cam", f)
            first.drain()  # last checkpoint covers frames 0..9

        resumed_cfg = self._config(tmp_path, resume=True)
        with StreamServer(SHAPE, params=params, serve=resumed_cfg) as second:
            second.add_stream("cam")
            status = next(
                s for s in second.stream_status() if s["stream"] == "cam"
            )
            assert status["frame_index"] == 9  # restored, not fresh
            for f in frames[10:]:
                second.submit("cam", f)
            second.drain()
            got = second.results("cam")
            snap = second.snapshot()["counters"]
        assert snap["server.checkpoints_restored"] == 1
        assert [r.frame_index for r in got] == list(range(10, 16))
        for res, want in zip(got, expected[10:]):
            assert np.array_equal(res.mask, want.mask)

    def test_resume_without_file_starts_fresh(self, params, tmp_path):
        cfg = self._config(tmp_path, resume=True)
        with StreamServer(SHAPE, params=params, serve=cfg) as server:
            server.add_stream("cam")  # no checkpoint on disk: fresh
            server.submit("cam", scene_frames(seed=1, num_frames=1)[0])
            server.drain()
            results = server.results("cam")
        assert results[0].frame_index == 0

    def test_corrupt_checkpoint_fails_admission_loudly(
        self, params, tmp_path
    ):
        """A stream must not silently start from scratch when its
        checkpoint is unreadable — that would violate the resume
        contract without anyone noticing."""
        from repro.errors import CheckpointError

        (tmp_path / "cam.ckpt").write_bytes(b"JUNKJUNKJUNK")
        cfg = self._config(tmp_path, resume=True)
        with StreamServer(SHAPE, params=params, serve=cfg) as server:
            with pytest.raises(CheckpointError):
                server.add_stream("cam")

    def test_checkpoint_config_requires_dir(self):
        with pytest.raises(ConfigError):
            ServeConfig(checkpoint_every=5)
        with pytest.raises(ConfigError):
            ServeConfig(resume=True)


class TestLifecycle:
    def test_close_drains_by_default(self):
        server = StreamServer(SHAPE, serve=ServeConfig(workers=1))
        stub = StubPipeline()
        server.add_stream("a", pipeline=stub)
        for t in range(5):
            server.submit("a", tagged_frame(t))
        server.close()
        assert stub.seen == list(range(5))
        server.close()  # idempotent

    def test_close_without_drain_abandons_backlog(self):
        gate = threading.Event()
        stub = StubPipeline(gate=gate)
        server = StreamServer(
            SHAPE, serve=ServeConfig(workers=1, queue_capacity=8)
        )
        server.add_stream("a", pipeline=stub)
        for t in range(5):
            server.submit("a", tagged_frame(t))
        gate.set()
        server.close(drain=False)
        assert len(stub.seen) <= 5

    def test_drain_timeout_raises(self):
        gate = threading.Event()
        stub = StubPipeline(gate=gate)
        server = StreamServer(
            SHAPE, serve=ServeConfig(workers=1, queue_capacity=8)
        )
        try:
            server.add_stream("a", pipeline=stub)
            server.submit("a", tagged_frame(0))
            with pytest.raises(WorkerError, match="did not drain"):
                server.drain(timeout_s=0.2)
        finally:
            gate.set()
            server.close(drain=False)


class TestAdmissionAtomicity:
    """Regression tests for the add_stream TOCTOU race: the capacity /
    duplicate check and the registration used to happen under separate
    lock acquisitions with the (slow) pipeline build in between."""

    def test_concurrent_admissions_cannot_overshoot(self):
        """Two adds racing for the last slot: exactly one wins, and the
        loser fails fast instead of both passing the pre-build check."""
        with StreamServer(
            SHAPE, serve=ServeConfig(max_streams=2)
        ) as server:
            server.add_stream("a")
            errors: list[str] = []
            admitted: list[str] = []

            def slow_factory(registry):
                time.sleep(0.25)  # keep both builds overlapped
                return StubPipeline()

            def admit(sid: str) -> None:
                try:
                    server.add_stream(sid, pipeline_factory=slow_factory)
                    admitted.append(sid)
                except ConfigError as exc:
                    errors.append(str(exc))

            threads = [
                threading.Thread(target=admit, args=(sid,))
                for sid in ("b", "c")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(admitted) == 1
            assert len(errors) == 1 and "max_streams" in errors[0]
            assert len(server.stream_status()) == 2

    def test_concurrent_duplicate_admission_single_winner(self):
        """The same id admitted from two threads: one registration, one
        'already registered' error — never two pipelines built into the
        same slot."""
        with StreamServer(SHAPE) as server:
            outcomes: list[str] = []

            def admit() -> None:
                try:
                    server.add_stream(
                        "cam",
                        pipeline_factory=lambda reg: (
                            time.sleep(0.25), StubPipeline()
                        )[1],
                    )
                    outcomes.append("ok")
                except ConfigError:
                    outcomes.append("dup")

            threads = [
                threading.Thread(target=admit) for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(outcomes) == ["dup", "ok"]
            assert len(server.stream_status()) == 1

    def test_failed_resume_releases_the_slot(self, params, tmp_path):
        """A resume failure must not leak the reserved admission slot."""
        from repro.errors import CheckpointError

        (tmp_path / "cam.ckpt").write_bytes(b"JUNKJUNKJUNK")
        cfg = ServeConfig(
            workers=1, max_streams=1,
            checkpoint_dir=str(tmp_path), resume=True,
        )
        with StreamServer(SHAPE, params=params, serve=cfg) as server:
            with pytest.raises(CheckpointError):
                server.add_stream("cam")
            server.add_stream("other")  # slot was released


class TestDropCheckpointCursor:
    """Regression tests for drop_oldest vs checkpoint replay: the
    checkpoint must record the *submission cursor* (the sequence number
    of the last frame actually consumed), not the processed-frame
    count, or a resume after drops replays frames the live run never
    saw twice."""

    def test_drop_then_crash_then_resume_bit_identical(
        self, params, tmp_path
    ):
        frames = scene_frames(seed=9, num_frames=8)
        cfg = ServeConfig(
            workers=1, queue_capacity=2, backpressure="drop_oldest",
            checkpoint_every=1, checkpoint_dir=str(tmp_path),
        )
        gate = threading.Event()
        stub = StubPipeline(gate=gate)
        with StreamServer(SHAPE, params=params, serve=cfg) as server:
            server.add_stream("cam")
            server.add_stream("gate", pipeline=stub)
            # Phase 1: two frames flow through normally.
            server.submit("cam", frames[0])
            server.submit("cam", frames[1])
            wait_until(lambda: next(
                s for s in server.stream_status() if s["stream"] == "cam"
            )["frames_done"] == 2)
            # Phase 2: park the single worker on the gated stream, then
            # overflow cam's 2-deep queue so drops are deterministic.
            server.submit("gate", tagged_frame(1))
            wait_until(lambda: stub.calls == 1)
            for f in frames[2:6]:          # seqs 2..5; 2 and 3 evicted
                server.submit("cam", f)
            gate.set()
            server.drain()
            live = server.results("cam")
            status = {
                s["stream"]: s for s in server.stream_status()
            }["cam"]
            assert status["frames_dropped"] == 2
            # The cursor is the *source* sequence (5), not the number
            # of frames processed (4).
            assert status["source_seq"] == 5

        # The frames the live run actually consumed, serially.
        consumed = [frames[0], frames[1], frames[4], frames[5]]
        tail = frames[6:]
        pipe = SurveillancePipeline(
            SHAPE, params=params, backend="cpu", level="F"
        )
        reference = [pipe.step(f) for f in consumed + tail]
        for got, want in zip(live, reference[: len(live)]):
            assert np.array_equal(got.mask, want.mask)

        # Crash + resume: the new server must continue at source frame
        # source_seq + 1 = 6, not at frame_index + 1 = 4.
        resumed_cfg = ServeConfig(
            workers=1, checkpoint_dir=str(tmp_path), resume=True,
        )
        with StreamServer(
            SHAPE, params=params, serve=resumed_cfg
        ) as server:
            server.add_stream("cam")
            status = {
                s["stream"]: s for s in server.stream_status()
            }["cam"]
            assert status["resumed_source_seq"] == 5
            for f in frames[status["resumed_source_seq"] + 1:]:
                server.submit("cam", f)
            server.drain()
            resumed = server.results("cam")
        assert len(resumed) == len(tail)
        for got, want in zip(resumed, reference[len(consumed):]):
            assert np.array_equal(got.mask, want.mask)
