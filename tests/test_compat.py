"""The OpenCV-style compatibility layer."""

import numpy as np
import pytest

from repro.compat import createBackgroundSubtractorMOG
from repro.errors import ConfigError
from repro.video.scenes import evaluation_scene


def gray_frames(n=10, shape=(24, 32)):
    video = evaluation_scene(height=shape[0], width=shape[1])
    return [video.frame(t) for t in range(n)]


class TestFactory:
    def test_defaults(self):
        mog = createBackgroundSubtractorMOG()
        assert mog.getHistory() == 200
        assert mog.getNMixtures() == 3

    def test_parameter_mapping(self):
        mog = createBackgroundSubtractorMOG(history=50, nmixtures=5)
        assert mog.getHistory() == 50
        assert mog.getNMixtures() == 5

    @pytest.mark.parametrize("kw", [
        {"history": 0}, {"backgroundRatio": 0.0},
        {"backgroundRatio": 1.0}, {"noiseSigma": -1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            createBackgroundSubtractorMOG(**kw)


class TestApply:
    def test_returns_0_255_uint8(self):
        mog = createBackgroundSubtractorMOG(history=12)
        mask = mog.apply(gray_frames(1)[0])
        assert mask.dtype == np.uint8
        assert set(np.unique(mask)) <= {0, 255}

    def test_converges_like_the_library(self):
        mog = createBackgroundSubtractorMOG(history=12)
        frame = np.full((16, 16), 90, dtype=np.uint8)
        for _ in range(6):
            mask = mog.apply(frame)
        assert not mask.any()

    def test_color_input_uses_rgb_model(self):
        mog = createBackgroundSubtractorMOG(history=12)
        frame = np.zeros((16, 16, 3), dtype=np.uint8)
        frame[..., 1] = 120
        for _ in range(5):
            mask = mog.apply(frame)
        assert not mask.any()
        bg = mog.getBackgroundImage()
        assert bg.shape == (16, 16, 3)
        assert abs(int(bg[0, 0, 1]) - 120) <= 1

    def test_mixed_modes_rejected(self):
        mog = createBackgroundSubtractorMOG()
        mog.apply(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(ConfigError):
            mog.apply(np.zeros((8, 8, 3), dtype=np.uint8))

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError):
            createBackgroundSubtractorMOG().apply(
                np.zeros((8, 8, 4), dtype=np.uint8)
            )

    def test_learning_rate_override(self):
        mog = createBackgroundSubtractorMOG(history=1000)  # very slow
        a = np.full((8, 8), 10, dtype=np.uint8)
        b = np.full((8, 8), 200, dtype=np.uint8)
        for _ in range(3):
            mog.apply(a)
        # With the fast override the new scene is absorbed quickly.
        for _ in range(40):
            mask = mog.apply(b, learningRate=0.2)
        assert not mask.any()

    def test_frozen_model_unsupported(self):
        mog = createBackgroundSubtractorMOG()
        with pytest.raises(ConfigError):
            mog.apply(np.zeros((8, 8), dtype=np.uint8), learningRate=0.0)

    def test_overlarge_rate_rejected(self):
        mog = createBackgroundSubtractorMOG()
        with pytest.raises(ConfigError):
            mog.apply(np.zeros((8, 8), dtype=np.uint8), learningRate=1.5)

    def test_background_before_frames(self):
        with pytest.raises(ConfigError):
            createBackgroundSubtractorMOG().getBackgroundImage()

    def test_detects_objects(self):
        from repro.metrics import foreground_score

        video = evaluation_scene(height=48, width=64)
        mog = createBackgroundSubtractorMOG(history=12)
        score = None
        for t in range(30):
            frame, truth = video.frame_with_truth(t)
            mask = mog.apply(frame)
            if t >= 20:
                s = foreground_score(mask, truth)
                score = s if score is None else score + s
        assert score.recall > 0.5
