"""The synthetic scene generator: determinism, regions, multimodality."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.objects import Sprite, SpriteTrack, stationary_path
from repro.video.synthetic import (
    DriftRegion,
    FlickerRegion,
    SceneConfig,
    SyntheticVideo,
)


class TestSceneConfig:
    @pytest.mark.parametrize("kw", [
        {"height": 0}, {"width": -3}, {"noise_sd": -1.0},
        {"background_smoothness": 0},
        {"background_low": 100.0, "background_high": 50.0},
        {"bimodal_fraction": 1.5}, {"bimodal_fraction": -0.1},
    ])
    def test_validation(self, kw):
        with pytest.raises(VideoError):
            SceneConfig(**kw)


class TestDeterminism:
    def test_same_config_same_frames(self):
        a = SyntheticVideo(SceneConfig(height=32, width=32, seed=7))
        b = SyntheticVideo(SceneConfig(height=32, width=32, seed=7))
        for t in (0, 3, 11):
            assert np.array_equal(a.frame(t), b.frame(t))

    def test_different_seed_different_frames(self):
        a = SyntheticVideo(SceneConfig(height=32, width=32, seed=7))
        b = SyntheticVideo(SceneConfig(height=32, width=32, seed=8))
        assert not np.array_equal(a.frame(0), b.frame(0))

    def test_frame_independent_of_visit_order(self):
        video = SyntheticVideo(SceneConfig(height=32, width=32))
        f5_first = video.frame(5).copy()
        video.frame(0)
        video.frame(9)
        assert np.array_equal(video.frame(5), f5_first)


class TestFrames:
    def test_dtype_and_shape(self):
        video = SyntheticVideo(SceneConfig(height=20, width=30))
        frame, truth = video.frame_with_truth(0)
        assert frame.shape == (20, 30) and frame.dtype == np.uint8
        assert truth.shape == (20, 30) and truth.dtype == np.bool_

    def test_negative_index_rejected(self):
        video = SyntheticVideo(SceneConfig(height=8, width=8))
        with pytest.raises(VideoError):
            video.frame(-1)

    def test_num_frames_bound(self):
        video = SyntheticVideo(SceneConfig(height=8, width=8), num_frames=3)
        video.frame(2)
        with pytest.raises(VideoError):
            video.frame(3)

    def test_len_and_iter(self):
        video = SyntheticVideo(SceneConfig(height=8, width=8), num_frames=4)
        assert len(video) == 4
        assert len(list(video)) == 4

    def test_unbounded_iteration_rejected(self):
        video = SyntheticVideo(SceneConfig(height=8, width=8))
        with pytest.raises(VideoError):
            iter(video)
        with pytest.raises(VideoError):
            len(video)

    def test_frames_generator(self):
        video = SyntheticVideo(SceneConfig(height=8, width=8))
        frames = list(video.frames(3, start=2))
        assert len(frames) == 3
        assert np.array_equal(frames[0], video.frame(2))

    def test_noise_free_scene_is_static(self):
        video = SyntheticVideo(SceneConfig(height=16, width=16, noise_sd=0.0))
        assert np.array_equal(video.frame(0), video.frame(5))

    def test_noise_level(self):
        cfg = SceneConfig(height=64, width=64, noise_sd=5.0)
        video = SyntheticVideo(cfg)
        diff = video.frame(0).astype(float) - video.frame(1).astype(float)
        # Two iid noise draws: std ~ sqrt(2) * 5.
        assert 4.0 < diff.std() < 10.0


class TestRegions:
    def test_flicker_levels(self):
        region = FlickerRegion(2, 2, 4, 4, level_a=10.0, level_b=200.0, period=3)
        assert region.level(0) == 10.0
        assert region.level(3) == 200.0
        assert region.level(6) == 10.0

    def test_flicker_applied(self):
        region = FlickerRegion(0, 0, 4, 4, level_a=10.0, level_b=200.0, period=1)
        video = SyntheticVideo(
            SceneConfig(height=8, width=8, noise_sd=0.0), flicker=[region]
        )
        assert video.frame(0)[0, 0] == 10
        assert video.frame(1)[0, 0] == 200

    def test_drift_sinusoid(self):
        region = DriftRegion(0, 0, 2, 2, amplitude=20.0, period=8)
        assert region.offset(0) == pytest.approx(0.0)
        assert region.offset(2) == pytest.approx(20.0)
        assert region.offset(6) == pytest.approx(-20.0)

    def test_region_out_of_bounds_rejected(self):
        with pytest.raises(VideoError):
            SyntheticVideo(
                SceneConfig(height=8, width=8),
                flicker=[FlickerRegion(6, 6, 4, 4)],
            )

    @pytest.mark.parametrize("kw", [{"height": 0}, {"period": 0}])
    def test_region_validation(self, kw):
        base = dict(top=0, left=0, height=2, width=2)
        base.update(kw)
        with pytest.raises(VideoError):
            FlickerRegion(**base)


class TestBimodal:
    def test_bimodal_pixels_alternate(self):
        cfg = SceneConfig(
            height=32, width=32, noise_sd=0.0,
            bimodal_fraction=1.0, bimodal_delta=40.0,
        )
        video = SyntheticVideo(cfg)
        frames = np.stack([video.frame(t).astype(float) for t in range(30)])
        spans = frames.max(axis=0) - frames.min(axis=0)
        # Every pixel visits both modes within 30 frames (half-period
        # is at most 12).
        assert (spans >= 39).mean() > 0.99

    def test_bimodal_runs_persist(self):
        cfg = SceneConfig(
            height=16, width=16, noise_sd=0.0,
            bimodal_fraction=1.0, bimodal_delta=40.0,
        )
        video = SyntheticVideo(cfg)
        series = np.stack([video.frame(t) for t in range(40)]).astype(float)
        flips = (np.abs(np.diff(series, axis=0)) > 20).mean(axis=0)
        # Modes hold for 6-12 frames: flip rate per frame ~ 1/6..1/12.
        assert 0.05 < flips.mean() < 0.25

    def test_zero_fraction_is_unimodal(self):
        cfg = SceneConfig(height=16, width=16, noise_sd=0.0, bimodal_fraction=0.0)
        video = SyntheticVideo(cfg)
        assert np.array_equal(video.frame(0), video.frame(17))

    def test_truth_unaffected_by_bimodal(self):
        cfg = SceneConfig(
            height=16, width=16, bimodal_fraction=1.0, bimodal_delta=30.0
        )
        video = SyntheticVideo(cfg)
        _, truth = video.frame_with_truth(4)
        assert not truth.any()  # bimodal background is still background


class TestBackgroundImage:
    def test_background_matches_static_scene(self):
        video = SyntheticVideo(SceneConfig(height=16, width=16, noise_sd=0.0))
        bg = video.background(0)
        assert np.allclose(bg, video.frame(0), atol=1.0)

    def test_sprites_not_in_background(self):
        track = SpriteTrack(
            Sprite.rectangle(4, 4, 250.0), stationary_path((4, 4))
        )
        video = SyntheticVideo(
            SceneConfig(height=16, width=16, noise_sd=0.0), tracks=[track]
        )
        assert video.background(0)[5, 5] != 250.0
        assert video.frame(0)[5, 5] == 250
