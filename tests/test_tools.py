"""Smoke tests for the repo's tools (the fast-callable parts)."""

import sys
from pathlib import Path


TOOLS = Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))


class TestProfileRuntime:
    def test_profiles_both_backends(self):
        from profile_runtime import profile_run

        from repro.video.scenes import evaluation_scene
        from repro.bench.harness import BENCH_SHAPE

        video = evaluation_scene(height=BENCH_SHAPE[0], width=BENCH_SHAPE[1])
        frames = [video.frame(t) for t in range(2)]
        for backend in ("cpu", "sim"):
            text = profile_run(backend, frames, top=3)
            assert "cumulative" in text
            assert "apply" in text


class TestReportHtml:
    def test_table_html_escapes(self):
        from make_report_html import table_html

        from repro.bench.experiments import Experiment

        exp = Experiment("X", "<b>", ["a<"], [["&"]], notes="<i>")
        text = table_html(exp)
        assert "&lt;b&gt;" in text
        assert "&amp;" in text
        assert "<i>" not in text

    def test_speedup_chart_structure(self):
        from make_report_html import speedup_chart

        from repro.bench.experiments import PAPER_SPEEDUPS

        svg = speedup_chart({k: v * 1.01 for k, v in PAPER_SPEEDUPS.items()})
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("bar-measured") == len(PAPER_SPEEDUPS)
        assert svg.count("bar-paper") == len(PAPER_SPEEDUPS)


class TestFitCalibration:
    def test_make_calibration_roundtrip(self):
        from fit_calibration import BOUNDS, make_calibration

        mid = [(lo + hi) / 2 for lo, hi in BOUNDS]
        cal, pcie = make_calibration(mid)
        assert cal.issue_cycles["fp64"] == mid[0]
        assert cal.issue_cycles["sfu32"] == mid[1] / 2
        assert pcie == mid[-1]

    def test_paper_targets_match_experiments(self):
        from fit_calibration import PAPER_SPEEDUPS as FIT_TARGETS

        from repro.bench.experiments import PAPER_SPEEDUPS

        assert FIT_TARGETS == PAPER_SPEEDUPS


class TestExperimentsMdGenerator:
    def test_notes_cover_every_experiment(self):
        from make_experiments_md import PER_EXPERIMENT_NOTES

        from repro.bench.experiments import ALL_EXPERIMENTS

        assert set(PER_EXPERIMENT_NOTES) == set(ALL_EXPERIMENTS)
