"""The RGB MoG extension and the color video adapter."""

import numpy as np
import pytest

from repro.errors import ConfigError, VideoError
from repro.mog import MoGVectorized
from repro.mog.color import ColorMoGVectorized
from repro.video.color import ColorizedVideo
from repro.video.scenes import evaluation_scene

SHAPE = (24, 32)


def _gray_as_rgb(frame: np.ndarray) -> np.ndarray:
    return np.repeat(frame[:, :, None], 3, axis=2)


class TestColorMoG:
    def test_gray_input_matches_gray_model(self, params):
        """Channel-equal input: the RMS deviation equals |x - m|, so the
        color model must agree with the grayscale model."""
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        gray = MoGVectorized(SHAPE, params, variant="nosort")
        color = ColorMoGVectorized(SHAPE, params)
        agree, total = 0, 0
        for t in range(10):
            frame = video.frame(t)
            mg = gray.apply(frame)
            mc = color.apply(_gray_as_rgb(frame))
            agree += np.count_nonzero(mg == mc)
            total += mg.size
        assert agree / total > 0.999

    def test_constant_color_scene_is_background(self, params):
        mog = ColorMoGVectorized(SHAPE, params)
        frame = np.zeros((*SHAPE, 3), dtype=np.uint8)
        frame[..., 0], frame[..., 1], frame[..., 2] = 40, 90, 160
        for _ in range(5):
            mask = mog.apply(frame)
        assert not mask.any()

    def test_chromatic_change_detected(self, params):
        """Same luminance, different hue: a color model must flag it
        (the main advantage over grayscale subtraction)."""
        mog = ColorMoGVectorized(SHAPE, params)
        a = np.zeros((*SHAPE, 3), dtype=np.uint8)
        a[..., 0] = 150  # red-ish
        b = np.zeros((*SHAPE, 3), dtype=np.uint8)
        b[..., 2] = 150  # blue-ish, same per-channel magnitude
        for _ in range(6):
            mog.apply(a)
        assert mog.apply(b).all()
        # Grayscale on the luminance-equal input would see nothing:
        gray = MoGVectorized(SHAPE, params, variant="nosort")
        for _ in range(6):
            gray.apply(np.full(SHAPE, 50, dtype=np.uint8))
        assert not gray.apply(np.full(SHAPE, 50, dtype=np.uint8)).any()

    def test_new_color_absorbed_over_time(self, params):
        p = params.replace(learning_rate=0.1)
        mog = ColorMoGVectorized(SHAPE, p)
        a = np.full((*SHAPE, 3), 30, dtype=np.uint8)
        b = np.zeros((*SHAPE, 3), dtype=np.uint8)
        b[..., 1] = 200
        for _ in range(5):
            mog.apply(a)
        assert mog.apply(b).all()
        for _ in range(50):
            last = mog.apply(b)
        assert not last.any()

    def test_state_invariants(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mog = ColorMoGVectorized(SHAPE, params)
        for t in range(8):
            mog.apply(_gray_as_rgb(video.frame(t)))
        assert (mog.w >= 0).all() and (mog.w <= 1).all()
        assert np.isfinite(mog.m).all()
        assert (mog.sd >= min(params.sd_floor, params.initial_sd)).all()

    def test_background_image_shape(self, params):
        mog = ColorMoGVectorized(SHAPE, params)
        mog.apply(np.zeros((*SHAPE, 3), dtype=np.uint8))
        assert mog.background_image().shape == (*SHAPE, 3)

    def test_frame_shape_validated(self, params):
        mog = ColorMoGVectorized(SHAPE, params)
        with pytest.raises(ConfigError):
            mog.apply(np.zeros(SHAPE, dtype=np.uint8))  # missing channels

    def test_empty_sequence_rejected(self, params):
        with pytest.raises(ConfigError):
            ColorMoGVectorized(SHAPE, params).apply_sequence([])

    def test_background_before_frames_rejected(self, params):
        with pytest.raises(ConfigError):
            ColorMoGVectorized(SHAPE, params).background_image()

    def test_float32_runs(self, params):
        video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
        mog = ColorMoGVectorized(SHAPE, params, dtype="float")
        mog.apply(_gray_as_rgb(video.frame(0)))
        assert mog.m.dtype == np.float32


class TestColorizedVideo:
    def test_frames_shape_and_determinism(self):
        base = evaluation_scene(height=32, width=48)
        a = ColorizedVideo(base, seed=3)
        b = ColorizedVideo(evaluation_scene(height=32, width=48), seed=3)
        fa, ta = a.frame_with_truth(4)
        fb, tb = b.frame_with_truth(4)
        assert fa.shape == (32, 48, 3) and fa.dtype == np.uint8
        assert np.array_equal(fa, fb)
        assert np.array_equal(ta, tb)

    def test_truth_matches_base(self):
        base = evaluation_scene(height=32, width=48)
        color = ColorizedVideo(base)
        _, truth_color = color.frame_with_truth(6)
        _, truth_base = base.frame_with_truth(6)
        assert np.array_equal(truth_color, truth_base)

    def test_channels_differ(self):
        color = ColorizedVideo(evaluation_scene(height=32, width=48))
        frame = color.frame(0).astype(int)
        assert (frame[..., 0] != frame[..., 2]).any()

    def test_tint_validation(self):
        base = evaluation_scene(height=16, width=16)
        with pytest.raises(VideoError):
            ColorizedVideo(base, tint_low=0.9, tint_high=0.5)

    def test_end_to_end_detection(self, params):
        """Color MoG on colorized footage still finds the objects."""
        from repro.metrics import foreground_score

        base = evaluation_scene(height=48, width=64)
        color = ColorizedVideo(base)
        mog = ColorMoGVectorized((48, 64), params)
        score = None
        for t in range(30):
            frame, truth = color.frame_with_truth(t)
            mask = mog.apply(frame)
            if t >= 20:
                s = foreground_score(mask, truth)
                score = s if score is None else score + s
        assert score.recall > 0.5
        assert score.precision > 0.3
