"""Chromaticity-based shadow suppression."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.post import ShadowParams, detect_shadows, suppress_shadows

H, W = 16, 16


def scene():
    """Background, frame with a shadow region and an object region."""
    background = np.zeros((H, W, 3))
    background[...] = (120.0, 100.0, 80.0)
    frame = background.copy()
    frame[2:6, 2:6] *= 0.7                       # cast shadow: dimmed bg
    frame[10:14, 10:14] = (40.0, 60.0, 200.0)    # object: different hue
    mask = np.zeros((H, W), dtype=bool)
    mask[2:6, 2:6] = True
    mask[10:14, 10:14] = True
    return frame, background, mask


class TestDetectShadows:
    def test_shadow_region_found(self):
        frame, bg, mask = scene()
        shadow = detect_shadows(frame, bg, mask)
        assert shadow[2:6, 2:6].all()

    def test_object_region_kept(self):
        frame, bg, mask = scene()
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[10:14, 10:14].any()

    def test_only_within_mask(self):
        frame, bg, mask = scene()
        frame[0, 0] = bg[0, 0] * 0.7  # shadow-like but not foreground
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[0, 0]

    def test_brightening_is_not_shadow(self):
        frame, bg, mask = scene()
        frame[2:6, 2:6] = bg[2:6, 2:6] * 1.2  # highlight, not shadow
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[2:6, 2:6].any()

    def test_deep_darkness_is_not_shadow(self):
        """A nearly black pixel (alpha below alpha_low) is an object —
        e.g. a dark car — not a shadow."""
        frame, bg, mask = scene()
        frame[2:6, 2:6] = bg[2:6, 2:6] * 0.1
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[2:6, 2:6].any()

    def test_chromatic_shift_is_not_shadow(self):
        frame, bg, mask = scene()
        frame[2:6, 2:6] = bg[2:6, 2:6] * 0.7
        frame[2:6, 2:6, 2] += 60.0  # blue tint: distortion too large
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[2:6, 2:6].any()

    def test_zero_background_safe(self):
        frame, bg, mask = scene()
        bg[2:6, 2:6] = 0.0
        shadow = detect_shadows(frame, bg, mask)
        assert not shadow[2:6, 2:6].any()  # no division blow-up

    def test_validation(self):
        frame, bg, mask = scene()
        with pytest.raises(ConfigError):
            detect_shadows(frame[..., :2], bg[..., :2], mask)
        with pytest.raises(ConfigError):
            detect_shadows(frame, bg[:8], mask)
        with pytest.raises(ConfigError):
            detect_shadows(frame, bg, mask[:8])


class TestSuppressShadows:
    def test_mask_split(self):
        frame, bg, mask = scene()
        cleaned, shadow = suppress_shadows(frame, bg, mask)
        assert not cleaned[2:6, 2:6].any()
        assert cleaned[10:14, 10:14].all()
        assert not (cleaned & shadow).any()
        assert ((cleaned | shadow) == mask).all()

    def test_params_validation(self):
        with pytest.raises(ConfigError):
            ShadowParams(alpha_low=0.9, alpha_high=0.5)
        with pytest.raises(ConfigError):
            ShadowParams(alpha_high=2.0)
        with pytest.raises(ConfigError):
            ShadowParams(max_distortion=0.0)

    def test_end_to_end_with_color_mog(self, params):
        """Shadow suppression on the color MoG's own background model."""
        from repro.mog.color import ColorMoGVectorized

        background = np.zeros((H, W, 3), dtype=np.uint8)
        background[...] = (140, 110, 90)
        mog = ColorMoGVectorized((H, W), params.replace(learning_rate=0.2))
        for _ in range(12):
            mog.apply(background)
        shadowed = background.astype(np.float64)
        shadowed[4:12, 4:12] *= 0.65
        frame = np.clip(shadowed, 0, 255).astype(np.uint8)
        raw = mog.apply(frame)
        assert raw[4:12, 4:12].any()  # MoG alone flags the shadow
        cleaned, shadow = suppress_shadows(
            frame, mog.background_image(), raw
        )
        assert shadow[5:11, 5:11].all()
        assert not cleaned[5:11, 5:11].any()


class TestShadowParamsBand:
    """Pinned fix: the alpha band must satisfy 0 < low < high <= 1 — a
    'shadow' can only dim the background, so high > 1 (which silently
    classified *brightened* pixels as shadow) is rejected."""

    @pytest.mark.parametrize("high", [1.2, 1.5, 1.0000001])
    def test_brightening_band_rejected(self, high):
        with pytest.raises(ConfigError):
            ShadowParams(alpha_high=high)

    def test_boundary_high_of_one_accepted(self):
        assert ShadowParams(alpha_high=1.0).alpha_high == 1.0

    @pytest.mark.parametrize("low", [0.0, -0.1])
    def test_nonpositive_low_rejected(self, low):
        with pytest.raises(ConfigError):
            ShadowParams(alpha_low=low)

    def test_degenerate_band_rejected(self):
        with pytest.raises(ConfigError):
            ShadowParams(alpha_low=0.9, alpha_high=0.9)
