"""AoS / SoA layouts: index math, host round-trips, coalescing contrast."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim import SimtEngine
from repro.layout import AoSLayout, SoALayout
from repro.layout.base import NUM_PARAMS, PARAM_M, PARAM_SD, PARAM_W
from repro.mog import MixtureState


def _state(k=3, n=10, dtype=np.float64):
    rng = np.random.default_rng(0)
    return MixtureState(
        rng.random((k, n)).astype(dtype),
        (rng.random((k, n)) * 255).astype(dtype),
        (rng.random((k, n)) * 20 + 1).astype(dtype),
    )


@pytest.mark.parametrize("layout_cls", [AoSLayout, SoALayout])
class TestRoundTrip:
    def test_upload_download_identity(self, layout_cls):
        engine = SimtEngine()
        layout = layout_cls(3, 10, np.float64)
        layout.allocate(engine.memory)
        st = _state()
        layout.upload(st)
        back = layout.download()
        assert np.array_equal(back.w, st.w)
        assert np.array_equal(back.m, st.m)
        assert np.array_equal(back.sd, st.sd)

    def test_float32_roundtrip(self, layout_cls):
        engine = SimtEngine()
        layout = layout_cls(3, 10, np.float32)
        layout.allocate(engine.memory)
        st = _state(dtype=np.float32)
        layout.upload(st)
        assert np.array_equal(layout.download().m, st.m)

    def test_state_shape_validated(self, layout_cls):
        engine = SimtEngine()
        layout = layout_cls(3, 10, np.float64)
        layout.allocate(engine.memory)
        with pytest.raises(ConfigError):
            layout.upload(_state(k=2))
        with pytest.raises(ConfigError):
            layout.upload(_state(n=11))

    def test_unallocated_rejected(self, layout_cls):
        layout = layout_cls(3, 10, np.float64)
        with pytest.raises(ConfigError):
            layout.download()

    def test_bad_dimensions(self, layout_cls):
        with pytest.raises(ConfigError):
            layout_cls(0, 10, np.float64)


class TestIndexMath:
    def test_aos_interleaved(self):
        engine = SimtEngine()
        layout = AoSLayout(3, 100, np.float64)
        layout.allocate(engine.memory)
        out = engine.memory.alloc("out", 100, np.float64)
        st = _state(n=100)
        layout.upload(st)

        def kern(ctx, layout, out):
            pix = ctx.thread_id()
            v = ctx.load(layout.buffer, layout.index(ctx, 1, PARAM_SD, pix))
            ctx.store(out, pix, v)

        engine.launch(kern, 100, 32, args=(layout, out))
        assert np.allclose(out.data, st.sd[1])

    def test_soa_planes(self):
        engine = SimtEngine()
        layout = SoALayout(3, 100, np.float64)
        layout.allocate(engine.memory)
        st = _state(n=100)
        layout.upload(st)
        view = layout.buffer.data.reshape(3, NUM_PARAMS, 100)
        assert np.array_equal(view[2, PARAM_M], st.m[2])
        assert layout.plane_base(1, PARAM_W) == (1 * NUM_PARAMS + PARAM_W) * 100

    def test_layouts_store_identical_content(self):
        """Same state, different order: element multisets agree."""
        engine = SimtEngine()
        aos = AoSLayout(3, 10, np.float64)
        soa = SoALayout(3, 10, np.float64)
        aos.allocate(engine.memory, "aos")
        soa.allocate(engine.memory, "soa")
        st = _state()
        aos.upload(st)
        soa.upload(st)
        assert np.allclose(
            np.sort(aos.buffer.data), np.sort(soa.buffer.data)
        )


class TestCoalescingContrast:
    """The microbenchmark behind the paper's Figure 4."""

    def _transactions(self, layout_cls):
        engine = SimtEngine()
        layout = layout_cls(3, 128, np.float64)
        layout.allocate(engine.memory)
        layout.upload(_state(n=128))

        def kern(ctx, layout):
            pix = ctx.thread_id()
            _ = ctx.load(layout.buffer, layout.index(ctx, 0, PARAM_W, pix))

        engine.launch(kern, 128, 128, args=(layout,))
        return engine.launches[-1].counters.load_transactions

    def test_aos_18x_worse_than_soa(self):
        aos_tx = self._transactions(AoSLayout)
        soa_tx = self._transactions(SoALayout)
        assert soa_tx == 8          # 2 segments per warp x 4 warps
        assert aos_tx == 18 * 4     # 72-byte stride
