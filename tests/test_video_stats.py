"""Workload characterisation: the scenes really have the statistics
the substitution argument claims."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.scenes import evaluation_scene, patient_room_scene
from repro.video.stats import estimate_modality, scene_stats


class TestEstimateModality:
    def test_constant_pixel_one_mode(self):
        stack = np.full((20, 4, 4), 100, dtype=np.uint8)
        assert (estimate_modality(stack) == 1).all()

    def test_noisy_unimodal_pixel(self):
        rng = np.random.default_rng(0)
        stack = np.clip(
            100 + rng.normal(0, 3, (40, 4, 4)), 0, 255
        ).astype(np.uint8)
        assert (estimate_modality(stack) == 1).all()

    def test_bimodal_pixel(self):
        stack = np.empty((40, 2, 2), dtype=np.uint8)
        stack[0::2] = 60
        stack[1::2] = 140
        assert (estimate_modality(stack) == 2).all()

    def test_rare_outlier_not_a_mode(self):
        stack = np.full((40, 2, 2), 80, dtype=np.uint8)
        stack[3] = 200  # one frame: below min_weight
        assert (estimate_modality(stack) == 1).all()

    def test_three_modes(self):
        stack = np.empty((30, 1, 1), dtype=np.uint8)
        stack[0::3], stack[1::3], stack[2::3] = 40, 120, 220
        assert estimate_modality(stack)[0, 0] == 3

    def test_validation(self):
        with pytest.raises(VideoError):
            estimate_modality(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(VideoError):
            estimate_modality(np.zeros((1, 4, 4), dtype=np.uint8))


class TestSceneStats:
    def test_evaluation_scene_is_multimodal(self):
        """The canonical workload's advertised statistics hold: the
        configured 90% bimodal pixels measure as ~2/3 separably
        multimodal once sensor noise broadens the modes (the rest sit
        at the 12-intensity separability edge)."""
        video = evaluation_scene(height=48, width=64)
        stack = np.stack([video.frame(t) for t in range(48)])
        stats = scene_stats(stack, gap=12.0)
        assert stats.multimodal_fraction > 0.55
        assert 1.4 < stats.mean_modality < 2.5
        assert 0.05 < float(stats.flip_rate.mean()) < 0.3

    def test_patient_room_is_mostly_unimodal(self):
        video = patient_room_scene(height=48, width=64)
        stack = np.stack([video.frame(t) for t in range(48)])
        stats = scene_stats(stack, gap=12.0)
        assert stats.multimodal_fraction < 0.3

    def test_summary_text(self):
        stack = np.full((10, 4, 4), 50, dtype=np.uint8)
        text = scene_stats(stack).summary()
        assert "10 frames" in text and "multimodal" in text

    def test_accepts_iterables(self):
        frames = [np.full((4, 4), v, dtype=np.uint8) for v in (10, 10, 10)]
        stats = scene_stats(frames)
        assert stats.num_frames == 3

    def test_validation(self):
        with pytest.raises(VideoError):
            scene_stats(np.zeros((4, 4), dtype=np.uint8))
