"""The JIT emitter and :class:`MoGJit`: bit-identity oracle vs the cpu
and sim backends, the compile cache, and checkpoint interop.

Everything here runs with ``engine="python"`` (the emitted source
interpreted), so the *exact* kernel text is exercised even when numba
is not installed; the numba engine compiles the same text.
"""

import numpy as np
import pytest

from repro.config import IntegrityPolicy, MoGParams
from repro.core.subtractor import BackgroundSubtractor
from repro.core.variants import resolve_level_spec
from repro.errors import ConfigError
from repro.kernels.ir import BASE_SPEC
from repro.kernels.jit import (
    CONST_ARGS,
    KernelCache,
    emit_kernel_source,
    get_kernel,
    jit_cache_dir,
    spec_fingerprint,
)
from repro.mog.jit import MoGJit
from repro.mog.vectorized import MoGVectorized
from repro.telemetry import MetricsRegistry
from repro.video.scenes import evaluation_scene

SHAPE = (8, 10)
PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)
LEVELS = list("ABCDEFG") + ["A+predication"]
DTYPES = ("double", "float")


def _frames(n, shape=SHAPE, seed=3):
    video = evaluation_scene(height=shape[0], width=shape[1], seed=seed)
    return [video.frame(t) for t in range(n)]


def _jit(level, dtype="double", **kw):
    spec = resolve_level_spec(level).kernel
    return MoGJit(SHAPE, PARAMS, spec=spec, dtype=dtype,
                  engine="python", **kw)


# ----------------------------------------------------------------------
# Emitter / cache unit tests
# ----------------------------------------------------------------------
class TestEmitter:
    def test_fingerprint_stable_and_discriminating(self):
        a = spec_fingerprint(BASE_SPEC, 4)
        assert a == spec_fingerprint(BASE_SPEC, 4)
        assert a != spec_fingerprint(BASE_SPEC, 5)
        spec_f = resolve_level_spec("F").kernel
        assert a != spec_fingerprint(spec_f, 4)

    def test_layout_axes_do_not_change_fingerprint(self):
        # Layout/overlap/tiling are GPU residency axes the emitted
        # per-pixel arithmetic does not depend on.
        spec_f = resolve_level_spec("F").kernel
        spec_g = resolve_level_spec("G").kernel
        assert spec_fingerprint(spec_f, 4) == spec_fingerprint(spec_g, 4)

    def test_source_shape(self):
        src = emit_kernel_source(BASE_SPEC, 3)
        assert "def kernel(frame, w, m, sd, fg, shadow, classes," in src
        assert "w2 = w[2, i]" in src and "w3" not in src
        assert "prange" in src
        for name in CONST_ARGS:
            assert name in src

    def test_k_validation(self):
        for bad in (0, 9):
            with pytest.raises(ConfigError):
                emit_kernel_source(BASE_SPEC, bad)

    def test_engine_validation(self):
        with pytest.raises(ConfigError):
            get_kernel(BASE_SPEC, 4, "double", SHAPE, engine="rust")
        with pytest.raises(ConfigError):
            MoGJit(SHAPE, PARAMS, engine="rust")

    def test_cache_hit_costs_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path))
        cache = KernelCache()
        first = cache.get(BASE_SPEC, 4, "double", SHAPE, engine="python")
        assert len(cache) == 1
        assert first.source_path.exists()
        assert first.source_path.parent == jit_cache_dir()
        again = cache.get(BASE_SPEC, 4, "double", SHAPE, engine="python")
        assert again.compile_s == 0.0
        assert again.fn is first.fn
        # A new shape reuses the dispatcher but gets its own entry.
        other = cache.get(BASE_SPEC, 4, "double", (4, 4), engine="python")
        assert other.fn is first.fn
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_source_file_not_rewritten_when_identical(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path))
        cache = KernelCache()
        entry = cache.get(BASE_SPEC, 4, "double", SHAPE, engine="python")
        mtime = entry.source_path.stat().st_mtime_ns
        KernelCache().get(BASE_SPEC, 4, "float", SHAPE, engine="python")
        assert entry.source_path.stat().st_mtime_ns == mtime


# ----------------------------------------------------------------------
# Bit-identity oracle vs the cpu backend
# ----------------------------------------------------------------------
class TestOracle:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_masks_and_state_match_cpu(self, level, dtype):
        spec = resolve_level_spec(level)
        frames = _frames(7)
        jit = _jit(level, dtype)
        cpu = MoGVectorized(SHAPE, PARAMS, variant=spec.mog_variant,
                            dtype=dtype)
        for frame in frames:
            assert np.array_equal(jit.apply(frame), cpu.apply(frame)), level
        for name in ("w", "m", "sd"):
            assert np.array_equal(
                getattr(jit.state, name), getattr(cpu.state, name)
            ), (level, dtype, name)

    @pytest.mark.parametrize("level", ["F+fusion", "A+fusion"])
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_fused_outputs_match_cpu(self, level, dtype):
        from repro.config import RunConfig

        frames = _frames(7)
        jit = _jit(level, dtype)
        cpu = BackgroundSubtractor(
            SHAPE, PARAMS, level=level, backend="cpu",
            run_config=RunConfig(
                height=SHAPE[0], width=SHAPE[1], dtype=dtype
            ),
        )
        for frame in frames:
            assert np.array_equal(jit.apply(frame), cpu.apply(frame))
        assert np.array_equal(jit.last_shadow != 0, cpu.shadow_map())
        assert np.array_equal(jit.last_classes, cpu.class_map())

    def test_masks_match_sim(self):
        frames = _frames(6)
        jit = _jit("F")
        sim = BackgroundSubtractor(SHAPE, PARAMS, level="F", backend="sim")
        for frame in frames:
            assert np.array_equal(jit.apply(frame), sim.apply(frame))

    def test_background_image_matches_cpu(self):
        frames = _frames(6)
        jit = _jit("F")
        cpu = MoGVectorized(SHAPE, PARAMS, variant="regopt")
        jit.apply_sequence(frames)
        cpu.apply_sequence(frames)
        assert np.array_equal(jit.background_image(), cpu.background_image())

    def test_num_gaussians_sweep(self):
        frames = _frames(5)
        for k in (1, 2, 5):
            params = PARAMS.replace(num_gaussians=k)
            jit = MoGJit(SHAPE, params, engine="python")
            cpu = MoGVectorized(SHAPE, params, variant="sorted")
            for frame in frames:
                assert np.array_equal(jit.apply(frame), cpu.apply(frame)), k


# ----------------------------------------------------------------------
# Model behaviour
# ----------------------------------------------------------------------
class TestMoGJit:
    def test_returned_mask_is_not_a_live_buffer(self):
        frames = _frames(3)
        jit = _jit("F")
        first = jit.apply(frames[0])
        kept = first.copy()
        jit.apply(frames[1])
        assert np.array_equal(first, kept)

    def test_snapshot_is_a_copy(self):
        frames = _frames(4)
        jit = _jit("F")
        jit.apply(frames[0])
        w, m, sd, n = jit.state_snapshot()
        w0 = w.copy()
        jit.apply(frames[1])
        assert np.array_equal(w, w0)  # kernel mutated state, not the copy

    def test_snapshot_roundtrip_resumes_bit_identically(self):
        frames = _frames(8)
        a = _jit("F")
        for f in frames[:4]:
            a.apply(f)
        snap = a.state_snapshot()
        b = _jit("F")
        b.restore_state(snap)
        tail_a = [a.apply(f) for f in frames[4:]]
        tail_b = [b.apply(f) for f in frames[4:]]
        assert all(np.array_equal(x, y) for x, y in zip(tail_a, tail_b))

    def test_cross_backend_snapshot_interop(self):
        # cpu -> jit and jit -> cpu: the snapshot tuple is the same
        # format, so checkpoints interoperate across backends.
        frames = _frames(8)
        cpu = MoGVectorized(SHAPE, PARAMS, variant="regopt")
        for f in frames[:4]:
            cpu.apply(f)
        jit = _jit("F")
        jit.restore_state(cpu.state_snapshot())
        for f in frames[4:]:
            assert np.array_equal(jit.apply(f), cpu.apply(f))
        cpu2 = MoGVectorized(SHAPE, PARAMS, variant="regopt")
        cpu2.restore_state(jit.state_snapshot())
        assert np.array_equal(cpu2.state.w, jit.state.w)

    def test_restore_none_resets(self):
        jit = _jit("F")
        jit.apply(_frames(1)[0])
        jit.restore_state(None)
        assert jit.state is None and jit.frames_processed == 0

    def test_restore_rejects_wrong_shape(self):
        jit = _jit("F")
        bad = np.zeros((2, 3))
        with pytest.raises(ConfigError):
            jit.restore_state((bad, bad, bad, 1))

    def test_integrity_repair_parity_with_cpu(self):
        frames = _frames(6)
        policy = IntegrityPolicy(mode="repair")
        jit = _jit("F", integrity=policy)
        cpu = MoGVectorized(SHAPE, PARAMS, variant="regopt",
                            integrity=policy)
        for i, frame in enumerate(frames):
            if i == 3:  # corrupt both models identically mid-stream
                jit.state.sd[0, 5] = np.nan
                cpu.state.sd[0, 5] = np.nan
            assert np.array_equal(jit.apply(frame), cpu.apply(frame)), i
        assert np.array_equal(jit.state.sd, cpu.state.sd)

    def test_frame_validation(self):
        jit = _jit("F")
        with pytest.raises(ConfigError):
            jit.apply(np.zeros((4, 4)))
        with pytest.raises(ConfigError):
            jit.apply(np.full(SHAPE, np.nan))
        with pytest.raises(ConfigError):
            jit.apply(np.zeros(SHAPE, dtype=complex))
        with pytest.raises(ConfigError):
            jit.apply_sequence([])

    def test_telemetry_counters(self):
        tel = MetricsRegistry()
        jit = MoGJit(SHAPE, PARAMS, engine="python", telemetry=tel)
        for f in _frames(3):
            jit.apply(f)
        snap = tel.snapshot()
        assert snap["counters"]["jit.frames"] == 3
        assert "jit.compile_s" in snap["gauges"]
        assert snap["gauges"]["jit.kernels_cached"] >= 1


# ----------------------------------------------------------------------
# Checkpoint files across backends
# ----------------------------------------------------------------------
class TestCheckpointInterop:
    def test_cpu_checkpoint_restores_into_jit_pipeline(self, tmp_path):
        from repro.core.stream import SurveillancePipeline

        frames = _frames(10, shape=(16, 20))
        ckpt = tmp_path / "p.ckpt"
        a = SurveillancePipeline((16, 20), PARAMS, backend="cpu",
                                 warmup_frames=2)
        for f in frames[:5]:
            a.step(f)
        a.save_checkpoint(ckpt)
        # backend="jit" degrades to cpu here when numba is absent; the
        # restore path is backend-agnostic either way.
        with (
            _nullcontext() if _numba()
            else pytest.warns(RuntimeWarning)
        ):
            b = SurveillancePipeline((16, 20), PARAMS, backend="jit",
                                     warmup_frames=2)
        assert b.restore_checkpoint(ckpt) == 4
        for f, r in zip(frames[5:], [a.step(x) for x in frames[5:]]):
            assert np.array_equal(b.step(f).mask, r.mask)


def _numba() -> bool:
    from repro.kernels.jit import numba_available

    return numba_available()


def _nullcontext():
    import contextlib

    return contextlib.nullcontext()
