"""The experiment harness: extrapolation soundness and run_level."""

import pytest

from repro.bench.harness import (
    PAPER_BENCH_PARAMS,
    PAPER_SCALE,
    WorkloadScale,
    extrapolate,
    run_level,
    steady_state_counters,
)
from repro.config import RunConfig
from repro.core.pipeline import HostPipeline
from repro.errors import ConfigError
from repro.video.scenes import evaluation_scene

SHAPE = (32, 64)


@pytest.fixture(scope="module")
def frames():
    video = evaluation_scene(height=SHAPE[0], width=SHAPE[1])
    return [video.frame(t) for t in range(12)]


@pytest.fixture(scope="module")
def report_f(frames):
    hp = HostPipeline(SHAPE, PAPER_BENCH_PARAMS, "F")
    hp.process(frames)
    return hp.report()


class TestSteadyState:
    def test_warmup_excluded(self, report_f):
        all_counters, _ = steady_state_counters(report_f, 0)
        tail_counters, _ = steady_state_counters(report_f, 8)
        # Same per-frame magnitude (within divergence noise).
        assert tail_counters.warp_issues["mem"] == all_counters.warp_issues["mem"]

    def test_empty_report_rejected(self):
        from repro.core.results import RunReport

        with pytest.raises(ConfigError):
            steady_state_counters(RunReport("F", 0, 0, 3, "double"), 0)


class TestExtrapolation:
    def test_kernel_time_scales_linearly_with_pixels(self, report_f):
        small = WorkloadScale(SHAPE[0] * SHAPE[1] * 10, 100)
        large = WorkloadScale(SHAPE[0] * SHAPE[1] * 20, 100)
        kt_small, _ = extrapolate(report_f, small)
        kt_large, _ = extrapolate(report_f, large)
        # Minus the fixed launch overhead, kernel time is linear.
        from repro.gpusim.device import TESLA_C2075

        oh = TESLA_C2075.kernel_launch_overhead_s
        assert (kt_large - oh) == pytest.approx(2 * (kt_small - oh), rel=0.01)

    def test_total_time_scales_with_frames(self, report_f):
        a = extrapolate(report_f, WorkloadScale(10**6, 100))[1]
        b = extrapolate(report_f, WorkloadScale(10**6, 200))[1]
        assert b == pytest.approx(2 * a, rel=0.05)

    def test_identity_scale_close_to_measured(self, report_f):
        """Extrapolating to the measured workload reproduces ~the
        measured per-frame kernel time."""
        scale = WorkloadScale(report_f.num_pixels, report_f.num_frames)
        kt, _ = extrapolate(report_f, scale)
        assert kt == pytest.approx(report_f.kernel_time_per_frame, rel=0.2)


class TestRunLevel:
    def test_result_fields(self, frames):
        r = run_level("F", frames, SHAPE, params=PAPER_BENCH_PARAMS,
                      warmup_frames=6)
        assert r.level == "F"
        assert r.scale == PAPER_SCALE
        assert r.masks.shape == (len(frames), *SHAPE)
        assert r.speedup == pytest.approx(r.cpu_time / r.total_time)
        assert r.metrics()["speedup"] == pytest.approx(r.speedup)

    def test_speedup_uses_matching_cpu_config(self, frames):
        r3 = run_level("F", frames, SHAPE, params=PAPER_BENCH_PARAMS)
        p5 = PAPER_BENCH_PARAMS.replace(num_gaussians=5)
        r5 = run_level("F", frames, SHAPE, params=p5)
        assert r5.cpu_time > r3.cpu_time  # 5G CPU baseline is slower

    def test_tiled_level_runs(self, frames):
        rc = RunConfig(height=SHAPE[0], width=SHAPE[1],
                       tile_pixels=256, frame_group=4)
        r = run_level("G", frames, SHAPE, params=PAPER_BENCH_PARAMS,
                      run_config=rc, warmup_frames=4)
        assert r.speedup > 0
