"""Cost attribution and the ASCII pipeline timeline."""

import pytest

from repro.gpusim.analysis import (
    cost_breakdown,
    format_cost_breakdown,
    render_timeline,
)
from repro.gpusim.counters import KernelCounters
from repro.gpusim.dma import StreamScheduler


def counters_with(**kwargs):
    c = KernelCounters()
    for key, value in kwargs.items():
        if key in c.warp_issues:
            c.warp_issues[key] = value
        else:
            setattr(c, key, value)
    return c


class TestCostBreakdown:
    def test_shares_sum_to_one(self):
        c = counters_with(fp64=100, int32=50, branch=10, branches_divergent=5)
        slices = cost_breakdown(c)
        assert sum(s.share for s in slices) == pytest.approx(1.0)

    def test_sorted_descending(self):
        c = counters_with(fp64=1000, int32=1)
        slices = cost_breakdown(c)
        assert [s.cycles for s in slices] == sorted(
            (s.cycles for s in slices), reverse=True
        )

    def test_divergence_and_conflicts_included(self):
        c = counters_with(
            fp64=10, branches_divergent=100, bank_conflict_extra_cycles=500
        )
        names = {s.name for s in cost_breakdown(c)}
        assert "divergence penalty" in names
        assert "bank conflicts" in names

    def test_empty_counters(self):
        assert cost_breakdown(KernelCounters()) == []
        assert "(no compute activity)" in format_cost_breakdown(KernelCounters())

    def test_format_has_bars(self):
        c = counters_with(fp64=100, int32=100)
        text = format_cost_breakdown(c, bar_width=10)
        assert "#" in text
        assert "fp64" in text and "int32" in text


class TestRenderTimeline:
    def _pipeline(self, overlapped):
        sched = StreamScheduler(overlapped=overlapped)
        return sched.run([0.002] * 4, bytes_in=500_000, bytes_out=500_000)

    def test_contains_all_rows(self):
        text = render_timeline(self._pipeline(True))
        for row in ("H2D", "KERN", "D2H"):
            assert row in text
        assert "span:" in text

    def test_slot_digits_present(self):
        text = render_timeline(self._pipeline(False))
        for digit in "0123":
            assert digit in text

    def test_max_slots_respected(self):
        sched = StreamScheduler(overlapped=True)
        result = sched.run([0.001] * 12, bytes_in=1000, bytes_out=1000)
        text = render_timeline(result, max_slots=3)
        assert "3" not in text.replace("span:", "").split("\n")[0]

    def test_overlap_shorter_span(self):
        serial = render_timeline(self._pipeline(False))
        overlap = render_timeline(self._pipeline(True))
        def span_of(text):
            return float(
                [line for line in text.splitlines()
                 if line.startswith("span")][0].split()[1]
            )

        assert span_of(overlap) < span_of(serial)
