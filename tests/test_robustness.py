"""Long-run stability, adversarial inputs, and tiled-configuration
property tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BackgroundSubtractor
from repro.config import RunConfig
from repro.mog import MoGVectorized
from repro.video.scenes import evaluation_scene


class TestLongRunStability:
    def test_state_invariants_over_200_frames(self, params):
        video = evaluation_scene(height=16, width=32, seed=13)
        mog = MoGVectorized((16, 32), params)
        for t in range(200):
            mask = mog.apply(video.frame(t))
        st_ = mog.state
        assert (st_.w >= 0.0).all() and (st_.w <= 1.0).all()
        assert np.isfinite(st_.m).all() and np.isfinite(st_.sd).all()
        assert (st_.sd >= min(params.sd_floor, params.initial_sd)).all()
        # Converged: the steady scene is mostly background.
        assert mask.mean() < 0.2

    def test_sim_backend_long_run_matches_cpu(self, params):
        video = evaluation_scene(height=12, width=32, seed=13)
        frames = [video.frame(t) for t in range(60)]
        sim = BackgroundSubtractor((12, 32), params, level="F")
        cpu = BackgroundSubtractor((12, 32), params, level="F", backend="cpu")
        a, _ = sim.process(frames)
        b, _ = cpu.process(frames)
        assert np.array_equal(a, b)


class TestAdversarialInputs:
    def test_all_black_then_all_white(self, params):
        mog = MoGVectorized((8, 8), params)
        black = np.zeros((8, 8), dtype=np.uint8)
        white = np.full((8, 8), 255, dtype=np.uint8)
        for _ in range(5):
            mog.apply(black)
        assert mog.apply(white).all()
        for _ in range(60):
            last = mog.apply(white)
        assert not last.any()
        assert np.isfinite(mog.state.sd).all()

    def test_alternating_extremes_stay_finite(self, params):
        mog = MoGVectorized((8, 8), params)
        for t in range(80):
            v = 0 if t % 2 == 0 else 255
            mog.apply(np.full((8, 8), v, dtype=np.uint8))
        assert np.isfinite(mog.state.w).all()
        assert np.isfinite(mog.state.m).all()
        assert (mog.state.sd > 0).all()

    def test_uniform_random_noise_input(self, params):
        """Pure noise (no stable background at all): nothing blows up
        and the model keeps producing valid masks."""
        rng = np.random.default_rng(3)
        mog = MoGVectorized((8, 8), params)
        for _ in range(50):
            frame = rng.integers(0, 256, (8, 8), dtype=np.uint8)
            mask = mog.apply(frame)
        assert mask.dtype == np.bool_
        assert np.isfinite(mog.state.sd).all()

    def test_single_pixel_frame(self, params):
        mog = MoGVectorized((1, 1), params)
        for _ in range(5):
            mask = mog.apply(np.array([[128]], dtype=np.uint8))
        assert mask.shape == (1, 1) and not mask[0, 0]


class TestTiledConfigurations:
    @given(
        tile=st.sampled_from([32, 64, 96, 160, 256]),
        group=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_tile_group_matches_cpu(self, tile, group):
        from repro.config import MoGParams

        params = MoGParams(learning_rate=0.08, initial_sd=8.0)
        shape = (10, 32)  # 320 px: exercises partial tiles for most sizes
        video = evaluation_scene(height=shape[0], width=shape[1])
        frames = [video.frame(t) for t in range(group + 2)]
        rc = RunConfig(
            height=shape[0], width=shape[1],
            tile_pixels=tile, frame_group=group,
        )
        sim = BackgroundSubtractor(shape, params, level="G", run_config=rc)
        cpu = BackgroundSubtractor(shape, params, level="G", backend="cpu")
        a, _ = sim.process(frames)
        b, _ = cpu.process(frames)
        assert np.array_equal(a, b)
