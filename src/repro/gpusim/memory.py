"""Simulated GPU global memory and the coalescing model.

Buffers live in one flat byte-address space. When a warp executes a
load or store, the engine maps each active lane's element index to a
byte address and counts the *distinct 128-byte segments* touched — the
number of memory transactions Fermi issues for that warp's request.
Contiguous, aligned accesses by 32 lanes of a 4-byte type need 1
transaction; the paper's AoS layout (72-byte pixel stride for 3 double
Gaussians) needs 18, which is the whole story of Figure 6(a).
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryModelError

#: Alignment of buffer base addresses (matches cudaMalloc's 256 B).
BASE_ALIGNMENT = 256


class GlobalBuffer:
    """A device allocation: a NumPy array plus a base byte address."""

    __slots__ = ("name", "data", "base", "itemsize")

    def __init__(self, name: str, data: np.ndarray, base: int) -> None:
        self.name = name
        self.data = data
        self.base = base
        self.itemsize = data.dtype.itemsize

    @property
    def num_elements(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def addresses(self, index: np.ndarray) -> np.ndarray:
        """Byte address of each element index."""
        return self.base + index.astype(np.int64) * self.itemsize


class GlobalMemory:
    """The device's global-memory address space."""

    def __init__(self, transaction_bytes: int = 128) -> None:
        if transaction_bytes <= 0 or transaction_bytes & (transaction_bytes - 1):
            raise MemoryModelError(
                f"transaction size must be a power of two, got {transaction_bytes}"
            )
        self.transaction_bytes = transaction_bytes
        self._next_base = BASE_ALIGNMENT
        self._buffers: dict[str, GlobalBuffer] = {}

    def alloc(self, name: str, shape, dtype) -> GlobalBuffer:
        """Allocate a named buffer (zero-initialised)."""
        if name in self._buffers:
            raise MemoryModelError(f"buffer {name!r} already allocated")
        data = np.zeros(shape, dtype=dtype).reshape(-1)
        if data.size == 0:
            # A zero-sized buffer has no addressable elements: any
            # subsequent addresses()/load/store would index out of
            # bounds silently. cudaMalloc(0) likewise returns no usable
            # allocation.
            raise MemoryModelError(
                f"cannot allocate zero-sized buffer {name!r} (shape {shape!r})"
            )
        buf = GlobalBuffer(name, data, self._next_base)
        self._next_base += -(-data.nbytes // BASE_ALIGNMENT) * BASE_ALIGNMENT
        self._buffers[name] = buf
        return buf

    def alloc_like(self, name: str, array: np.ndarray) -> GlobalBuffer:
        """Allocate a buffer holding a copy of ``array`` (flattened) —
        the simulated equivalent of cudaMalloc + cudaMemcpy at setup."""
        buf = self.alloc(name, array.size, array.dtype)
        buf.data[:] = np.asarray(array).reshape(-1)
        return buf

    def free(self, name: str) -> None:
        """Release a named buffer (addresses are not recycled)."""
        if name not in self._buffers:
            raise MemoryModelError(f"buffer {name!r} not allocated")
        del self._buffers[name]

    def get(self, name: str) -> GlobalBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryModelError(f"buffer {name!r} not allocated") from None

    def buffers(self) -> list[GlobalBuffer]:
        """All live allocations, in allocation order — the enumeration
        hook used by fault injection and debugging tools."""
        return list(self._buffers.values())

    @property
    def bytes_allocated(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


def count_transactions(
    addresses: np.ndarray,
    active: np.ndarray,
    warp_size: int,
    transaction_bytes: int,
) -> int:
    """Transactions for one memory access by a whole grid.

    ``addresses`` and ``active`` are per-thread arrays whose length is a
    multiple of ``warp_size`` (the grid is padded). For each warp, the
    number of distinct ``transaction_bytes``-sized segments addressed by
    its active lanes is counted; inactive lanes contribute nothing.
    """
    if addresses.shape != active.shape:
        raise MemoryModelError("addresses and active mask must align")
    n = addresses.size
    if n % warp_size:
        raise MemoryModelError(
            f"grid of {n} threads is not a multiple of warp size {warp_size}"
        )
    if n and active.all():
        stride = _affine_stride(addresses)
        if stride is not None:
            return _affine_transactions(
                addresses, warp_size, transaction_bytes, stride
            )
    return int(_distinct_mask(
        addresses, active, warp_size, transaction_bytes
    )[1].sum())


def _affine_stride(addresses: np.ndarray) -> int | None:
    """The constant stride if ``addresses`` is an arithmetic sequence
    over the whole grid (``addr[i] = addr[0] + i * stride``), else
    ``None``. One vectorized comparison — much cheaper than the
    per-warp sort it replaces."""
    if addresses.size < 2:
        return 0
    stride = int(addresses[1]) - int(addresses[0])
    expected = int(addresses[0]) + stride * np.arange(
        addresses.size, dtype=np.int64
    )
    return stride if np.array_equal(addresses, expected) else None


def _affine_transactions(
    addresses: np.ndarray,
    warp_size: int,
    transaction_bytes: int,
    stride: int,
) -> int:
    """Exact transaction count for an all-active affine access, in
    O(warps) without sorting.

    Within a warp the segment sequence is monotone: with
    ``|stride| <= transaction_bytes`` consecutive lanes advance by at
    most one segment, so the distinct segments are exactly the
    contiguous range between the first and last lane's segment; with a
    larger stride every lane lands in its own segment.
    """
    num_warps = addresses.size // warp_size
    if abs(stride) > transaction_bytes:
        return num_warps * warp_size
    shift = int(transaction_bytes).bit_length() - 1
    first = addresses[::warp_size] >> shift
    last = addresses[warp_size - 1 :: warp_size] >> shift
    return int(np.abs(last - first).sum()) + num_warps


def _distinct_mask(
    addresses: np.ndarray,
    active: np.ndarray,
    warp_size: int,
    transaction_bytes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per warp, the sorted segment matrix and a mask of its distinct
    real entries. Returns ``(segments, distinct)`` of shape
    ``(num_warps, warp_size)``; inactive lanes carry a -1 sentinel and
    are never marked distinct."""
    shift = int(transaction_bytes).bit_length() - 1
    segments = (addresses >> shift).reshape(-1, warp_size)
    lanes = active.reshape(-1, warp_size)
    if lanes.all():
        # All lanes real: the -1 sentinel is not needed, and when every
        # warp's segments are already non-decreasing (any non-negative
        # constant-stride access) the sort is the identity — skip it.
        if segments.size and not (segments[:, 1:] >= segments[:, :-1]).all():
            segments = np.sort(segments, axis=1)
    else:
        segments = np.where(lanes, segments, np.int64(-1))
        segments = np.sort(segments, axis=1)
    distinct = np.ones_like(segments, dtype=bool)
    distinct[:, 1:] = segments[:, 1:] != segments[:, :-1]
    distinct &= segments >= 0
    return segments, distinct


def count_transactions_with_l1(
    addresses: np.ndarray,
    active: np.ndarray,
    warp_size: int,
    transaction_bytes: int,
    window: np.ndarray,
) -> tuple[int, int]:
    """Transactions for one *load* with a per-warp L1 reuse window.

    ``window`` is the ``(num_warps, W)`` array of recently loaded
    segments per warp (-1 = empty), updated in place most-recent-first.
    Returns ``(dram_transactions, l1_hits)``. Distinct segments already
    in the warp's window are L1 hits; the rest are DRAM transactions.
    """
    if addresses.shape != active.shape:
        raise MemoryModelError("addresses and active mask must align")
    if addresses.size % warp_size:
        raise MemoryModelError(
            f"grid of {addresses.size} threads is not a multiple of warp "
            f"size {warp_size}"
        )
    segments, distinct = _distinct_mask(
        addresses, active, warp_size, transaction_bytes
    )
    if window.shape[0] != segments.shape[0]:
        raise MemoryModelError(
            f"window has {window.shape[0]} warps, grid has {segments.shape[0]}"
        )
    # Membership test against the warp's window.
    hit = (segments[:, :, None] == window[:, None, :]).any(axis=2) & distinct
    misses = distinct & ~hit
    tx = int(misses.sum())
    hits = int(hit.sum())

    # Update the window: this access's distinct segments move to the
    # front (most recent), older entries shift out. Duplicated entries
    # waste a slot — an acceptable LRU approximation.
    num_warps, cap = window.shape
    combined = np.concatenate(
        [np.where(distinct, segments, np.int64(-1)), window], axis=1
    )
    valid = combined >= 0
    pos = np.cumsum(valid, axis=1) - 1
    take = valid & (pos < cap)
    rows = np.broadcast_to(
        np.arange(num_warps)[:, None], combined.shape
    )[take]
    window[:] = -1
    window[rows, pos[take]] = combined[take]
    return tx, hits
