"""The functional execution tier: exact masks, no accounting.

:class:`FunctionalContext` subclasses the profiled
:class:`~repro.gpusim.dsl.KernelContext` and preserves its SIMT mask
semantics exactly — the active-mask stack, predicated ``MutVar.set``
merging, NaN-poisoned inactive lanes — while skipping everything that
exists only to *measure* a launch: issue counters, divergence
accounting, register-liveness tracking, the coalescing/L1 model and
bank-conflict detection. Three mechanisms make it fast:

* a dtype-keyed :class:`ScratchPool` of grid-sized arrays, so the
  thousands of short-lived per-op temporaries reuse freed buffers
  instead of round-tripping through the allocator every operation;
* uniform-flow fast paths — while the active mask is all-true (the
  common case outside ``if_`` bodies) the predicated-merge
  ``np.where``, the NaN poisoning of inactive lanes, and the masked
  gather/scatter index fix-ups all reduce to straight copies;
* result-dtype memoisation per ``(ufunc, input dtypes)``, so pooled
  outputs can be handed to ufuncs as ``out=`` without changing any
  value or dtype versus the natural allocation.

Exactness contract: a kernel run under this context writes bit-for-bit
the same buffer contents as under the profiled context (tests compare
every optimization level A–G). Counters on a functional launch stay
zero and the engine marks its :class:`~repro.gpusim.engine.LaunchResult`
``profiled=False``.

Scratch recycling is safe because every array a :class:`Vec` owns is
created fresh by the context (ufunc output, gather copy, merge result)
and never aliased into a second ``Vec``; when the last reference to a
``Vec`` drops, its array goes back to the pool.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

import numpy as np

from ..errors import KernelDivergenceError, MemoryModelError
from .dsl import KernelContext, Vec
from .memory import GlobalBuffer

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SimtEngine

#: ``(ufunc, input dtypes) -> output dtype``, learned from the first
#: un-pooled execution of each signature. A module-level cache: the
#: mapping is a property of NumPy itself, not of any one launch.
_RESULT_DTYPES: dict[tuple, np.dtype] = {}


class ScratchPool:
    """A free-list of scratch arrays keyed by ``(dtype, size)``.

    Grid-sized temporaries dominate the functional tier's allocation
    traffic; recycling them across ops (and across launches — the pool
    lives on the engine) removes the allocator from the hot loop.
    """

    def __init__(self, max_arrays_per_key: int = 64) -> None:
        self.max_arrays_per_key = max_arrays_per_key
        self._free: dict[tuple[np.dtype, int], list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def acquire(self, dtype: np.dtype, size: int) -> np.ndarray:
        stack = self._free.get((dtype, size))
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return np.empty(size, dtype=dtype)

    def release(self, arr: np.ndarray) -> None:
        stack = self._free.setdefault((arr.dtype, arr.size), [])
        if len(stack) < self.max_arrays_per_key:
            stack.append(arr)

    @property
    def pooled_arrays(self) -> int:
        """Arrays currently sitting in the free-list."""
        return sum(len(s) for s in self._free.values())


class FunctionalContext(KernelContext):
    """Kernel context that computes exact results and measures nothing."""

    def __init__(
        self,
        engine: "SimtEngine",
        grid_threads: int,
        threads_per_block: int,
        num_blocks: int,
    ) -> None:
        self._pool = engine.scratch_pool
        super().__init__(engine, grid_threads, threads_per_block, num_blocks)

    # ------------------------------------------------------------------
    # Accounting switched off
    # ------------------------------------------------------------------
    def _refresh_mask_cache(self) -> None:
        # Only the uniformity flag is needed; warp/lane activity counts
        # exist purely for the counters this tier does not keep.
        self._uniform = bool(self._mask.all())
        self._warps_active = 0
        self._lanes_active = 0

    def _count_issue(self, klass: str, times: int = 1) -> None:
        pass

    def _on_vec_created(self, vec: Vec) -> None:
        self._live_vecs.add(vec)

    def _on_vec_released(self, vec: Vec) -> None:
        val = vec.val
        if val.shape == (self.padded_threads,):
            self._pool.release(val)

    # ------------------------------------------------------------------
    # Pooled arithmetic
    # ------------------------------------------------------------------
    def _binary(self, a, b, ufunc, sfu=False, result_class=None) -> Vec:
        av = self._coerce(a)
        bv = self._coerce(b)
        key = (ufunc, av.dtype, bv.dtype)
        dt = _RESULT_DTYPES.get(key)
        if dt is None:
            with np.errstate(all="ignore"):
                out = ufunc(av, bv)
            _RESULT_DTYPES[key] = out.dtype
        else:
            out = self._pool.acquire(dt, self.padded_threads)
            with np.errstate(all="ignore"):
                ufunc(av, bv, out=out)
        return Vec(self, out)

    def _unary(self, a, ufunc, sfu=False, result_class=None) -> Vec:
        av = self._coerce(a)
        key = (ufunc, av.dtype)
        dt = _RESULT_DTYPES.get(key)
        if dt is None:
            with np.errstate(all="ignore"):
                out = ufunc(av)
            _RESULT_DTYPES[key] = out.dtype
        else:
            out = self._pool.acquire(dt, self.padded_threads)
            with np.errstate(all="ignore"):
                ufunc(av, out=out)
        return Vec(self, out)

    def select(self, cond, a, b) -> Vec:
        cv = self._coerce(cond)
        if cv.dtype != np.bool_:
            cv = cv.astype(bool)
        out = np.where(cv, self._coerce(a), self._coerce(b))
        return Vec(self, out)

    def _masked_assign(self, old: Vec, new: np.ndarray) -> Vec:
        if self._uniform:
            # All lanes active: the predicated merge is a plain copy
            # (with the same unsafe cast astype() would apply).
            out = self._pool.acquire(old.dtype, self.padded_threads)
            np.copyto(out, new, casting="unsafe")
            return Vec(self, out)
        merged = np.where(self._mask, new, old.val).astype(old.dtype)
        return Vec(self, merged)

    # ------------------------------------------------------------------
    # Control flow without divergence accounting
    # ------------------------------------------------------------------
    @contextmanager
    def if_(self, cond):
        cv = self._coerce(cond)
        if cv.dtype != np.bool_:
            cv = cv.astype(bool)
        parent = self._mask
        depth = self.depth
        self._push_mask(parent & cv)
        try:
            yield
        finally:
            self._pop_mask()
            self._pending_else[depth] = parent & ~cv

    def loop(self, iterations: int):
        if iterations < 0:
            raise KernelDivergenceError(
                f"loop iterations must be non-negative, got {iterations}"
            )
        return range(iterations)

    # ------------------------------------------------------------------
    # Memory without the coalescing / L1 / bank-conflict models
    # ------------------------------------------------------------------
    def _bounds_check(self, buf: GlobalBuffer, idx: np.ndarray) -> None:
        active_idx = idx if self._uniform else idx[self._mask]
        if active_idx.size == 0:
            return
        lo = active_idx.min()
        hi = active_idx.max()
        if lo < 0 or hi >= buf.num_elements:
            raise MemoryModelError(
                f"out-of-bounds access to buffer {buf.name!r}: indices in "
                f"[{lo}, {hi}], buffer has {buf.num_elements} elements"
            )

    def load(self, buf: GlobalBuffer, index) -> Vec:
        idx = self._coerce(index)
        if idx.dtype != np.int64:
            idx = idx.astype(np.int64)
        self._bounds_check(buf, idx)
        if self._uniform:
            out = self._pool.acquire(buf.data.dtype, self.padded_threads)
            np.take(buf.data, idx, out=out)
            return Vec(self, out)
        safe = np.where(self._mask, idx, 0)
        values = buf.data[safe]
        if values.dtype.kind == "f":
            values = np.where(self._mask, values, np.nan)
        return Vec(self, values)

    def store(self, buf: GlobalBuffer, index, value) -> None:
        idx = self._coerce(index)
        if idx.dtype != np.int64:
            idx = idx.astype(np.int64)
        self._bounds_check(buf, idx)
        val = self._coerce(value)
        if self._uniform:
            buf.data[idx] = val
            return
        safe = np.where(self._mask, idx, 0)
        cols = safe[self._mask]
        buf.data[cols] = np.asarray(val, dtype=buf.data.dtype)[self._mask]

    def shared_load(self, buf, local_index) -> Vec:
        idx = self._coerce(local_index)
        if idx.dtype != np.int64:
            idx = idx.astype(np.int64)
        values = buf.gather(self._block_values, idx, self._mask)
        if not self._uniform and values.dtype.kind == "f":
            values = np.where(self._mask, values, np.nan)
        return Vec(self, values)

    def shared_store(self, buf, local_index, value) -> None:
        idx = self._coerce(local_index)
        if idx.dtype != np.int64:
            idx = idx.astype(np.int64)
        buf.scatter(
            self._block_values, idx, np.asarray(self._coerce(value)), self._mask
        )

    def _account_shared(self, buf, idx) -> None:  # pragma: no cover
        pass
