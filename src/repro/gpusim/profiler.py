"""Profiler facade: per-launch reports in Visual-Profiler style.

The paper reads its architectural numbers off the Nvidia Visual
Profiler; :class:`Profiler` plays that role here, combining a launch's
measured counters with the occupancy calculation and the timing model
into one :class:`LaunchReport`, and formatting collections of reports
as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import DEFAULT_CALIBRATION, Calibration
from .counters import KernelCounters
from .device import TESLA_C2075, DeviceSpec
from .engine import LaunchResult
from .occupancy import OccupancyResult, occupancy
from .timing import KernelTiming, TimingModel


@dataclass(frozen=True)
class LaunchReport:
    """One kernel launch, fully characterised."""

    name: str
    counters: KernelCounters
    occupancy: OccupancyResult
    registers_per_thread: int
    timing: KernelTiming

    @property
    def time(self) -> float:
        return self.timing.total

    def metrics(self) -> dict[str, float]:
        """The profiler metrics the paper plots."""
        c = self.counters
        return {
            "branches": float(c.branches_total),
            "branch_efficiency": c.branch_efficiency,
            "memory_access_efficiency": c.memory_access_efficiency,
            "load_transactions": float(c.load_transactions),
            "store_transactions": float(c.store_transactions),
            "transactions": float(c.transactions),
            "registers_per_thread": float(self.registers_per_thread),
            "occupancy": self.occupancy.occupancy,
            "time_s": self.timing.total,
        }


class Profiler:
    """Builds :class:`LaunchReport` objects from raw launch results."""

    def __init__(
        self,
        device: DeviceSpec = TESLA_C2075,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.device = device
        self.timing_model = TimingModel(device, calibration)

    def report(
        self,
        launch: LaunchResult,
        registers_per_thread: int | None = None,
    ) -> LaunchReport:
        """Characterise a launch.

        ``registers_per_thread`` defaults to the engine's live-value
        estimate; MoG experiments pass the pinned per-level values
        (:func:`repro.gpusim.registers.pinned_registers`).
        """
        regs = (
            registers_per_thread
            if registers_per_thread is not None
            else launch.estimated_registers
        )
        occ = occupancy(
            self.device,
            launch.threads_per_block,
            regs,
            launch.shared_bytes_per_block,
        )
        timing = self.timing_model.kernel_timing(launch.counters, occ)
        return LaunchReport(
            name=launch.name,
            counters=launch.counters,
            occupancy=occ,
            registers_per_thread=regs,
            timing=timing,
        )


def format_reports(reports: list[LaunchReport]) -> str:
    """Text table over launches: the profiler's summary view."""
    headers = [
        "kernel", "time(ms)", "bound", "mem_eff", "br_eff",
        "ld_tx", "st_tx", "regs", "occ",
    ]
    rows = []
    for r in reports:
        rows.append(
            [
                r.name,
                f"{r.timing.total * 1e3:.3f}",
                r.timing.bound_by,
                f"{r.counters.memory_access_efficiency * 100:.1f}%",
                f"{r.counters.branch_efficiency * 100:.1f}%",
                str(r.counters.load_transactions),
                str(r.counters.store_transactions),
                str(r.registers_per_thread),
                f"{r.occupancy.occupancy * 100:.0f}%",
            ]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
