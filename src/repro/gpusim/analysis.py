"""Post-hoc analysis of launches and pipeline schedules.

Two views the raw counters don't give directly:

* :func:`cost_breakdown` — where a kernel's modelled cycles go
  (instruction classes, divergence, bank conflicts) and how the
  compute/memory bounds compare — the "why is this level this fast"
  view behind the paper's per-optimization narrative;
* :func:`render_timeline` — an ASCII Gantt chart of a
  :class:`~repro.gpusim.dma.PipelineResult`, the living version of the
  paper's Figure 5 (serial vs overlapped transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import DEFAULT_CALIBRATION, Calibration
from .counters import KernelCounters
from .dma import PipelineResult


@dataclass(frozen=True)
class CostSlice:
    """One contributor to a kernel's compute cycles."""

    name: str
    cycles: float
    share: float  # of total compute cycles


def cost_breakdown(
    counters: KernelCounters,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> list[CostSlice]:
    """Attribute modelled compute cycles to their sources, largest first.

    Covers the per-class issue costs plus the divergence penalty and
    bank-conflict serialisation (the compute-scale factor and
    occupancy starvation multiply everything equally, so they do not
    change shares and are left out).
    """
    slices: list[tuple[str, float]] = [
        (klass, count * calibration.issue_cost(klass))
        for klass, count in counters.warp_issues.items()
        if count
    ]
    if counters.branches_divergent:
        slices.append(
            (
                "divergence penalty",
                counters.branches_divergent
                * calibration.divergence_penalty_cycles,
            )
        )
    if counters.bank_conflict_extra_cycles:
        slices.append(
            ("bank conflicts", float(counters.bank_conflict_extra_cycles))
        )
    total = sum(c for _, c in slices)
    if total == 0.0:
        return []
    out = [CostSlice(name, cycles, cycles / total) for name, cycles in slices]
    out.sort(key=lambda s: s.cycles, reverse=True)
    return out


def format_cost_breakdown(
    counters: KernelCounters,
    calibration: Calibration = DEFAULT_CALIBRATION,
    bar_width: int = 40,
) -> str:
    """Text rendering of :func:`cost_breakdown` with proportional bars."""
    slices = cost_breakdown(counters, calibration)
    if not slices:
        return "(no compute activity)"
    name_w = max(len(s.name) for s in slices)
    lines = []
    for s in slices:
        bar = "#" * max(1, round(s.share * bar_width))
        lines.append(f"{s.name.ljust(name_w)}  {s.share * 100:5.1f}%  {bar}")
    return "\n".join(lines)


def render_timeline(
    result: PipelineResult,
    max_slots: int = 6,
    width: int = 64,
) -> str:
    """ASCII Gantt chart of the first ``max_slots`` pipeline slots.

    Three rows per run — host->device copies, kernels, device->host
    copies — with each slot labelled by its index, e.g.::

        H2D  |000|111|222|
        KERN     |000000|111111|222222|
        D2H             |000|   |111|

    Overlap (level C+) shows as copies sitting under the previous
    kernel; serial mode (levels A/B) shows strict staircases.
    """
    slots = result.frames[:max_slots]
    if not slots:
        return "(empty pipeline)"
    t_end = slots[-1].copy_out_end
    t0 = slots[0].copy_in_start
    span = max(t_end - t0, 1e-12)

    def col(t: float) -> int:
        return round((t - t0) / span * (width - 1))

    rows = {"H2D ": [" "] * width, "KERN": [" "] * width, "D2H ": [" "] * width}
    phases = [
        ("H2D ", lambda f: (f.copy_in_start, f.copy_in_end)),
        ("KERN", lambda f: (f.kernel_start, f.kernel_end)),
        ("D2H ", lambda f: (f.copy_out_start, f.copy_out_end)),
    ]
    for i, frame in enumerate(slots):
        glyph = str(i % 10)
        for row, phase in phases:
            a, b = phase(frame)
            ca, cb = col(a), max(col(b), col(a) + 1)
            for c in range(ca, min(cb, width)):
                rows[row][c] = glyph
    lines = [f"{name} |{''.join(cells)}|" for name, cells in rows.items()]
    lines.append(
        f"span: {span * 1e3:.2f} ms over {len(slots)} slots "
        f"(kernel util {result.kernel_utilisation * 100:.0f}%, "
        f"copy util {result.copy_utilisation * 100:.0f}%)"
    )
    return "\n".join(lines)
