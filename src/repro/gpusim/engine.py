"""The SIMT execution engine: launches kernels, collects results.

One :class:`SimtEngine` owns a device spec and its global memory.
:meth:`SimtEngine.launch` runs a DSL kernel over a grid and returns a
:class:`LaunchResult` bundling the functional side effects (buffer
contents) with the measured counters, the register-pressure estimate
and the launch geometry — everything the profiler and timing model
need.

Execution is two-tier: a *profiled* launch runs under the full
:class:`~repro.gpusim.dsl.KernelContext` (counters, divergence,
coalescing/L1, register liveness), a *functional* launch under the
lightweight :class:`~repro.gpusim.functional.FunctionalContext` (exact
buffer contents, no accounting, pooled scratch arrays). The
``profile_every`` knob samples: launch ``i`` is profiled iff
``i % profile_every == 0``; a per-launch ``profile=`` argument
overrides the sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import LaunchError
from .counters import KernelCounters
from .device import TESLA_C2075, DeviceSpec
from .dsl import KernelContext
from .functional import FunctionalContext, ScratchPool
from .memory import GlobalMemory


@dataclass(frozen=True)
class LaunchResult:
    """Everything measured about one kernel launch.

    ``profiled=False`` marks a functional-tier launch: the buffer side
    effects are exact, but ``counters`` is all-zero and
    ``estimated_registers`` is 0 — nothing was measured.
    """

    name: str
    counters: KernelCounters
    grid_threads: int
    threads_per_block: int
    num_blocks: int
    shared_bytes_per_block: int
    estimated_registers: int
    profiled: bool = True

    @property
    def num_warps(self) -> int:
        ws = 32
        return self.num_blocks * (-(-self.threads_per_block // ws))


class SimtEngine:
    """Simulated GPU: device + global memory + kernel launcher.

    ``profile_every=N`` profiles every Nth launch (the first launch is
    always profiled) and runs the rest on the functional tier.
    """

    def __init__(
        self,
        device: DeviceSpec = TESLA_C2075,
        profile_every: int = 1,
        fault_injector=None,
    ) -> None:
        if profile_every < 1:
            raise LaunchError(
                f"profile_every must be >= 1, got {profile_every}"
            )
        self.device = device
        self.profile_every = profile_every
        self.memory = GlobalMemory(device.transaction_bytes)
        self.launches: list[LaunchResult] = []
        self.scratch_pool = ScratchPool()
        self._launch_index = 0
        # Optional repro.faults.FaultInjector: fires against global
        # memory right before a launch executes (soft errors land while
        # the state sits in DRAM between kernels, which is where a
        # long-running model spends almost all of its life).
        self.fault_injector = fault_injector

    def _fresh_counters(self) -> KernelCounters:
        return KernelCounters(transaction_bytes=self.device.transaction_bytes)

    def launch(
        self,
        kernel: Callable,
        grid_threads: int,
        threads_per_block: int,
        args: tuple = (),
        name: str | None = None,
        profile: bool | None = None,
    ) -> LaunchResult:
        """Execute ``kernel(ctx, *args)`` over ``grid_threads`` threads.

        The grid is padded to whole blocks; padding threads are masked
        inactive from the start (they execute nothing and access
        nothing), matching the standard ``if (tid < n)`` CUDA idiom
        without charging for it.

        ``profile`` forces the tier for this launch; ``None`` (default)
        follows the engine's ``profile_every`` sampler.
        """
        if grid_threads <= 0:
            raise LaunchError(f"grid must be positive, got {grid_threads}")
        if threads_per_block <= 0 or threads_per_block % self.device.warp_size:
            raise LaunchError(
                "threads_per_block must be a positive multiple of "
                f"{self.device.warp_size}, got {threads_per_block}"
            )
        if threads_per_block > self.device.max_threads_per_block:
            raise LaunchError(
                f"threads_per_block {threads_per_block} exceeds device "
                f"limit {self.device.max_threads_per_block}"
            )
        if profile is None:
            profile = self._launch_index % self.profile_every == 0
        if self.fault_injector is not None:
            self.fault_injector.on_launch(self.memory, self._launch_index)
        self._launch_index += 1
        num_blocks = -(-grid_threads // threads_per_block)
        ctx_class = KernelContext if profile else FunctionalContext
        ctx = ctx_class(self, grid_threads, threads_per_block, num_blocks)
        with np.errstate(all="ignore"):
            kernel(ctx, *args)
        ctx.finalize()
        result = LaunchResult(
            name=name or getattr(kernel, "__name__", "kernel"),
            counters=ctx.counters,
            grid_threads=grid_threads,
            threads_per_block=threads_per_block,
            num_blocks=num_blocks,
            shared_bytes_per_block=ctx.shared_bytes_per_block,
            estimated_registers=ctx.peak_registers,
            profiled=profile,
        )
        self.launches.append(result)
        return result
