"""Kernel DSL: write CUDA-like kernels in Python, executed vectorized.

A kernel is a Python function ``kernel(ctx, *args)`` operating on
:class:`Vec` values — per-thread scalars materialised as NumPy arrays
over the whole grid. The :class:`KernelContext` tracks an active-mask
stack (SIMT divergence), charges every operation to warp-granular issue
counters, models global-memory coalescing per warp, and estimates
register pressure from live values.

Control flow::

    with ctx.if_(cond):          # divergence is recorded per warp
        v.set(expr)              # MutVar writes commit only on active lanes
    with ctx.else_():
        ...

Assignments under divergent control flow must go through
:meth:`KernelContext.var` / :meth:`MutVar.set`; plain Python rebinding
of a :class:`Vec` would clobber inactive lanes. Plain rebinding is fine
at top level (uniform flow).

Loops with uniform trip counts are plain Python ``for`` loops (they are
unrolled, exactly like ``#pragma unroll`` on a small constant bound).
Early exit is expressed with a ``done`` flag and ``if_(~done)`` — the
idiomatic CUDA pattern, and precisely the divergence source the paper's
level-D optimization removes.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING, Union

import numpy as np

from ..errors import KernelDivergenceError, MemoryModelError
from .memory import GlobalBuffer, count_transactions, count_transactions_with_l1
from .sharedmem import SharedBuffer, bank_conflict_extra_cycles

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SimtEngine

Scalar = Union[int, float, bool, np.generic]
Operand = Union["Vec", "MutVar", Scalar]


def _issue_class(dtype: np.dtype, sfu: bool) -> str:
    if dtype == np.float64:
        return "sfu64" if sfu else "fp64"
    if dtype == np.float32:
        return "sfu32" if sfu else "fp32"
    # bool / integer
    return "sfu32" if sfu else "int32"


def _register_slots(dtype: np.dtype) -> int:
    """32-bit register slots a live value of this dtype occupies.

    Doubles take two registers; everything else (including our int64
    index values, which stand in for Fermi's 32-bit addresses) takes
    one.
    """
    return 2 if dtype == np.float64 else 1


class Vec:
    """An immutable per-thread value (one virtual register)."""

    __slots__ = ("ctx", "val", "_slots", "_released", "__weakref__")

    def __init__(self, ctx: "KernelContext", val: np.ndarray) -> None:
        self.ctx = ctx
        self.val = val
        self._slots = _register_slots(val.dtype)
        self._released = False
        ctx._on_vec_created(self)

    def _release(self) -> None:
        """Hand the value back to the owning context, exactly once.

        Called from ``__del__`` (immediate on refcounting interpreters)
        and from :meth:`KernelContext.finalize` for anything still
        alive at kernel end, so register accounting and scratch-buffer
        recycling do not depend on GC timing.
        """
        if getattr(self, "_released", True):
            return
        self._released = True
        ctx = getattr(self, "ctx", None)
        if ctx is not None:
            ctx._on_vec_released(self)

    def __del__(self) -> None:
        self._release()

    @property
    def dtype(self) -> np.dtype:
        return self.val.dtype

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.add)

    def __radd__(self, other: Operand) -> "Vec":
        return self.ctx._binary(other, self, np.add)

    def __sub__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.subtract)

    def __rsub__(self, other: Operand) -> "Vec":
        return self.ctx._binary(other, self, np.subtract)

    def __mul__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.multiply)

    def __rmul__(self, other: Operand) -> "Vec":
        return self.ctx._binary(other, self, np.multiply)

    def __truediv__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.divide, sfu=True)

    def __rtruediv__(self, other: Operand) -> "Vec":
        return self.ctx._binary(other, self, np.divide, sfu=True)

    def __floordiv__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.floor_divide, sfu=True)

    def __mod__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.mod, sfu=True)

    def __neg__(self) -> "Vec":
        return self.ctx._unary(self, np.negative)

    def __abs__(self) -> "Vec":
        return self.ctx._unary(self, np.abs)

    # -- comparisons (produce predicate Vecs) ---------------------------
    def __lt__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.less, result_class="int32")

    def __le__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.less_equal, result_class="int32")

    def __gt__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.greater, result_class="int32")

    def __ge__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.greater_equal, result_class="int32")

    def eq(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.equal, result_class="int32")

    def ne(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.not_equal, result_class="int32")

    # -- logical (predicate registers) ----------------------------------
    def __and__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.logical_and, result_class="int32")

    def __or__(self, other: Operand) -> "Vec":
        return self.ctx._binary(self, other, np.logical_or, result_class="int32")

    def __invert__(self) -> "Vec":
        return self.ctx._unary(self, np.logical_not, result_class="int32")

    def astype(self, dtype) -> "Vec":
        """Type conversion (counts a cvt instruction)."""
        dt = np.dtype(dtype)
        self.ctx._count_issue("cvt")
        return Vec(self.ctx, self.val.astype(dt))


class MutVar:
    """A mutable per-thread variable with predicated writes.

    ``set`` only commits lanes active under the current mask — the
    source-level equivalent of a predicated move, and the only correct
    way to assign inside ``if_``/``else_`` bodies.
    """

    __slots__ = ("ctx", "_vec")

    def __init__(self, ctx: "KernelContext", init: Vec) -> None:
        self.ctx = ctx
        self._vec = init

    @property
    def val(self) -> np.ndarray:
        return self._vec.val

    @property
    def dtype(self) -> np.dtype:
        return self._vec.dtype

    def get(self) -> Vec:
        return self._vec

    def set(self, value: Operand) -> None:
        new = self.ctx._coerce(value, like=self._vec)
        self._vec = self.ctx._masked_assign(self._vec, new)

    # Allow MutVar to appear directly in expressions.
    def __add__(self, o): return self.get() + o
    def __radd__(self, o): return self.ctx._binary(o, self.get(), np.add)
    def __sub__(self, o): return self.get() - o
    def __rsub__(self, o): return self.ctx._binary(o, self.get(), np.subtract)
    def __mul__(self, o): return self.get() * o
    def __rmul__(self, o): return self.ctx._binary(o, self.get(), np.multiply)
    def __truediv__(self, o): return self.get() / o
    def __rtruediv__(self, o): return self.ctx._binary(o, self.get(), np.divide, sfu=True)
    def __abs__(self): return abs(self.get())
    def __neg__(self): return -self.get()
    def __lt__(self, o): return self.get() < o
    def __le__(self, o): return self.get() <= o
    def __gt__(self, o): return self.get() > o
    def __ge__(self, o): return self.get() >= o
    def __and__(self, o): return self.get() & o
    def __or__(self, o): return self.get() | o
    def __invert__(self): return ~self.get()
    def eq(self, o): return self.get().eq(o)
    def ne(self, o): return self.get().ne(o)


class KernelContext:
    """Execution context of one simulated kernel launch."""

    def __init__(
        self,
        engine: "SimtEngine",
        grid_threads: int,
        threads_per_block: int,
        num_blocks: int,
    ) -> None:
        self.engine = engine
        self.device = engine.device
        self.counters = engine._fresh_counters()
        self.grid_threads = grid_threads  # logical threads requested
        self.threads_per_block = threads_per_block
        self.num_blocks = num_blocks
        self.padded_threads = num_blocks * threads_per_block
        self.num_warps = self.padded_threads // self.device.warp_size

        base = np.arange(self.padded_threads, dtype=np.int64)
        self._tid_values = base
        self._block_values = base // threads_per_block
        self._lane_values = base % threads_per_block

        root_mask = base < grid_threads
        self._mask_stack: list[np.ndarray] = [root_mask]
        self._mask = root_mask
        self._warps_active = 0
        self._lanes_active = 0
        self._refresh_mask_cache()

        self._pending_else: dict[int, np.ndarray] = {}
        self._live_registers = 0
        self.peak_registers = 0
        # Values still alive (weakly referenced): finalize() releases
        # whatever GC has not collected yet, so register accounting is
        # deterministic on non-refcounting interpreters too.
        self._live_vecs: "weakref.WeakSet[Vec]" = weakref.WeakSet()
        self._shared_allocs: dict[str, SharedBuffer] = {}
        self.shared_bytes_per_block = 0
        # Per-warp L1 reuse window for loads (cold at launch).
        self._l1_window = np.full(
            (self.num_warps, max(self.device.l1_window_segments, 1)),
            -1, dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Mask management
    # ------------------------------------------------------------------
    def _refresh_mask_cache(self) -> None:
        per_warp = self._mask.reshape(self.num_warps, self.device.warp_size)
        self._warps_active = int(per_warp.any(axis=1).sum())
        self._lanes_active = int(self._mask.sum())

    def _push_mask(self, mask: np.ndarray) -> None:
        self._mask_stack.append(mask)
        self._mask = mask
        self._refresh_mask_cache()

    def _pop_mask(self) -> None:
        if len(self._mask_stack) <= 1:
            raise KernelDivergenceError("mask stack underflow (unbalanced if_)")
        self._mask_stack.pop()
        self._mask = self._mask_stack[-1]
        self._refresh_mask_cache()

    @property
    def depth(self) -> int:
        return len(self._mask_stack)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def _count_issue(self, klass: str, times: int = 1) -> None:
        self.counters.warp_issues[klass] += self._warps_active * times
        self.counters.thread_instructions += self._lanes_active * times

    def _acquire_registers(self, slots: int) -> None:
        self._live_registers += slots
        if self._live_registers > self.peak_registers:
            self.peak_registers = self._live_registers

    def _release_registers(self, slots: int) -> None:
        self._live_registers -= slots

    # -- value lifecycle (overridden by the functional tier) -----------
    def _on_vec_created(self, vec: "Vec") -> None:
        self._live_vecs.add(vec)
        self._acquire_registers(vec._slots)

    def _on_vec_released(self, vec: "Vec") -> None:
        self._release_registers(vec._slots)

    def _masked_assign(self, old: "Vec", new: np.ndarray) -> "Vec":
        """Predicated merge backing :meth:`MutVar.set`."""
        merged = np.where(self._mask, new, old.val).astype(old.dtype)
        self._count_issue(_issue_class(old.dtype, sfu=False))
        return Vec(self, merged)

    # ------------------------------------------------------------------
    # Value construction
    # ------------------------------------------------------------------
    def _coerce(self, value: Operand, like: Vec | None = None) -> np.ndarray:
        if isinstance(value, MutVar):
            value = value.get()
        if isinstance(value, Vec):
            return value.val
        dtype = like.dtype if like is not None else None
        if dtype is not None and not isinstance(value, np.generic):
            return np.full(self.padded_threads, value, dtype=dtype)
        return np.full(self.padded_threads, value)

    def thread_id(self) -> Vec:
        """Global thread index (``blockIdx.x * blockDim.x + threadIdx.x``)."""
        self._count_issue("int32")
        return Vec(self, self._tid_values.copy())

    def block_id(self) -> Vec:
        self._count_issue("int32")
        return Vec(self, self._block_values.copy())

    def lane_id(self) -> Vec:
        """Thread index within its block (``threadIdx.x``)."""
        self._count_issue("int32")
        return Vec(self, self._lane_values.copy())

    def full(self, value: Scalar, dtype) -> Vec:
        """A per-thread constant (one mov)."""
        dt = np.dtype(dtype)
        self._count_issue(_issue_class(dt, sfu=False))
        return Vec(self, np.full(self.padded_threads, value, dtype=dt))

    def var(self, init: Operand, dtype=None) -> MutVar:
        """Declare a mutable per-thread variable."""
        if isinstance(init, MutVar):
            init = init.get()
        if isinstance(init, Vec):
            vec = init if dtype is None else init.astype(dtype)
        else:
            vec = self.full(init, dtype if dtype is not None else np.float64)
        return MutVar(self, vec)

    # ------------------------------------------------------------------
    # Arithmetic plumbing
    # ------------------------------------------------------------------
    def _binary(
        self,
        a: Operand,
        b: Operand,
        ufunc,
        sfu: bool = False,
        result_class: str | None = None,
    ) -> Vec:
        av = self._coerce(a)
        bv = self._coerce(b)
        with np.errstate(all="ignore"):
            out = ufunc(av, bv)
        klass = result_class or _issue_class(np.asarray(out).dtype, sfu)
        self._count_issue(klass)
        return Vec(self, out)

    def _unary(self, a: Operand, ufunc, sfu: bool = False, result_class=None) -> Vec:
        av = self._coerce(a)
        with np.errstate(all="ignore"):
            out = ufunc(av)
        klass = result_class or _issue_class(np.asarray(out).dtype, sfu)
        self._count_issue(klass)
        return Vec(self, out)

    def sqrt(self, a: Operand) -> Vec:
        return self._unary(a, np.sqrt, sfu=True)

    def floor(self, a: Operand) -> Vec:
        return self._unary(a, np.floor)

    def minimum(self, a: Operand, b: Operand) -> Vec:
        return self._binary(a, b, np.minimum)

    def maximum(self, a: Operand, b: Operand) -> Vec:
        return self._binary(a, b, np.maximum)

    def select(self, cond: Operand, a: Operand, b: Operand) -> Vec:
        """Predicated select ``cond ? a : b`` (single instruction, no
        divergence — what the compiler emits for short conditionals)."""
        cv = self._coerce(cond).astype(bool)
        av = self._coerce(a)
        bv = self._coerce(b)
        out = np.where(cv, av, bv)
        self._count_issue(_issue_class(np.asarray(out).dtype, sfu=False))
        return Vec(self, out)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    @contextmanager
    def if_(self, cond: Operand):
        cv = self._coerce(cond).astype(bool)
        parent = self._mask
        ws = self.device.warp_size
        per_warp_parent = parent.reshape(self.num_warps, ws)
        participating = per_warp_parent.any(axis=1)
        cond_active = (cv & parent).reshape(self.num_warps, ws)
        not_taken_active = (~cv & parent).reshape(self.num_warps, ws)
        divergent = cond_active.any(axis=1) & not_taken_active.any(axis=1)

        self.counters.branches_total += int(participating.sum())
        self.counters.branches_divergent += int(divergent.sum())
        self._count_issue("branch")

        depth = self.depth
        self._push_mask(parent & cv)
        try:
            yield
        finally:
            self._pop_mask()
            self._pending_else[depth] = parent & ~cv

    @contextmanager
    def else_(self):
        depth = self.depth
        mask = self._pending_else.pop(depth, None)
        if mask is None:
            raise KernelDivergenceError(
                "else_ must immediately follow an if_ at the same nesting level"
            )
        self._push_mask(mask)
        try:
            yield
        finally:
            self._pop_mask()

    def loop(self, iterations: int):
        """A uniform counted loop (``for k in ctx.loop(K)``).

        Functionally identical to ``range``, but charges the loop's
        control overhead the way real hardware pays it: one (never
        divergent) branch plus a counter increment per iteration and a
        final exit branch. Without this, unrolled simulation would
        undercount total branches and wildly overstate the *divergent
        fraction* — the paper's branch-efficiency percentages include
        these uniform loop branches in their denominator.
        """
        if iterations < 0:
            raise KernelDivergenceError(
                f"loop iterations must be non-negative, got {iterations}"
            )
        for i in range(iterations):
            self.counters.branches_total += self._warps_active
            self._count_issue("branch")
            self._count_issue("int32")
            yield i
        self.counters.branches_total += self._warps_active
        self._count_issue("branch")

    def syncthreads(self) -> None:
        """Block-level barrier (functionally a no-op here: the engine
        executes whole launches in lock-step anyway)."""
        self._count_issue("sync")

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def _bounds_check(self, buf: GlobalBuffer, idx: np.ndarray) -> None:
        active_idx = idx[self._mask]
        if active_idx.size == 0:
            return
        lo = active_idx.min()
        hi = active_idx.max()
        if lo < 0 or hi >= buf.num_elements:
            raise MemoryModelError(
                f"out-of-bounds access to buffer {buf.name!r}: indices in "
                f"[{lo}, {hi}], buffer has {buf.num_elements} elements"
            )

    def load(self, buf: GlobalBuffer, index: Operand) -> Vec:
        """Global load: gather + coalescing accounting."""
        idx = self._coerce(index).astype(np.int64)
        self._bounds_check(buf, idx)
        safe = np.where(self._mask, idx, 0)
        values = buf.data[safe]
        # Inactive lanes must not observe data (helps catch kernel bugs).
        if values.dtype.kind == "f":
            values = np.where(self._mask, values, np.nan)
        tx, hits = count_transactions_with_l1(
            buf.addresses(safe), self._mask, self.device.warp_size,
            self.engine.memory.transaction_bytes, self._l1_window,
        )
        self.counters.load_transactions += tx
        self.counters.l1_load_hits += hits
        self.counters.load_bytes_useful += self._lanes_active * buf.itemsize
        self._count_issue("mem")
        return Vec(self, values)

    def store(self, buf: GlobalBuffer, index: Operand, value: Operand) -> None:
        """Global store: masked scatter + coalescing accounting."""
        idx = self._coerce(index).astype(np.int64)
        self._bounds_check(buf, idx)
        val = self._coerce(value)
        safe = np.where(self._mask, idx, 0)
        cols = safe[self._mask]
        buf.data[cols] = np.asarray(val, dtype=buf.data.dtype)[self._mask]
        tx = count_transactions(
            buf.addresses(safe), self._mask, self.device.warp_size,
            self.engine.memory.transaction_bytes,
        )
        self.counters.store_transactions += tx
        self.counters.store_bytes_useful += self._lanes_active * buf.itemsize
        self._count_issue("mem")

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    def shared_alloc(self, name: str, elems_per_block: int, dtype) -> SharedBuffer:
        """Allocate per-block shared memory (counts toward occupancy)."""
        if name in self._shared_allocs:
            raise MemoryModelError(f"shared buffer {name!r} already allocated")
        buf = SharedBuffer(name, self.num_blocks, elems_per_block, np.dtype(dtype))
        self._shared_allocs[name] = buf
        self.shared_bytes_per_block += buf.bytes_per_block
        if self.shared_bytes_per_block > self.device.shared_mem_per_sm:
            raise MemoryModelError(
                f"shared memory request ({self.shared_bytes_per_block} B per "
                f"block) exceeds the SM's {self.device.shared_mem_per_sm} B"
            )
        return buf

    def shared_load(self, buf: SharedBuffer, local_index: Operand) -> Vec:
        idx = self._coerce(local_index).astype(np.int64)
        values = buf.gather(self._block_values, idx, self._mask)
        if values.dtype.kind == "f":
            values = np.where(self._mask, values, np.nan)
        self._account_shared(buf, idx)
        return Vec(self, values)

    def shared_store(self, buf: SharedBuffer, local_index: Operand, value: Operand) -> None:
        idx = self._coerce(local_index).astype(np.int64)
        val = self._coerce(value)
        buf.scatter(self._block_values, idx, np.asarray(val), self._mask)
        self._account_shared(buf, idx)

    def _account_shared(self, buf: SharedBuffer, idx: np.ndarray) -> None:
        self.counters.shared_accesses += self._warps_active
        self.counters.bank_conflict_extra_cycles += bank_conflict_extra_cycles(
            idx, self._mask, buf.itemsize,
            self.device.warp_size, self.device.shared_banks,
        )
        self._count_issue("shared")

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        if self.depth != 1:
            raise KernelDivergenceError(
                f"kernel ended with {self.depth - 1} unclosed if_ blocks"
            )
        # Deterministic release of anything GC has not collected yet
        # (on CPython every Vec is already gone by refcount; on PyPy
        # and friends this is what keeps peak_registers stable).
        for vec in list(self._live_vecs):
            vec._release()
        self._live_vecs.clear()
