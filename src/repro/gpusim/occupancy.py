"""CUDA occupancy calculation for compute capability 2.0 (Fermi).

Occupancy — the ratio of resident warps to the SM's maximum — is the
paper's central architectural lever: register usage per thread bounds
how many blocks fit the register file, shared memory per block bounds
how many blocks fit shared memory, and the hardware caps blocks and
warps outright. This module reproduces the CUDA Occupancy Calculator's
arithmetic for CC 2.0, where registers are allocated per *warp* in
units of :attr:`DeviceSpec.register_alloc_unit`.

The non-monotonic effects the paper relies on fall out of the
granularity: e.g. at 128 threads/block, 32 registers/thread fits 8
blocks (limited by the block cap) while 33 registers fits only 7 —
Figure 7(c)'s drop from D to E.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchError
from .device import DeviceSpec


def _ceil_to(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one launch shape."""

    blocks_per_sm: int
    warps_per_block: int
    limiting_factor: str  # "warps" | "blocks" | "registers" | "shared"
    max_warps_per_sm: int

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    @property
    def occupancy(self) -> float:
        """Theoretical occupancy: resident warps / max warps."""
        return self.warps_per_sm / self.max_warps_per_sm


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_bytes_per_block: int = 0,
) -> OccupancyResult:
    """Compute theoretical occupancy for a launch configuration.

    Raises :class:`~repro.errors.LaunchError` if the configuration
    cannot run at all (zero blocks fit an SM).
    """
    if threads_per_block <= 0:
        raise LaunchError(f"threads_per_block must be positive, got {threads_per_block}")
    if threads_per_block > device.max_threads_per_block:
        raise LaunchError(
            f"threads_per_block {threads_per_block} exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if registers_per_thread < 0 or shared_bytes_per_block < 0:
        raise LaunchError("resource requirements must be non-negative")
    if registers_per_thread > device.max_registers_per_thread:
        raise LaunchError(
            f"registers_per_thread {registers_per_thread} exceeds the "
            f"CC 2.0 limit of {device.max_registers_per_thread} "
            "(a real compiler would spill to local memory)"
        )

    warps_per_block = -(-threads_per_block // device.warp_size)

    limits: dict[str, int] = {}
    limits["blocks"] = device.max_blocks_per_sm
    limits["warps"] = device.max_warps_per_sm // warps_per_block

    if registers_per_thread > 0:
        regs_per_warp = _ceil_to(
            registers_per_thread * device.warp_size, device.register_alloc_unit
        )
        warp_limit_by_regs = device.registers_per_sm // regs_per_warp
        limits["registers"] = warp_limit_by_regs // warps_per_block

    if shared_bytes_per_block > 0:
        shared_alloc = _ceil_to(shared_bytes_per_block, device.shared_alloc_unit)
        if shared_alloc > device.shared_mem_per_sm:
            raise LaunchError(
                f"shared memory request {shared_bytes_per_block} B exceeds "
                f"the SM's {device.shared_mem_per_sm} B"
            )
        limits["shared"] = device.shared_mem_per_sm // shared_alloc

    # The smallest limit wins; ties break toward the hardware caps so
    # the report names the most fundamental constraint.
    limiting = min(limits, key=lambda k: (limits[k], _TIE_ORDER[k]))
    blocks = limits[limiting]
    if blocks <= 0:
        raise LaunchError(
            f"launch shape cannot run: {limiting} limit allows zero "
            f"blocks per SM (threads={threads_per_block}, "
            f"regs={registers_per_thread}, shared={shared_bytes_per_block})"
        )
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_block=warps_per_block,
        limiting_factor=limiting,
        max_warps_per_sm=device.max_warps_per_sm,
    )


_TIE_ORDER = {"warps": 0, "blocks": 1, "shared": 2, "registers": 3}
