"""Per-block shared memory with bank-conflict accounting.

Fermi shared memory has 32 banks of 4-byte words. A warp's access
serialises when multiple lanes address *different words in the same
bank*; 8-byte accesses are serviced as two 4-byte phases. The level-G
tiled kernel stages Gaussian parameters here, so capacity (occupancy)
and conflict behaviour both matter to Figure 10.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryModelError


class SharedBuffer:
    """A per-block shared allocation: ``(num_blocks, elems)`` storage."""

    __slots__ = ("name", "data", "itemsize")

    def __init__(
        self, name: str, num_blocks: int, elems_per_block: int, dtype: np.dtype
    ) -> None:
        if elems_per_block <= 0:
            raise MemoryModelError(
                f"shared buffer {name!r} must have positive size"
            )
        self.name = name
        self.data = np.zeros((num_blocks, elems_per_block), dtype=dtype)
        self.itemsize = dtype.itemsize

    @property
    def elems_per_block(self) -> int:
        return self.data.shape[1]

    @property
    def bytes_per_block(self) -> int:
        return self.elems_per_block * self.itemsize

    def _check(self, idx: np.ndarray, mask: np.ndarray) -> None:
        active = idx[mask]
        if active.size and (active.min() < 0 or active.max() >= self.elems_per_block):
            raise MemoryModelError(
                f"out-of-bounds shared access to {self.name!r}: indices in "
                f"[{active.min()}, {active.max()}], size {self.elems_per_block}"
            )

    def gather(
        self, block_ids: np.ndarray, idx: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        self._check(idx, mask)
        safe = np.where(mask, idx, 0)
        return self.data[block_ids, safe]

    def scatter(
        self,
        block_ids: np.ndarray,
        idx: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self._check(idx, mask)
        self.data[block_ids[mask], idx[mask]] = values[mask].astype(
            self.data.dtype
        )


def bank_conflict_extra_cycles(
    local_index: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    warp_size: int,
    num_banks: int,
) -> int:
    """Extra serialisation cycles due to bank conflicts for one access.

    Requests are serviced in *groups*: a whole warp for accesses of up
    to 4 bytes, a half-warp for 8-byte accesses (Fermi's 64-bit shared
    path — which is why contiguous double accesses are conflict-free
    despite each lane touching two words). Within a group, the conflict
    degree is the maximum, over banks, of the number of *distinct*
    words addressed in that bank; a broadcast (same word) is free. The
    group costs ``degree`` cycles instead of 1; the summed extra
    (``degree - 1``) cycles are returned.
    """
    n = local_index.size
    if n % warp_size:
        raise MemoryModelError("grid not a multiple of warp size")
    idx = local_index.astype(np.int64)
    if itemsize <= 4:
        # One word (or a shared sub-word) per lane, full-warp groups.
        words = ((idx * itemsize) // 4).reshape(-1, warp_size)
        act = active.reshape(-1, warp_size)
    else:
        if itemsize != 8:
            raise MemoryModelError(
                f"unsupported shared access width {itemsize}"
            )
        # Two words per lane, half-warp groups: each group row holds
        # the 2 x (warp_size/2) words one half-warp requests at once.
        half = warp_size // 2
        base = (idx * 2).reshape(-1, half)          # (groups, half)
        words = np.concatenate([base, base + 1], axis=1)  # (groups, 2*half)
        half_mask = active.reshape(-1, half)
        act = np.concatenate([half_mask, half_mask], axis=1)

    bank = words % num_banks
    pair = np.where(act, bank * (1 << 40) + words, np.int64(-1))
    pair = np.sort(pair, axis=1)
    distinct_mask = np.ones_like(pair, dtype=bool)
    distinct_mask[:, 1:] = pair[:, 1:] != pair[:, :-1]
    distinct_mask &= pair >= 0
    num_groups = pair.shape[0]
    group_ids = np.broadcast_to(
        np.arange(num_groups, dtype=np.int64)[:, None], pair.shape
    )
    banks_of_distinct = (pair >> 40)[distinct_mask]
    groups_of_distinct = group_ids[distinct_mask]
    counts = np.bincount(
        groups_of_distinct * num_banks + banks_of_distinct,
        minlength=num_groups * num_banks,
    ).reshape(num_groups, num_banks)
    degree = counts.max(axis=1)
    return int(np.maximum(degree - 1, 0).sum())
