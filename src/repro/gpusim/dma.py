"""PCIe transfers and the host-side stream schedule (paper Figure 5).

A discrete GPU cannot touch host memory: every frame must be DMA'd in
and every foreground mask DMA'd out. :func:`transfer_time` models one
transfer; :class:`StreamScheduler` replays the per-frame schedule either
*serially* (copy-in, kernel, copy-out — levels A and B) or *overlapped*
(double-buffered: while the kernel processes frame *i*, the copy engine
moves frame *i+1* in and mask *i-1* out — level C onward).

The scheduler is a tiny three-resource event simulation: the C2075's
two copy engines (one per direction) and the compute engine, with the
double-buffer dependencies between them (copy-in of frame *i* reuses
the input buffer of frame *i-2*, so it waits for that kernel). It
reports both the total time and the per-frame timeline so the
pipeline-fill cost is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .device import TESLA_C2075, DeviceSpec


def transfer_time(num_bytes: int, device: DeviceSpec = TESLA_C2075) -> float:
    """Host<->device DMA time for one transfer."""
    if num_bytes < 0:
        raise ConfigError(f"transfer size must be non-negative, got {num_bytes}")
    if num_bytes == 0:
        return 0.0
    return device.pcie_latency_s + num_bytes / device.pcie_bandwidth


@dataclass(frozen=True)
class FrameSchedule:
    """When one frame's phases ran (all times in seconds)."""

    copy_in_start: float
    copy_in_end: float
    kernel_start: float
    kernel_end: float
    copy_out_start: float
    copy_out_end: float


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of scheduling a whole run."""

    total_time: float
    frames: tuple[FrameSchedule, ...]
    copy_busy: float
    kernel_busy: float

    @property
    def copy_utilisation(self) -> float:
        return self.copy_busy / self.total_time if self.total_time else 0.0

    @property
    def kernel_utilisation(self) -> float:
        return self.kernel_busy / self.total_time if self.total_time else 0.0


class StreamScheduler:
    """Schedules per-frame (copy-in, kernel, copy-out) phases."""

    def __init__(self, device: DeviceSpec = TESLA_C2075, overlapped: bool = True):
        self.device = device
        self.overlapped = overlapped

    def run(
        self,
        kernel_times: list[float],
        bytes_in: int | list[int],
        bytes_out: int | list[int],
    ) -> PipelineResult:
        """Schedule ``len(kernel_times)`` pipeline slots.

        A slot is one kernel launch with its input and output transfer
        (a frame for levels A-F, a whole frame group for level G).
        ``bytes_in``/``bytes_out`` may be scalars (same size every slot)
        or per-slot lists.
        """
        if not kernel_times:
            raise ConfigError("no frames to schedule")
        n = len(kernel_times)
        ins = bytes_in if isinstance(bytes_in, list) else [bytes_in] * n
        outs = bytes_out if isinstance(bytes_out, list) else [bytes_out] * n
        if len(ins) != n or len(outs) != n:
            raise ConfigError(
                "per-slot transfer sizes must match the number of kernels"
            )

        frames: list[FrameSchedule] = []
        in_free = 0.0    # host->device copy engine
        out_free = 0.0   # device->host copy engine
        kernel_free = 0.0
        kernel_ends: list[float] = []
        prev_out_end = 0.0
        copy_busy = 0.0
        kernel_busy = 0.0

        for i, kt in enumerate(kernel_times):
            if kt < 0:
                raise ConfigError(f"kernel time for frame {i} is negative")
            t_in = transfer_time(ins[i], self.device)
            t_out = transfer_time(outs[i], self.device)
            if self.overlapped:
                # Double buffering: copy-in of frame i reuses the input
                # buffer of frame i-2, so it additionally waits for that
                # kernel to finish.
                buffer_ready = kernel_ends[i - 2] if i >= 2 else 0.0
                ci_start = max(in_free, buffer_ready)
            else:
                # Serial single-stream: wait for everything so far.
                ci_start = max(in_free, prev_out_end)
            ci_end = ci_start + t_in
            in_free = ci_end
            copy_busy += t_in

            k_start = max(ci_end, kernel_free)
            k_end = k_start + kt
            kernel_free = k_end
            kernel_ends.append(k_end)
            kernel_busy += kt

            co_start = max(k_end, out_free)
            co_end = co_start + t_out
            out_free = co_end
            prev_out_end = co_end
            copy_busy += t_out

            frames.append(
                FrameSchedule(ci_start, ci_end, k_start, k_end, co_start, co_end)
            )

        total = frames[-1].copy_out_end
        return PipelineResult(
            total_time=total,
            frames=tuple(frames),
            copy_busy=copy_busy,
            kernel_busy=kernel_busy,
        )
