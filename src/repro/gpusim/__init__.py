"""Fermi-class SIMT GPU functional + performance simulator.

This package is the substitution for the paper's Nvidia Tesla C2075
(see DESIGN.md §2). It executes kernels written in a small DSL
(:mod:`repro.gpusim.dsl`) vectorized over all threads with NumPy, so a
kernel's *output* is real, while per-warp execution is modeled exactly
enough to measure the architectural quantities the paper reports:

* lock-step warps of 32 threads with divergence handling — both sides
  of a divergent branch are executed under active masks, and issue
  counters charge a warp for every path it participates in
  (:mod:`repro.gpusim.engine`);
* 128-byte global-memory transaction coalescing
  (:mod:`repro.gpusim.memory`);
* per-SM shared memory with capacity accounting and bank-conflict
  detection (:mod:`repro.gpusim.sharedmem`);
* the CUDA occupancy calculation for compute capability 2.0
  (:mod:`repro.gpusim.occupancy`);
* a PCIe DMA engine with stream overlap (:mod:`repro.gpusim.dma`);
* an analytic cycles→seconds model (:mod:`repro.gpusim.timing`) with
  calibrated constants (:mod:`repro.gpusim.calibration`).

Execution is two-tier (:mod:`repro.gpusim.functional`): profiled
launches measure everything above; functional launches compute
bit-identical buffer contents with no accounting, for sampled
profiling via ``SimtEngine(profile_every=N)``.
"""

from .counters import KernelCounters
from .device import TESLA_C2075, XEON_E5_2620, CpuSpec, DeviceSpec
from .dsl import KernelContext
from .engine import LaunchResult, SimtEngine
from .functional import FunctionalContext, ScratchPool
from .memory import GlobalBuffer, GlobalMemory
from .occupancy import OccupancyResult, occupancy
from .profiler import LaunchReport, Profiler

__all__ = [
    "KernelCounters",
    "DeviceSpec",
    "CpuSpec",
    "TESLA_C2075",
    "XEON_E5_2620",
    "KernelContext",
    "FunctionalContext",
    "ScratchPool",
    "SimtEngine",
    "LaunchResult",
    "GlobalBuffer",
    "GlobalMemory",
    "OccupancyResult",
    "occupancy",
    "LaunchReport",
    "Profiler",
]
