"""Per-launch hardware counters.

These mirror the Nvidia Visual Profiler metrics the paper reports:

* *branch efficiency* — non-divergent branches / total branches
  (Figure 7a);
* *memory access efficiency* — bytes requested by active lanes /
  bytes moved in 128-byte transactions (Figures 6a, 7b, 10);
* *global store transactions* (Figure 6a) and total transactions
  (Figure 7b).

Issue counters are *warp-granular*: one "issue" is one warp executing
one instruction, charged to every path of a divergent region the warp
participates in — which is exactly how divergence costs time on SIMT
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Instruction classes distinguished by the timing model.
ISSUE_CLASSES = (
    "int32",   # integer ALU / address arithmetic / comparisons
    "fp32",    # single-precision add/mul/fma/min/max/abs
    "fp64",    # double-precision add/mul/fma/min/max/abs
    "sfu32",   # single-precision division, sqrt, transcendental
    "sfu64",   # double-precision division, sqrt (slow path on Fermi)
    "cvt",     # dtype conversions
    "mem",     # global load/store instruction issue
    "shared",  # shared-memory load/store
    "branch",  # branch / predicate-set instructions
    "sync",    # barriers
)


@dataclass
class KernelCounters:
    """Counter state for one kernel launch (or an aggregate of many)."""

    warp_issues: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in ISSUE_CLASSES}
    )
    thread_instructions: int = 0
    branches_total: int = 0
    branches_divergent: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    l1_load_hits: int = 0
    load_bytes_useful: int = 0
    store_bytes_useful: int = 0
    shared_accesses: int = 0
    bank_conflict_extra_cycles: int = 0
    transaction_bytes: int = 128

    # ------------------------------------------------------------------
    # Derived metrics (the paper's profiler numbers)
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> int:
        """Total global-memory transactions (loads + stores)."""
        return self.load_transactions + self.store_transactions

    @property
    def bytes_moved(self) -> int:
        """Bytes crossing the DRAM interface."""
        return self.transactions * self.transaction_bytes

    @property
    def bytes_useful(self) -> int:
        return self.load_bytes_useful + self.store_bytes_useful

    @property
    def memory_access_efficiency(self) -> float:
        """Useful bytes / moved bytes; 1.0 = perfectly coalesced."""
        moved = self.bytes_moved
        return self.bytes_useful / moved if moved else 1.0

    @property
    def branch_efficiency(self) -> float:
        """Non-divergent branches / total branches; 1.0 = uniform."""
        if self.branches_total == 0:
            return 1.0
        return 1.0 - self.branches_divergent / self.branches_total

    @property
    def total_warp_issues(self) -> int:
        return sum(self.warp_issues.values())

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate another launch's counters in place."""
        for cls, count in other.warp_issues.items():
            self.warp_issues[cls] = self.warp_issues.get(cls, 0) + count
        self.thread_instructions += other.thread_instructions
        self.branches_total += other.branches_total
        self.branches_divergent += other.branches_divergent
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions
        self.l1_load_hits += other.l1_load_hits
        self.load_bytes_useful += other.load_bytes_useful
        self.store_bytes_useful += other.store_bytes_useful
        self.shared_accesses += other.shared_accesses
        self.bank_conflict_extra_cycles += other.bank_conflict_extra_cycles
        return self

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        out = self.copy()
        return out.add(other)

    def copy(self) -> "KernelCounters":
        out = KernelCounters(transaction_bytes=self.transaction_bytes)
        out.add(self)
        return out

    def scaled(self, factor: float) -> "KernelCounters":
        """Counters for a proportionally larger/smaller grid.

        MoG is embarrassingly parallel with statistically identical
        per-warp behaviour, so extrapolating a small simulated frame to
        full HD is a linear scaling of every count (DESIGN.md §6). The
        derived *ratios* (efficiencies) are unchanged by construction.
        """
        out = KernelCounters(transaction_bytes=self.transaction_bytes)
        out.warp_issues = {
            c: int(round(v * factor)) for c, v in self.warp_issues.items()
        }
        out.thread_instructions = int(round(self.thread_instructions * factor))
        out.branches_total = int(round(self.branches_total * factor))
        out.branches_divergent = int(round(self.branches_divergent * factor))
        out.load_transactions = int(round(self.load_transactions * factor))
        out.store_transactions = int(round(self.store_transactions * factor))
        out.l1_load_hits = int(round(self.l1_load_hits * factor))
        out.load_bytes_useful = int(round(self.load_bytes_useful * factor))
        out.store_bytes_useful = int(round(self.store_bytes_useful * factor))
        out.shared_accesses = int(round(self.shared_accesses * factor))
        out.bank_conflict_extra_cycles = int(
            round(self.bank_conflict_extra_cycles * factor)
        )
        return out
