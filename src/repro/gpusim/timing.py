"""Counters -> seconds: the analytic kernel timing model.

For one launch the model composes two serial parts (their partial
overlap on real hardware is folded into the fitted constants):

``T = T_compute + T_memory``

*Compute* — every warp instruction occupies an SM for a class-dependent
number of cycles (``Calibration.issue_cycles``); divergence is already
inside the counters because warps are charged for every path they
execute, and each *divergent* branch additionally pays a reconvergence
penalty. Work spreads evenly over the SMs; below a saturation occupancy
the SM idles between eligible warps (``starvation = max(1, occ_sat /
occ)``).

*Memory* — the larger of two bounds:

* bandwidth: bytes actually moved (transactions x 128 B) over the GDDR5
  peak derated by a row-locality factor that falls with coalescing
  efficiency (scattered transactions pay DRAM row activations — the
  reason level A is slower than B even beyond its 8.7x byte volume);
* latency: transactions x latency spread over the warps resident per SM
  (Little's law) — the term that rewards occupancy and punishes the
  AoS layout's 18-transaction warp requests.

The constants are in :mod:`repro.gpusim.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import DEFAULT_CALIBRATION, Calibration
from .counters import KernelCounters
from .device import TESLA_C2075, DeviceSpec
from .occupancy import OccupancyResult


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one kernel launch."""

    compute_time: float
    memory_bandwidth_time: float
    memory_latency_time: float
    launch_overhead: float
    coalesce_factor: float

    @property
    def memory_time(self) -> float:
        return max(self.memory_bandwidth_time, self.memory_latency_time)

    @property
    def total(self) -> float:
        return self.compute_time + self.memory_time + self.launch_overhead

    @property
    def bound_by(self) -> str:
        if self.compute_time >= self.memory_time:
            return "compute"
        if self.memory_bandwidth_time >= self.memory_latency_time:
            return "memory-bandwidth"
        return "memory-latency"


class TimingModel:
    """Analytic timing for simulated launches on a device."""

    def __init__(
        self,
        device: DeviceSpec = TESLA_C2075,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.device = device
        self.calibration = calibration

    # ------------------------------------------------------------------
    def compute_time(self, counters: KernelCounters, occ: OccupancyResult) -> float:
        dev, cal = self.device, self.calibration
        cycles = sum(
            count * cal.issue_cost(klass)
            for klass, count in counters.warp_issues.items()
        )
        cycles += counters.bank_conflict_extra_cycles
        cycles += counters.branches_divergent * cal.divergence_penalty_cycles
        cycles *= cal.compute_scale
        cycles_per_sm = cycles / dev.num_sms
        starvation = max(
            1.0, cal.compute_occupancy_sat / max(occ.occupancy, 1e-9)
        )
        return cycles_per_sm * starvation / dev.clock_hz

    def coalesce_factor(self, counters: KernelCounters) -> float:
        """DRAM row-locality derating from coalescing efficiency."""
        cal = self.calibration
        eff = counters.memory_access_efficiency
        return cal.coalesce_floor + (1.0 - cal.coalesce_floor) * eff**cal.coalesce_gamma

    def memory_bandwidth_time(self, counters: KernelCounters) -> float:
        eff_bw = self.device.mem_bandwidth * self.coalesce_factor(counters)
        return counters.bytes_moved / eff_bw if counters.bytes_moved else 0.0

    def memory_latency_time(
        self, counters: KernelCounters, occ: OccupancyResult
    ) -> float:
        dev, cal = self.device, self.calibration
        if not counters.transactions:
            return 0.0
        concurrency = (
            occ.warps_per_sm * dev.num_sms * cal.memory_level_parallelism
        )
        # Poor coalescing also inflates per-transaction latency (DRAM
        # row misses), not just bandwidth — divide by the same
        # row-locality factor.
        return (
            counters.transactions * dev.mem_latency_cycles
            / concurrency / dev.clock_hz / self.coalesce_factor(counters)
        )

    def kernel_timing(
        self, counters: KernelCounters, occ: OccupancyResult
    ) -> KernelTiming:
        return KernelTiming(
            compute_time=self.compute_time(counters, occ),
            memory_bandwidth_time=self.memory_bandwidth_time(counters),
            memory_latency_time=self.memory_latency_time(counters, occ),
            launch_overhead=self.device.kernel_launch_overhead_s,
            coalesce_factor=self.coalesce_factor(counters),
        )
