"""Registers-per-thread accounting.

Register allocation is a compiler artifact that a trace-level simulator
cannot derive exactly, so two sources are provided:

* :func:`pinned_registers` — a small model calibrated so that the
  paper's configuration (3 Gaussians, double precision, 128
  threads/block) reproduces the nvcc/profiler numbers the paper
  reports: A=30, B=C=36, D=32, E=33, F=31 (Figures 6b / 7c). The same
  model extrapolates to 5 Gaussians and single precision: the
  per-component live values (the ``diff[]`` array and the parameter
  triple in flight) scale with the component count, and value width
  scales with the dtype (doubles occupy two 32-bit registers).

* the engine's live-value estimate
  (:attr:`repro.gpusim.engine.LaunchResult.estimated_registers`), an
  upper-bound-ish measurement from the executed trace used as a
  cross-check and for ablations.

The timing model uses the pinned values by default (DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from ..config import resolve_dtype
from ..errors import ConfigError

#: (integer/address registers, floating-point live values at K=3) per level.
#: fp live values grow by one per extra Gaussian component (the diff[]
#: entry plus in-flight parameter reuse); level F keeps no diff array but
#: still stages one extra value per component during the update loop.
_LEVEL_MODEL: dict[str, tuple[int, int, int]] = {
    # level: (int_regs, fp_values_at_3G, fp_values_per_extra_gaussian)
    # Two extra live values per extra component: its diff[] entry plus
    # the in-flight parameter the update loop stages.
    "A": (10, 10, 2),
    "B": (12, 12, 2),
    "C": (12, 12, 2),
    "D": (12, 10, 2),
    "E": (13, 10, 2),
    "F": (13, 9, 2),
    "G": (15, 9, 2),  # tiled: extra shared-memory index registers
}


def pinned_registers(
    level: str, num_gaussians: int = 3, dtype: str | np.dtype = "double"
) -> int:
    """Registers per thread for a MoG kernel configuration."""
    key = level.upper()
    if key not in _LEVEL_MODEL:
        raise ConfigError(
            f"unknown optimization level {level!r}; expected one of "
            f"{sorted(_LEVEL_MODEL)}"
        )
    if num_gaussians < 1:
        raise ConfigError(f"num_gaussians must be >= 1, got {num_gaussians}")
    int_regs, fp3, per_g = _LEVEL_MODEL[key]
    fp_values = fp3 + per_g * (num_gaussians - 3)
    width = 2 if resolve_dtype(dtype) == np.dtype(np.float64) else 1
    return int_regs + width * max(fp_values, 1)
