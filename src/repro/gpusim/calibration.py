"""Calibrated constants of the analytic timing model.

Provenance
----------
The *structure* of the timing model (:mod:`repro.gpusim.timing`) is
first-principles: per-class issue throughput with a divergence
reconvergence penalty, a DRAM roofline with a row-locality factor, and
a Little's-law latency bound scaled by resident warps. The *free
constants* below were fitted once (``tools/fit_calibration.py``)
against the seven end-to-end anchors the paper publishes — the speedups
of levels A-F and the tiled level G at group size 8 over the 227.3 s
CPU baseline — using the counters the simulator measures on the
canonical evaluation scene. They are deliberately global: differences
*between* optimization levels come only from measured counters and
occupancy, never from per-level fudge factors.

Fermi anchors that are NOT fitted: fp64 executes at half the fp32 rate
on the C2075, and SFU operations (division, sqrt) are roughly an order
of magnitude slower, their double-precision forms slower still.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_issue_cycles() -> dict[str, float]:
    # Fitted 2026-07-06 by tools/fit_calibration.py (residual 5.8e-4
    # in squared log-speedup over the seven paper anchors). The fitted
    # fp64 cost sits near the issue rate rather than the DP-throughput
    # limit: with the divergence penalty and latency terms carrying the
    # level differences, DP throughput is not the binding resource in
    # any level, matching the paper's finding that MoG runs far from
    # the C2075's 515 GFLOPS roofline.
    return {
        "int32": 1.0,
        "fp32": 0.6399,
        "fp64": 1.2799,
        "sfu32": 11.1695,
        "sfu64": 22.3391,  # DP divide/sqrt software-expanded on Fermi
        "cvt": 1.0,
        "mem": 1.8455,
        "shared": 2.5565,  # 64-bit shared accesses take two phases
        "branch": 6.4632,
        "sync": 2.0,
    }


@dataclass(frozen=True)
class Calibration:
    """Free constants of the timing model (see module docstring)."""

    #: Cycles one warp instruction of each class occupies an SM.
    issue_cycles: dict[str, float] = field(default_factory=_default_issue_cycles)
    #: Extra cycles a warp pays per *divergent* branch (both-path
    #: serialisation, SSY/reconvergence bookkeeping, scheduler stalls).
    divergence_penalty_cycles: float = 77.26
    #: Global multiplier on compute cycles (fitted: scheduler
    #: inefficiency, dependency stalls not modelled per-opcode).
    compute_scale: float = 1.247
    #: Occupancy at which the issue pipeline saturates; below this the
    #: SM idles waiting for eligible warps.
    compute_occupancy_sat: float = 0.628
    #: Outstanding memory transactions a resident warp sustains (MLP)
    #: in the Little's-law latency bound.
    memory_level_parallelism: float = 1.030
    #: DRAM row-locality penalty: effective bandwidth factor is
    #: ``floor + (1 - floor) * efficiency ** gamma``.
    coalesce_floor: float = 0.398
    coalesce_gamma: float = 1.161

    def issue_cost(self, klass: str) -> float:
        try:
            return self.issue_cycles[klass]
        except KeyError:
            raise KeyError(f"unknown issue class {klass!r}") from None

    def replace(self, **kwargs) -> "Calibration":
        import dataclasses

        return dataclasses.replace(self, **kwargs)


#: The constants used throughout the library (values fitted by
#: tools/fit_calibration.py; see EXPERIMENTS.md for the fit residuals).
DEFAULT_CALIBRATION = Calibration()
