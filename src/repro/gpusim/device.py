"""Hardware descriptions (the paper's Table I).

:data:`TESLA_C2075` mirrors the Nvidia Tesla C2075 (Fermi, compute
capability 2.0) the paper targets; :data:`XEON_E5_2620` the Intel Xeon
E5-2620 used for the CPU baselines. Both are plain frozen dataclasses so
experiments can explore hypothetical hardware by ``replace``-ing fields.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """A Fermi-like GPU.

    The occupancy-related limits follow the CUDA occupancy calculator
    for compute capability 2.0; the performance-related fields feed the
    timing model (:mod:`repro.gpusim.timing`).
    """

    name: str = "Nvidia Tesla C2075"
    # --- organisation -------------------------------------------------
    num_sms: int = 14
    cores_per_sm: int = 32
    warp_size: int = 32
    schedulers_per_sm: int = 2
    # --- occupancy limits (CC 2.0) -------------------------------------
    max_threads_per_sm: int = 1536
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    registers_per_sm: int = 32768
    register_alloc_unit: int = 64  # registers, allocated per warp
    max_registers_per_thread: int = 63
    shared_mem_per_sm: int = 48 * 1024
    shared_alloc_unit: int = 128  # bytes
    shared_banks: int = 32
    #: L1 reuse window per warp, in 128-byte lines: the 16 KB L1 (128
    #: lines) divided among the ~8 warps with loads in flight. Loads
    #: hitting a line their warp touched recently are served without a
    #: DRAM transaction; stores bypass (Fermi's L1 is write-evict for
    #: global stores). This is what lifts the AoS layout's measured
    #: efficiency to the paper's ~17% (adjacent w/m/sd fields share
    #: lines) without helping SoA, whose planes are far apart.
    l1_window_segments: int = 16
    # --- performance ----------------------------------------------------
    clock_hz: float = 1.15e9
    mem_bandwidth: float = 144e9  # bytes/s, GDDR5 peak
    mem_latency_cycles: float = 600.0
    transaction_bytes: int = 128
    pcie_bandwidth: float = 1.164e9  # bytes/s, effective host<->device
    # (fitted with the timing model; pageable-memory transfers on the
    # paper's platform were far below the PCIe 2.0 peak)
    pcie_latency_s: float = 10e-6  # per-transfer setup cost
    kernel_launch_overhead_s: float = 8e-6
    flops_sp: float = 1.03e12
    flops_dp: float = 515e9

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ConfigError("device must have positive warp size and SM count")
        if self.max_warps_per_sm * self.warp_size < self.max_threads_per_sm:
            raise ConfigError(
                "max_threads_per_sm exceeds warp capacity "
                f"({self.max_warps_per_sm} warps x {self.warp_size})"
            )

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    def replace(self, **kwargs) -> "DeviceSpec":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class CpuSpec:
    """The CPU baseline host (paper Table I)."""

    name: str = "Intel Xeon E5-2620"
    cores: int = 6
    threads: int = 12
    clock_hz: float = 2.5e9  # the paper's Table I frequency
    simd_width_bytes: int = 32  # AVX
    mem_bandwidth: float = 12.8e9  # DDR3
    flops_sp: float = 120.3e9

    def replace(self, **kwargs) -> "CpuSpec":
        return dataclasses.replace(self, **kwargs)


#: The paper's GPU.
TESLA_C2075 = DeviceSpec()

#: The paper's CPU.
XEON_E5_2620 = CpuSpec()

#: An embedded GPU in the class the paper's conclusion targets as
#: future work ("realize MoG on an embedded GPU ... achieving real-time
#: performance will require to trade off quality for speed"): a
#: Tegra-K1-like integrated part — one big SM, a fraction of the
#: discrete card's bandwidth, DRAM shared with the CPU (so host
#: "transfers" are cheap zero-copy mappings), and nearly useless double
#: precision. Occupancy limits follow CC 3.x.
TEGRA_K1 = DeviceSpec(
    name="Nvidia Tegra K1 (embedded)",
    num_sms=1,
    cores_per_sm=192,
    schedulers_per_sm=4,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    register_alloc_unit=256,
    max_registers_per_thread=255,
    shared_mem_per_sm=48 * 1024,
    clock_hz=0.852e9,
    mem_bandwidth=14.9e9,       # LPDDR3, shared with the CPU
    mem_latency_cycles=500.0,
    pcie_bandwidth=8.0e9,        # zero-copy through the shared DRAM
    pcie_latency_s=2e-6,
    kernel_launch_overhead_s=15e-6,
    flops_sp=365e9,
    flops_dp=11.4e9,             # 1/32 rate: avoid double precision here
)


def hw_config_table() -> list[tuple[str, str, str]]:
    """Rows of the paper's Table I: (feature, CPU value, GPU value)."""
    cpu, gpu = XEON_E5_2620, TESLA_C2075
    return [
        ("Processor", cpu.name, gpu.name),
        ("Cores", str(cpu.cores), str(gpu.total_cores)),
        ("Frequency", f"{cpu.clock_hz / 1e9:.1f} GHz", f"{gpu.clock_hz / 1e9:.2f} GHz"),
        ("FLOPS (single)", f"{cpu.flops_sp / 1e9:.1f} GFLOPS", f"{gpu.flops_sp / 1e12:.2f} TFLOPS"),
        ("FLOPS (double)", "(unavailable)", f"{gpu.flops_dp / 1e9:.0f} GFLOPS"),
        (
            "Cache",
            "L2 (256K), L3 (15M)",
            "L1 (16/48K), L2 (768K)",
        ),
        (
            "Mem. BW",
            f"{cpu.mem_bandwidth / 1e9:.1f}GB/s (DDR3)",
            f"{gpu.mem_bandwidth / 1e9:.0f}GB/s (GDDR5)",
        ),
    ]
