"""Analytic CPU timing model for the paper's baselines.

The paper's speedups are all relative to a single-threaded
double-precision CPU implementation on an Intel Xeon E5-2620 (227.3 s
for 450 full-HD frames with 3 Gaussians). We have neither that CPU nor
450 full-HD frames of wall-clock budget, so the denominator comes from
this model: cycles per pixel as an affine function of the component
count, with multiplicative factors for data type and execution mode,
fitted to every CPU number the paper publishes:

======================  ============  =================
configuration           paper         model anchor
======================  ============  =================
3G double scalar -O3    227.3 s       fit (exact)
5G double scalar -O3    406.6 s       fit (exact)
3G float scalar -O3     180.0 s       fit (exact)
3G double SIMD          163.0 s       fit (exact)
3G double 8 threads     99.8 s        fit (exact)
======================  ============  =================

The affine fit has a negative intercept (per-component work dominates
and the K=3 loop amortises fixed work better than linear); it is used
only inside the fitted range K in [3, 5] plus mild extrapolation, and
is floored to keep hypothetical configurations positive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import FULL_HD, PAPER_NUM_FRAMES, resolve_dtype
from ..errors import ConfigError
from ..gpusim.device import XEON_E5_2620, CpuSpec


class CpuMode(enum.Enum):
    """Execution modes the paper measures on the CPU."""

    SCALAR = "scalar"       # single thread, -O3
    SIMD = "simd"           # hand-vectorized, single thread
    THREADS_8 = "threads8"  # OpenMP, 8 threads


#: The paper's published CPU wall-clock numbers (450 full-HD frames).
PAPER_BASELINES: dict[tuple[int, str, CpuMode], float] = {
    (3, "double", CpuMode.SCALAR): 227.3,
    (5, "double", CpuMode.SCALAR): 406.6,
    (3, "float", CpuMode.SCALAR): 180.0,
    (3, "double", CpuMode.SIMD): 163.0,
    (3, "double", CpuMode.THREADS_8): 99.8,
}

_PAPER_PIXELS = FULL_HD[0] * FULL_HD[1] * PAPER_NUM_FRAMES  # pixel-frames


def _fit_cycles() -> tuple[float, float]:
    """Affine fit cycles/pixel = c0 + K*c1 from the two double anchors."""
    t3 = PAPER_BASELINES[(3, "double", CpuMode.SCALAR)]
    t5 = PAPER_BASELINES[(5, "double", CpuMode.SCALAR)]
    clock = XEON_E5_2620.clock_hz
    cyc3 = t3 * clock / _PAPER_PIXELS
    cyc5 = t5 * clock / _PAPER_PIXELS
    c1 = (cyc5 - cyc3) / 2.0
    c0 = cyc3 - 3.0 * c1
    return c0, c1


@dataclass(frozen=True)
class CpuTimeModel:
    """Predicts CPU MoG time for any workload size."""

    spec: CpuSpec = XEON_E5_2620

    def cycles_per_pixel(
        self, num_gaussians: int = 3, dtype: str = "double"
    ) -> float:
        """Scalar-mode cycles per pixel per frame."""
        if num_gaussians < 1:
            raise ConfigError(f"num_gaussians must be >= 1, got {num_gaussians}")
        c0, c1 = _fit_cycles()
        cycles = max(c0 + num_gaussians * c1, 0.25 * num_gaussians * c1)
        if resolve_dtype(dtype).itemsize == 4:
            # Single precision: ratio measured at K=3 (180 s / 227.3 s).
            t_f = PAPER_BASELINES[(3, "float", CpuMode.SCALAR)]
            t_d = PAPER_BASELINES[(3, "double", CpuMode.SCALAR)]
            cycles *= t_f / t_d
        return cycles

    def mode_factor(self, mode: CpuMode) -> float:
        """Time multiplier of a mode relative to scalar."""
        base = PAPER_BASELINES[(3, "double", CpuMode.SCALAR)]
        if mode is CpuMode.SCALAR:
            return 1.0
        return PAPER_BASELINES[(3, "double", mode)] / base

    def time(
        self,
        num_pixels: int,
        num_frames: int,
        num_gaussians: int = 3,
        dtype: str = "double",
        mode: CpuMode = CpuMode.SCALAR,
    ) -> float:
        """Predicted wall-clock seconds for a whole run."""
        if num_pixels <= 0 or num_frames <= 0:
            raise ConfigError("workload must be positive")
        cycles = self.cycles_per_pixel(num_gaussians, dtype)
        scalar_time = cycles * num_pixels * num_frames / self.spec.clock_hz
        return scalar_time * self.mode_factor(mode)

    def paper_reference_time(
        self, num_gaussians: int = 3, dtype: str = "double",
        mode: CpuMode = CpuMode.SCALAR,
    ) -> float:
        """Time for the paper's workload (450 full-HD frames)."""
        return self.time(
            FULL_HD[0] * FULL_HD[1], PAPER_NUM_FRAMES, num_gaussians, dtype, mode
        )
