"""Real, timed CPU execution of the vectorized MoG.

Complements the analytic model with measurements on *this* machine —
useful in examples and for the sort-ablation bench (the paper's claim
that sorting + early exit helps CPUs but hurts GPUs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import MoGParams
from ..errors import ConfigError
from ..mog.vectorized import VARIANTS, MoGVectorized


@dataclass(frozen=True)
class TimedCpuRun:
    """Outcome of a timed CPU run."""

    variant: str
    dtype: str
    num_frames: int
    num_pixels: int
    elapsed_s: float
    masks: np.ndarray

    @property
    def time_per_frame(self) -> float:
        return self.elapsed_s / self.num_frames

    @property
    def megapixels_per_second(self) -> float:
        return self.num_pixels * self.num_frames / self.elapsed_s / 1e6


def run_cpu_reference(
    frames,
    params: MoGParams | None = None,
    variant: str = "sorted",
    dtype: str = "double",
) -> TimedCpuRun:
    """Run the vectorized CPU MoG over ``frames``, timed."""
    if variant not in VARIANTS:
        raise ConfigError(f"unknown variant {variant!r}; expected {VARIANTS}")
    frames = list(frames)
    if not frames:
        raise ConfigError("empty frame sequence")
    shape = np.asarray(frames[0]).shape
    mog = MoGVectorized(shape, params or MoGParams(), variant=variant, dtype=dtype)
    start = time.perf_counter()
    masks = mog.apply_sequence(frames)
    elapsed = time.perf_counter() - start
    return TimedCpuRun(
        variant=variant,
        dtype=dtype,
        num_frames=len(frames),
        num_pixels=int(np.prod(shape)),
        elapsed_s=elapsed,
        masks=masks,
    )
