"""CPU baselines: analytic timing model + real timed execution."""

from .model import CpuMode, CpuTimeModel, PAPER_BASELINES
from .runner import TimedCpuRun, run_cpu_reference

__all__ = [
    "CpuMode",
    "CpuTimeModel",
    "PAPER_BASELINES",
    "TimedCpuRun",
    "run_cpu_reference",
]
