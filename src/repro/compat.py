"""OpenCV-style compatibility layer.

OpenCV users know background subtraction as::

    mog = cv2.bgsegm.createBackgroundSubtractorMOG()
    mask = mog.apply(frame)          # uint8, 255 = foreground

This module provides the same call shape on top of this library, so
existing pipelines can swap in the reproduction (and its simulated-GPU
profiling) with a one-line import change::

    from repro.compat import createBackgroundSubtractorMOG

Parameter mapping (documented approximations):

* ``history`` — OpenCV's adaptation horizon; maps to
  ``learning_rate = 1 / history``.
* ``nmixtures`` — components per pixel (``num_gaussians``).
* ``backgroundRatio`` — OpenCV thresholds the *cumulative* weight of
  the top-ranked components; this library (like the paper) thresholds
  each component's own weight. We map ``Gamma2 =
  (1 - backgroundRatio) / 2``, which agrees for the common case of one
  dominant background mode and stays permissive for multi-modal
  pixels.
* ``noiseSigma`` — initial standard deviation of new components
  (OpenCV's 0 means "use the default", ours too).

Grayscale ``(H, W)`` input runs the paper's model; color ``(H, W, 3)``
input transparently runs the RGB extension.
"""

from __future__ import annotations

import numpy as np

from .config import MoGParams
from .errors import ConfigError
from .mog.color import ColorMoGVectorized
from .mog.vectorized import MoGVectorized


class BackgroundSubtractorMOG:
    """cv2-shaped adapter over the library's MoG implementations."""

    def __init__(self, params: MoGParams) -> None:
        self._params = params
        self._impl: MoGVectorized | ColorMoGVectorized | None = None
        self._color: bool | None = None

    def _ensure_impl(self, image: np.ndarray) -> None:
        if image.ndim == 2:
            color = False
        elif image.ndim == 3 and image.shape[2] == 3:
            color = True
        else:
            raise ConfigError(
                f"expected (H, W) or (H, W, 3) input, got shape {image.shape}"
            )
        if self._impl is None:
            shape = image.shape[:2]
            self._impl = (
                ColorMoGVectorized(shape, self._params)
                if color
                else MoGVectorized(shape, self._params, variant="nosort")
            )
            self._color = color
        elif color != self._color:
            raise ConfigError(
                "input switched between grayscale and color mid-stream"
            )

    def apply(self, image: np.ndarray, learningRate: float = -1.0) -> np.ndarray:
        """Process one frame; returns a uint8 mask (255 = foreground).

        ``learningRate`` follows OpenCV: negative = keep the configured
        rate; ``0`` freezes the model (classification only, no update)
        is *not* supported and raises; values in (0, 1] override the
        rate from this frame on.
        """
        image = np.asarray(image)
        self._ensure_impl(image)
        if learningRate == 0.0:
            raise ConfigError(
                "learningRate=0 (frozen model) is not supported by the "
                "underlying Algorithm-1 implementation"
            )
        if learningRate > 0.0:
            if learningRate > 1.0:
                raise ConfigError(
                    f"learningRate must be <= 1, got {learningRate}"
                )
            if learningRate != self._impl.params.learning_rate:
                self._impl.params = self._impl.params.replace(
                    learning_rate=float(learningRate)
                )
        mask = self._impl.apply(image)
        return mask.astype(np.uint8) * np.uint8(255)

    def getBackgroundImage(self) -> np.ndarray:
        """The current background estimate as uint8 (cv2 semantics)."""
        if self._impl is None:
            raise ConfigError("no frame processed yet")
        return np.rint(self._impl.background_image()).astype(np.uint8)

    # cv2-style getters (the subset with direct equivalents).
    def getHistory(self) -> int:
        return round(1.0 / self._params.learning_rate)

    def getNMixtures(self) -> int:
        return self._params.num_gaussians


def createBackgroundSubtractorMOG(
    history: int = 200,
    nmixtures: int = 3,
    backgroundRatio: float = 0.7,
    noiseSigma: float = 0.0,
) -> BackgroundSubtractorMOG:
    """Create a MOG subtractor with cv2.bgsegm-compatible parameters."""
    if history < 1:
        raise ConfigError(f"history must be >= 1, got {history}")
    if not 0.0 < backgroundRatio < 1.0:
        raise ConfigError(
            f"backgroundRatio must be in (0, 1), got {backgroundRatio}"
        )
    if noiseSigma < 0.0:
        raise ConfigError(f"noiseSigma must be >= 0, got {noiseSigma}")
    params = MoGParams(
        num_gaussians=nmixtures,
        learning_rate=min(max(1.0 / history, 1e-6), 0.9999),
        background_weight=max((1.0 - backgroundRatio) / 2.0, 0.01),
        initial_sd=noiseSigma if noiseSigma > 0.0 else 30.0,
    )
    return BackgroundSubtractorMOG(params)
