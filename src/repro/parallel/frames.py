"""Data-parallel CPU MoG over row stripes, one supervised process each.

The paper's multi-threaded baseline is an 8-thread OpenMP build; the
Python equivalent is a set of worker processes (the GIL rules out
threads for NumPy-light per-pixel work). MoG is embarrassingly parallel
across pixels, so the frame splits into horizontal stripes and each
worker owns the mixture state of its stripe for the whole run — only
the stripe's input pixels, output mask (and, when checkpointing, the
stripe state) cross the process boundary.

Unlike a bare ``multiprocessing.Pool``, every stripe worker here is
*supervised* (the serving-path requirement — see
docs/architecture.md, "Failure modes & telemetry"):

* construction probes each worker with a ready handshake, so an
  initializer failure raises :class:`~repro.errors.WorkerError`
  immediately instead of hanging the first ``apply``;
* every stripe result is collected with a bounded timeout — a worker
  that died (e.g. OOM-killed under fork) or hangs becomes a typed
  fault, never an infinite block;
* faults are handled per :class:`~repro.config.FaultPolicy`:
  ``fail`` raises, ``restart`` replaces the worker (restoring the
  stripe's checkpointed state and re-submitting the frame, so masks
  stay identical to the serial implementation), ``serial_fallback``
  degrades the stripe to an in-process :class:`MoGVectorized`;
* ``close()`` asks workers to drain and exit, escalating to
  ``terminate`` only after ``shutdown_timeout_s``;
* restarts, fallbacks, timeouts and latencies are recorded in a
  :class:`~repro.telemetry.MetricsRegistry`.

This is a *real* measured implementation, used by the examples and the
parallel tests; the paper-reproduction speedup numbers use the analytic
:class:`~repro.cpu.model.CpuTimeModel` instead (DESIGN.md §2).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np

from ..config import FaultPolicy, MoGParams
from ..errors import ConfigError, WorkerError
from ..mog.vectorized import VARIANTS, MoGVectorized
from ..telemetry import MetricsRegistry


def _worker_main(
    conn, shape, params, variant, dtype, snapshot, want_state,
    integrity=None,
):
    """Stripe worker loop: build the model, handshake, serve requests.

    Protocol (parent -> worker): ``("apply", stripe)`` or ``("stop",)``.
    Worker -> parent: ``("ready", pid)`` once at startup (or
    ``("init_error", repr)``), then ``("ok", mask, state_or_None)`` /
    ``("error", repr)`` per apply.
    """
    try:
        mog = MoGVectorized(
            shape, params, variant=variant, dtype=dtype,
            integrity=integrity,
        )
        if snapshot is not None:
            mog.restore_state(snapshot)
    except BaseException as exc:  # surface *any* init failure to the probe
        try:
            conn.send(("init_error", repr(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", os.getpid()))
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent went away
                break
            if msg[0] == "stop":
                break
            try:
                mask = mog.apply(msg[1])
                state = mog.state_snapshot() if want_state else None
                conn.send(("ok", mask, state))
            except BaseException as exc:
                conn.send(("error", repr(exc)))
    finally:
        conn.close()


class _StripeWorker:
    """Parent-side handle supervising one stripe's worker process."""

    def __init__(self, ctx, index, bounds, shape, params, variant, dtype,
                 policy: FaultPolicy, telemetry: MetricsRegistry,
                 integrity=None) -> None:
        self._ctx = ctx
        self.index = index
        self.bounds = bounds  # (lo, hi) rows of the full frame
        self._shape = shape   # stripe shape (rows, width)
        self._params = params
        self._variant = variant
        self._dtype = dtype
        self._integrity = integrity
        self._policy = policy
        self._telemetry = telemetry
        self.pid: int | None = None
        self.restarts = 0
        self.fallback: MoGVectorized | None = None
        self.last_state = None  # last checkpointed stripe state
        self._conn = None
        self._proc = None
        self._start()

    # -- lifecycle -----------------------------------------------------
    def _start(self) -> None:
        self.pid = None  # set again by the ready handshake
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self._shape, self._params, self._variant,
                  self._dtype, self.last_state,
                  self._policy.wants_checkpoint, self._integrity),
            daemon=True,
            name=f"repro-stripe-{self.index}",
        )
        proc.start()
        child.close()  # parent keeps only its end
        self._conn, self._proc = parent, proc
        self._probe()

    def _probe(self) -> None:
        """Wait for the ready handshake; raise WorkerError on failure."""
        try:
            if self._conn.poll(self._policy.probe_timeout_s):
                msg = self._conn.recv()
                if msg[0] == "ready":
                    self.pid = msg[1]
                    return
                detail = msg[1] if len(msg) > 1 else msg[0]
                raise WorkerError(
                    f"stripe {self.index} worker failed to initialise: "
                    f"{detail}", stripe=self.index,
                )
            raise WorkerError(
                f"stripe {self.index} worker did not come up within "
                f"{self._policy.probe_timeout_s:g}s", stripe=self.index,
            )
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"stripe {self.index} worker died during startup: {exc!r}",
                stripe=self.index,
            ) from exc
        finally:
            if self.pid is None:
                self.kill()

    def restart(self) -> None:
        """Replace a dead/hung worker, restoring the checkpointed state."""
        self.kill()
        self.restarts += 1
        self._telemetry.counter("parallel.worker_restarts").inc()
        self._start()

    def to_fallback(self) -> MoGVectorized:
        """Degrade this stripe to an in-process model (checkpoint-seeded)."""
        self.kill()
        self._telemetry.counter("parallel.serial_fallbacks").inc()
        mog = MoGVectorized(
            self._shape, self._params, variant=self._variant,
            dtype=self._dtype, integrity=self._integrity,
            telemetry=self._telemetry,
        )
        mog.restore_state(self.last_state)
        self.fallback = mog
        return mog

    # -- request/response ----------------------------------------------
    def submit(self, stripe: np.ndarray) -> None:
        """Send one stripe; raises WorkerError if the worker is gone."""
        try:
            self._conn.send(("apply", stripe))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerError(
                f"stripe {self.index} worker (pid {self.pid}) is dead: "
                f"{exc!r}", stripe=self.index,
            ) from exc

    def collect(self, timeout_s: float) -> np.ndarray:
        """Receive one stripe result within ``timeout_s``."""
        try:
            if not self._conn.poll(timeout_s):
                self._telemetry.counter("parallel.timeouts").inc()
                alive = self._proc.is_alive()
                raise WorkerError(
                    f"stripe {self.index} worker (pid {self.pid}) "
                    f"{'is unresponsive' if alive else 'died'} "
                    f"(no result within {timeout_s:g}s)",
                    stripe=self.index,
                )
            msg = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._telemetry.counter("parallel.worker_deaths").inc()
            raise WorkerError(
                f"stripe {self.index} worker (pid {self.pid}) died "
                f"mid-frame: {exc!r}", stripe=self.index,
            ) from exc
        if msg[0] == "ok":
            if msg[2] is not None:
                self.last_state = msg[2]
            return msg[1]
        raise WorkerError(
            f"stripe {self.index} worker raised: {msg[1]}",
            stripe=self.index,
        )

    # -- shutdown ------------------------------------------------------
    def request_stop(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already gone; join/kill below deals with it

    def join(self, timeout_s: float) -> bool:
        """True if the process exited within ``timeout_s``."""
        if self._proc is None:
            return True
        self._proc.join(timeout_s)
        return not self._proc.is_alive()

    def kill(self) -> None:
        """Hard-stop the worker process and release its pipe."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(1.0)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join(1.0)
        if self._conn is not None:
            self._conn.close()
        self._conn = None
        self._proc = None


class ParallelMoG:
    """MoG over ``workers`` supervised processes, one row stripe each.

    Produces masks identical to the serial implementation (pixels are
    independent, and each stripe runs the same code on the same data);
    with ``fault_policy.policy="restart"`` and checkpointing (the
    default), this holds even across worker crashes.

    Parameters
    ----------
    shape, params, workers, variant, dtype:
        As before: frame geometry, MoG parameters, stripe count and
        algorithmic variant.
    fault_policy:
        :class:`~repro.config.FaultPolicy` governing timeouts and the
        reaction to worker loss. The default policy is ``"fail"``
        (raise a :class:`~repro.errors.WorkerError`), with a 30 s
        per-stripe timeout.
    telemetry:
        Optional shared :class:`~repro.telemetry.MetricsRegistry`; one
        is created if omitted. Exposed as :attr:`telemetry`.
    integrity:
        Optional :class:`~repro.config.IntegrityPolicy` applied inside
        every stripe worker (and any serial fallback), so soft errors
        in a worker's mixture state are detected/repaired per stripe.

    Notes
    -----
    Each worker owns its stripe's mixture state for the whole run, so
    stripes must be processed *in frame order*; the supervisor submits
    one stripe per worker per frame and collects in stripe order with a
    bounded timeout.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        workers: int = 4,
        variant: str = "nosort",
        dtype: str = "double",
        fault_policy: FaultPolicy | None = None,
        telemetry: MetricsRegistry | None = None,
        integrity=None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if shape[0] < workers:
            raise ConfigError(
                f"cannot split {shape[0]} rows into {workers} stripes"
            )
        if variant not in VARIANTS:
            raise ConfigError(f"unknown variant {variant!r}")
        self.shape = tuple(shape)
        self.params = params or MoGParams()
        self.workers = workers
        self.variant = variant
        self.dtype = dtype
        self.fault_policy = fault_policy or FaultPolicy()
        self.telemetry = telemetry or MetricsRegistry()
        bounds = np.linspace(0, shape[0], workers + 1).astype(int)
        self._stripes = [
            (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        # Prefer fork where available: no __main__ re-import (works from
        # REPLs and piped scripts) and cheap worker start-up.
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self._workers: list[_StripeWorker] = []
        try:
            for i, (lo, hi) in enumerate(self._stripes):
                self._workers.append(_StripeWorker(
                    ctx, i, (lo, hi), (hi - lo, shape[1]), self.params,
                    variant, dtype, self.fault_policy, self.telemetry,
                    integrity=integrity,
                ))
        except BaseException:
            for w in self._workers:
                w.kill()
            raise
        self._closed = False

    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int | None]:
        """Current worker PID per stripe (``None`` for fallen-back
        stripes) — supervision/test hook."""
        return [None if w.fallback is not None else w.pid
                for w in self._workers]

    def stripe_status(self) -> list[dict]:
        """Per-stripe supervision view: mode, pid, restart count."""
        return [
            {
                "stripe": w.index,
                "rows": w.bounds,
                "mode": "fallback" if w.fallback is not None else "worker",
                "pid": None if w.fallback is not None else w.pid,
                "restarts": w.restarts,
            }
            for w in self._workers
        ]

    # ------------------------------------------------------------------
    def _handle_fault(
        self, worker: _StripeWorker, stripe: np.ndarray, cause: WorkerError,
    ) -> np.ndarray:
        """Apply the fault policy to a failed stripe; returns its mask."""
        policy = self.fault_policy
        if policy.policy == "serial_fallback":
            return worker.to_fallback().apply(stripe)
        if policy.policy == "restart":
            last = cause
            while worker.restarts < policy.max_restarts:
                worker.restart()
                try:
                    worker.submit(stripe)
                    return worker.collect(policy.timeout_s)
                except WorkerError as exc:
                    last = exc
            raise WorkerError(
                f"stripe {worker.index} exhausted its restart budget "
                f"({policy.max_restarts}): {last}", stripe=worker.index,
            ) from last
        worker.kill()  # policy == "fail": don't leave a zombie behind
        raise cause

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame in parallel; returns the foreground mask.

        Never blocks longer than ``fault_policy.timeout_s`` per stripe
        (plus restart turnaround when the policy retries).
        """
        if self._closed:
            raise ConfigError("ParallelMoG is closed")
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        t0 = time.perf_counter()
        masks: list[np.ndarray | None] = [None] * self.workers
        faults: list[tuple[_StripeWorker, WorkerError]] = []
        # Phase 1: submit every live stripe (a send to a dead worker is
        # itself a fault, handled after the healthy stripes finish).
        for w in self._workers:
            if w.fallback is None:
                try:
                    w.submit(frame[w.bounds[0]:w.bounds[1]])
                except WorkerError as exc:
                    self.telemetry.counter("parallel.worker_deaths").inc()
                    faults.append((w, exc))
        # Phase 2: fallen-back stripes compute in-process while the
        # workers run in the background.
        for w in self._workers:
            if w.fallback is not None:
                masks[w.index] = w.fallback.apply(
                    frame[w.bounds[0]:w.bounds[1]]
                )
        # Phase 3: bounded-timeout collection, then fault handling.
        for w in self._workers:
            if masks[w.index] is not None or any(f[0] is w for f in faults):
                continue
            try:
                masks[w.index] = w.collect(self.fault_policy.timeout_s)
            except WorkerError as exc:
                faults.append((w, exc))
        for w, exc in faults:
            masks[w.index] = self._handle_fault(
                w, frame[w.bounds[0]:w.bounds[1]], exc
            )
        self.telemetry.counter("parallel.frames").inc()
        self.telemetry.histogram("parallel.apply_s").observe(
            time.perf_counter() - t0
        )
        return np.concatenate(masks, axis=0)

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def close(self, timeout_s: float | None = None) -> None:
        """Shut the workers down gracefully.

        Each worker is asked to drain its queue and exit; only workers
        still alive after ``timeout_s`` (default
        ``fault_policy.shutdown_timeout_s``) are terminated, and each
        escalation is counted in ``parallel.forced_terminations``.
        """
        if self._closed:
            return
        self._closed = True
        if timeout_s is None:
            timeout_s = self.fault_policy.shutdown_timeout_s
        live = [w for w in self._workers if w.fallback is None]
        for w in live:
            w.request_stop()
        deadline = time.monotonic() + timeout_s
        for w in live:
            if not w.join(max(deadline - time.monotonic(), 0.0)):
                self.telemetry.counter("parallel.forced_terminations").inc()
            w.kill()  # no-op if already exited; releases the pipe

    def __enter__(self) -> "ParallelMoG":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_speedup_probe(
    shape: tuple[int, int] = (240, 320),
    num_frames: int = 12,
    workers: int = 4,
    params: MoGParams | None = None,
) -> dict[str, float]:
    """Measure serial vs parallel wall-clock on synthetic frames.

    Returns ``{"serial_s", "parallel_s", "speedup"}`` — this machine's
    analogue of the paper's 227.3 s -> 99.8 s OpenMP row.
    """
    from ..video.scenes import evaluation_scene

    video = evaluation_scene(height=shape[0], width=shape[1])
    frames = [video.frame(t) for t in range(num_frames)]
    params = params or MoGParams()

    serial = MoGVectorized(shape, params, variant="nosort")
    t0 = time.perf_counter()
    serial_masks = serial.apply_sequence(frames)
    serial_s = time.perf_counter() - t0

    with ParallelMoG(shape, params, workers=workers) as par:
        par.apply(frames[0])  # warm the pipes outside the timed region
        t0 = time.perf_counter()
        for f in frames[1:]:
            par.apply(f)
        parallel_s = (time.perf_counter() - t0) * num_frames / (num_frames - 1)

    del serial_masks
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
    }


# ---------------------------------------------------------------------------
# Shared-memory frame rings (the sharded server's ingest transport)
# ---------------------------------------------------------------------------

_RING_HEADER = 24  # head u64 | tail u64 | reserved u64
_SLOT_HEADER = 16  # stream u32 | pad u32 | seq u64


class FrameRing:
    """Single-producer single-consumer frame ring over
    :class:`multiprocessing.shared_memory.SharedMemory`.

    The sharded server's ingest path: the gateway writes frames
    directly into the shard's ring (one memcpy, no pickling), the
    shard process copies them out as it admits them into its
    in-process :class:`~repro.serve.StreamServer`. Each slot carries a
    ``(stream_id, seq)`` header so the consumer can route the frame
    and keep the gateway's submission sequence numbers aligned with
    its own.

    Synchronisation is deliberately lock-free *polling* on two
    monotonically increasing u64 cursors (``head`` written only by the
    producer, ``tail`` only by the consumer): a SIGKILLed peer can
    never leave a semaphore locked, which is exactly the failure the
    sharded tier's chaos tests exercise. Payload writes precede the
    cursor publish, which is sufficient ordering on the
    total-store-order hardware this repo targets (and far stronger
    than needed under CPython's per-op bytecode granularity).

    Frames are fixed ``shape``/``dtype``, declared at creation; both
    sides map per-slot NumPy views once and reuse them.
    """

    def __init__(self, shm, shape, dtype, capacity, *, owner):
        import struct

        self._struct = struct
        self._shm = shm
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.capacity = int(capacity)
        self._owner = owner
        self._frame_bytes = int(np.prod(self.shape)) * self.dtype.itemsize
        self._slot_bytes = _SLOT_HEADER + self._frame_bytes
        buf = shm.buf
        self._views = []
        for i in range(self.capacity):
            off = _RING_HEADER + i * self._slot_bytes + _SLOT_HEADER
            self._views.append(
                np.ndarray(self.shape, dtype=self.dtype, buffer=buf, offset=off)
            )

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, shape, dtype, capacity) -> "FrameRing":
        """Allocate a fresh ring (call from the owning/parent process)."""
        from multiprocessing import shared_memory

        frame_bytes = int(np.prod(tuple(shape))) * np.dtype(dtype).itemsize
        size = _RING_HEADER + capacity * (_SLOT_HEADER + frame_bytes)
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, shape, dtype, capacity, owner=True)

    @classmethod
    def attach(cls, name, shape, dtype, capacity) -> "FrameRing":
        """Map an existing ring by name (call from the shard process)."""
        from multiprocessing import resource_tracker, shared_memory

        # Python <= 3.12 registers every attach with the resource
        # tracker, which unlinks the segment when *this* process exits
        # -- yanking it out from under the owner (and, under fork,
        # corrupting the owner's own registration in the shared
        # tracker). Suppress registration for the attach: the owner
        # alone tracks and unlinks.
        orig = resource_tracker.register

        def _no_track(name_, rtype):
            if rtype != "shared_memory":
                orig(name_, rtype)

        resource_tracker.register = _no_track
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig
        return cls(shm, shape, dtype, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Unmap (and, in the owner, unlink) the segment."""
        views, self._views = self._views, []
        del views
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    # -- cursors -----------------------------------------------------------

    def _load(self, offset: int) -> int:
        return self._struct.unpack_from("<Q", self._shm.buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        self._struct.pack_into("<Q", self._shm.buf, offset, value)

    def __len__(self) -> int:
        return self._load(0) - self._load(8)

    # -- producer ----------------------------------------------------------

    def push(self, stream: int, seq: int, frame: np.ndarray,
             timeout_s: float = 0.0) -> bool:
        """Write one frame; returns False if the ring stayed full past
        ``timeout_s`` (backpressure -- the shard is behind)."""
        deadline = time.monotonic() + timeout_s
        head = self._load(0)
        wait = 0.0002
        while head - self._load(8) >= self.capacity:
            if timeout_s <= 0 or time.monotonic() >= deadline:
                return False
            # Exponential backoff: a full ring means the consumer is
            # compute-bound, and waking every 0.2 ms would steal CPU
            # slices from the very process we are waiting on.
            time.sleep(wait)
            wait = min(wait * 2, 0.002)
        idx = head % self.capacity
        self._views[idx][...] = frame
        self._struct.pack_into(
            "<IIQ", self._shm.buf,
            _RING_HEADER + idx * self._slot_bytes, stream, 0, seq,
        )
        self._store(0, head + 1)
        return True

    # -- consumer ----------------------------------------------------------

    def pop(self, timeout_s: float = 0.0):
        """Read one frame as ``(stream, seq, frame_copy)``, or None if
        the ring stayed empty past ``timeout_s``."""
        deadline = time.monotonic() + timeout_s
        tail = self._load(8)
        wait = 0.0002
        while self._load(0) <= tail:
            if timeout_s <= 0 or time.monotonic() >= deadline:
                return None
            time.sleep(wait)
            wait = min(wait * 2, 0.002)
        idx = tail % self.capacity
        stream, _, seq = self._struct.unpack_from(
            "<IIQ", self._shm.buf, _RING_HEADER + idx * self._slot_bytes
        )
        frame = self._views[idx].copy()
        self._store(8, tail + 1)
        return stream, seq, frame
