"""Data-parallel CPU MoG over row stripes, one process per stripe.

The paper's multi-threaded baseline is an 8-thread OpenMP build; the
Python equivalent is a process pool (the GIL rules out threads for
NumPy-light per-pixel work). MoG is embarrassingly parallel across
pixels, so the frame splits into horizontal stripes and each worker
owns the mixture state of its stripe for the whole run — only the
stripe's input pixels and output mask cross the process boundary, as
buffer-typed (pickle-5 / out-of-band) payloads.

This is a *real* measured implementation, used by the examples and the
parallel tests; the paper-reproduction speedup numbers use the analytic
:class:`~repro.cpu.model.CpuTimeModel` instead (DESIGN.md §2).
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ..config import MoGParams
from ..errors import ConfigError
from ..mog.vectorized import VARIANTS, MoGVectorized

# Worker-process state: one MoG per stripe, created by the initializer
# and reused across frames (states must persist between apply calls).
_WORKER_MOG: MoGVectorized | None = None


def _init_worker(shape, params, variant, dtype) -> None:
    global _WORKER_MOG
    _WORKER_MOG = MoGVectorized(shape, params, variant=variant, dtype=dtype)


def _apply_worker(stripe: np.ndarray) -> np.ndarray:
    assert _WORKER_MOG is not None, "worker not initialised"
    return _WORKER_MOG.apply(stripe)


class ParallelMoG:
    """MoG over ``workers`` processes, one row stripe each.

    Produces masks identical to the serial implementation (pixels are
    independent, and each stripe runs the same code on the same data).

    Notes
    -----
    Each worker must process the stripes *in frame order*; the pool
    maps one stripe per worker per frame, and chunk assignment is
    pinned by splitting the frame into exactly ``workers`` stripes.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        workers: int = 4,
        variant: str = "nosort",
        dtype: str = "double",
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if shape[0] < workers:
            raise ConfigError(
                f"cannot split {shape[0]} rows into {workers} stripes"
            )
        if variant not in VARIANTS:
            raise ConfigError(f"unknown variant {variant!r}")
        self.shape = tuple(shape)
        self.params = params or MoGParams()
        self.workers = workers
        self.variant = variant
        self.dtype = dtype
        bounds = np.linspace(0, shape[0], workers + 1).astype(int)
        self._stripes = list(zip(bounds[:-1], bounds[1:]))
        # Prefer fork where available: no __main__ re-import (works from
        # REPLs and piped scripts) and cheap worker start-up.
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        # One single-stripe pool per worker keeps stripe->process
        # affinity (each process owns exactly one stripe's state).
        self._pools = [
            ctx.Pool(
                1,
                initializer=_init_worker,
                initargs=(
                    (hi - lo, shape[1]), self.params, variant, dtype
                ),
            )
            for lo, hi in self._stripes
        ]
        self._closed = False

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame in parallel; returns the foreground mask."""
        if self._closed:
            raise ConfigError("ParallelMoG is closed")
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        async_results = [
            pool.apply_async(_apply_worker, (frame[lo:hi],))
            for pool, (lo, hi) in zip(self._pools, self._stripes)
        ]
        return np.concatenate([r.get() for r in async_results], axis=0)

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def close(self) -> None:
        if not self._closed:
            for pool in self._pools:
                pool.terminate()
                pool.join()
            self._closed = True

    def __enter__(self) -> "ParallelMoG":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_speedup_probe(
    shape: tuple[int, int] = (240, 320),
    num_frames: int = 12,
    workers: int = 4,
    params: MoGParams | None = None,
) -> dict[str, float]:
    """Measure serial vs parallel wall-clock on synthetic frames.

    Returns ``{"serial_s", "parallel_s", "speedup"}`` — this machine's
    analogue of the paper's 227.3 s -> 99.8 s OpenMP row.
    """
    from ..video.scenes import evaluation_scene

    video = evaluation_scene(height=shape[0], width=shape[1])
    frames = [video.frame(t) for t in range(num_frames)]
    params = params or MoGParams()

    serial = MoGVectorized(shape, params, variant="nosort")
    t0 = time.perf_counter()
    serial_masks = serial.apply_sequence(frames)
    serial_s = time.perf_counter() - t0

    with ParallelMoG(shape, params, workers=workers) as par:
        par.apply(frames[0])  # warm the pools outside the timed region
        t0 = time.perf_counter()
        for f in frames[1:]:
            par.apply(f)
        parallel_s = (time.perf_counter() - t0) * num_frames / (num_frames - 1)

    del serial_masks
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
    }
