"""Process-parallel CPU execution (the paper's 8-thread OpenMP stand-in)."""

from .frames import ParallelMoG, parallel_speedup_probe

__all__ = ["ParallelMoG", "parallel_speedup_probe"]
