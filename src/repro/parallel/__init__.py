"""Process-parallel CPU execution (the paper's 8-thread OpenMP stand-in)."""

from .frames import FrameRing, ParallelMoG, parallel_speedup_probe

__all__ = ["FrameRing", "ParallelMoG", "parallel_speedup_probe"]
