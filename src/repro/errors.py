"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch everything from the library with one ``except`` clause
while still letting genuine programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class LaunchError(ReproError):
    """A simulated kernel launch was malformed (grid/block mismatch,
    missing buffers, over-subscribed shared memory, ...)."""


class MemoryModelError(ReproError):
    """An access fell outside an allocated simulated buffer, or an
    allocation could not be satisfied."""


class KernelDivergenceError(ReproError):
    """The kernel DSL was used outside a kernel context, or control-flow
    contexts were closed out of order."""


class VideoError(ReproError):
    """A frame source produced inconsistent frames (shape/dtype drift),
    or a scene configuration is unsatisfiable."""


class MetricError(ReproError, ValueError):
    """Inputs to a quality metric were unusable (wrong shape, too small
    for the requested number of scales, ...)."""


class BackpressureError(ReproError):
    """A frame could not be admitted to a stream's bounded input queue:
    the queue is full under the ``"reject"`` policy, or a ``"block"``
    submit did not find space within its timeout.

    Attributes
    ----------
    stream_id:
        Id of the stream whose queue rejected the frame.
    """

    def __init__(self, message: str, stream_id: str | None = None) -> None:
        super().__init__(message)
        self.stream_id = stream_id


class IntegrityError(ReproError):
    """Mixture-state integrity was violated: the validator found
    non-finite fields, weights outside their provable bounds, or
    variances outside the clamp range (a soft error reached the model),
    or the simulated ECC hit an uncorrectable multi-bit memory error.

    Attributes
    ----------
    frame_index:
        Frame at which the violation was detected, or ``None``.
    pixels:
        Number of pixels flagged, or ``None``.
    """

    def __init__(
        self,
        message: str,
        frame_index: int | None = None,
        pixels: int | None = None,
    ) -> None:
        super().__init__(message)
        self.frame_index = frame_index
        self.pixels = pixels


class CheckpointError(ReproError):
    """A durable checkpoint could not be written, or a checkpoint file
    failed validation on read: bad magic, unsupported schema version,
    truncation, CRC mismatch, or a configuration mismatch with the
    model being restored."""


class InjectedFault(ReproError):
    """An error deliberately raised by the fault-injection harness
    (:class:`repro.faults.FaultInjector` in serve-layer ``"raise"``
    mode) — lets tests distinguish injected failures from real ones."""


class JitUnavailableError(ReproError):
    """The compiled (numba) kernel engine was requested but cannot run
    in this process — numba is not installed or failed to import. The
    message carries the probe's reason; callers that can degrade (the
    ``backend="jit"`` subtractor path) catch this and fall back to the
    ``cpu`` backend with a warning and a ``jit.fallbacks`` counter."""


class WorkerError(ReproError):
    """A parallel stripe worker failed: its process died (e.g. was
    OOM-killed), it did not answer within the configured timeout, its
    initializer raised at startup, or it raised while processing a
    stripe and the fault policy chose to surface the failure.

    Attributes
    ----------
    stripe:
        Index of the stripe whose worker failed, or ``None`` when the
        failure is not attributable to a single stripe.
    """

    def __init__(self, message: str, stripe: int | None = None) -> None:
        super().__init__(message)
        self.stripe = stripe
