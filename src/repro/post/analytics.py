"""Fused-analytics oracle and host-side integral-histogram analytics.

:func:`run_fused_stages` is the NumPy oracle of the fused kernel tail
(:mod:`repro.kernels.fusion`): it mirrors the emitted expressions one
for one *in the run dtype*, so fused masks, shadow maps and class maps
are pinned bit-identical against it at every optimization level in
both float32 and float64 (tests enforce this).  It also serves the CPU
backend, which runs the same stages after the vectorized MoG update.

The remaining functions are the host-side consumers of the fused
``histogram`` stage: a per-class integral histogram (summed-area
table), O(1) per-region class counts derived from it, and the
occupancy heatmap surfaced by ``repro track --fuse``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..kernels.common import KernelConfig
from ..kernels.fusion import CLASS_BACKGROUND, CLASS_FOREGROUND, CLASS_SHADOW
from ..kernels.ir import canonical_fused_stages

__all__ = [
    "FusedFrame",
    "background_estimate",
    "run_fused_stages",
    "integral_histogram",
    "region_counts",
    "occupancy_heatmap",
    "record_fused_telemetry",
]

NUM_CLASSES = 3


@dataclass(frozen=True)
class FusedFrame:
    """Per-frame outputs of the fused post stages."""

    mask: np.ndarray            # refined boolean foreground mask
    shadow: np.ndarray | None   # boolean shadow map ("shadow" stage)
    classes: np.ndarray | None  # uint8 class map ("histogram" stage)


def background_estimate(w, m, dtype) -> np.ndarray:
    """Max-weight component's mean, clipped to the 8-bit pixel range.

    First maximum wins on weight ties, matching both ``np.argmax`` in
    ``MixtureState.background_image`` and the select chain in the
    fused kernel tail.  ``w``/``m`` are ``(K, ...)`` arrays in the run
    dtype; the clip constants are cast to it so float32 stays float32.
    """
    w = np.asarray(w)
    m = np.asarray(m)
    t = np.dtype(dtype).type
    best_w = w[0]
    best_m = m[0]
    for k in range(1, w.shape[0]):
        better = w[k] > best_w
        best_w = np.where(better, w[k], best_w)
        best_m = np.where(better, m[k], best_m)
    return np.minimum(np.maximum(best_m, t(0.0)), t(255.0))


def run_fused_stages(frame, w, m, mask, stages, cfg: KernelConfig) -> FusedFrame:
    """NumPy oracle of the fused kernel tail.

    ``frame`` is the uint8 frame, ``w``/``m`` the *updated* mixture
    state (``(K, ...)`` with trailing dims matching the frame), and
    ``mask`` the raw MoG foreground decision for the same frame.
    ``cfg`` carries the run dtype and the pre-cast stage thresholds.
    """
    stages = canonical_fused_stages(stages)
    frame = np.asarray(frame)
    shape = frame.shape
    t = cfg.dtype.type
    x = frame.reshape(-1).astype(cfg.dtype)
    k_count = int(np.asarray(w).shape[0])
    bg = background_estimate(
        np.asarray(w).reshape(k_count, -1),
        np.asarray(m).reshape(k_count, -1),
        cfg.dtype,
    )
    fg = (np.asarray(mask).reshape(-1) != 0).copy()
    shadow_flat = None
    classes = None
    if "threshold" in stages:
        d = np.abs(x - bg)
        fg &= d >= t(cfg.min_contrast)
    if "shadow" in stages:
        ratio = x / np.maximum(bg, t(1.0))
        shadow_flat = (
            fg
            & (ratio >= t(cfg.shadow_alpha_low))
            & (ratio < t(cfg.shadow_alpha_high))
        )
        fg &= ~shadow_flat
    if "histogram" in stages:
        classes = np.full(x.shape, CLASS_BACKGROUND, np.uint8)
        if shadow_flat is not None:
            classes[shadow_flat] = CLASS_SHADOW
        classes[fg] = CLASS_FOREGROUND
        classes = classes.reshape(shape)
    return FusedFrame(
        mask=fg.reshape(shape),
        shadow=None if shadow_flat is None else shadow_flat.reshape(shape),
        classes=classes,
    )


# ----------------------------------------------------------------------
# Integral-histogram analytics (consumers of the class map)
# ----------------------------------------------------------------------
def integral_histogram(
    classes: np.ndarray, num_classes: int = NUM_CLASSES
) -> np.ndarray:
    """Per-class summed-area tables.

    ``ii[c, y, x]`` is the number of pixels of class ``c`` in the
    inclusive rectangle ``[0..y, 0..x]`` — any axis-aligned region's
    class histogram is then four lookups (see :func:`region_counts`).
    """
    classes = np.asarray(classes)
    if classes.ndim != 2:
        raise ConfigError(
            f"expected a 2-D class map, got shape {classes.shape}"
        )
    planes = np.stack(
        [(classes == c).astype(np.int64) for c in range(num_classes)]
    )
    return planes.cumsum(axis=1).cumsum(axis=2)


def _grid_edges(size: int, cells: int) -> list[int]:
    if cells < 1 or cells > size:
        raise ConfigError(
            f"grid of {cells} cells does not fit a dimension of {size}"
        )
    return [round(i * size / cells) for i in range(cells + 1)]


def region_counts(
    classes: np.ndarray,
    grid: tuple[int, int] = (4, 4),
    num_classes: int = NUM_CLASSES,
) -> np.ndarray:
    """Per-region class counts from the integral histogram.

    Returns ``(grid_h, grid_w, num_classes)`` int64 counts; each region
    query is O(1) in the summed-area tables.
    """
    classes = np.asarray(classes)
    ii = integral_histogram(classes, num_classes)
    h, w = classes.shape
    padded = np.zeros((num_classes, h + 1, w + 1), np.int64)
    padded[:, 1:, 1:] = ii
    ys = _grid_edges(h, grid[0])
    xs = _grid_edges(w, grid[1])
    counts = np.zeros((grid[0], grid[1], num_classes), np.int64)
    for i in range(grid[0]):
        for j in range(grid[1]):
            y0, y1, x0, x1 = ys[i], ys[i + 1], xs[j], xs[j + 1]
            counts[i, j] = (
                padded[:, y1, x1]
                - padded[:, y0, x1]
                - padded[:, y1, x0]
                + padded[:, y0, x0]
            )
    return counts


def occupancy_heatmap(
    mask: np.ndarray, grid: tuple[int, int] = (4, 4)
) -> np.ndarray:
    """Fraction of foreground pixels per grid region (float64)."""
    mask = (np.asarray(mask) != 0).astype(np.uint8)
    counts = region_counts(mask, grid, num_classes=2)
    totals = counts.sum(axis=2)
    return counts[:, :, 1] / np.maximum(totals, 1)


def record_fused_telemetry(
    telemetry,
    mask: np.ndarray,
    shadow: np.ndarray | None = None,
    classes: np.ndarray | None = None,
    grid: tuple[int, int] = (4, 4),
) -> None:
    """Record one fused frame's analytics into a metrics registry.

    Keys: ``fusion.frames``, ``fusion.motion_pixels``,
    ``fusion.shadow_pixels`` (counters) and per-region
    ``fusion.occupancy.r<i>c<j>`` gauges.
    """
    if telemetry is None or not telemetry.enabled:
        return
    telemetry.counter("fusion.frames").inc()
    telemetry.counter("fusion.motion_pixels").inc(int(np.sum(mask != 0)))
    if shadow is not None:
        telemetry.counter("fusion.shadow_pixels").inc(int(np.sum(shadow != 0)))
    occ = occupancy_heatmap(mask, grid)
    for i in range(grid[0]):
        for j in range(grid[1]):
            telemetry.gauge(f"fusion.occupancy.r{i}c{j}").set(float(occ[i, j]))
    if classes is not None:
        telemetry.counter("fusion.class_frames").inc()
