"""Morphological cleanup of raw MoG foreground masks.

Raw per-pixel background subtraction is noisy: isolated salt pixels
from the sensor-noise tail, and pinholes inside objects whose interior
happens to match a background component. The classical remedy, applied
by every deployment the paper's introduction lists, is a morphological
open (remove speckles) followed by a close (fill holes) and a minimum
blob size. This module packages that on :mod:`scipy.ndimage`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigError


def _disk(radius: int) -> np.ndarray:
    """A disk-shaped structuring element."""
    if radius <= 0:
        raise ConfigError(f"structuring radius must be positive, got {radius}")
    d = 2 * radius + 1
    yy, xx = np.mgrid[0:d, 0:d]
    return (yy - radius) ** 2 + (xx - radius) ** 2 <= radius**2


def clean_mask(
    mask: np.ndarray,
    open_radius: int = 1,
    close_radius: int = 2,
    min_area: int = 0,
) -> np.ndarray:
    """Clean a boolean foreground mask.

    Parameters
    ----------
    open_radius:
        Radius of the opening element (removes blobs thinner than
        roughly ``2*open_radius``); 0 skips the opening.
    close_radius:
        Radius of the closing element (fills holes/gaps narrower than
        roughly ``2*close_radius``); 0 skips the closing.
    min_area:
        Connected components smaller than this many pixels are dropped.

    Returns a new boolean mask; the input is untouched.
    """
    mask = np.asarray(mask) != 0
    if mask.ndim != 2:
        raise ConfigError(f"expected a 2-D mask, got shape {mask.shape}")
    if min_area < 0:
        raise ConfigError(f"min_area must be non-negative, got {min_area}")
    out = mask
    if open_radius > 0:
        out = ndimage.binary_opening(out, structure=_disk(open_radius))
    if close_radius > 0:
        out = ndimage.binary_closing(out, structure=_disk(close_radius))
    if min_area > 0:
        labels, count = ndimage.label(out)
        if count:
            areas = np.bincount(labels.reshape(-1))
            keep = areas >= min_area
            keep[0] = False  # background label
            out = keep[labels]
    return out.astype(bool)


@dataclass(frozen=True)
class Component:
    """One connected foreground blob."""

    label: int
    area: int
    bbox: tuple[int, int, int, int]  # (top, left, bottom, right) exclusive
    centroid: tuple[float, float]


def connected_components(mask: np.ndarray) -> list[Component]:
    """Connected components of a mask, largest first — the hand-off
    point to tracking/detection stages downstream of background
    subtraction."""
    mask = np.asarray(mask) != 0
    if mask.ndim != 2:
        raise ConfigError(f"expected a 2-D mask, got shape {mask.shape}")
    labels, count = ndimage.label(mask)
    out: list[Component] = []
    if count == 0:
        return out
    slices = ndimage.find_objects(labels)
    centroids = ndimage.center_of_mass(mask, labels, range(1, count + 1))
    areas = np.bincount(labels.reshape(-1))
    for i, (sl, com) in enumerate(zip(slices, centroids), start=1):
        out.append(
            Component(
                label=i,
                area=int(areas[i]),
                bbox=(sl[0].start, sl[1].start, sl[0].stop, sl[1].stop),
                centroid=(float(com[0]), float(com[1])),
            )
        )
    out.sort(key=lambda c: c.area, reverse=True)
    return out


class MaskCleaner:
    """Configured cleanup pipeline for mask sequences."""

    def __init__(
        self, open_radius: int = 1, close_radius: int = 2, min_area: int = 0
    ) -> None:
        if open_radius < 0 or close_radius < 0:
            raise ConfigError("radii must be non-negative")
        if min_area < 0:
            raise ConfigError("min_area must be non-negative")
        self.open_radius = open_radius
        self.close_radius = close_radius
        self.min_area = min_area

    def __call__(self, mask: np.ndarray) -> np.ndarray:
        return clean_mask(
            mask, self.open_radius, self.close_radius, self.min_area
        )

    def apply_sequence(self, masks) -> np.ndarray:
        cleaned = [self(m) for m in masks]
        if not cleaned:
            raise ConfigError("empty mask sequence")
        return np.stack(cleaned)
