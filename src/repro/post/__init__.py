"""Foreground-mask post-processing (deployment-side cleanup)."""

from .analytics import (
    FusedFrame,
    background_estimate,
    integral_histogram,
    occupancy_heatmap,
    record_fused_telemetry,
    region_counts,
    run_fused_stages,
)
from .morphology import MaskCleaner, clean_mask, connected_components
from .shadows import ShadowParams, detect_shadows, suppress_shadows

__all__ = [
    "FusedFrame",
    "MaskCleaner",
    "background_estimate",
    "clean_mask",
    "connected_components",
    "integral_histogram",
    "occupancy_heatmap",
    "record_fused_telemetry",
    "region_counts",
    "run_fused_stages",
    "ShadowParams",
    "detect_shadows",
    "suppress_shadows",
]
