"""Foreground-mask post-processing (deployment-side cleanup)."""

from .morphology import MaskCleaner, clean_mask, connected_components
from .shadows import ShadowParams, detect_shadows, suppress_shadows

__all__ = [
    "MaskCleaner",
    "clean_mask",
    "connected_components",
    "ShadowParams",
    "detect_shadows",
    "suppress_shadows",
]
