"""Chromaticity-based shadow suppression for color subtraction.

Cast shadows are the classic false positive of background subtraction:
a shadowed pixel is a *darker version of the background color*, not a
new object. With an RGB background estimate available (the color MoG's
:meth:`~repro.mog.color.ColorMoGVectorized.background_image`), the
standard test (Horprasert-style) projects the observed color onto the
background color:

    alpha = <f, b> / <b, b>          (brightness ratio)
    dist  = || f - alpha * b ||      (chromatic distortion)

A foreground pixel is reclassified as shadow when it is a dimmed
(``alpha_low <= alpha < alpha_high``) and chromatically faithful
(``dist < max_distortion``) copy of the background.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class ShadowParams:
    """Thresholds of the shadow test."""

    alpha_low: float = 0.45
    alpha_high: float = 0.95
    max_distortion: float = 18.0

    def __post_init__(self) -> None:
        # A shadow is a *dimmed* copy of the background, so the whole
        # brightness-ratio band must sit at or below 1: alpha_high > 1
        # would classify brightened pixels (highlights) as shadow.
        if not 0.0 < self.alpha_low < self.alpha_high <= 1.0:
            raise ConfigError(
                f"need 0 < alpha_low < alpha_high <= 1 (a shadow dims "
                f"the background), got {self.alpha_low}, {self.alpha_high}"
            )
        if self.max_distortion <= 0:
            raise ConfigError("max_distortion must be positive")


def detect_shadows(
    frame: np.ndarray,
    background: np.ndarray,
    mask: np.ndarray,
    params: ShadowParams | None = None,
) -> np.ndarray:
    """Boolean map of foreground pixels that are actually shadows."""
    params = params or ShadowParams()
    frame = np.asarray(frame, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    mask = np.asarray(mask) != 0
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ConfigError(f"expected an (H, W, 3) frame, got {frame.shape}")
    if background.shape != frame.shape:
        raise ConfigError(
            f"background shape {background.shape} != frame {frame.shape}"
        )
    if mask.shape != frame.shape[:2]:
        raise ConfigError(
            f"mask shape {mask.shape} != frame {frame.shape[:2]}"
        )

    bb = (background * background).sum(axis=2)
    fb = (frame * background).sum(axis=2)
    with np.errstate(divide="ignore", invalid="ignore"):
        alpha = np.where(bb > 0.0, fb / np.maximum(bb, 1e-12), 0.0)
    residual = frame - alpha[:, :, None] * background
    distortion = np.sqrt((residual * residual).sum(axis=2))
    shadow = (
        mask
        & (alpha >= params.alpha_low)
        & (alpha < params.alpha_high)
        & (distortion < params.max_distortion)
    )
    return shadow


def suppress_shadows(
    frame: np.ndarray,
    background: np.ndarray,
    mask: np.ndarray,
    params: ShadowParams | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Remove shadow pixels from a foreground mask.

    Returns ``(cleaned_mask, shadow_mask)``.
    """
    shadow = detect_shadows(frame, background, mask, params)
    return (np.asarray(mask) != 0) & ~shadow, shadow
