"""One function per table/figure of the paper's evaluation.

Every experiment returns an :class:`Experiment` whose rows mirror the
paper's rows/series, alongside the paper's published values where the
paper gives them, so benches can both print the comparison and assert
the *shape* (ordering, rough factors, crossovers — not absolute
nanoseconds; see DESIGN.md §2).

The :class:`ExperimentContext` memoises simulated runs so a bench
session does not re-run a level for every figure that references it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MoGParams, RunConfig
from ..core.pipeline import HostPipeline
from ..core.variants import OptimizationLevel, table_ii_rows, table_iii_rows
from ..cpu.model import CpuTimeModel, PAPER_BASELINES
from ..gpusim.device import hw_config_table
from ..metrics.ms_ssim import ms_ssim
from ..mog.vectorized import MoGVectorized
from ..video.scenes import evaluation_scene
from .harness import (
    BENCH_FRAMES,
    BENCH_SHAPE,
    BENCH_WARMUP,
    PAPER_BENCH_PARAMS,
    LevelResult,
    run_level,
)
from .reporting import format_table


@dataclass
class Experiment:
    """A reproduced table or figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def format(self) -> str:
        out = format_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")
        if self.notes:
            out += "\n" + self.notes
        return out

    def to_dict(self) -> dict:
        """JSON-serialisable form (benchmarks archive these)."""
        return {
            "id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[str(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }


#: The paper's Figure 8a / 10a / 11a speedups, for comparison columns.
PAPER_SPEEDUPS = {
    "A": 13.0, "B": 41.0, "C": 57.0, "D": 85.0, "E": 86.0, "F": 97.0, "G": 101.0,
}
PAPER_TABLE4 = {  # level -> (background %, foreground %)
    "A": (99, 99), "B": (99, 99), "C": (99, 96),
    "D": (99, 97), "E": (99, 97), "F": (99, 95),
}


class ExperimentContext:
    """Shared scene + memoised level runs for one bench session."""

    def __init__(
        self,
        shape: tuple[int, int] = BENCH_SHAPE,
        num_frames: int = BENCH_FRAMES,
        warmup: int = BENCH_WARMUP,
        params: MoGParams | None = None,
        seed: int = 5,
    ) -> None:
        self.shape = shape
        self.num_frames = num_frames
        self.warmup = warmup
        self.params = params or PAPER_BENCH_PARAMS
        self.video = evaluation_scene(
            height=shape[0], width=shape[1], seed=seed
        )
        self._frames: dict[int, list[np.ndarray]] = {}
        self._runs: dict[tuple, LevelResult] = {}

    def frames(self, count: int | None = None) -> list[np.ndarray]:
        count = count or self.num_frames
        if count not in self._frames:
            self._frames[count] = [self.video.frame(t) for t in range(count)]
        return self._frames[count]

    def run(
        self,
        level: str,
        num_gaussians: int | None = None,
        dtype: str = "double",
        frame_group: int | None = None,
        num_frames: int | None = None,
    ) -> LevelResult:
        """Memoised :func:`run_level` call."""
        k = num_gaussians or self.params.num_gaussians
        group = frame_group or RunConfig().frame_group
        if level == "G":
            # Keep whole groups so steady-state counters are clean.
            count = num_frames or max(self.num_frames, 2 * group)
            count = -(-count // group) * group
        else:
            count = num_frames or self.num_frames
        key = (level, k, dtype, group, count)
        if key not in self._runs:
            params = self.params.replace(num_gaussians=k)
            run_config = RunConfig(
                height=self.shape[0], width=self.shape[1],
                dtype=dtype, frame_group=group,
            )
            self._runs[key] = run_level(
                level, self.frames(count), self.shape,
                params=params, dtype=dtype, run_config=run_config,
                warmup_frames=min(self.warmup, max(count - group, 0))
                if level == "G" else min(self.warmup, count - 1),
            )
        return self._runs[key]


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1() -> Experiment:
    """Table I: HW configuration (static device descriptions)."""
    rows = [list(r) for r in hw_config_table()]
    return Experiment(
        "Table I", "HW Configuration", ["", "CPU", "GPU"], rows,
    )


def table2() -> Experiment:
    """Table II: general optimization levels."""
    rows = [[name, *marks] for name, marks in table_ii_rows()]
    return Experiment(
        "Table II", "General Optimization Levels", ["", "A", "B", "C"], rows,
    )


def table3() -> Experiment:
    """Table III: algorithm-specific optimization levels."""
    rows = [[name, *marks] for name, marks in table_iii_rows()]
    return Experiment(
        "Table III", "Algorithm-Specific Optimizations", ["", "D", "E", "F"], rows,
    )


def table4(ctx: ExperimentContext | None = None) -> Experiment:
    """Table IV: MS-SSIM quality of every level vs the CPU double
    ground truth (background model image and foreground masks)."""
    ctx = ctx or ExperimentContext()
    frames = ctx.frames()
    eval_start = ctx.warmup

    # Ground truth: the double-precision CPU (sorted) implementation.
    reference = MoGVectorized(ctx.shape, ctx.params, variant="sorted")
    ref_masks = reference.apply_sequence(frames)
    ref_bg = reference.background_image()

    # MS-SSIM needs >= 11 * 2^(scales-1) pixels per side.
    side = min(ctx.shape)
    scales = 5
    while scales > 1 and side < 11 * 2 ** (scales - 1):
        scales -= 1
    from ..metrics.ms_ssim import DEFAULT_WEIGHTS
    weights = DEFAULT_WEIGHTS[:scales]

    bg_row: list[object] = ["Background"]
    fg_row: list[object] = ["Foreground"]
    for level in "ABCDEF":
        result = ctx.run(level)
        masks = result.masks
        fg_scores = [
            ms_ssim(
                masks[t].astype(np.uint8) * 255,
                ref_masks[t].astype(np.uint8) * 255,
                weights=weights,
            )
            for t in range(eval_start, len(frames))
        ]
        # Background image via the bit-identical CPU variant of the
        # level's kernel (the equivalence is enforced by tests), which
        # avoids keeping every simulated pipeline alive.
        variant = OptimizationLevel.parse(level).spec.mog_variant
        cpu = MoGVectorized(ctx.shape, ctx.params, variant=variant)
        cpu.apply_sequence(frames)
        bg = cpu.background_image()
        bg_row.append(f"{ms_ssim(bg, ref_bg, weights=weights) * 100:.0f}%")
        fg_row.append(f"{float(np.mean(fg_scores)) * 100:.0f}%")
    paper_bg = ["paper"] + [f"{PAPER_TABLE4[lv][0]}%" for lv in "ABCDEF"]
    paper_fg = ["paper"] + [f"{PAPER_TABLE4[lv][1]}%" for lv in "ABCDEF"]
    return Experiment(
        "Table IV", "Result Quality for Different Optimizations",
        ["", "A", "B", "C", "D", "E", "F"],
        [bg_row, paper_bg, fg_row, paper_fg],
        notes=(
            "Every level is bit-identical to the CPU ground truth in this "
            "reproduction: the no-sort/predicated/regopt restructurings are "
            "provably decision-preserving (repro.mog.update, step 6 note). "
            "The paper's 95-97% foreground readings stem from compiler/FP "
            "artifacts on its platform; its headline claim — optimizations "
            "have practically no quality impact — holds here exactly."
        ),
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def fig6(ctx: ExperimentContext | None = None) -> Experiment:
    """Fig 6: architecture impact of the general optimizations."""
    ctx = ctx or ExperimentContext()
    from .harness import PAPER_SCALE

    pixel_ratio = PAPER_SCALE.num_pixels / (ctx.shape[0] * ctx.shape[1])
    rows = []
    for level in "ABC":
        r = ctx.run(level)
        m = r.metrics()
        rows.append(
            [
                level,
                f"{m['memory_access_efficiency'] * 100:.1f}%",
                f"{m['store_transactions_per_frame'] * pixel_ratio / 1e6:.2f}M",
                int(m["registers_per_thread"]),
                f"{m['occupancy'] * 100:.0f}%",
            ]
        )
    return Experiment(
        "Fig 6", "Architecture impact of general optimizations",
        ["level", "mem efficiency", "store tx/frame (full HD)", "regs", "occupancy"],
        rows,
        notes=(
            "paper: mem efficiency 17% (A) -> 78% (B); store transactions "
            "13.3M -> 2.0M at full HD; regs 30/36/36; occupancy drops B->C "
            "era values 67%/58%."
        ),
    )


def fig7(ctx: ExperimentContext | None = None) -> Experiment:
    """Fig 7: architecture impact of algorithm-specific optimizations."""
    ctx = ctx or ExperimentContext()
    from .harness import PAPER_SCALE

    pixel_ratio = PAPER_SCALE.num_pixels / (ctx.shape[0] * ctx.shape[1])
    rows = []
    for level in "CDEF":
        r = ctx.run(level)
        m = r.metrics()
        rows.append(
            [
                level,
                f"{m['branches_per_frame'] * pixel_ratio / 1e6:.2f}M",
                f"{m['branch_efficiency'] * 100:.2f}%",
                f"{m['memory_access_efficiency'] * 100:.1f}%",
                f"{m['transactions_per_frame'] * pixel_ratio / 1e6:.2f}M",
                int(m["registers_per_thread"]),
                f"{m['occupancy'] * 100:.0f}%",
            ]
        )
    return Experiment(
        "Fig 7", "Architecture impact of algorithm-specific optimizations",
        ["level", "branches/frame (full HD)", "branch eff", "mem eff",
         "tx/frame (full HD)", "regs", "occupancy"],
        rows,
        notes=(
            "paper: branches 6.7M -> 6.2M (C -> D), branch efficiency "
            "rising to 99.5% at E; regs 36/32/33/31; occupancy 52/61/56/65%."
        ),
    )


def fig8(ctx: ExperimentContext | None = None) -> Experiment:
    """Fig 8: speedup + efficiency summary over all levels."""
    ctx = ctx or ExperimentContext()
    rows = []
    for level in "ABCDEF":
        r = ctx.run(level)
        m = r.metrics()
        rows.append(
            [
                level,
                f"{r.speedup:.1f}x",
                f"{PAPER_SPEEDUPS[level]:.0f}x",
                f"{m['branch_efficiency'] * 100:.1f}%",
                f"{m['memory_access_efficiency'] * 100:.1f}%",
                f"{m['occupancy'] * 100:.0f}%",
            ]
        )
    return Experiment(
        "Fig 8", "Speedup and efficiency per optimization level",
        ["level", "speedup", "paper", "branch eff", "mem eff", "occupancy"],
        rows,
    )


def fig10(
    ctx: ExperimentContext | None = None,
    group_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> Experiment:
    """Fig 10: tiled (level G) performance over frame-group size."""
    ctx = ctx or ExperimentContext()
    from ..gpusim.dma import transfer_time
    from .harness import PAPER_SCALE

    rows = []
    for g in group_sizes:
        r = ctx.run("G", frame_group=g)
        m = r.metrics()
        # Latency until the *first* frame of a group is delivered: the
        # whole group must be transferred in, processed, and its mask
        # copied out (the paper: "an increased latency until a frame is
        # completely processed as frame group size increases").
        latency = (
            transfer_time(PAPER_SCALE.num_pixels * g)
            + r.kernel_time_per_frame * g
            + transfer_time(PAPER_SCALE.num_pixels * g)
        )
        rows.append(
            [
                g,
                f"{r.speedup:.1f}x",
                f"{m['memory_access_efficiency'] * 100:.1f}%",
                f"{m['occupancy'] * 100:.1f}%",
                f"{latency * 1e3:.0f} ms",
            ]
        )
    return Experiment(
        "Fig 10", "Tiled MoG over frame-group size",
        ["group", "speedup", "mem eff", "occupancy", "frame latency"],
        rows,
        notes=(
            "paper: speedup peaks around group 8 (101x) and does not "
            "improve further; memory efficiency falls >90% -> <60%; "
            "occupancy ~40%; per-frame latency grows with the group."
        ),
    )


def fig11(ctx: ExperimentContext | None = None) -> Experiment:
    """Fig 11: 3 vs 5 Gaussian components."""
    ctx = ctx or ExperimentContext()
    rows = []
    for level in "ABCDEF":
        r3 = ctx.run(level, num_gaussians=3)
        r5 = ctx.run(level, num_gaussians=5)
        m5 = r5.metrics()
        rows.append(
            [
                level,
                f"{r3.speedup:.1f}x",
                f"{r5.speedup:.1f}x",
                f"{m5['branch_efficiency'] * 100:.1f}%",
                f"{m5['memory_access_efficiency'] * 100:.1f}%",
                f"{m5['occupancy'] * 100:.0f}%",
            ]
        )
    return Experiment(
        "Fig 11", "Effect of the number of Gaussian components",
        ["level", "3G speedup", "5G speedup", "5G branch eff",
         "5G mem eff", "5G occupancy"],
        rows,
        notes="paper anchors: 5G general opts ~44x, algorithm-specific ~92x.",
    )


def fig12(ctx: ExperimentContext | None = None) -> Experiment:
    """Fig 12: double vs single precision."""
    ctx = ctx or ExperimentContext()
    rows = []
    for level in "ABCDEF":
        rd = ctx.run(level, dtype="double")
        rf = ctx.run(level, dtype="float")
        mf = rf.metrics()
        rows.append(
            [
                level,
                f"{rd.speedup:.1f}x",
                f"{rf.speedup:.1f}x",
                f"{mf['branch_efficiency'] * 100:.1f}%",
                f"{mf['memory_access_efficiency'] * 100:.1f}%",
                f"{mf['occupancy'] * 100:.0f}%",
            ]
        )
    return Experiment(
        "Fig 12", "Effect of the data type",
        ["level", "double speedup", "float speedup", "float branch eff",
         "float mem eff", "float occupancy"],
        rows,
        notes=(
            "paper: float reaches ~105x at E/F; register reduction (F) "
            "gives no extra gain in float because registers stop being "
            "the occupancy limiter."
        ),
    )


def embedded_study(ctx: ExperimentContext | None = None) -> Experiment:
    """The paper's future work (§VI), realised: MoG on an embedded GPU.

    Runs the fully-optimized level-F kernel on a Tegra-K1-class
    integrated GPU (:data:`repro.gpusim.device.TEGRA_K1`) and asks the
    question the paper poses: which resolution/precision points reach
    real time, and what has to be traded away? Transfers are zero-copy
    (shared DRAM), but bandwidth is ~10% of the discrete card's and
    double precision is nearly unusable — exactly the regime where the
    paper predicts quality/speed trade-offs.
    """
    ctx = ctx or ExperimentContext()
    from ..gpusim.device import TEGRA_K1
    from .harness import WorkloadScale, extrapolate

    resolutions = {
        "QVGA 320x240": (240, 320),
        "VGA 640x480": (480, 640),
        "720p": (720, 1280),
        "1080p": (1080, 1920),
    }
    rows = []
    for dtype in ("float", "double"):
        run_config = RunConfig(
            height=ctx.shape[0], width=ctx.shape[1], dtype=dtype
        )
        pipeline = HostPipeline(
            ctx.shape, ctx.params, OptimizationLevel.F,
            run_config=run_config, device=TEGRA_K1,
        )
        pipeline.process(ctx.frames())
        report = pipeline.report()
        for name, (h, w) in resolutions.items():
            scale = WorkloadScale(h * w, 120)
            _, total = extrapolate(
                report, scale, device=TEGRA_K1,
                warmup_launches=min(ctx.warmup, ctx.num_frames - 1),
            )
            fps = scale.num_frames / total
            verdict = "60 Hz" if fps >= 60 else ("30 Hz" if fps >= 30 else "below RT")
            rows.append([name, dtype, f"{fps:.1f}", verdict])
    return Experiment(
        "Embedded (future work)",
        "Level-F MoG throughput on a Tegra-K1-class integrated GPU",
        ["resolution", "dtype", "fps", "real-time?"],
        rows,
        notes=(
            "The paper's §VI expectation reproduces: the embedded part "
            "cannot carry full-HD MoG in double precision; real time "
            "requires single precision and/or a reduced resolution — "
            "quality traded for speed."
        ),
    )


def camera_jitter_study(ctx: ExperimentContext | None = None) -> Experiment:
    """Extension: the cost of violating the fixed-camera assumption.

    The paper scopes MoG to "deployments with fixed camera position"
    (§III-A). This experiment quantifies why: sustained false-positive
    rate on an object-free textured scene as camera shake grows.
    """
    ctx = ctx or ExperimentContext()
    from ..mog.vectorized import MoGVectorized
    from ..video.synthetic import SceneConfig, SyntheticVideo

    rows = []
    for jitter in (0, 1, 2, 4):
        cfg = SceneConfig(
            height=96, width=96, noise_sd=2.0,
            background_smoothness=6, jitter_px=jitter, seed=2,
        )
        video = SyntheticVideo(cfg)
        mog = MoGVectorized((96, 96), ctx.params)
        rates = [mog.apply(video.frame(t)).mean() for t in range(30)]
        sustained = float(np.mean(rates[-8:]))
        rows.append(
            [
                f"{jitter} px",
                f"{sustained * 100:.2f}%",
                "ok" if sustained < 0.005 else (
                    "degraded" if sustained < 0.02 else "unusable"
                ),
            ]
        )
    return Experiment(
        "Camera jitter (extension)",
        "Sustained false-positive rate vs camera shake (no true foreground)",
        ["jitter", "false-positive rate", "verdict"],
        rows,
        notes=(
            "MoG absorbs ~1 px of shake into its multimodal background; "
            "beyond that, scene edges turn into permanent foreground — "
            "the reason the paper (and MoG deployments) require a fixed "
            "camera."
        ),
    )


def cpu_baselines() -> Experiment:
    """§IV-A / §V-C: the CPU baseline model vs the paper's numbers."""
    model = CpuTimeModel()
    rows = []
    for (k, dtype, mode), paper_time in PAPER_BASELINES.items():
        got = model.paper_reference_time(k, dtype, mode)
        rows.append(
            [
                f"{k}G {dtype} {mode.value}",
                f"{got:.1f}s",
                f"{paper_time:.1f}s",
            ]
        )
    return Experiment(
        "CPU baselines", "CPU model vs paper (450 full-HD frames)",
        ["configuration", "model", "paper"], rows,
    )


def fusion_counters(ctx: ExperimentContext | None = None) -> Experiment:
    """Fusion pass before/after: global-memory transactions of the
    unfused post-kernel chain vs the fused kernel, per cumulative
    stage set.  Small fixed workload — the point is the counter delta,
    not throughput."""
    from ..core.variants import custom_level
    from ..kernels.ir import FusionPass

    shape = (32, 48)
    num_frames = 6
    video = evaluation_scene(height=shape[0], width=shape[1], seed=7)
    frames = [video.frame(t) for t in range(num_frames)]
    run_config = RunConfig(
        height=shape[0], width=shape[1], profile_every=1
    )

    def tx_per_frame(**kw):
        pipe = HostPipeline(
            shape, PAPER_BENCH_PARAMS, run_config=run_config, **kw
        )
        _, report = pipe.process(frames)
        return report.counters_per_frame.transactions

    cumulative = [
        ("threshold",),
        ("threshold", "shadow"),
        ("threshold", "shadow", "histogram"),
    ]
    base = OptimizationLevel.F
    rows = []
    for stages in cumulative:
        unfused = tx_per_frame(level=base, post_stages=stages)
        fused_level = custom_level(
            base.spec.passes + (FusionPass(stages),),
            name="F+fusion:" + "+".join(stages),
        )
        fused = tx_per_frame(level=fused_level)
        rows.append(
            [
                " + ".join(stages),
                f"{unfused:.0f}",
                f"{fused:.0f}",
                f"{unfused - fused:.0f}",
            ]
        )
    return Experiment(
        "Fusion",
        "Global-memory transactions: unfused post chain vs fused kernel",
        ["fused stages (cumulative)", "unfused tx/frame",
         "fused tx/frame", "eliminated/frame"],
        rows,
        notes=(
            "every fused stage eliminates at least one full frame of "
            "global read+write vs the standalone post-kernel chain "
            f"(level F, {shape[0]}x{shape[1]} px, {num_frames} frames)"
        ),
    )


def jit_speedup(ctx: ExperimentContext | None = None) -> Experiment:
    """Extension: the compiled (numba) backend vs the vectorized cpu
    backend, per optimization level.

    Wall-clock frames/s of ``backend="jit"`` against ``backend="cpu"``
    for every paper level, same scene, same dtype, compile time
    excluded via the warmup window. Masks are bit-identical by
    construction (the jit oracle tests pin this), so the table is pure
    throughput. Runs without numba too — the jit column then measures
    the cpu fallback (marked, speedup ~1x) instead of failing.
    """
    import warnings as _warnings

    from ..kernels.jit import numba_available
    from .snapshot import measure_fps

    shape = (96, 128)
    num_frames = 17
    rows = []
    for level in "ABCDEFG":
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            cpu = measure_fps(
                "cpu", num_frames=num_frames, shape=shape, level=level
            )
            jit = measure_fps(
                "jit", num_frames=num_frames, shape=shape, level=level
            )
        ratio = jit["frames_per_s"] / cpu["frames_per_s"]
        rows.append(
            [
                level,
                f"{cpu['frames_per_s']:.0f}",
                f"{jit['frames_per_s']:.0f}",
                f"{ratio:.2f}x",
                f"{jit['compile_s']:.2f}s",
                "numba" if jit["numba"] else "cpu fallback",
            ]
        )
    notes = (
        f"backend='jit' vs backend='cpu', {shape[0]}x{shape[1]} px, "
        f"{num_frames} frames, double precision; compile time excluded "
        "from the rate (warmup window) and reported separately."
    )
    if not numba_available():
        notes += (
            " numba is NOT installed in this environment: the jit column "
            "measured the graceful cpu fallback, so the speedup is ~1x "
            "by construction. Install the [jit] extra for real numbers."
        )
    return Experiment(
        "JIT (extension)",
        "Compiled per-pixel kernels (backend='jit') vs the cpu backend",
        ["level", "cpu f/s", "jit f/s", "speedup", "compile", "engine"],
        rows,
        notes=notes,
    )


def models_matrix(ctx: ExperimentContext | None = None) -> Experiment:
    """Extension: model family x level x scenario quality matrix.

    Scores both background-model families (MoG and the dual-mode
    single Gaussian) on the stressor scenes against exact ground
    truth; see :mod:`repro.bench.quality` for the cell definition.
    """
    from .quality import MATRIX_LEVELS, quality_matrix

    matrix = quality_matrix()
    by_key = {
        (c["model"], c["scenario"], c["level"]): c
        for c in matrix["cells"]
    }
    rows = []
    for model in matrix["models"]:
        for scenario in matrix["scenarios"]:
            row: list[object] = [model, scenario]
            for level in matrix["levels"]:
                c = by_key[(model, scenario, level)]
                row.append(f"{c['f1']:.3f} / {c['ms_ssim']:.3f}")
            rows.append(row)
    return Experiment(
        "Model matrix (extension)",
        "F1 / MS-SSIM vs ground truth per model family, level, scenario",
        ["model", "scenario", *(f"level {lv}" for lv in MATRIX_LEVELS)],
        rows,
        notes=(
            f"{matrix['shape'][0]}x{matrix['shape'][1]} px, "
            f"{matrix['num_frames']} frames, first {matrix['warmup']} "
            "excluded as warmup; raw masks (no post-processing). Level "
            "columns agree within a family because every pass stack is "
            "decision-preserving; scenario rows separate the families."
        ),
    )


#: Every experiment, for the EXPERIMENTS.md generator and smoke tests.
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "cpu_baselines": cpu_baselines,
    "embedded": embedded_study,
    "jitter": camera_jitter_study,
    "fusion": fusion_counters,
    "jit": jit_speedup,
    "models": models_matrix,
}
