"""Model-quality matrix: model family x optimization level x scenario.

The kernel IR made the background model a first-class axis; this module
answers the question that axis raises — *which family should a
deployment run?* Every cell runs one ``(model, level, scenario)``
combination over a stressor scene from :mod:`repro.video.scenes` and
scores the raw masks against the scene's exact ground truth:

* **F1** (plus precision/recall/IoU) — the detection quality a
  downstream consumer sees;
* **MS-SSIM** of the mask against the truth mask — the structural
  measure the paper's Table IV uses, here against real ground truth
  instead of the CPU reference.

Two readings fall out of the matrix by construction:

* Within one family, every level column scores identically — the pass
  stacks are decision-preserving (the cross-backend bit-identity suite
  enforces it), so the matrix doubles as an end-to-end check of that
  claim against ground truth rather than against a reference run.
* Across families, the scenario rows separate: the families differ in
  how they model multi-modal backgrounds (K Gaussians vs one mode plus
  a candidate), so flicker-heavy and disturbance-heavy scenes pull the
  rows apart while the static control stays close.

``repro experiments models`` prints the matrix;
:func:`write_matrix_json` is what CI and the committed
``QUALITY_MATRIX.json`` use.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..config import MoGParams
from ..core.subtractor import BackgroundSubtractor
from ..errors import ConfigError
from ..metrics.foreground import score_sequence
from ..metrics.ms_ssim import DEFAULT_WEIGHTS, ms_ssim
from ..video.scenes import (
    illumination_scene,
    jitter_scene,
    ptz_scene,
    rain_scene,
    shadow_scene,
    static_scene,
)

__all__ = [
    "MATRIX_LEVELS",
    "MATRIX_MODELS",
    "MATRIX_SCENARIOS",
    "quality_cell",
    "quality_matrix",
    "write_matrix_json",
]

#: Default matrix axes: both model families, one level per pass-stack
#: regime (baseline / restructured / register-optimized), every
#: stressor scenario plus the static control.
MATRIX_MODELS = ("mog", "dmsg")
MATRIX_LEVELS = ("A", "D", "F")
MATRIX_SCENARIOS = {
    "static": static_scene,
    "jitter": jitter_scene,
    "illumination": illumination_scene,
    "rain": rain_scene,
    "shadows": shadow_scene,
    "ptz": ptz_scene,
}


def _mask_weights(shape: tuple[int, int]) -> list[float]:
    """MS-SSIM scale weights that fit the frame (each scale halves the
    image; a side must keep >= 11 px at the coarsest scale)."""
    side = min(shape)
    scales = 5
    while scales > 1 and side < 11 * 2 ** (scales - 1):
        scales -= 1
    return DEFAULT_WEIGHTS[:scales]


def quality_cell(
    model: str,
    level: str,
    scenario: str,
    shape: tuple[int, int] = (120, 160),
    num_frames: int = 60,
    warmup: int = 20,
    params: MoGParams | None = None,
) -> dict:
    """Run one matrix cell on the CPU oracle; returns a flat dict of
    scores (F1, precision, recall, IoU, MS-SSIM) over the post-warmup
    frames."""
    builder = MATRIX_SCENARIOS.get(scenario)
    if builder is None:
        raise ConfigError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{sorted(MATRIX_SCENARIOS)}"
        )
    if warmup >= num_frames:
        raise ConfigError(
            f"warmup ({warmup}) must leave frames to score "
            f"(num_frames={num_frames})"
        )
    video = builder(height=shape[0], width=shape[1], num_frames=num_frames)
    sub = BackgroundSubtractor(
        shape, params, level=level, backend="cpu", model=model
    )
    weights = _mask_weights(shape)
    preds: list[np.ndarray] = []
    truths: list[np.ndarray] = []
    ssims: list[float] = []
    for t in range(num_frames):
        frame, truth = video.frame_with_truth(t)
        mask = sub.apply(frame)
        if t < warmup:
            continue
        preds.append(mask)
        truths.append(truth)
        ssims.append(
            ms_ssim(
                mask.astype(np.uint8) * 255,
                truth.astype(np.uint8) * 255,
                weights=weights,
            )
        )
    score = score_sequence(preds, truths)
    return {
        "model": sub.model.name,
        "level": sub.spec.letter,
        "scenario": scenario,
        "f1": round(score.f1, 4),
        "precision": round(score.precision, 4),
        "recall": round(score.recall, 4),
        "iou": round(score.iou, 4),
        "ms_ssim": round(float(np.mean(ssims)), 4),
        "frames_scored": len(preds),
    }


def quality_matrix(
    models: tuple[str, ...] = MATRIX_MODELS,
    levels: tuple[str, ...] = MATRIX_LEVELS,
    scenarios: tuple[str, ...] | None = None,
    shape: tuple[int, int] = (120, 160),
    num_frames: int = 60,
    warmup: int = 20,
    params: MoGParams | None = None,
) -> dict:
    """The full matrix as a JSON-serialisable dict (``cells`` holds one
    :func:`quality_cell` result per combination, in axis order)."""
    scenario_names = (
        tuple(scenarios) if scenarios is not None
        else tuple(MATRIX_SCENARIOS)
    )
    cells = [
        quality_cell(
            model, level, scenario,
            shape=shape, num_frames=num_frames, warmup=warmup,
            params=params,
        )
        for model in models
        for level in levels
        for scenario in scenario_names
    ]
    return {
        "kind": "model_quality_matrix",
        "shape": list(shape),
        "num_frames": num_frames,
        "warmup": warmup,
        "models": list(models),
        "levels": list(levels),
        "scenarios": list(scenario_names),
        "cells": cells,
    }


def write_matrix_json(path: str | Path, matrix: dict) -> Path:
    """Write a :func:`quality_matrix` result as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(matrix, indent=2) + "\n")
    return path
