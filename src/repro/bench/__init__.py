"""Experiment harness: regenerates every table and figure of the paper.

:mod:`repro.bench.harness` runs optimization levels on a scene and
extrapolates the measured per-frame counters to the paper's workload
(450 full-HD frames); :mod:`repro.bench.experiments` packages one
function per paper table/figure; :mod:`repro.bench.reporting` renders
them as text tables.
"""

from .harness import LevelResult, PAPER_SCALE, WorkloadScale, run_level
from .reporting import format_table

__all__ = ["LevelResult", "WorkloadScale", "PAPER_SCALE", "run_level", "format_table"]
