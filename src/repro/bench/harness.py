"""Run one optimization level and extrapolate to the paper's workload.

Why extrapolation is sound here: MoG is embarrassingly parallel and the
paper's own metrics are per-pixel ratios, so per-warp behaviour at
320x240 is statistically identical to full HD; scaling every counter by
the pixel ratio changes no efficiency and the timing model (which is
linear in counters for a fixed occupancy) scales with it. The frame
count only multiplies the pipeline schedule. DESIGN.md §6 records this
as a known deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import FULL_HD, PAPER_NUM_FRAMES, MoGParams, RunConfig
from ..core.pipeline import HostPipeline
from ..core.results import RunReport
from ..core.variants import LevelSpec, OptimizationLevel, resolve_level_spec
from ..cpu.model import CpuMode, CpuTimeModel
from ..errors import ConfigError
from ..gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from ..gpusim.device import TESLA_C2075, DeviceSpec
from ..gpusim.dma import StreamScheduler
from ..gpusim.timing import TimingModel


@dataclass(frozen=True)
class WorkloadScale:
    """The workload the results are extrapolated to."""

    num_pixels: int
    num_frames: int


#: The paper's evaluation workload: 450 frames of 1080x1920.
PAPER_SCALE = WorkloadScale(FULL_HD[0] * FULL_HD[1], PAPER_NUM_FRAMES)

#: MoG parameters used by the paper-reproduction benchmarks. The faster
#: learning rate and tighter initial sd make the mixture converge (and
#: split multi-modal pixels into separate components) within the short
#: simulated runs, mirroring the steady-state a 450-frame run reaches.
PAPER_BENCH_PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)

#: Default geometry of simulated benchmark runs (full HD is supported
#: but pure-Python slow; see DESIGN.md §6 on extrapolation).
BENCH_SHAPE = (120, 160)
#: Frames to run; the first BENCH_WARMUP are model convergence.
BENCH_FRAMES = 40
BENCH_WARMUP = 24


@dataclass
class LevelResult:
    """One level's measured run plus its extrapolation."""

    level: str
    report: RunReport
    masks: np.ndarray
    scale: WorkloadScale
    kernel_time_per_frame: float   # at scale
    total_time: float              # at scale, incl. transfers
    cpu_time: float                # CPU model at scale (scalar mode)
    speedup: float                 # cpu_time / total_time

    def metrics(self) -> dict[str, float]:
        out = self.report.metrics()
        out.update(
            {
                "speedup": self.speedup,
                "scaled_kernel_time_per_frame": self.kernel_time_per_frame,
                "scaled_total_time": self.total_time,
                "cpu_time": self.cpu_time,
            }
        )
        return out


def steady_state_counters(report: RunReport, warmup: int = 0):
    """Mean per-launch counters and the occupancy after ``warmup``
    launches (model convergence transients excluded)."""
    if not report.launches:
        raise ConfigError("report contains no launches")
    tail = report.launches[warmup:] or report.launches[-1:]
    total = tail[0].counters.copy()
    for rep in tail[1:]:
        total.add(rep.counters)
    return total.scaled(1.0 / len(tail)), tail[-1].occupancy


def extrapolate(
    report: RunReport,
    scale: WorkloadScale = PAPER_SCALE,
    device: DeviceSpec = TESLA_C2075,
    calibration: Calibration = DEFAULT_CALIBRATION,
    frame_group: int | None = None,
    warmup_launches: int = 0,
) -> tuple[float, float]:
    """Extrapolate a run report to ``scale``.

    Returns ``(kernel_time_per_frame, total_time)`` at the target
    workload. For level G pass the configured ``frame_group``;
    ``warmup_launches`` excludes convergence transients from the
    steady-state counter average.
    """
    if not report.launches:
        raise ConfigError("report contains no launches to extrapolate")
    pixel_ratio = scale.num_pixels / report.num_pixels
    timing_model = TimingModel(device, calibration)
    level_spec = resolve_level_spec(report.level)
    scheduler = StreamScheduler(device, overlapped=level_spec.overlapped)
    bytes_per_frame = scale.num_pixels  # uint8 in and out
    counters, occ = steady_state_counters(report, warmup_launches)
    counters = counters.scaled(pixel_ratio)

    if level_spec.group_structured:
        group = frame_group or max(
            round(report.num_frames / len(report.launches)), 1
        )
        group_time = timing_model.kernel_timing(counters, occ).total
        num_groups = -(-scale.num_frames // group)
        sizes = [
            min(group, scale.num_frames - g * group) for g in range(num_groups)
        ]
        pipeline = scheduler.run(
            [group_time] * num_groups,
            bytes_in=[bytes_per_frame * s for s in sizes],
            bytes_out=[bytes_per_frame * s for s in sizes],
        )
        kernel_per_frame = group_time / group
    else:
        frame_time = timing_model.kernel_timing(counters, occ).total
        pipeline = scheduler.run(
            [frame_time] * scale.num_frames,
            bytes_in=bytes_per_frame,
            bytes_out=bytes_per_frame,
        )
        kernel_per_frame = frame_time
    return kernel_per_frame, pipeline.total_time


def run_level(
    level: OptimizationLevel | LevelSpec | str,
    frames,
    shape: tuple[int, int],
    params: MoGParams | None = None,
    dtype: str = "double",
    scale: WorkloadScale = PAPER_SCALE,
    device: DeviceSpec = TESLA_C2075,
    calibration: Calibration = DEFAULT_CALIBRATION,
    run_config: RunConfig | None = None,
    cpu_model: CpuTimeModel | None = None,
    warmup_frames: int = 0,
) -> LevelResult:
    """Run one optimization level over ``frames`` and extrapolate.

    ``warmup_frames`` excludes the mixture-convergence transient from
    the steady-state counters used for timing extrapolation.
    """
    level = resolve_level_spec(level)
    params = params or MoGParams()
    run_config = run_config or RunConfig(
        height=shape[0], width=shape[1], dtype=dtype
    )
    pipeline = HostPipeline(
        shape, params, level,
        run_config=run_config, device=device, calibration=calibration,
    )
    masks, report = pipeline.process(frames)
    if level.group_structured:
        warmup_launches = warmup_frames // run_config.frame_group
    else:
        warmup_launches = warmup_frames
    warmup_launches = min(warmup_launches, max(len(report.launches) - 1, 0))
    kernel_pf, total = extrapolate(
        report, scale, device, calibration,
        frame_group=run_config.frame_group if level.group_structured else None,
        warmup_launches=warmup_launches,
    )
    cpu_model = cpu_model or CpuTimeModel()
    cpu_time = cpu_model.time(
        scale.num_pixels, scale.num_frames,
        params.num_gaussians, run_config.dtype, CpuMode.SCALAR,
    )
    return LevelResult(
        level=level.letter,
        report=report,
        masks=masks,
        scale=scale,
        kernel_time_per_frame=kernel_pf,
        total_time=total,
        cpu_time=cpu_time,
        speedup=cpu_time / total,
    )
