"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned text table (paper-style rows/series)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_metrics(snapshot: dict, title: str = "Telemetry") -> str:
    """Render a :meth:`repro.telemetry.MetricsRegistry.snapshot` as
    text tables (counters/gauges, then per-stage latency histograms)."""
    sections: list[str] = []
    scalar_rows = [
        [name, value]
        for name, value in snapshot.get("counters", {}).items()
    ] + [
        [name, f"{value:g}"]
        for name, value in snapshot.get("gauges", {}).items()
    ]
    if scalar_rows:
        sections.append(
            format_table(["metric", "value"], scalar_rows, title=title)
        )
    hist_rows = [
        [
            name,
            h["count"],
            f"{h['mean_s'] * 1e3:.2f}",
            f"{h['p50_s'] * 1e3:.2f}",
            f"{h['p95_s'] * 1e3:.2f}",
            f"{h['max_s'] * 1e3:.2f}",
        ]
        for name, h in snapshot.get("histograms", {}).items()
        if h.get("count")
    ]
    if hist_rows:
        sections.append(format_table(
            ["latency", "count", "mean ms", "p50 ms", "p95 ms", "max ms"],
            hist_rows,
            title=None if scalar_rows else title,
        ))
    if not sections:
        return f"{title}\n{'=' * len(title)}\n(no metrics recorded)"
    return "\n\n".join(sections)


def pct(x: float) -> str:
    """Format a ratio as a percentage."""
    return f"{x * 100:.1f}%"


def millions(x: float) -> str:
    """Format a count in millions (the paper's transaction plots)."""
    return f"{x / 1e6:.2f}M"
