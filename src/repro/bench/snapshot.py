"""Machine-readable throughput snapshots (``BENCH_throughput.json``).

One JSON file at the repo root records frames/s for each execution
path — CPU backend, simulator profiled tier, simulator with sampled
profiling — so the repo's perf trajectory can be tracked across
commits and CI runs without parsing benchmark logs.

The file is a merge target: every measurement run updates its own
entries and leaves the rest in place, so partial runs (e.g. the CI
smoke job measuring only the sim tiers) never erase other paths'
numbers. Produce it with ``python tools/bench_snapshot.py`` or the
benchmark ``benchmarks/test_sim_throughput.py::test_two_tier_speedup``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..config import FULL_HD, MoGParams, RunConfig
from ..core.subtractor import BackgroundSubtractor
from ..errors import ConfigError

SNAPSHOT_NAME = "BENCH_throughput.json"

#: Environment override for where the snapshot file lives.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def resolve_snapshot_dir() -> Path:
    """Directory ``BENCH_throughput.json`` is read from / written to.

    Resolution order:

    1. the :data:`BENCH_DIR_ENV` (``REPRO_BENCH_DIR``) environment
       variable, created if absent — CI and installed-package runs
       point this wherever they like;
    2. the first ancestor of the current working directory (itself
       included) that looks like a repo checkout (has ``pyproject.toml``
       and ``src/repro``).

    Resolving from ``__file__`` is wrong once the package is installed:
    that lands the snapshot inside ``site-packages``. With no override
    and no checkout in sight this raises a clear
    :class:`~repro.errors.ConfigError` instead.
    """
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        path = Path(override).expanduser().resolve()
        path.mkdir(parents=True, exist_ok=True)
        return path
    cwd = Path.cwd().resolve()
    for candidate in (cwd, *cwd.parents):
        if (candidate / "pyproject.toml").is_file() and (
            candidate / "src" / "repro"
        ).is_dir():
            return candidate
    raise ConfigError(
        f"cannot locate a repo checkout above {cwd} to hold "
        f"{SNAPSHOT_NAME}; set {BENCH_DIR_ENV} to choose a directory "
        "explicitly"
    )

#: Frame geometry all snapshot entries share — small enough for CI,
#: large enough that per-frame work dwarfs per-launch overhead.
SNAPSHOT_SHAPE = (120, 160)

#: MoG parameters used for every measurement (matches the benchmark
#: suite's PAPER_BENCH_PARAMS choice of a fast-adapting model).
SNAPSHOT_PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)


def _frames(num_frames: int, shape=SNAPSHOT_SHAPE):
    from ..video.scenes import evaluation_scene

    video = evaluation_scene(height=shape[0], width=shape[1])
    return [video.frame(t) for t in range(num_frames)]


#: Warmup frames excluded from the timed window per backend. One frame
#: covers model initialisation for the interpreted paths; the jit
#: backend gets a few more so numba's parallel runtime spin-up and any
#: residual lazy specialisation never pollute the steady-state rate
#: (bulk compilation already happens eagerly at model construction and
#: is reported as ``compile_s``).
DEFAULT_WARMUP_FRAMES = {"cpu": 1, "sim": 1, "jit": 3}


def measure_fps(
    backend: str,
    profile_every: int = 1,
    num_frames: int = 17,
    level: str = "F",
    shape=SNAPSHOT_SHAPE,
    integrity=None,
    warmup_frames: int | None = None,
    dtype: str = "double",
    model: str | None = None,
) -> dict:
    """Measure frames/s for one configuration.

    ``warmup_frames`` leading frames (default per
    :data:`DEFAULT_WARMUP_FRAMES`) are processed before the timed
    window opens, so model initialisation — and for the jit backend,
    compilation — never pollutes the steady-state rate. The entry
    records the excluded time as ``warmup_s`` and the jit kernel
    compilation as ``compile_s``. ``integrity`` is an optional
    :class:`~repro.config.IntegrityPolicy` enabling the mixture-state
    guard — the "ECC-on" software analogue, whose per-frame validation
    cost the snapshot tracks against the unguarded path. ``model``
    picks the background-model family (default MoG). Returns a
    snapshot entry dict.
    """
    if warmup_frames is None:
        warmup_frames = DEFAULT_WARMUP_FRAMES.get(backend, 1)
    if not 0 < warmup_frames < num_frames:
        raise ConfigError(
            f"need 0 < warmup_frames < num_frames, got "
            f"{warmup_frames} / {num_frames}"
        )
    frames = _frames(num_frames, shape)
    run_config = RunConfig(height=shape[0], width=shape[1], dtype=dtype)
    bs = BackgroundSubtractor(
        shape,
        params=SNAPSHOT_PARAMS,
        level=level,
        backend=backend,
        run_config=run_config,
        profile_every=profile_every if backend == "sim" else None,
        integrity=integrity,
        model=model,
    )
    warm_start = time.perf_counter()
    for frame in frames[:warmup_frames]:
        bs.apply(frame)
    warmup_s = time.perf_counter() - warm_start
    start = time.perf_counter()
    for frame in frames[warmup_frames:]:
        bs.apply(frame)
    elapsed = time.perf_counter() - start
    timed = len(frames) - warmup_frames
    integrity_mode = integrity.mode if integrity is not None else "off"
    tier = (
        backend if backend in ("cpu", "jit")
        else "profiled" if profile_every == 1
        else f"sampled_1_in_{profile_every}"
    )
    if integrity_mode != "off":
        tier += f"_integrity_{integrity_mode}"
    entry = {
        "backend": backend,
        "level": level,
        "model": bs.model.name,
        "tier": tier,
        "profile_every": profile_every if backend == "sim" else None,
        "integrity": integrity_mode,
        "frames_per_s": round(timed / elapsed, 2),
        "frames_timed": timed,
        "frame_shape": list(shape),
        "warmup_frames": warmup_frames,
        "warmup_s": round(warmup_s, 4),
        "compile_s": round(getattr(bs, "compile_s", 0.0), 4),
    }
    if backend == "jit":
        # Honesty marker: False means numba was absent and the entry
        # actually measured the cpu fallback.
        entry["numba"] = bs.active_backend == "jit"
    return entry


def measure_server_fps(
    num_streams: int = 4,
    num_frames: int = 17,
    workers: int = 2,
    shape=SNAPSHOT_SHAPE,
) -> dict:
    """Aggregate frames/s of a :class:`~repro.serve.StreamServer`
    multiplexing ``num_streams`` synthetic streams over ``workers``
    worker threads.

    The first frame of every stream (model initialisation) runs before
    the timed region. The rate is aggregate: frames completed across
    all streams per wall-clock second.
    """
    from ..config import ServeConfig
    from ..serve import StreamServer

    frames = _frames(num_frames, shape)
    stream_ids = [f"cam{i}" for i in range(num_streams)]
    server = StreamServer(
        shape,
        params=SNAPSHOT_PARAMS,
        serve=ServeConfig(workers=workers, queue_capacity=4),
    )
    try:
        for sid in stream_ids:
            server.add_stream(sid)
            server.submit(sid, frames[0])
        server.drain()
        start = time.perf_counter()
        for frame in frames[1:]:
            for sid in stream_ids:
                server.submit(sid, frame)
        server.drain()
        elapsed = time.perf_counter() - start
    finally:
        server.close(drain=False)
    timed = (len(frames) - 1) * num_streams
    return {
        "backend": "cpu",
        "level": "F",
        "tier": f"server_{num_streams}streams_{workers}workers",
        "profile_every": None,
        "frames_per_s": round(timed / elapsed, 2),
        "frames_timed": timed,
        "frame_shape": list(shape),
        "num_streams": num_streams,
        "workers": workers,
    }


def measure_sharded_fps(
    num_streams: int = 64,
    num_frames: int = 17,
    shards: int = 2,
    workers: int = 1,
    shape=SNAPSHOT_SHAPE,
    attempts: int = 3,
) -> dict:
    """Aggregate frames/s of a
    :class:`~repro.serve.ShardedStreamServer` multiplexing
    ``num_streams`` synthetic streams over ``shards`` shard processes.

    Timed the same way as :func:`measure_server_fps` (first frame of
    every stream runs before the timed region), plus the gateway's
    submit-to-result latency distribution (``latency_p50_s`` /
    ``latency_p99_s``). The measurement is the best of ``attempts``
    runs: process scheduling noise on small shared containers dwarfs
    the per-run variance, and the least-interfered run is the one that
    reflects the tier itself.
    """
    import numpy as np

    from ..config import ServeConfig
    from ..serve import ShardedStreamServer

    frames = _frames(num_frames, shape)
    stream_ids = [f"cam{i}" for i in range(num_streams)]
    timed = (len(frames) - 1) * num_streams
    best: dict | None = None
    for _ in range(max(1, attempts)):
        server = ShardedStreamServer(
            shape,
            params=SNAPSHOT_PARAMS,
            serve=ServeConfig(
                workers=workers, queue_capacity=32,
                batch_frames=16, shards=shards,
            ),
            frame_dtype=np.uint8,  # the synthetic scene's native dtype
        )
        try:
            for sid in stream_ids:
                server.add_stream(sid)
                server.submit(sid, frames[0])
            server.drain(timeout_s=600)
            start = time.perf_counter()
            for frame in frames[1:]:
                for sid in stream_ids:
                    server.submit(sid, frame)
            server.drain(timeout_s=600)
            elapsed = time.perf_counter() - start
            hist = server.registry.histogram("server.latency_s")
            p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
        finally:
            server.close(drain=False)
        fps = timed / elapsed
        if best is None or fps > best["frames_per_s"]:
            best = {
                "backend": "cpu",
                "level": "F",
                "tier": (
                    f"server_sharded_{num_streams}streams_"
                    f"{shards}shards"
                ),
                "profile_every": None,
                "frames_per_s": round(fps, 2),
                "frames_timed": timed,
                "frame_shape": list(shape),
                "num_streams": num_streams,
                "shards": shards,
                "workers": workers,
                "latency_p50_s": round(p50, 4),
                "latency_p99_s": round(p99, 4),
            }
    return best


def measure_controlled_overload(
    num_streams: int = 8,
    num_frames: int = 48,
    workers: int = 2,
    shape=SNAPSHOT_SHAPE,
    max_recover_windows: int = 16,
) -> dict:
    """Sustained frames/s of a 2x-oversubscribed ``StreamServer`` with
    the closed-loop controller on, against the same load uncontrolled.

    ``num_streams`` streams share ``workers`` workers behind short
    queues, so the offered load exceeds capacity and queues sit full
    for the whole burst. Uncontrolled, the server can only block
    submitters at full quality; controlled, the governor walks each
    stream down the degradation ladder (relax guards -> cheaper level
    -> cheaper model -> shed), so the same burst completes faster and
    the overflow is counted in ``frames_shed`` instead of latency.
    After the burst the load drops to a trickle and the entry reports
    ``recover_frames``: per-stream frames until every stream is back at
    the baseline rung (``recovered`` is the honesty marker for hitting
    the window cap instead).
    """
    from ..config import ControllerConfig, ServeConfig
    from ..serve import StreamServer

    frames = _frames(num_frames, shape)
    stream_ids = [f"cam{i}" for i in range(num_streams)]
    controller_cfg = ControllerConfig(
        window_frames=8, degrade_after=1, recover_after=2,
        queue_high=0.5, queue_low=0.25,
    )

    def _burst(controller: ControllerConfig | None) -> dict:
        server = StreamServer(
            shape,
            params=SNAPSHOT_PARAMS,
            serve=ServeConfig(
                workers=workers, queue_capacity=4, controller=controller,
            ),
        )
        result: dict = {}
        try:
            for sid in stream_ids:
                server.add_stream(sid, scenario="static")
                server.submit(sid, frames[0])
            server.drain()
            start = time.perf_counter()
            for frame in frames[1:]:
                for sid in stream_ids:
                    server.submit(sid, frame)
            server.drain()
            elapsed = time.perf_counter() - start
            snap = server.registry.snapshot()
            result["frames_per_s"] = round(
                (len(frames) - 1) * num_streams / elapsed, 2
            )
            result["frames_shed"] = int(
                snap["counters"].get("server.frames_shed", 0)
            )
            result["transitions"] = int(
                snap["counters"].get("server.controller.transitions", 0)
            )
            # Recovery phase: a trickle of one window per round until
            # every stream is back at rung 0 (controller only).
            recover_frames = 0
            recovered = controller is None
            if controller is not None:
                for _ in range(max_recover_windows):
                    if all(
                        s["controller_rung"] == 0
                        for s in server.stream_status()
                    ):
                        recovered = True
                        break
                    for _ in range(controller.window_frames):
                        for sid in stream_ids:
                            server.submit(sid, frames[-1])
                        server.drain()
                    recover_frames += controller.window_frames
            result["recover_frames"] = recover_frames
            result["recovered"] = recovered
        finally:
            server.close(drain=False)
        return result

    on = _burst(controller_cfg)
    off = _burst(None)
    return {
        "backend": "cpu",
        "level": "F",
        "tier": (
            f"server_controlled_overload_{num_streams}streams_"
            f"{workers}workers"
        ),
        "profile_every": None,
        "frames_per_s": on["frames_per_s"],
        "frames_per_s_uncontrolled": off["frames_per_s"],
        "frames_timed": (len(frames) - 1) * num_streams,
        "frame_shape": list(shape),
        "num_streams": num_streams,
        "workers": workers,
        "frames_shed": on["frames_shed"],
        "transitions": on["transitions"],
        "recover_frames": on["recover_frames"],
        "recovered": on["recovered"],
    }


def update_snapshot(entries: dict, path: Path | str | None = None) -> Path:
    """Merge ``entries`` (name -> entry dict) into the snapshot file.

    Existing entries under other names are preserved; the file is
    created if absent. Returns the path written.
    """
    path = (
        Path(path) if path is not None
        else resolve_snapshot_dir() / SNAPSHOT_NAME
    )
    data: dict = {"schema": 1, "entries": {}}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded.get("entries"), dict):
                data = loaded
        except (json.JSONDecodeError, OSError):
            pass  # unreadable snapshot: rewrite from scratch
    data["schema"] = 1
    data["entries"].update(entries)
    data["entries"] = dict(sorted(data["entries"].items()))
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def run_snapshot(
    quick: bool = False, path: Path | str | None = None
) -> dict:
    """Measure every standard configuration and update the snapshot.

    ``quick`` shortens each measurement (CI smoke mode). Returns the
    measured entries.
    """
    from ..config import IntegrityPolicy

    num_sim = 9 if quick else 33
    num_cpu = 33 if quick else 129
    num_srv = 9 if quick else 33
    num_jit = 33 if quick else 129
    num_hd = 5 if quick else 9
    num_jit_hd = 9 if quick else 17
    entries = {
        "cpu": measure_fps("cpu", num_frames=num_cpu),
        # The soft-error protection path: every frame's mixture state is
        # validated (and would be repaired) before classification. The
        # gap to "cpu" is the ECC-on overhead the docs quote.
        "cpu_ecc_on": measure_fps(
            "cpu", num_frames=num_cpu,
            integrity=IntegrityPolicy(mode="repair"),
        ),
        "sim_profiled": measure_fps("sim", profile_every=1, num_frames=num_sim),
        "sim_sampled_8": measure_fps("sim", profile_every=8, num_frames=num_sim),
        # A novel pass combination the paper never measured: predicated
        # execution alone on the level-A base (no layout change, no
        # sort elimination) — exercises the custom-level path end to end.
        "sim_custom_pred_only": measure_fps(
            "sim", profile_every=8, num_frames=num_sim,
            level="A+predication",
        ),
        # The fusion pass: MoG update + threshold/shadow/class-histogram
        # consumers welded into one kernel, so the downstream analytics
        # cost no extra frame traffic.
        "sim_fused": measure_fps(
            "sim", profile_every=8, num_frames=num_sim,
            level="F+fusion",
        ),
        "server_4streams": measure_server_fps(
            num_streams=4, num_frames=num_srv
        ),
        # The sharded tier at its target scale: 64 streams over shard
        # processes, with gateway submit->result latency percentiles.
        "server_sharded_64streams": measure_sharded_fps(
            num_streams=64, num_frames=num_srv,
            attempts=2 if quick else 3,
        ),
        # The closed-loop controller under 2x overload: same burst with
        # the governor on vs off, plus shed/recovery accounting.
        "server_controlled_overload": measure_controlled_overload(
            num_frames=17 if quick else 48,
            max_recover_windows=6 if quick else 16,
        ),
        # The second model family, measured in the same container run
        # as "cpu" so the dmsg-vs-mog frames/s ratio compares like with
        # like (one mode + one candidate per pixel vs K Gaussians).
        "dmsg": measure_fps("cpu", num_frames=num_cpu, model="dmsg"),
        # The compiled hot path. Entries carry ``"numba": false`` when
        # the measurement actually ran the cpu fallback (numba absent),
        # so stale speedup claims cannot hide in the snapshot.
        "jit": measure_fps("jit", num_frames=num_jit),
        # Full-HD pair: the paper's target geometry. The jit-vs-cpu
        # ratio at this shape is what the benchmark suite asserts.
        "cpu_fullhd": measure_fps(
            "cpu", num_frames=num_hd, shape=FULL_HD,
        ),
        "jit_fullhd": measure_fps(
            "jit", num_frames=num_jit_hd, shape=FULL_HD,
        ),
        "dmsg_fullhd": measure_fps(
            "cpu", num_frames=num_hd, shape=FULL_HD, model="dmsg",
        ),
    }
    update_snapshot(entries, path)
    return entries
