"""Machine-readable throughput snapshots (``BENCH_throughput.json``).

One JSON file at the repo root records frames/s for each execution
path — CPU backend, simulator profiled tier, simulator with sampled
profiling — so the repo's perf trajectory can be tracked across
commits and CI runs without parsing benchmark logs.

The file is a merge target: every measurement run updates its own
entries and leaves the rest in place, so partial runs (e.g. the CI
smoke job measuring only the sim tiers) never erase other paths'
numbers. Produce it with ``python tools/bench_snapshot.py`` or the
benchmark ``benchmarks/test_sim_throughput.py::test_two_tier_speedup``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..config import MoGParams
from ..core.subtractor import BackgroundSubtractor

#: Repo root (this file lives at src/repro/bench/snapshot.py).
REPO_ROOT = Path(__file__).resolve().parents[3]
SNAPSHOT_NAME = "BENCH_throughput.json"

#: Frame geometry all snapshot entries share — small enough for CI,
#: large enough that per-frame work dwarfs per-launch overhead.
SNAPSHOT_SHAPE = (120, 160)

#: MoG parameters used for every measurement (matches the benchmark
#: suite's PAPER_BENCH_PARAMS choice of a fast-adapting model).
SNAPSHOT_PARAMS = MoGParams(learning_rate=0.08, initial_sd=8.0)


def _frames(num_frames: int, shape=SNAPSHOT_SHAPE):
    from ..video.scenes import evaluation_scene

    video = evaluation_scene(height=shape[0], width=shape[1])
    return [video.frame(t) for t in range(num_frames)]


def measure_fps(
    backend: str,
    profile_every: int = 1,
    num_frames: int = 17,
    level: str = "F",
    shape=SNAPSHOT_SHAPE,
) -> dict:
    """Measure frames/s for one configuration.

    The first frame (model initialisation, pool warm-up) is excluded
    from the timed region. Returns a snapshot entry dict.
    """
    frames = _frames(num_frames, shape)
    bs = BackgroundSubtractor(
        shape,
        params=SNAPSHOT_PARAMS,
        level=level,
        backend=backend,
        profile_every=profile_every if backend == "sim" else None,
    )
    bs.apply(frames[0])
    start = time.perf_counter()
    for frame in frames[1:]:
        bs.apply(frame)
    elapsed = time.perf_counter() - start
    timed = len(frames) - 1
    return {
        "backend": backend,
        "level": level,
        "tier": (
            "cpu" if backend == "cpu"
            else "profiled" if profile_every == 1
            else f"sampled_1_in_{profile_every}"
        ),
        "profile_every": profile_every if backend == "sim" else None,
        "frames_per_s": round(timed / elapsed, 2),
        "frames_timed": timed,
        "frame_shape": list(shape),
    }


def update_snapshot(entries: dict, path: Path | str | None = None) -> Path:
    """Merge ``entries`` (name -> entry dict) into the snapshot file.

    Existing entries under other names are preserved; the file is
    created if absent. Returns the path written.
    """
    path = Path(path) if path is not None else REPO_ROOT / SNAPSHOT_NAME
    data: dict = {"schema": 1, "entries": {}}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded.get("entries"), dict):
                data = loaded
        except (json.JSONDecodeError, OSError):
            pass  # unreadable snapshot: rewrite from scratch
    data["schema"] = 1
    data["entries"].update(entries)
    data["entries"] = dict(sorted(data["entries"].items()))
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def run_snapshot(
    quick: bool = False, path: Path | str | None = None
) -> dict:
    """Measure every standard configuration and update the snapshot.

    ``quick`` shortens each measurement (CI smoke mode). Returns the
    measured entries.
    """
    num_sim = 9 if quick else 33
    num_cpu = 33 if quick else 129
    entries = {
        "cpu": measure_fps("cpu", num_frames=num_cpu),
        "sim_profiled": measure_fps("sim", profile_every=1, num_frames=num_sim),
        "sim_sampled_8": measure_fps("sim", profile_every=8, num_frames=num_sim),
    }
    update_snapshot(entries, path)
    return entries
