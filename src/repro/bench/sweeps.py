"""Parameter sweeps: tune MoG against ground truth.

The paper fixes its algorithmic parameters; a downstream user has to
pick them. These helpers sweep one :class:`~repro.config.MoGParams`
field across a value list, score each setting against a synthetic
scene's exact masks, and report the curve — the quality-side companion
to the performance experiments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import MoGParams
from ..errors import ConfigError
from ..metrics.foreground import ForegroundScore, score_sequence
from ..mog.vectorized import MoGVectorized
from ..video.scenes import evaluation_scene

#: MoGParams fields that make sense to sweep.
SWEEPABLE = (
    "num_gaussians",
    "learning_rate",
    "match_threshold",
    "background_weight",
    "initial_sd",
    "initial_weight",
    "sd_floor",
)


@dataclass(frozen=True)
class SweepPoint:
    """One setting's outcome."""

    value: float
    score: ForegroundScore
    foreground_rate: float  # mean share of pixels flagged

    @property
    def f1(self) -> float:
        return self.score.f1


@dataclass(frozen=True)
class SweepResult:
    """A full parameter curve."""

    parameter: str
    points: tuple[SweepPoint, ...]

    @property
    def best(self) -> SweepPoint:
        return max(self.points, key=lambda p: p.f1)

    def rows(self) -> list[list[str]]:
        return [
            [
                f"{p.value:g}",
                f"{p.score.precision:.3f}",
                f"{p.score.recall:.3f}",
                f"{p.f1:.3f}",
                f"{p.foreground_rate * 100:.2f}%",
                "<- best" if p is self.best else "",
            ]
            for p in self.points
        ]


def sweep_parameter(
    parameter: str,
    values,
    base_params: MoGParams | None = None,
    shape: tuple[int, int] = (96, 128),
    num_frames: int = 36,
    warmup: int = 24,
    variant: str = "nosort",
    scene_builder=evaluation_scene,
    seed: int = 5,
) -> SweepResult:
    """Sweep one MoG parameter and score against ground truth.

    ``scene_builder`` must accept ``height``/``width``/``seed`` and
    produce frames with truth (any of :mod:`repro.video.scenes`).
    """
    if parameter not in SWEEPABLE:
        raise ConfigError(
            f"cannot sweep {parameter!r}; choose one of {SWEEPABLE}"
        )
    values = list(values)
    if not values:
        raise ConfigError("no values to sweep")
    if not 0 <= warmup < num_frames:
        raise ConfigError(
            f"need 0 <= warmup < num_frames, got {warmup}, {num_frames}"
        )
    base_params = base_params or MoGParams(learning_rate=0.08, initial_sd=8.0)

    video = scene_builder(height=shape[0], width=shape[1], seed=seed)
    pairs = [video.frame_with_truth(t) for t in range(num_frames)]
    frames = [f for f, _ in pairs]
    truths = [t for _, t in pairs]

    points = []
    for value in values:
        params = dataclasses.replace(base_params, **{parameter: value})
        mog = MoGVectorized(shape, params, variant=variant)
        masks = mog.apply_sequence(frames)
        score = score_sequence(list(masks[warmup:]), truths[warmup:])
        points.append(
            SweepPoint(
                value=float(value),
                score=score,
                foreground_rate=float(masks[warmup:].mean()),
            )
        )
    return SweepResult(parameter=parameter, points=tuple(points))
