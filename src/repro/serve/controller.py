"""Closed-loop degradation and recovery for the serving tier.

Every knob the serving stack exposes — pass-stack level, background
model family, integrity ``check_every``, profiling ``profile_every``,
backpressure — is frozen at startup. This module closes the loop: a
:class:`ServerController` watches each stream's windowed telemetry
deltas and walks a per-stream *rung ladder* of graded actions::

    rung 0   baseline         the stream's configured quality
    rung 1   guards           check_every / profile_every x guard_relax
    rung 2+  level            pass-stack downshifts (F -> D -> A)
    rung k   model            switch to the cheap family (mog -> dmsg),
                              only where the stream's scenario tolerates
                              it per the committed quality matrix
    rung k+1 shed             drop overflow frames instead of engaging
                              backpressure — the stream keeps emitting

One rung per decision, with hysteresis: ``degrade_after`` consecutive
hot windows move down, ``recover_after`` consecutive cool windows move
back up, and the gap between the ``queue_high`` and ``queue_low``
watermarks keeps the loop from oscillating around a single threshold.

Determinism is load-bearing. The policy (:func:`decide`) is a pure
function of windowed telemetry deltas and the hysteresis streaks — no
wall-clock, no randomness — and windows are counted in *frames*, not
seconds, so the chaos suite can pin exact transition sequences and the
same stream schedule replays to an identical transition log.

Reconfiguration safety: a level swap within a model family transfers
the warm mixture state (``state_snapshot``/``restore_state``; the
A–G pass stacks are decision-preserving, so masks stay bit-identical
across the swap). A *family* swap reuses the cross-family checkpoint
contract from the durable-checkpoint machinery: moving one family's
state planes into another is a typed
:class:`~repro.errors.CheckpointError`, so the new family starts from
fresh state while the pipeline keeps its frame index and last good
mask — masks stay well-defined (warm-up quality) across the swap.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from ..config import ControllerConfig
from ..errors import CheckpointError

#: Committed quality-matrix file name (see ``tools/quality_matrix.py``).
QUALITY_MATRIX_NAME = "QUALITY_MATRIX.json"

#: Transition reasons emitted in the log.
REASON_OVERLOAD = "overload"
REASON_RECOVERED = "recovered"
REASON_INTEGRITY = "integrity"


@dataclass(frozen=True)
class Rung:
    """One step of a stream's degradation ladder: the *effective*
    configuration at that depth (rungs accumulate — a level rung keeps
    the guard relaxation acquired above it)."""

    kind: str          # "baseline" | "guards" | "level" | "model" | "shed"
    level: str         # effective pass-stack letter
    model: str         # effective model family
    guard_relax: int   # check_every / profile_every multiplier (1 = tight)
    shed: bool         # overflow frames are dropped, not backpressured

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "level": self.level,
            "model": self.model,
            "guard_relax": self.guard_relax,
            "shed": self.shed,
        }


@dataclass(frozen=True)
class WindowSignals:
    """Telemetry deltas for one stream over one frame window — the
    policy's entire world. All fields are integers derived from
    counters (:meth:`repro.telemetry.MetricsRegistry.delta`) or the
    queue depth at the window boundary; nothing here depends on
    wall-clock time."""

    queue_depth: int
    queue_capacity: int
    shed_delta: int = 0          # frames_shed this window
    integrity_delta: int = 0     # integrity.violations + faults.corrected
    degraded_delta: int = 0      # frames served degraded this window


def decide(
    rung: int,
    ladder: tuple[Rung, ...],
    signals: WindowSignals,
    hot_streak: int,
    cool_streak: int,
    config: ControllerConfig,
) -> tuple[int, int, int, str | None]:
    """The pure policy: one evaluation of one stream at a window
    boundary.

    Returns ``(hot_streak, cool_streak, target_rung, reason)`` where
    ``target_rung == rung`` (and ``reason is None``) means hold. The
    caller owns the streak state; passing the returned streaks back in
    on the next window makes the whole trajectory a fold over the
    window signals — trivially replayable.

    Classification: a window is *hot* when the boundary queue depth is
    at or above ``ceil(queue_high * capacity)`` or any frame was shed
    during it; *cool* when the depth is at or below
    ``floor(queue_low * capacity)`` and nothing was shed; anything in
    between (the hysteresis band) resets both streaks and holds.

    Integrity veto: corruption activity in the window
    (``integrity_delta > 0``) means relaxed guards are the wrong
    trade. Sitting on the guards rung, the policy restores it
    immediately (no streak needed, load notwithstanding); moving in
    either direction, the guards rung is skipped over.
    """
    high = math.ceil(config.queue_high * signals.queue_capacity)
    low = math.floor(config.queue_low * signals.queue_capacity)
    corrupt = signals.integrity_delta > 0

    if corrupt and ladder[rung].kind == "guards":
        return 0, 0, rung - 1, REASON_INTEGRITY

    hot = signals.queue_depth >= high or signals.shed_delta > 0
    cool = signals.queue_depth <= low and signals.shed_delta == 0
    if hot:
        hot_streak, cool_streak = hot_streak + 1, 0
    elif cool:
        hot_streak, cool_streak = 0, cool_streak + 1
    else:
        return 0, 0, rung, None

    if hot and hot_streak >= config.degrade_after and rung + 1 < len(ladder):
        target = rung + 1
        if corrupt and ladder[target].kind == "guards":
            if target + 1 >= len(ladder):
                return hot_streak, 0, rung, None
            target += 1
        return 0, 0, target, REASON_OVERLOAD
    if cool and cool_streak >= config.recover_after and rung > 0:
        target = rung - 1
        if corrupt and ladder[target].kind == "guards":
            target -= 1
        return 0, 0, target, REASON_RECOVERED
    return hot_streak, cool_streak, rung, None


# -- quality-matrix gating ---------------------------------------------
def load_quality_matrix(path: str | None = None) -> dict | None:
    """Load the committed model x level x scenario quality matrix.

    ``path=None`` auto-locates :data:`QUALITY_MATRIX_NAME` in the bench
    snapshot directory (repo checkout or ``REPRO_BENCH_DIR``). Any
    failure — no checkout, missing file, bad JSON — returns ``None``,
    which downstream conservatively reads as "no model switches".
    """
    try:
        if path is not None:
            file = Path(path)
        else:
            from ..bench.snapshot import resolve_snapshot_dir

            file = resolve_snapshot_dir() / QUALITY_MATRIX_NAME
        matrix = json.loads(file.read_text())
    except Exception:
        return None
    if not isinstance(matrix, dict) or not isinstance(
        matrix.get("cells"), list
    ):
        return None
    return matrix


def model_switch_tolerated(
    matrix: dict | None,
    scenario: str | None,
    base_model: str,
    fallback_model: str,
    margin: float,
) -> bool:
    """Whether ``scenario`` tolerates serving ``fallback_model`` in
    place of ``base_model``: the fallback's best F1 across levels must
    be within ``margin`` of the base model's best. Untagged streams,
    unknown scenarios and a missing matrix all answer ``False`` — the
    controller never trades quality it cannot account for.
    """
    if matrix is None or scenario is None:
        return False
    best: dict[str, float] = {}
    for cell in matrix["cells"]:
        if cell.get("scenario") != scenario:
            continue
        model = cell.get("model")
        f1 = cell.get("f1")
        if model is None or f1 is None:
            continue
        best[model] = max(best.get(model, 0.0), float(f1))
    if base_model not in best or fallback_model not in best:
        return False
    return best[fallback_model] >= best[base_model] - margin


def build_ladder(
    config: ControllerConfig,
    base_level: str,
    base_model: str,
    scenario: str | None = None,
    matrix: dict | None = None,
    reconfigurable: bool = True,
    guards_apply: bool = False,
) -> tuple[Rung, ...]:
    """Materialise one stream's degradation ladder.

    ``reconfigurable=False`` (an injected pipeline the server cannot
    rebuild) keeps only the rungs that touch no pipeline internals:
    baseline and — when allowed — shed. ``guards_apply`` gates the
    guards rung on the stream actually having something to relax (an
    active integrity policy or a profiled backend).

    A base level that appears in ``level_ladder`` descends only to the
    entries after it; one outside the ladder descends through all of
    it. The model rung is appended only when the stream's scenario
    provably tolerates the fallback (:func:`model_switch_tolerated`).
    """
    level, model = base_level, base_model
    rungs = [Rung("baseline", level, model, 1, False)]
    relax = 1
    if reconfigurable:
        if guards_apply and config.guard_relax >= 2:
            relax = config.guard_relax
            rungs.append(Rung("guards", level, model, relax, False))
        ladder = list(config.level_ladder)
        start = ladder.index(base_level) + 1 if base_level in ladder else 0
        for letter in ladder[start:]:
            level = letter
            rungs.append(Rung("level", level, model, relax, False))
        if (
            config.model_fallback is not None
            and config.model_fallback != base_model
            and model_switch_tolerated(
                matrix, scenario, base_model,
                config.model_fallback, config.model_margin,
            )
        ):
            model = config.model_fallback
            rungs.append(Rung("model", level, model, relax, False))
    if config.allow_shed:
        rungs.append(Rung("shed", level, model, relax, True))
    return tuple(rungs)


def ensure_same_family(current_model: str, target_model: str) -> None:
    """The cross-family contract from the durable-checkpoint machinery
    (:meth:`~repro.core.stream.SurveillancePipeline.restore_checkpoint`),
    applied to in-memory swaps: one family's state planes never move
    into another. Raises the same typed
    :class:`~repro.errors.CheckpointError`; the caller answers it the
    same way admission does — fresh model state, continuity of the
    frame index and last good mask."""
    if current_model != target_model:
        raise CheckpointError(
            f"checkpoint model-family mismatch: file holds "
            f"{current_model!r} state, pipeline is configured with "
            f"{target_model!r} — restoring one family's planes into "
            f"another would corrupt the model"
        )


@dataclass(frozen=True)
class Transition:
    """A committed rung move, handed to the server to apply."""

    stream_id: str
    source: Rung
    target: Rung
    entry: dict  # the transition-log record (already appended)

    @property
    def pipeline_changed(self) -> bool:
        s, t = self.source, self.target
        return (
            s.level != t.level
            or s.model != t.model
            or s.guard_relax != t.guard_relax
        )


class _Governor:
    """Per-stream controller state (guarded by the server lock)."""

    __slots__ = (
        "stream_id", "ladder", "rung", "hot_streak", "cool_streak",
        "window", "last_snapshot",
    )

    def __init__(self, stream_id: str, ladder: tuple[Rung, ...]) -> None:
        self.stream_id = stream_id
        self.ladder = ladder
        self.rung = 0
        self.hot_streak = 0
        self.cool_streak = 0
        self.window = 0
        self.last_snapshot: dict | None = None


class ServerController:
    """The server-side governor: one :class:`_Governor` per stream, a
    bounded transition log, and ``controller.*`` counters.

    All mutating methods are called with the owning server's lock held
    (registration, removal, window evaluation), which is what makes
    the transition log's order deterministic for a deterministic
    stream schedule.
    """

    def __init__(
        self,
        config: ControllerConfig,
        queue_capacity: int,
        registry,
    ) -> None:
        self.config = config
        self.queue_capacity = queue_capacity
        self.registry = registry  # the server's registry (rollups)
        self.matrix = load_quality_matrix(config.quality_matrix)
        self._governors: dict[str, _Governor] = {}
        self._log: deque[dict] = deque(maxlen=config.max_log)

    # -- registration --------------------------------------------------
    def register(
        self,
        stream_id: str,
        base_level: str,
        base_model: str,
        scenario: str | None,
        reconfigurable: bool,
        guards_apply: bool,
    ) -> None:
        ladder = build_ladder(
            self.config, base_level, base_model,
            scenario=scenario, matrix=self.matrix,
            reconfigurable=reconfigurable, guards_apply=guards_apply,
        )
        self._governors[stream_id] = _Governor(stream_id, ladder)

    def forget(self, stream_id: str) -> None:
        self._governors.pop(stream_id, None)

    # -- introspection -------------------------------------------------
    def rung_of(self, stream_id: str) -> int | None:
        gov = self._governors.get(stream_id)
        return None if gov is None else gov.rung

    def ladder_of(self, stream_id: str) -> tuple[Rung, ...] | None:
        gov = self._governors.get(stream_id)
        return None if gov is None else gov.ladder

    def log(self) -> list[dict]:
        """The transition log, oldest first (bounded by ``max_log``)."""
        return [dict(entry) for entry in self._log]

    # -- evaluation ----------------------------------------------------
    def observe_locked(
        self,
        stream_id: str,
        registry,
        queue_depth: int,
        frames_done: int,
    ) -> Transition | None:
        """Evaluate one stream at a window boundary. Called under the
        server lock; computes the window's telemetry deltas, runs
        :func:`decide`, and when the rung moves, commits the log entry
        and counters and returns the :class:`Transition` for the
        caller to apply (outside the lock)."""
        gov = self._governors.get(stream_id)
        if gov is None:
            return None
        delta = registry.delta(
            gov.last_snapshot, frames=self.config.window_frames
        )
        gov.last_snapshot = delta["end"]
        gov.window += 1
        counters = delta["counters"]
        signals = WindowSignals(
            queue_depth=queue_depth,
            queue_capacity=self.queue_capacity,
            shed_delta=counters.get("stream.frames_shed", 0),
            integrity_delta=(
                counters.get("integrity.violations", 0)
                + counters.get("faults.corrected", 0)
            ),
            degraded_delta=counters.get("stream.frames_degraded", 0),
        )
        gov.hot_streak, gov.cool_streak, target, reason = decide(
            gov.rung, gov.ladder, signals,
            gov.hot_streak, gov.cool_streak, self.config,
        )
        if target == gov.rung:
            return None
        source, dest = gov.ladder[gov.rung], gov.ladder[target]
        action = "downshift" if target > gov.rung else "upshift"
        entry = {
            "stream": stream_id,
            "window": gov.window,
            "frames_done": frames_done,
            "action": action,
            "reason": reason,
            "from_rung": gov.rung,
            "to_rung": target,
            "from": source.as_dict(),
            "to": dest.as_dict(),
            "queue_depth": signals.queue_depth,
            "shed_delta": signals.shed_delta,
            "integrity_delta": signals.integrity_delta,
        }
        gov.rung = target
        self._log.append(entry)
        self.registry.counter("server.controller.transitions").inc()
        self.registry.counter(f"server.controller.{action}s").inc()
        registry.counter("controller.transitions").inc()
        registry.counter(f"controller.{action}s").inc()
        return Transition(
            stream_id=stream_id, source=source, target=dest, entry=entry,
        )
