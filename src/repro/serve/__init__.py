"""Multi-stream serving layer.

:class:`StreamServer` multiplexes N independent
:class:`~repro.core.stream.SurveillancePipeline` instances over a
bounded worker pool — per-stream bounded queues with explicit
backpressure, admission control, round-robin scheduling and per-stream
fault isolation. See :mod:`repro.serve.server` and
docs/architecture.md ("Multi-stream serving").
"""

from .server import StreamServer, serve_sequences

__all__ = ["StreamServer", "serve_sequences"]
