"""Multi-stream serving layer.

:class:`StreamServer` multiplexes N independent
:class:`~repro.core.stream.SurveillancePipeline` instances over a
bounded worker pool — per-stream bounded queues with explicit
backpressure, admission control, round-robin scheduling and per-stream
fault isolation. :class:`ShardedStreamServer` scales that engine past
the GIL: N shard processes (each one thread-pool ``StreamServer``)
behind a shared-memory ingest gateway with consistent-hash placement,
checkpoint-based rebalancing and load shedding. See
:mod:`repro.serve.server`, :mod:`repro.serve.sharded`,
docs/architecture.md ("Multi-stream serving") and docs/sharding.md.
"""

from .server import StreamServer, serve_sequences
from .sharded import ConsistentHashRing, ShardedStreamServer

__all__ = [
    "ConsistentHashRing",
    "ShardedStreamServer",
    "StreamServer",
    "serve_sequences",
]
