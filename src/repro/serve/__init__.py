"""Multi-stream serving layer.

:class:`StreamServer` multiplexes N independent
:class:`~repro.core.stream.SurveillancePipeline` instances over a
bounded worker pool — per-stream bounded queues with explicit
backpressure, admission control, round-robin scheduling and per-stream
fault isolation. :class:`ShardedStreamServer` scales that engine past
the GIL: N shard processes (each one thread-pool ``StreamServer``)
behind a shared-memory ingest gateway with consistent-hash placement,
checkpoint-based rebalancing and load shedding.
:class:`ServerController` closes the loop between telemetry and
configuration: windowed signals drive a per-stream degradation ladder
(relax guards -> downshift level -> switch model -> shed) with
hysteresis, every move logged deterministically. See
:mod:`repro.serve.server`, :mod:`repro.serve.sharded`,
:mod:`repro.serve.controller`, docs/architecture.md ("Multi-stream
serving"), docs/sharding.md and docs/operations.md.
"""

from .controller import (
    Rung,
    ServerController,
    Transition,
    WindowSignals,
    build_ladder,
    decide,
    load_quality_matrix,
    model_switch_tolerated,
)
from .server import StreamServer, serve_sequences
from .sharded import ConsistentHashRing, ShardedStreamServer

__all__ = [
    "ConsistentHashRing",
    "Rung",
    "ServerController",
    "ShardedStreamServer",
    "StreamServer",
    "Transition",
    "WindowSignals",
    "build_ladder",
    "decide",
    "load_quality_matrix",
    "model_switch_tolerated",
    "serve_sequences",
]
