"""Sharded multi-process serving: N shard processes behind a gateway.

:class:`ShardedStreamServer` scales :class:`~repro.serve.StreamServer`
past the GIL: the parent process is a thin *ingest gateway* and each of
``serve.shards`` child processes hosts one thread-pool ``StreamServer``
as its intra-shard engine — so every per-stream guarantee (strict
submission order, fault isolation, durable checkpoints) is inherited,
and masks stay bit-identical to a serial
:class:`~repro.core.stream.SurveillancePipeline` run.

Data plane
----------
Frames travel gateway -> shard over a per-shard shared-memory ring
(:class:`~repro.parallel.frames.FrameRing`): one memcpy into the ring,
one out, no pickling, and polling-only synchronisation so a SIGKILLed
peer can never wedge a lock. Results (masks bit-packed 8:1), checkpoint
notices and failure notices return over a pipe, consumed by one
collector thread per shard.

Placement & rebalancing
-----------------------
Streams are placed on shards by consistent hashing over virtual nodes
(``serve.placement="hash"``; ``"round_robin"`` round-robins instead).
When a shard process dies, only *its* streams move: with durable
checkpoints enabled each victim stream is re-admitted on a surviving
shard, restored from its last checkpoint, and the gateway *replays*
every frame submitted after that checkpoint from its replay buffer —
the mask sequence each client observes is bit-identical to an
uninterrupted run. Without checkpoints, ``FaultPolicy.policy=
"restart"`` re-admits victims fresh (model state resets, counted in
``server.rebalanced_fresh``) and anything else fails them cleanly.

Admission control & shedding
----------------------------
``serve.max_streams`` is enforced gateway-wide (atomically, via the
same reservation scheme as the thread server). ``serve.shed_inflight``
caps each stream's in-flight frames at the gateway; over the cap,
``serve.shed_policy`` either rejects the submit or drops the frame
(``server.frames_shed``). Submission latency (submit -> result emitted)
is recorded in the ``server.latency_s`` histogram — the p50/p99 the
bench snapshot reports.

Telemetry: :meth:`ShardedStreamServer.snapshot` merges every shard's
snapshot re-keyed as ``server.shard.<k>.*`` (streams keep their
``stream.<id>.*`` keys) with the gateway's own rollups
(``server.rebalanced``, ``server.shard_deaths``, ``server.frames_shed``,
``server.shards_active``, ``server.latency_s``).
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..config import (
    FaultPolicy,
    MoGParams,
    RunConfig,
    ServeConfig,
    TelemetryConfig,
)
from ..core.stream import StreamResult
from ..errors import (
    BackpressureError,
    CheckpointError,
    ConfigError,
    WorkerError,
)
from ..parallel.frames import FrameRing
from ..telemetry import MetricsRegistry

_RPC_ERRORS = {
    "ConfigError": ConfigError,
    "CheckpointError": CheckpointError,
    "BackpressureError": BackpressureError,
    "WorkerError": WorkerError,
}


def _stable_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Stream -> shard placement with minimal movement on shard death.

    Each shard contributes ``vnodes`` virtual points on a hash ring;
    a stream lands on the first point clockwise of its own hash. When
    a shard is removed only the streams that hashed to *its* points
    move (to their next surviving neighbour) — the invariant the
    rebalance path relies on.
    """

    def __init__(self, nodes: Iterable[int], vnodes: int = 64) -> None:
        self._vnodes = vnodes
        self._points: list[tuple[int, int]] = []
        for node in nodes:
            self.add(node)

    def add(self, node: int) -> None:
        for v in range(self._vnodes):
            point = (_stable_hash(f"shard-{node}#{v}"), node)
            bisect.insort(self._points, point)

    def remove(self, node: int) -> None:
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> list[int]:
        return sorted({node for _, node in self._points})

    def place(self, key: str) -> int:
        if not self._points:
            raise WorkerError("no shards alive to place streams on")
        h = _stable_hash(key)
        idx = bisect.bisect_left(self._points, (h, -1))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]


class _RoundRobinPlacement:
    """Cycle over the alive shard set (fallback placement)."""

    def __init__(self, nodes: Iterable[int]) -> None:
        self._nodes = sorted(nodes)
        self._cursor = 0

    def add(self, node: int) -> None:
        if node not in self._nodes:
            self._nodes = sorted(self._nodes + [node])

    def remove(self, node: int) -> None:
        self._nodes = [n for n in self._nodes if n != node]

    @property
    def nodes(self) -> list[int]:
        return list(self._nodes)

    def place(self, key: str) -> int:
        if not self._nodes:
            raise WorkerError("no shards alive to place streams on")
        node = self._nodes[self._cursor % len(self._nodes)]
        self._cursor += 1
        return node


# ---------------------------------------------------------------------------
# Shard process
# ---------------------------------------------------------------------------

def _shard_main(index, ctrl, events, ring_name, shape, dtype_str,
                ring_slots, server_kwargs):
    """Shard body: pump the ingest ring and control pipe into an
    in-process :class:`StreamServer`, stream results/notices back.

    Protocol (gateway -> shard, over ``ctrl``; every request gets one
    ``("ok", payload)`` / ``("err", type_name, message)`` reply):
    ``("add_stream", sid, uid, model, scenario)``,
    ``("remove_stream", sid)``, ``("snapshot",)``, ``("status",)``,
    ``("controller_log",)``, ``("drain", timeout_s)``, ``("close",)``.
    Shard -> gateway, over ``events``:
    ``("res", [(sid, seq, frame_index, packed_mask, packed_raw,
    degraded, error, tracks), ...])`` (one message per pump pass),
    ``("ckpt", sid, frame_index, source_seq)``,
    ``("shed", sid, seq)`` (the shard's runtime controller shed the
    frame: consumed, no result coming),
    ``("failed", sid, error)``.
    """
    from .server import StreamServer

    try:
        ring = FrameRing.attach(
            ring_name, shape, np.dtype(dtype_str), ring_slots
        )
        server = StreamServer(**server_kwargs)
    except Exception as exc:
        try:
            ctrl.send(("init_error", repr(exc)))
        except Exception:
            pass
        return

    def _send(msg) -> None:
        try:
            events.send(msg)
        except Exception:
            pass

    server.on_checkpoint = lambda sid, fi, seq: _send(
        ("ckpt", sid, int(fi), int(seq))
    )
    uid_to_sid: dict[int, str] = {}
    pending: dict[str, deque[int]] = {}  # gateway seqs awaiting results
    known_failed: set[str] = set()

    def check_failures() -> None:
        for s in server.stream_status():
            sid = s["stream"]
            if s["failed"] and sid not in known_failed:
                known_failed.add(sid)
                if sid in pending:
                    pending[sid].clear()
                if sid in holdback:
                    holdback[sid].clear()
                _send(("failed", sid, s["failed"]))

    # Frames a full stream queue rejected, awaiting retry. Buffering
    # here instead of blocking in submit keeps one slow stream from
    # head-of-line-blocking every other stream on the shard.
    holdback: dict[str, deque] = {}

    def _try_submit(sid: str, seq: int, frame) -> bool:
        """Submit one frame; False means the queue is full (retry)."""
        try:
            admitted = server.submit(sid, frame)
        except BackpressureError:
            return False
        except Exception:
            check_failures()
            return True  # stream is gone/failed: the frame is consumed
        if not admitted:
            # Shards run backpressure="reject", so a False return can
            # only mean the runtime controller's shed rung dropped the
            # frame: consumed, no result coming. Tell the gateway so it
            # trims the frame from the stream's in-flight window
            # (otherwise drain would wait on it forever).
            _send(("shed", sid, seq))
            return True
        pending[sid].append(seq)
        return True

    def ingest(item) -> None:
        uid, seq, frame = item
        sid = uid_to_sid.get(uid)
        if sid is None or sid in known_failed:
            return
        hb = holdback.get(sid)
        if hb:  # keep per-stream order: older frames go first
            hb.append((seq, frame))
            return
        if not _try_submit(sid, seq, frame):
            holdback.setdefault(sid, deque()).append((seq, frame))

    def flush_holdback() -> int:
        moved = 0
        for sid, hb in holdback.items():
            if sid in known_failed:
                hb.clear()
                continue
            while hb:
                seq, frame = hb[0]
                if not _try_submit(sid, seq, frame):
                    break
                hb.popleft()
                moved += 1
        return moved

    def pump_results() -> int:
        # One pipe message per pump pass, not per result: each message
        # costs a shard-side write, a gateway collector wake-up and the
        # cache refills of two context switches, so batching results
        # (a worker finishing a batch_frames run produces several at
        # once) measurably lowers per-frame overhead.
        batch = []
        for sid, seqs in pending.items():
            if not seqs:
                continue  # nothing in flight for this stream
            for r in server.results(sid):
                seq = seqs.popleft() if seqs else -1
                batch.append((
                    sid, int(seq), int(r.frame_index),
                    np.packbits(r.mask), np.packbits(r.raw_mask),
                    bool(r.degraded), r.error, r.tracks,
                ))
        if batch:
            _send(("res", batch))
        return len(batch)

    ctrl.send(("ready", os.getpid()))
    running = True
    spins = 0
    idle_wait = 0.002
    while running:
        progress = 0
        try:
            while ctrl.poll(0):
                msg = ctrl.recv()
                progress += 1
                op = msg[0]
                if op == "add_stream":
                    _, sid, uid, model, scenario = msg
                    try:
                        server.add_stream(sid, model=model, scenario=scenario)
                        uid_to_sid[uid] = sid
                        pending.setdefault(sid, deque())
                        known_failed.discard(sid)
                        status = {
                            s["stream"]: s for s in server.stream_status()
                        }[sid]
                        ctrl.send(("ok", {
                            "frame_index": status["frame_index"],
                            "model": status["model"],
                            "resumed_source_seq":
                                status["resumed_source_seq"],
                            "resume_note": status["resume_note"],
                        }))
                    except Exception as exc:
                        ctrl.send(("err", type(exc).__name__, str(exc)))
                elif op == "remove_stream":
                    _, sid = msg
                    try:
                        pump_results()
                        server.remove_stream(sid)
                        pending.pop(sid, None)
                        holdback.pop(sid, None)
                        uid_to_sid = {
                            u: s for u, s in uid_to_sid.items() if s != sid
                        }
                        ctrl.send(("ok", None))
                    except Exception as exc:
                        ctrl.send(("err", type(exc).__name__, str(exc)))
                elif op == "snapshot":
                    ctrl.send(("ok", server.snapshot()))
                elif op == "status":
                    ctrl.send(("ok", server.stream_status()))
                elif op == "controller_log":
                    ctrl.send(("ok", server.controller_log()))
                elif op == "drain":
                    _, timeout_s = msg
                    try:
                        deadline = time.monotonic() + timeout_s
                        while True:
                            item = ring.pop(timeout_s=0)
                            if item is None:
                                break
                            ingest(item)
                        wait = 0.0005
                        while (any(holdback.values())
                               and time.monotonic() < deadline):
                            if flush_holdback():
                                wait = 0.0005
                            else:
                                # Queues are full: the worker needs the
                                # CPU more than this loop does.
                                time.sleep(wait)
                                wait = min(wait * 2, 0.008)
                            pump_results()
                        server.drain(
                            timeout_s=max(0.001, deadline - time.monotonic())
                        )
                        pump_results()
                        check_failures()
                        ctrl.send(("ok", None))
                    except Exception as exc:
                        ctrl.send(("err", type(exc).__name__, str(exc)))
                elif op == "close":
                    ctrl.send(("ok", None))
                    running = False
                else:
                    ctrl.send(("err", "ConfigError", f"unknown op {op!r}"))
        except (EOFError, OSError):
            running = False  # gateway is gone; shut down
        progress += flush_holdback()
        if sum(len(h) for h in holdback.values()) < 4 * ring.capacity:
            for _ in range(32):
                item = ring.pop(timeout_s=0)
                if item is None:
                    break
                progress += 1
                ingest(item)
        progress += pump_results()
        # Scanning stream status is cheap but not free; on a busy shard
        # the loop runs thousands of times per second and the scan would
        # compete with worker threads for the interpreter, so failures
        # are only checked every Nth quiet-ish iteration.
        spins += 1
        if spins >= 64:
            spins = 0
            check_failures()
        if not progress and running:
            # Idle: park on the control pipe so RPCs wake the loop
            # immediately while ring pushes are picked up at the next
            # wake. Repeated idles back off so a compute-bound worker
            # thread is not preempted twice a millisecond.
            try:
                ctrl.poll(idle_wait)
            except OSError:
                running = False
            idle_wait = min(idle_wait * 2, 0.016)
        else:
            idle_wait = 0.002
    try:
        server.close(drain=False)
    except Exception:
        pass
    ring.close()


# ---------------------------------------------------------------------------
# Gateway
# ---------------------------------------------------------------------------

class _ShardHandle:
    """Parent-side view of one shard process."""

    __slots__ = (
        "index", "ring", "process", "ctrl", "events",
        "rpc_lock", "producer_lock", "collector",
    )

    def __init__(self, ctx, index, ring, shard_args) -> None:
        self.index = index
        self.ring = ring
        parent_ctrl, child_ctrl = ctx.Pipe()
        ev_recv, ev_send = ctx.Pipe(duplex=False)
        self.ctrl = parent_ctrl
        self.events = ev_recv
        self.rpc_lock = threading.Lock()       # one RPC in flight
        self.producer_lock = threading.Lock()  # ring is single-producer
        self.collector: threading.Thread | None = None
        self.process = ctx.Process(
            target=_shard_main,
            args=(index, child_ctrl, ev_send, ring.name, *shard_args),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.process.start()
        child_ctrl.close()
        ev_send.close()


class _GatewayStream:
    """Gateway book-keeping for one stream (guarded by the gateway
    lock except the ring push)."""

    __slots__ = (
        "stream_id", "uid", "shard", "seq_next", "inflight", "replay",
        "emitted_fi", "emitted", "results", "failed", "moving", "shed",
        "rebalances", "resumed_source_seq", "resume_note",
        "model", "model_override", "scenario",
    )

    def __init__(self, stream_id: str, uid: int, shard: int,
                 replay_enabled: bool,
                 model_override: str | None = None,
                 scenario: str | None = None) -> None:
        self.stream_id = stream_id
        self.uid = uid
        self.shard = shard
        # The model= argument passed at add_stream (re-sent verbatim on
        # rebalance) and the family the shard resolved it to.
        self.model_override = model_override
        self.model: str | None = None
        # Scenario tag for the shard's runtime controller (re-sent
        # verbatim on rebalance, like the model override).
        self.scenario = scenario
        self.seq_next = 0
        self.inflight: deque[tuple[int, float]] = deque()
        # seq -> frame, every frame since the last durable checkpoint
        # (trimmed on "ckpt" notices); None when checkpoints are off.
        self.replay: dict[int, np.ndarray] | None = (
            {} if replay_enabled else None
        )
        self.emitted_fi = -1
        self.emitted = 0
        self.results: deque[StreamResult] = deque()
        self.failed: str | None = None
        self.moving = False
        self.shed = 0
        self.rebalances = 0
        self.resumed_source_seq = -1
        self.resume_note: str | None = None


class ShardedStreamServer:
    """N shard processes, each a thread-pool :class:`StreamServer`,
    behind an ingest gateway.

    Construction mirrors :class:`StreamServer` (``serve.shards`` must
    be >= 1); ``frame_dtype`` fixes the wire dtype of the shared-memory
    rings (frames are converted on submit — pick the dtype your source
    produces to keep masks bit-identical with a serial run feeding the
    same frames).

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: str = "F",
        backend: str | None = None,
        model: str | None = None,
        run_config: RunConfig | None = None,
        serve: ServeConfig | None = None,
        fault_policy: FaultPolicy | None = None,
        telemetry: TelemetryConfig | None = None,
        warmup_frames: int = 15,
        integrity=None,
        frame_dtype=np.float64,
    ) -> None:
        self.shape = tuple(shape)
        self.serve_config = serve or ServeConfig(shards=2)
        if self.serve_config.shards < 1:
            raise ConfigError(
                "ShardedStreamServer requires serve.shards >= 1 "
                f"(got {self.serve_config.shards})"
            )
        self.backend = backend or self.serve_config.backend or "cpu"
        self.model = model or self.serve_config.model
        self.fault_policy = fault_policy or FaultPolicy(stage_error="degrade")
        self.telemetry_config = telemetry or TelemetryConfig()
        self.registry = MetricsRegistry(self.telemetry_config)
        self._dtype = np.dtype(frame_dtype)
        self._ckpt_enabled = bool(
            self.serve_config.checkpoint_every
            and self.serve_config.checkpoint_dir
        )
        self._checkpoint_dir: Path | None = (
            Path(self.serve_config.checkpoint_dir)
            if self.serve_config.checkpoint_dir is not None
            else None
        )

        # The intra-shard engine config: in-process thread server,
        # rejecting backpressure (the shard loop holds rejected frames
        # back locally and retries, so one full stream queue never
        # head-of-line-blocks the other streams on the shard; pressure
        # still propagates ring -> gateway once the holdback fills),
        # no nested sharding/shedding. Shards resume whenever durable
        # checkpoints are enabled so a rebalanced stream restores even
        # if the gateway itself was started without --resume.
        shard_serve = self.serve_config.replace(
            shards=0,
            shard_backend=None,
            backend=self.serve_config.shard_backend or self.backend,
            backpressure="reject",
            shed_inflight=0,
            resume=self.serve_config.resume or self._ckpt_enabled,
        )
        server_kwargs = dict(
            shape=self.shape,
            params=params,
            level=level,
            model=self.model,
            run_config=run_config,
            serve=shard_serve,
            fault_policy=self.fault_policy,
            telemetry=self.telemetry_config,
            warmup_frames=warmup_frames,
            integrity=integrity,
        )

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._lock = threading.Lock()
        self._moved = threading.Condition(self._lock)  # rebalance done
        self._streams: dict[str, _GatewayStream] = {}
        self._reserved: set[str] = set()
        self._uid_next = 0
        self._closed = False
        self._closing = False
        self._shards: list[_ShardHandle | None] = []
        self._dead: list[_ShardHandle] = []

        shard_args = (
            self.shape, self._dtype.str, self.serve_config.ring_slots,
            server_kwargs,
        )
        try:
            for k in range(self.serve_config.shards):
                ring = FrameRing.create(
                    self.shape, self._dtype, self.serve_config.ring_slots
                )
                self._shards.append(
                    _ShardHandle(self._ctx, k, ring, shard_args)
                )
            for handle in self._shards:
                self._probe(handle)
        except BaseException:
            self._teardown_processes()
            raise

        if self.serve_config.placement == "round_robin":
            self._placement = _RoundRobinPlacement(range(len(self._shards)))
        else:
            self._placement = ConsistentHashRing(range(len(self._shards)))
        self.registry.gauge("server.shards_active").set(len(self._shards))
        for handle in self._shards:
            t = threading.Thread(
                target=self._collect_loop,
                args=(handle.index, handle),
                name=f"repro-shard-collect-{handle.index}",
                daemon=True,
            )
            handle.collector = t
            t.start()

    # -- shard plumbing ------------------------------------------------
    def _probe(self, handle: _ShardHandle) -> None:
        if not handle.ctrl.poll(30.0):
            raise WorkerError(
                f"shard {handle.index} did not come up within 30s"
            )
        msg = handle.ctrl.recv()
        if msg[0] != "ready":
            raise WorkerError(
                f"shard {handle.index} failed to initialise: {msg[1]}"
            )

    def _rpc(self, handle: _ShardHandle, msg: tuple, timeout_s: float):
        """One control-plane request/reply on a shard; raises the typed
        error a shard reports, or :class:`WorkerError` if the shard is
        unresponsive/dead."""
        with handle.rpc_lock:
            try:
                handle.ctrl.send(msg)
                if not handle.ctrl.poll(timeout_s):
                    raise WorkerError(
                        f"shard {handle.index} did not answer {msg[0]!r} "
                        f"within {timeout_s:g}s"
                    )
                reply = handle.ctrl.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise WorkerError(
                    f"shard {handle.index} is unreachable: {exc!r}"
                ) from exc
        if reply[0] == "ok":
            return reply[1]
        _, type_name, message = reply
        raise _RPC_ERRORS.get(type_name, WorkerError)(message)

    def _teardown_processes(self) -> None:
        for handle in list(self._shards) + self._dead:
            if handle is None:
                continue
            proc = handle.process
            if proc.is_alive():
                proc.terminate()
                proc.join(2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            for conn in (handle.ctrl, handle.events):
                try:
                    conn.close()
                except Exception:
                    pass
            handle.ring.close()

    # -- collector thread ----------------------------------------------
    def _collect_loop(self, k: int, handle: _ShardHandle) -> None:
        conn = handle.events
        while True:
            try:
                if conn.poll(0.05):
                    msg = conn.recv()
                elif not handle.process.is_alive() and not conn.poll(0):
                    break
                else:
                    continue
            except (EOFError, OSError):
                break
            try:
                self._on_event(msg)
            except Exception:
                self.registry.counter("server.collector_errors").inc()
        if not self._closing:
            self._on_shard_death(k, handle)

    def _on_event(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "res":
            for item in msg[1]:
                self._on_result(item)
        elif kind == "shed":
            _, sid, seq = msg
            with self._lock:
                st = self._streams.get(sid)
                if st is not None:
                    st.inflight = deque(
                        (s, t) for s, t in st.inflight if s != seq
                    )
            self.registry.counter("server.frames_shed").inc()
        elif kind == "ckpt":
            _, sid, _fi, source_seq = msg
            with self._lock:
                st = self._streams.get(sid)
                if st is not None and st.replay is not None:
                    for seq in [s for s in st.replay if s <= source_seq]:
                        del st.replay[seq]
        elif kind == "failed":
            _, sid, err = msg
            with self._lock:
                st = self._streams.get(sid)
                if st is not None:
                    self._fail_stream_locked(st, err)

    def _on_result(self, msg: tuple) -> None:
        sid, seq, fi, packed, packed_raw, degraded, error, tracks = msg
        npix = self.shape[0] * self.shape[1]
        mask = np.unpackbits(packed, count=npix).astype(bool)
        mask = mask.reshape(self.shape)
        raw = np.unpackbits(packed_raw, count=npix).astype(bool)
        raw = raw.reshape(self.shape)
        now = time.monotonic()
        with self._lock:
            st = self._streams.get(sid)
            if st is None or st.failed is not None:
                return
            while st.inflight and st.inflight[0][0] <= seq:
                s2, t2 = st.inflight.popleft()
                if s2 == seq:
                    self.registry.histogram("server.latency_s").observe(
                        now - t2
                    )
            if fi <= st.emitted_fi:
                return  # duplicate from a rebalance replay
            st.emitted_fi = fi
            st.emitted += 1
            st.results.append(StreamResult(
                frame_index=fi, raw_mask=raw, mask=mask, tracks=tracks,
                degraded=degraded, error=error,
            ))
            self.registry.counter("server.frames_total").inc()

    def _fail_stream_locked(self, st: _GatewayStream, err: str) -> None:
        if st.failed is not None:
            return
        st.failed = err
        st.inflight.clear()
        if st.replay is not None:
            st.replay.clear()
        self.registry.counter("server.streams_failed").inc()

    # -- shard death & rebalancing -------------------------------------
    def _on_shard_death(self, k: int, handle: _ShardHandle) -> None:
        with self._lock:
            if self._closing or self._shards[k] is None:
                return
            self._shards[k] = None
            # Ring/pipes are reclaimed at close(): a submitter may still
            # be blocked inside the dead ring's buffer.
            self._dead.append(handle)
            self._placement.remove(k)
            self.registry.counter("server.shard_deaths").inc()
            self.registry.gauge("server.shards_active").set(
                sum(h is not None for h in self._shards)
            )
            victims = [
                st for st in self._streams.values()
                if st.shard == k and st.failed is None
            ]
            for st in victims:
                st.moving = True
        for st in victims:
            try:
                self._rebalance_stream(st)
            except Exception as exc:
                with self._lock:
                    self._fail_stream_locked(
                        st, f"rebalance failed: {exc!r}"
                    )
        with self._lock:
            for st in victims:
                st.moving = False
            self._moved.notify_all()

    def _rebalance_stream(self, st: _GatewayStream) -> None:
        """Move one victim stream to a surviving shard per the fault
        policy: checkpoint-restore + replay (bit-identical), fresh
        re-admission (no checkpoints), or clean failure."""
        policy = self.fault_policy
        with self._lock:
            alive = any(h is not None for h in self._shards)
        if (
            not alive
            or policy.policy != "restart"
            or st.rebalances >= policy.max_restarts
        ):
            with self._lock:
                self._fail_stream_locked(
                    st, "shard died (fault policy does not rebalance)"
                )
            return
        new_k = self._placement.place(st.stream_id)
        with self._lock:
            handle = self._shards[new_k]
        if handle is None:
            raise WorkerError(f"placement chose dead shard {new_k}")
        reply = self._rpc(
            handle,
            ("add_stream", st.stream_id, st.uid, st.model_override,
             st.scenario),
            timeout_s=self.serve_config.drain_timeout_s,
        )
        restored_seq = int(reply["resumed_source_seq"])
        now = time.monotonic()
        if self._ckpt_enabled and st.replay is not None:
            pending = sorted(s for s in st.replay if s > restored_seq)
            expected = list(range(restored_seq + 1, st.seq_next))
            if pending != expected:
                raise WorkerError(
                    f"replay gap for stream {st.stream_id!r}: checkpoint "
                    f"is at seq {restored_seq}, replay buffer holds "
                    f"{pending[:4]}..."
                )
            with self._lock:
                for seq in [s for s in st.replay if s <= restored_seq]:
                    del st.replay[seq]
                st.inflight = deque((s, now) for s in pending)
                st.shard = new_k
                # Snapshot now: the new shard's collector may trim the
                # replay buffer (checkpoint notices) while we push.
                to_push = [(s, st.replay[s]) for s in pending]
            for seq, frame in to_push:
                with handle.producer_lock:
                    ok = handle.ring.push(
                        st.uid, seq, frame,
                        timeout_s=self.serve_config.submit_timeout_s,
                    )
                if not ok:
                    raise WorkerError(
                        f"replay into shard {new_k} timed out at seq {seq}"
                    )
        else:
            # No durable state to restore: the stream restarts fresh on
            # the new shard (frame_index and model state reset).
            with self._lock:
                st.inflight.clear()
                st.seq_next = 0
                st.emitted_fi = -1
                st.shard = new_k
                st.resume_note = "rebalanced fresh (no checkpoint)"
            self.registry.counter("server.rebalanced_fresh").inc()
        with self._lock:
            st.rebalances += 1
        self.registry.counter("server.rebalanced").inc()

    # -- stream registration -------------------------------------------
    def add_stream(self, stream_id: str, model: str | None = None,
                   scenario: str | None = None) -> None:
        """Register a stream on its placed shard; raises on duplicates
        or over-admission (gateway-wide ``max_streams``). Injected
        pipelines are not supported across process boundaries — shards
        always build their own. ``model`` overrides the server's
        default background-model family for this stream; ``scenario``
        tags its content class for the shard's runtime controller
        (both re-sent verbatim when the stream is rebalanced to
        another shard)."""
        if not stream_id or not isinstance(stream_id, str):
            raise ConfigError(
                f"stream id must be a non-empty string, got {stream_id!r}"
            )
        if "." in stream_id:
            raise ConfigError(
                f"stream id must not contain '.', got {stream_id!r} "
                "(ids become telemetry label segments)"
            )
        with self._lock:
            if self._closed:
                raise ConfigError("ShardedStreamServer is closed")
            if stream_id in self._streams or stream_id in self._reserved:
                raise ConfigError(f"stream {stream_id!r} already registered")
            if (
                len(self._streams) + len(self._reserved)
                >= self.serve_config.max_streams
            ):
                raise ConfigError(
                    f"cannot admit stream {stream_id!r}: server is at its "
                    f"max_streams limit ({self.serve_config.max_streams})"
                )
            self._reserved.add(stream_id)
            uid = self._uid_next
            self._uid_next += 1
        try:
            if (
                self._ckpt_enabled
                and not self.serve_config.resume
                and self._checkpoint_dir is not None
            ):
                # Shards resume whenever checkpointing is on (for the
                # rebalance path); without --resume a stale file from a
                # previous run must not leak into this one.
                try:
                    (self._checkpoint_dir / f"{stream_id}.ckpt").unlink()
                except OSError:
                    pass
            shard = self._placement.place(stream_id)
            with self._lock:
                handle = self._shards[shard]
            if handle is None:
                raise WorkerError(f"placement chose dead shard {shard}")
            reply = self._rpc(
                handle, ("add_stream", stream_id, uid, model, scenario),
                timeout_s=self.serve_config.drain_timeout_s,
            )
        except BaseException:
            with self._lock:
                self._reserved.discard(stream_id)
            raise
        with self._lock:
            self._reserved.discard(stream_id)
            if self._closed:
                raise ConfigError("ShardedStreamServer is closed")
            st = _GatewayStream(
                stream_id, uid, shard, replay_enabled=self._ckpt_enabled,
                model_override=model, scenario=scenario,
            )
            st.model = reply.get("model")
            if self.serve_config.resume:
                st.resumed_source_seq = int(reply["resumed_source_seq"])
                st.resume_note = reply["resume_note"]
                if st.resumed_source_seq >= 0:
                    st.seq_next = st.resumed_source_seq + 1
                    st.emitted_fi = int(reply["frame_index"])
            self._streams[stream_id] = st
            self.registry.gauge("server.streams_active").set(
                len(self._streams)
            )

    def remove_stream(self, stream_id: str) -> list[StreamResult]:
        """Deregister a stream, returning its uncollected results."""
        with self._lock:
            st = self._require_locked(stream_id)
            while st.moving:
                self._moved.wait(self.serve_config.drain_timeout_s)
            handle = self._shards[st.shard] if st.failed is None else None
        if handle is not None:
            try:
                self._rpc(
                    handle, ("remove_stream", stream_id),
                    timeout_s=self.serve_config.drain_timeout_s,
                )
            except WorkerError:
                pass  # shard died; collector handles the fallout
        with self._lock:
            st = self._streams.pop(stream_id, st)
            self.registry.gauge("server.streams_active").set(
                len(self._streams)
            )
            return list(st.results)

    def _require_locked(self, stream_id: str) -> _GatewayStream:
        st = self._streams.get(stream_id)
        if st is None:
            raise ConfigError(f"unknown stream {stream_id!r}")
        return st

    # -- submission ----------------------------------------------------
    def submit(
        self, stream_id: str, frame: np.ndarray,
        timeout_s: float | None = None,
    ) -> bool:
        """Queue one frame for ``stream_id`` on its shard.

        Returns ``True`` when the frame was admitted, ``False`` when
        the gateway shed it (``shed_policy="drop"`` over
        ``shed_inflight``). Raises
        :class:`~repro.errors.BackpressureError` under
        ``shed_policy="reject"`` or when the shard's ring stays full
        past the timeout, and :class:`~repro.errors.WorkerError` for a
        failed stream.
        """
        cfg = self.serve_config
        if timeout_s is None:
            timeout_s = cfg.submit_timeout_s
        deadline = time.monotonic() + timeout_s
        frame = np.asarray(frame)
        if (frame.dtype != self._dtype
                and not np.can_cast(frame.dtype, self._dtype,
                                    casting="safe")):
            raise ConfigError(
                f"frame dtype {frame.dtype} cannot be carried losslessly "
                f"on a {self._dtype} ring (pass frame_dtype="
                f"{frame.dtype} at construction)"
            )
        frame = np.ascontiguousarray(frame, dtype=self._dtype)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != server shape {self.shape}"
            )
        with self._lock:
            if self._closed:
                raise ConfigError("ShardedStreamServer is closed")
            st = self._require_locked(stream_id)
            while st.moving:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._moved.wait(remaining):
                    raise BackpressureError(
                        f"stream {stream_id!r} is rebalancing",
                        stream_id=stream_id,
                    )
            if st.failed is not None:
                raise WorkerError(
                    f"stream {stream_id!r} has failed: {st.failed}"
                )
            if cfg.shed_inflight and len(st.inflight) >= cfg.shed_inflight:
                self.registry.counter("server.frames_shed").inc()
                if cfg.shed_policy == "drop":
                    st.shed += 1
                    return False
                raise BackpressureError(
                    f"stream {stream_id!r} has {len(st.inflight)} frames "
                    f"in flight (shed_inflight={cfg.shed_inflight})",
                    stream_id=stream_id,
                )
            seq = st.seq_next
            st.seq_next += 1
            st.inflight.append((seq, time.monotonic()))
            if st.replay is not None:
                st.replay[seq] = frame
            handle = self._shards[st.shard]
        if handle is None:
            return True  # shard died under us; replay/rebalance delivers
        with handle.producer_lock:
            ok = handle.ring.push(
                st.uid, seq, frame,
                timeout_s=max(0.001, deadline - time.monotonic()),
            )
        if not ok:
            with self._lock:
                # The frame never entered the ring. If the shard just
                # died, leave the bookkeeping: the frame is in the
                # replay buffer and the rebalance will deliver it.
                if self._shards[st.shard] is handle and st.failed is None:
                    if st.seq_next == seq + 1:
                        st.seq_next = seq
                    if st.replay is not None:
                        st.replay.pop(seq, None)
                    st.inflight = deque(
                        (s, t) for s, t in st.inflight if s != seq
                    )
                    raise BackpressureError(
                        f"shard {st.shard} ring stayed full for "
                        f"{timeout_s:g}s (stream {stream_id!r})",
                        stream_id=stream_id,
                    )
        return True

    def results(self, stream_id: str) -> list[StreamResult]:
        """Pop every completed result for ``stream_id`` (in order)."""
        with self._lock:
            st = self._require_locked(stream_id)
            out = list(st.results)
            st.results.clear()
            return out

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> None:
        """Block until every stream's in-flight frames have produced
        results (failed streams excluded). Raises
        :class:`~repro.errors.WorkerError` on timeout."""
        if timeout_s is None:
            timeout_s = self.serve_config.drain_timeout_s
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                handles = [h for h in self._shards if h is not None]
            for handle in handles:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    self._rpc(handle, ("drain", remaining), remaining + 5.0)
                except WorkerError:
                    pass  # death mid-drain: the rebalance path takes over
            with self._lock:
                backlog = {
                    st.stream_id: len(st.inflight)
                    for st in self._streams.values()
                    if st.failed is None and (st.inflight or st.moving)
                }
            if not backlog:
                return
            if time.monotonic() >= deadline:
                raise WorkerError(
                    f"sharded server did not drain within {timeout_s:g}s "
                    f"(backlog: {backlog})"
                )
            time.sleep(0.01)

    def close(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Shut every shard down (draining first by default)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            if drain:
                self.drain(timeout_s)
        finally:
            self._closing = True
            with self._lock:
                handles = [h for h in self._shards if h is not None]
            for handle in handles:
                try:
                    self._rpc(handle, ("close",), 5.0)
                except Exception:
                    pass
            for handle in handles:
                handle.process.join(self.serve_config.drain_timeout_s)
            self._teardown_processes()
            for handle in handles:
                if handle.collector is not None:
                    handle.collector.join(2.0)
            with self._lock:
                self._shards = [None] * len(self._shards)
                self.registry.gauge("server.shards_active").set(0)

    def __enter__(self) -> "ShardedStreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=False)

    # -- introspection -------------------------------------------------
    @property
    def stream_ids(self) -> list[str]:
        with self._lock:
            return list(self._streams)

    def shard_pids(self) -> list[int | None]:
        """Live shard process ids (None for dead shards) — what the
        chaos tests SIGKILL."""
        with self._lock:
            return [
                h.process.pid if h is not None else None
                for h in self._shards
            ]

    def stream_status(self) -> list[dict]:
        """Gateway-side supervision view (one dict per stream)."""
        with self._lock:
            return [
                {
                    "stream": st.stream_id,
                    "shard": st.shard,
                    "model": st.model,
                    "frame_index": st.emitted_fi,
                    "queued": len(st.inflight),
                    "frames_in": st.seq_next,
                    "frames_done": st.emitted,
                    "frames_dropped": st.shed,
                    "restarts": st.rebalances,
                    "failed": st.failed,
                    "source_seq": st.seq_next - 1,
                    "resumed_source_seq": st.resumed_source_seq,
                    "resume_note": st.resume_note,
                }
                for st in self._streams.values()
            ]

    def controller_log(self) -> list[dict]:
        """Every live shard's controller transition log, each entry
        annotated with its shard index. Entries keep their per-shard
        order (each shard's log is deterministic on its own schedule);
        dead shards contribute nothing — a rebalanced stream's new
        shard starts it back at its baseline rung."""
        with self._lock:
            handles = [h for h in self._shards if h is not None]
        merged: list[dict] = []
        for handle in handles:
            try:
                entries = self._rpc(
                    handle, ("controller_log",),
                    self.serve_config.drain_timeout_s,
                )
            except WorkerError:
                continue  # died under us; the collector will rebalance
            for entry in entries:
                entry = dict(entry)
                entry["shard"] = handle.index
                merged.append(entry)
        return merged

    def snapshot(self) -> dict:
        """Gateway rollups plus every live shard's snapshot, with
        shard-level server metrics re-keyed ``server.shard.<k>.*`` and
        per-stream metrics kept as ``stream.<id>.*``."""
        with self._lock:
            self.registry.gauge("server.streams_active").set(
                len([
                    s for s in self._streams.values() if s.failed is None
                ])
            )
            self.registry.gauge("server.shards_active").set(
                sum(h is not None for h in self._shards)
            )
            handles = [h for h in self._shards if h is not None]
        combined = self.registry.snapshot()
        for handle in handles:
            try:
                snap = self._rpc(
                    handle, ("snapshot",),
                    self.serve_config.drain_timeout_s,
                )
            except WorkerError:
                continue  # died under us; the collector will rebalance
            for kind in ("counters", "gauges", "histograms"):
                for name, value in snap.get(kind, {}).items():
                    if name.startswith("server."):
                        name = (
                            f"server.shard.{handle.index}."
                            + name[len("server."):]
                        )
                    combined.setdefault(kind, {})[name] = value
        for kind in ("counters", "gauges", "histograms"):
            combined[kind] = dict(sorted(combined.get(kind, {}).items()))
        return combined
