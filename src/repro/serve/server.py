"""Multi-stream serving: N pipelines multiplexed over a worker pool.

The ROADMAP's target deployment is many cameras, not one —
:class:`StreamServer` is the multi-tenant layer above
:class:`~repro.core.stream.SurveillancePipeline`. Each registered
stream id owns one pipeline (and therefore its own mixture state,
cleaner and tracker), a bounded input queue, and a result queue; a
shared pool of worker threads moves frames through the pipelines.

Design points, in the order they matter:

* **Per-stream serialisation.** A stream is only ever scheduled on one
  worker at a time and its frames run strictly in submission order, so
  the masks a stream produces are bit-identical to running its frames
  through a lone ``SurveillancePipeline`` — regardless of the worker
  count or how streams interleave.
* **Round-robin batch scheduling.** A worker takes at most
  ``batch_frames`` from one stream per turn, then the cursor advances,
  so a hot stream (deep queue) cannot starve its neighbours.
* **Admission control.** Registering more than ``max_streams`` streams,
  a duplicate id, or submitting to an unknown stream raises a clear
  :class:`~repro.errors.ConfigError`.
* **Backpressure.** A full input queue engages the configured policy:
  ``block`` (bounded wait), ``drop_oldest`` (evict + count), or
  ``reject`` (raise :class:`~repro.errors.BackpressureError`).
* **Fault isolation.** A stream whose pipeline raises is handled per
  its :class:`~repro.config.FaultPolicy`: ``restart`` rebuilds the
  pipeline (fresh model state) and keeps serving; ``fail`` /
  exhausted restart budget marks only that stream failed — siblings
  keep serving. Stage-level errors inside a step are already absorbed
  by the pipeline itself when ``fault_policy.stage_error="degrade"``.
* **Telemetry.** Each stream records into its own registry; the server
  snapshot re-keys those as ``stream.<id>.*`` and adds rollups
  (``server.frames_total``, ``server.streams_active``,
  ``server.queue_depth``, ``server.step_s``).
* **Closed-loop control.** With ``serve.controller`` set, a
  :class:`~repro.serve.controller.ServerController` evaluates each
  stream at frame-count window boundaries and walks its degradation
  ladder (relax guards -> downshift level -> switch model -> shed)
  with hysteresis, recording every move in a deterministic transition
  log (:meth:`StreamServer.controller_log`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..config import (
    FaultPolicy,
    MoGParams,
    RunConfig,
    ServeConfig,
    TelemetryConfig,
)
from ..core.stream import StreamResult, SurveillancePipeline
from ..errors import BackpressureError, CheckpointError, ConfigError, WorkerError
from ..telemetry import MetricsRegistry
from .controller import Rung, ServerController, Transition, ensure_same_family


class _StreamState:
    """Book-keeping for one registered stream (guarded by the server
    lock except where noted)."""

    __slots__ = (
        "stream_id", "pipeline", "factory", "queue", "results",
        "busy", "failed", "restarts", "frames_in", "frames_done",
        "frames_dropped", "registry", "seq_next", "last_seq",
        "resumed_source_seq", "resume_note", "scenario", "shedding",
        "frames_shed", "reconfigurable",
    )

    def __init__(
        self,
        stream_id: str,
        pipeline: SurveillancePipeline,
        factory: Callable[[], SurveillancePipeline] | None,
        registry: MetricsRegistry,
    ) -> None:
        self.stream_id = stream_id
        self.pipeline = pipeline
        self.factory = factory
        self.registry = registry
        self.queue: deque[tuple[int, np.ndarray]] = deque()
        self.results: deque[StreamResult] = deque()
        self.busy = False          # a worker currently owns this stream
        self.failed: str | None = None  # repr of the fatal error
        self.restarts = 0
        self.frames_in = 0
        self.frames_done = 0
        self.frames_dropped = 0
        # Submission-sequence cursor. ``seq_next`` numbers every
        # *submitted* frame (dropped ones included), ``last_seq`` is the
        # sequence number of the last frame the pipeline consumed —
        # under ``drop_oldest`` this runs ahead of ``frame_index``, and
        # it is what checkpoints record so a resume replays the source
        # from the right position (not a frame an eviction already
        # skipped past).
        self.seq_next = 0
        self.last_seq = -1
        self.resumed_source_seq = -1   # -1 = started fresh
        self.resume_note: str | None = None
        # Controller-facing fields. ``scenario`` gates quality-aware
        # model switches; ``shedding`` flips submit's full-queue policy
        # to drop-and-count; ``reconfigurable`` marks a default-built
        # pipeline the server may rebuild at a different rung.
        self.scenario: str | None = None
        self.shedding = False
        self.frames_shed = 0
        self.reconfigurable = False


class StreamServer:
    """N surveillance streams over a bounded worker pool.

    Parameters
    ----------
    shape, params, level, backend, model, run_config:
        Defaults for every stream's
        :class:`~repro.core.stream.SurveillancePipeline`.
        ``backend=None`` resolves to ``serve.backend`` when that is
        set, else ``"cpu"``; ``"jit"`` serves compiled kernels and
        degrades to ``"cpu"`` (bit-identical masks) without numba.
        ``model=None`` resolves to ``serve.model`` when that is set,
        else the level's model family (MoG for bare letters); streams
        can override it per-stream via :meth:`add_stream`.
    serve:
        :class:`~repro.config.ServeConfig` — pool size, admission
        limits, queue depth and backpressure policy.
    fault_policy:
        :class:`~repro.config.FaultPolicy` applied per stream.
        ``policy="restart"`` rebuilds a crashed stream's pipeline up to
        ``max_restarts`` times; anything else marks the stream failed on
        the first unhandled error. ``stage_error`` is forwarded to each
        pipeline (``"degrade"`` keeps a stream alive through isolated
        bad frames).
    telemetry:
        :class:`~repro.config.TelemetryConfig` for the server registry
        and every per-stream registry.
    warmup_frames:
        Forwarded to each pipeline.
    integrity:
        Optional :class:`~repro.config.IntegrityPolicy` forwarded to
        every default-built pipeline (mixture-state guard per frame).

    Durable checkpoints: when ``serve.checkpoint_every > 0`` each
    stream's pipeline is checkpointed to
    ``<serve.checkpoint_dir>/<stream_id>.ckpt`` every N frames (atomic
    write — a crash mid-write leaves the previous checkpoint intact);
    with ``serve.resume=True``, :meth:`add_stream` restores a stream
    from its checkpoint file when one exists, resuming bit-identically
    from the checkpoint frame.

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: str = "F",
        backend: str | None = None,
        model: str | None = None,
        run_config: RunConfig | None = None,
        serve: ServeConfig | None = None,
        fault_policy: FaultPolicy | None = None,
        telemetry: TelemetryConfig | None = None,
        warmup_frames: int = 15,
        integrity=None,
    ) -> None:
        self.shape = tuple(shape)
        self.params = params
        self.level = level
        self.serve_config = serve or ServeConfig()
        # Explicit argument wins, then the serve config's default, then
        # the interpreted cpu path.
        self.backend = backend or self.serve_config.backend or "cpu"
        # Explicit argument wins, then the serve config's default, then
        # whatever the level expression implies (MoG for bare letters).
        self.model = model or self.serve_config.model
        self.run_config = run_config
        self.fault_policy = fault_policy or FaultPolicy(stage_error="degrade")
        self.telemetry_config = telemetry or TelemetryConfig()
        self.warmup_frames = warmup_frames
        self.integrity = integrity
        self.registry = MetricsRegistry(self.telemetry_config)
        self.controller: ServerController | None = None
        if self.serve_config.controller is not None:
            self.controller = ServerController(
                self.serve_config.controller,
                queue_capacity=self.serve_config.queue_capacity,
                registry=self.registry,
            )
        self._checkpoint_dir: Path | None = None
        if self.serve_config.checkpoint_dir is not None:
            self._checkpoint_dir = Path(self.serve_config.checkpoint_dir)
            self._checkpoint_dir.mkdir(parents=True, exist_ok=True)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # frames queued
        self._space = threading.Condition(self._lock)  # queue slot freed
        self._idle = threading.Condition(self._lock)   # a batch finished
        self._streams: dict[str, _StreamState] = {}
        # Admissions in flight: ids whose pipeline is still being built
        # (outside the lock) but whose capacity slot is already claimed.
        self._reserved: set[str] = set()
        #: Optional hook, called as ``(stream_id, frame_index,
        #: source_seq)`` after every successful durable checkpoint
        #: write (the sharded gateway uses it to trim replay buffers).
        self.on_checkpoint: Callable[[str, int, int], None] | None = None
        self._rr_cursor = 0
        self._closed = False
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            for i in range(self.serve_config.workers)
        ]
        for t in self._threads:
            t.start()

    # -- stream registration -------------------------------------------
    def _default_factory(
        self, registry: MetricsRegistry, model: str | None = None,
    ) -> Callable[[], SurveillancePipeline]:
        model = model or self.model

        def build() -> SurveillancePipeline:
            return SurveillancePipeline(
                self.shape,
                self.params,
                level=self.level,
                backend=self.backend,
                model=model,
                run_config=self.run_config,
                warmup_frames=self.warmup_frames,
                on_error=self.fault_policy.stage_error,
                telemetry=registry,
                integrity=self.integrity,
            )

        return build

    def _checkpoint_path(self, stream_id: str) -> Path | None:
        if self._checkpoint_dir is None:
            return None
        return self._checkpoint_dir / f"{stream_id}.ckpt"

    def add_stream(
        self,
        stream_id: str,
        pipeline: SurveillancePipeline | None = None,
        pipeline_factory: Callable[
            [MetricsRegistry], SurveillancePipeline
        ] | None = None,
        model: str | None = None,
        scenario: str | None = None,
    ) -> None:
        """Register a stream; raises on over-admission or duplicates.

        ``pipeline`` injects a prebuilt pipeline (its own telemetry
        registry is used for the stream's metrics); ``pipeline_factory``
        is called with the stream's registry, and is also what a
        ``restart`` fault policy uses to rebuild a crashed stream.
        ``model`` overrides the server's default background-model
        family for this stream's default-built pipeline (a fleet can
        mix MoG and DMSG cameras on one server); it cannot be combined
        with an injected pipeline or factory, which carry their own.
        ``scenario`` tags the stream's content class (one of the
        quality-matrix scenarios, e.g. ``"static"``/``"ptz"``) so the
        runtime controller can offer the cheap-model rung only where
        the committed matrix shows the fallback holds quality; untagged
        streams never switch model.

        Admission is atomic: the capacity/duplicate check *reserves*
        the slot under one lock acquisition before the (slow, unlocked)
        pipeline build, so concurrent calls can neither overshoot
        ``max_streams`` nor double-restore a checkpoint; a build or
        resume failure releases the reservation.

        With ``serve.resume=True``: a missing checkpoint file admits
        the stream fresh (counted in ``server.resume_fresh``, noted in
        stream status); an unusable one raises
        :class:`~repro.errors.CheckpointError` under the default
        ``resume_mismatch="fail"``, or admits fresh with a note under
        ``"fresh"`` (counted in ``server.resume_fallbacks``).
        """
        if not stream_id or not isinstance(stream_id, str):
            raise ConfigError(
                f"stream id must be a non-empty string, got {stream_id!r}"
            )
        if "." in stream_id:
            raise ConfigError(
                f"stream id must not contain '.', got {stream_id!r} "
                "(ids become telemetry label segments)"
            )
        if pipeline is not None and pipeline_factory is not None:
            raise ConfigError("pass pipeline or pipeline_factory, not both")
        if model is not None and (
            pipeline is not None or pipeline_factory is not None
        ):
            raise ConfigError(
                "model= applies to default-built pipelines only; an "
                "injected pipeline/factory already fixes its own model"
            )
        if scenario is not None and not isinstance(scenario, str):
            raise ConfigError(
                f"scenario must be a string or None, got {scenario!r}"
            )
        # Default-built pipelines are the only ones the controller may
        # rebuild at a different rung; injected ones keep their owner's
        # configuration and only ever gain the shed rung.
        reconfigurable = pipeline is None and pipeline_factory is None
        with self._lock:
            if self._closed:
                raise ConfigError("StreamServer is closed")
            if stream_id in self._streams or stream_id in self._reserved:
                raise ConfigError(f"stream {stream_id!r} already registered")
            if (
                len(self._streams) + len(self._reserved)
                >= self.serve_config.max_streams
            ):
                raise ConfigError(
                    f"cannot admit stream {stream_id!r}: server is at its "
                    f"max_streams limit ({self.serve_config.max_streams})"
                )
            # Claim the slot now: concurrent admissions see it and fail
            # fast instead of racing the build below (TOCTOU).
            self._reserved.add(stream_id)
        try:
            # Pipeline construction can be slow (backend warm-up); keep
            # it outside the lock. The reservation holds the slot.
            if pipeline is not None:
                registry = pipeline.telemetry
                factory = None  # cannot rebuild an injected pipeline
            else:
                registry = MetricsRegistry(self.telemetry_config)
                factory = (
                    (lambda: pipeline_factory(registry))
                    if pipeline_factory is not None
                    else self._default_factory(registry, model=model)
                )
                pipeline = factory()
            pipeline, resumed_seq, resume_note = self._maybe_resume(
                stream_id, pipeline, factory
            )
        except BaseException:
            with self._lock:
                self._reserved.discard(stream_id)
            raise
        with self._lock:
            self._reserved.discard(stream_id)
            if self._closed:
                raise ConfigError("StreamServer is closed")
            state = _StreamState(stream_id, pipeline, factory, registry)
            state.resumed_source_seq = resumed_seq
            state.resume_note = resume_note
            state.scenario = scenario
            state.reconfigurable = reconfigurable
            if resumed_seq >= 0:
                # Continue the submission-sequence space where the
                # checkpoint left off, so replayed source frames line
                # up with the cursor the checkpoint recorded.
                state.seq_next = resumed_seq + 1
                state.last_seq = resumed_seq
            self._streams[stream_id] = state
            if self.controller is not None:
                # Injected pipeline doubles may lack a subtractor; they
                # are non-reconfigurable, so the labels are cosmetic.
                sub = getattr(pipeline, "subtractor", None)
                self.controller.register(
                    stream_id,
                    base_level=(
                        sub.spec.letter if sub is not None else self.level
                    ),
                    base_model=(
                        sub.model.name if sub is not None else self.model
                    ),
                    scenario=scenario,
                    reconfigurable=reconfigurable,
                    # The guards rung only exists where there is
                    # something to relax: an active integrity guard or
                    # a profiled (sim) backend.
                    guards_apply=(
                        (self.integrity is not None and self.integrity.active)
                        or self.backend == "sim"
                    ),
                )
            self.registry.gauge("server.streams_active").set(
                len(self._streams)
            )

    def _maybe_resume(
        self,
        stream_id: str,
        pipeline: SurveillancePipeline,
        factory: Callable[[], SurveillancePipeline] | None,
    ) -> tuple[SurveillancePipeline, int, str | None]:
        """Restore ``pipeline`` from its checkpoint per the resume
        policy. Returns ``(pipeline, resumed_source_seq, note)`` with
        ``resumed_source_seq=-1`` when the stream starts fresh."""
        if not self.serve_config.resume:
            return pipeline, -1, None
        path = self._checkpoint_path(stream_id)
        if path is None or not path.exists():
            note = f"no checkpoint for {stream_id!r}; started fresh"
            self.registry.counter("server.resume_fresh").inc()
            return pipeline, -1, note
        try:
            pipeline.restore_checkpoint(path)
        except CheckpointError as exc:
            salvaged = self._salvage_degraded_checkpoint(pipeline, path)
            if salvaged is not None:
                return salvaged
            if self.serve_config.resume_mismatch != "fresh":
                # Default: a corrupt/mismatched file fails admission
                # loudly rather than resuming a wrong model.
                raise
            self.registry.counter("server.resume_fallbacks").inc()
            if factory is not None:
                pipeline = factory()  # discard any partial restore
            return pipeline, -1, f"checkpoint unusable, started fresh: {exc}"
        meta = getattr(pipeline, "last_restore_meta", None) or {}
        resumed_seq = int(meta.get("source_seq", pipeline.frame_index))
        self.registry.counter("server.checkpoints_restored").inc()
        return pipeline, resumed_seq, None

    def _salvage_degraded_checkpoint(
        self, pipeline: SurveillancePipeline, path
    ) -> tuple[SurveillancePipeline, int, str] | None:
        """Resume a checkpoint written while the controller held the
        stream on a degraded rung.

        The pass-stack levels are decision-preserving within a model
        family, so a checkpoint written at a cheaper level carries
        exactly the state a baseline run would have — it restores into
        the baseline pipeline directly. A cross-family checkpoint hits
        the same contract as any cross-family restore: fresh model
        state, continuity of the frame index and last good mask. Only
        applies on a controller-governed server; any other mismatch
        (shape, params, corruption) returns ``None`` and the normal
        resume policy decides.
        """
        if self.controller is None:
            return None
        from ..faults.checkpoint import read_checkpoint

        try:
            arrays, meta = read_checkpoint(path)
        except Exception:
            return None
        import dataclasses as _dc

        sub = pipeline.subtractor
        if (
            meta.get("kind") != "surveillance_pipeline"
            or meta.get("shape") != list(sub.shape)
            or meta.get("params") != _dc.asdict(sub.params)
            or not all(k in arrays for k in ("w", "m", "sd"))
        ):
            return None
        file_model = meta.get("model", "mog")
        file_level = meta.get("level")
        if file_model == sub.model.name:
            pipeline.subtractor.restore_state(
                (arrays["w"], arrays["m"], arrays["sd"],
                 int(meta["frames_processed"]))
            )
            note = (
                f"checkpoint written at degraded level {file_level!r}; "
                "state restored at baseline (levels are "
                "decision-preserving)"
            )
        else:
            # Cross-family rung: the planes stay behind, the cursor
            # moves forward — same answer admission gives a foreign
            # checkpoint under the durable-checkpoint contract.
            pipeline.telemetry.counter(
                "controller.model_fresh_starts"
            ).inc()
            note = (
                f"checkpoint holds {file_model!r} state from a "
                f"controller model rung; {sub.model.name!r} restarted "
                "fresh at the checkpoint's cursor"
            )
        pipeline.frame_index = int(meta["frame_index"])
        mask = arrays.get("last_good_mask")
        pipeline._last_good_mask = (
            mask.astype(bool) if mask is not None else None
        )
        resumed_seq = int(meta.get("source_seq", pipeline.frame_index))
        self.registry.counter("server.checkpoints_restored").inc()
        self.registry.counter("server.resume_degraded_salvaged").inc()
        return pipeline, resumed_seq, note

    def remove_stream(self, stream_id: str) -> list[StreamResult]:
        """Deregister a stream, returning its uncollected results.

        Pending (unprocessed) frames are discarded and counted as
        dropped.
        """
        with self._lock:
            state = self._require(stream_id)
            while state.busy:  # let an in-flight batch finish
                self._idle.wait()
            dropped = len(state.queue)
            state.frames_dropped += dropped
            if dropped:
                self.registry.counter("server.frames_dropped").inc(dropped)
            del self._streams[stream_id]
            if self.controller is not None:
                self.controller.forget(stream_id)
            self.registry.gauge("server.streams_active").set(
                len(self._streams)
            )
            self._set_queue_depth_locked()
            self._space.notify_all()
            return list(state.results)

    def _require(self, stream_id: str) -> _StreamState:
        state = self._streams.get(stream_id)
        if state is None:
            raise ConfigError(f"unknown stream {stream_id!r}")
        return state

    # -- submission ----------------------------------------------------
    def submit(
        self, stream_id: str, frame: np.ndarray,
        timeout_s: float | None = None,
    ) -> bool:
        """Queue one frame for ``stream_id``.

        Returns ``True`` when the frame was admitted without touching
        any other frame, ``False`` when admission evicted the oldest
        queued frame (``drop_oldest`` policy) or the frame was shed
        outright (a stream the controller moved onto its shed rung
        drops overflow frames, counted in ``frames_shed``, instead of
        engaging backpressure). Raises
        :class:`~repro.errors.BackpressureError` when the queue stays
        full (``reject``, or ``block`` past its timeout) and
        :class:`~repro.errors.WorkerError` for a failed stream.
        """
        cfg = self.serve_config
        if timeout_s is None:
            timeout_s = cfg.submit_timeout_s
        deadline = time.monotonic() + timeout_s
        with self._lock:
            if self._closed:
                raise ConfigError("StreamServer is closed")
            state = self._require(stream_id)
            if state.failed is not None:
                raise WorkerError(
                    f"stream {stream_id!r} has failed: {state.failed}"
                )
            evicted = False
            while len(state.queue) >= cfg.queue_capacity:
                if state.shedding:
                    # Controller shed rung: the overflow frame is
                    # dropped and counted instead of engaging the
                    # backpressure policy — the stream keeps emitting
                    # for the frames that do fit, and no caller ever
                    # sees a BackpressureError. The shed frame still
                    # consumes a sequence number: the source moved on,
                    # and a checkpoint cursor must record that.
                    state.seq_next += 1
                    state.frames_shed += 1
                    state.registry.counter("stream.frames_shed").inc()
                    self.registry.counter("server.frames_shed").inc()
                    return False
                if cfg.backpressure == "reject":
                    raise BackpressureError(
                        f"stream {stream_id!r} queue is full "
                        f"({cfg.queue_capacity} frames)",
                        stream_id=stream_id,
                    )
                if cfg.backpressure == "drop_oldest":
                    # The evicted frame keeps its sequence number: the
                    # stream's cursor advances past it, so a checkpoint
                    # written later records the true source position.
                    state.queue.popleft()
                    state.frames_dropped += 1
                    evicted = True
                    state.registry.counter("stream.frames_dropped").inc()
                    self.registry.counter("server.frames_dropped").inc()
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._space.wait(remaining):
                    raise BackpressureError(
                        f"stream {stream_id!r} queue still full after "
                        f"{timeout_s:g}s (block policy)",
                        stream_id=stream_id,
                    )
                # Re-check liveness after the wait.
                state = self._require(stream_id)
                if state.failed is not None:
                    raise WorkerError(
                        f"stream {stream_id!r} has failed: {state.failed}"
                    )
            seq = state.seq_next
            state.seq_next += 1
            state.queue.append((seq, np.asarray(frame)))
            state.frames_in += 1
            self._set_queue_depth_locked()
            self._work.notify()
            return not evicted

    def results(self, stream_id: str) -> list[StreamResult]:
        """Pop every completed result for ``stream_id`` (in order)."""
        with self._lock:
            state = self._require(stream_id)
            out = list(state.results)
            state.results.clear()
            return out

    # -- scheduling ----------------------------------------------------
    def _set_queue_depth_locked(self) -> None:
        self.registry.gauge("server.queue_depth").set(
            sum(len(s.queue) for s in self._streams.values())
        )

    def _next_batch_locked(
        self,
    ) -> tuple[_StreamState, list[tuple[int, np.ndarray]]] | None:
        """Round-robin pick: the next non-busy, non-failed stream with
        queued frames, taking at most ``batch_frames`` from it."""
        ids = list(self._streams)
        n = len(ids)
        for off in range(n):
            sid = ids[(self._rr_cursor + off) % n]
            state = self._streams[sid]
            if state.busy or state.failed is not None or not state.queue:
                continue
            self._rr_cursor = (self._rr_cursor + off + 1) % n
            batch = []
            for _ in range(
                min(self.serve_config.batch_frames, len(state.queue))
            ):
                batch.append(state.queue.popleft())
            state.busy = True
            self._set_queue_depth_locked()
            self._space.notify_all()
            return state, batch
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                picked = self._next_batch_locked()
                while picked is None:
                    if self._shutdown:
                        return
                    self._work.wait()
                    picked = self._next_batch_locked()
            state, batch = picked
            for seq, frame in batch:
                self._process_one(state, seq, frame)
            with self._lock:
                state.busy = False
                if state.queue:
                    self._work.notify()
                self._idle.notify_all()

    def _process_one(
        self, state: _StreamState, seq: int, frame: np.ndarray
    ) -> None:
        """Run one frame through the stream's pipeline, applying the
        fault policy to unhandled errors. Called with ``state.busy``
        held, so the pipeline is touched by one worker only."""
        t0 = time.perf_counter()
        try:
            result = state.pipeline.step(frame)
        except Exception as exc:
            result = self._handle_stream_fault(state, frame, exc)
        state.last_seq = seq  # this submission cursor is now consumed
        self.registry.histogram("server.step_s").observe(
            time.perf_counter() - t0
        )
        self._maybe_checkpoint(state, result)
        with self._lock:
            state.frames_done += 1
            if result is not None:
                state.results.append(result)
            self.registry.counter("server.frames_total").inc()
            transition = None
            if (
                self.controller is not None
                and state.failed is None
                and state.frames_done
                    % self.controller.config.window_frames == 0
            ):
                # Window boundary: evaluate under the lock (queue depth
                # and the log order are consistent and deterministic),
                # apply outside it (this worker still owns the stream
                # via ``state.busy``, so the pipeline swap is safe).
                transition = self.controller.observe_locked(
                    state.stream_id,
                    state.registry,
                    queue_depth=len(state.queue),
                    frames_done=state.frames_done,
                )
        if transition is not None:
            self._apply_transition(state, transition)

    # -- controller reconfiguration ------------------------------------
    def _apply_transition(
        self, state: _StreamState, transition: Transition
    ) -> None:
        """Apply a committed controller transition to one stream.

        Called from the worker that just finished the stream's frame,
        with ``state.busy`` still held — the pipeline is owned by this
        thread, so a swap needs no lock. A reconfiguration failure is
        counted, never fatal: the stream keeps serving on its previous
        pipeline and the shed flag still tracks the target rung.
        """
        rung = transition.target
        if transition.pipeline_changed and state.reconfigurable:
            try:
                self._reconfigure_pipeline(state, rung)
            except Exception:
                self.registry.counter(
                    "server.controller.reconfigure_errors"
                ).inc()
        with self._lock:
            state.shedding = rung.shed

    def _build_rung_pipeline(
        self, state: _StreamState, rung: Rung
    ) -> SurveillancePipeline:
        """A default-built pipeline at the rung's effective config,
        reusing the stream's registry so its metrics stay continuous."""
        integrity = self.integrity
        if integrity is not None and rung.guard_relax > 1:
            integrity = integrity.replace(
                check_every=integrity.check_every * rung.guard_relax
            )
        profile_every = None
        if rung.guard_relax > 1:
            base = self.run_config.profile_every if self.run_config else 1
            profile_every = max(base, 1) * rung.guard_relax
        return SurveillancePipeline(
            self.shape,
            self.params,
            level=rung.level,
            backend=self.backend,
            model=rung.model,
            run_config=self.run_config,
            warmup_frames=self.warmup_frames,
            on_error=self.fault_policy.stage_error,
            telemetry=state.registry,
            profile_every=profile_every,
            integrity=integrity,
        )

    def _reconfigure_pipeline(self, state: _StreamState, rung: Rung) -> None:
        """Swap the stream onto a pipeline built for ``rung``.

        Within a model family the warm mixture state transfers
        (``state_snapshot``/``restore_state``; the pass stacks are
        decision-preserving, so masks are bit-identical across the
        swap). Across families the durable-checkpoint contract applies
        (:func:`~repro.serve.controller.ensure_same_family` raises the
        same typed :class:`~repro.errors.CheckpointError` admission
        sees): the new family starts from fresh state, keeping the
        frame index and last good mask so downstream consumers always
        see well-defined masks — warm-up quality while the new model
        converges.
        """
        old = state.pipeline
        new = self._build_rung_pipeline(state, rung)
        try:
            ensure_same_family(
                old.subtractor.model.name, new.subtractor.model.name
            )
            snapshot = old.subtractor.state_snapshot()
            if snapshot is not None:
                new.subtractor.restore_state(snapshot)
        except CheckpointError:
            state.registry.counter("controller.model_fresh_starts").inc()
        new.frame_index = old.frame_index
        new._last_good_mask = old._last_good_mask
        new.tracker = old.tracker  # track ids survive the swap
        state.pipeline = new
        # Fault restarts must rebuild at the *current* rung, not the
        # admission-time one.
        state.factory = lambda: self._build_rung_pipeline(state, rung)

    def controller_log(self) -> list[dict]:
        """The controller's transition log (empty without a
        controller). Deterministic for a deterministic stream schedule;
        see :mod:`repro.serve.controller`."""
        if self.controller is None:
            return []
        with self._lock:
            return self.controller.log()

    def _maybe_checkpoint(self, state: _StreamState, result) -> None:
        """Periodic durable checkpoint after a successful step. A
        checkpoint failure is counted, never fatal: the stream keeps
        serving from memory and the previous on-disk checkpoint (atomic
        rename) stays valid."""
        every = self.serve_config.checkpoint_every
        if not every or result is None:
            return
        frame_index = getattr(state.pipeline, "frame_index", None)
        if frame_index is None or (frame_index + 1) % every != 0:
            return
        path = self._checkpoint_path(state.stream_id)
        if path is None:
            return
        try:
            state.pipeline.save_checkpoint(
                path, extra_meta={"source_seq": state.last_seq}
            )
            self.registry.counter("server.checkpoints_written").inc()
        except Exception:
            self.registry.counter("server.checkpoint_errors").inc()
            return
        hook = self.on_checkpoint
        if hook is not None:
            try:
                hook(state.stream_id, frame_index, state.last_seq)
            except Exception:
                pass

    def _handle_stream_fault(
        self, state: _StreamState, frame: np.ndarray, exc: Exception,
    ) -> StreamResult | None:
        """Restart the stream's pipeline or mark the stream failed.
        Only this stream is affected either way."""
        self.registry.counter("server.stream_errors").inc()
        policy = self.fault_policy
        while (
            policy.policy == "restart"
            and state.factory is not None
            and state.restarts < policy.max_restarts
        ):
            state.restarts += 1
            self.registry.counter("server.stream_restarts").inc()
            state.registry.counter("stream.restarts").inc()
            try:
                state.pipeline = state.factory()
                result = state.pipeline.step(frame)
            except Exception as retry_exc:  # keep consuming the budget
                exc = retry_exc
                continue
            # The rebuilt pipeline starts from fresh model state; its
            # first masks are warm-up quality, but the stream lives on.
            return result
        with self._lock:
            state.failed = repr(exc)
            dropped = len(state.queue)
            state.queue.clear()
            state.frames_dropped += dropped
            if dropped:
                self.registry.counter("server.frames_dropped").inc(dropped)
            self.registry.counter("server.streams_failed").inc()
            self._set_queue_depth_locked()
            self._space.notify_all()
            self._idle.notify_all()
        return None

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> None:
        """Block until every queue is empty and no batch is in flight.

        Raises :class:`~repro.errors.WorkerError` if the backlog does
        not clear within ``timeout_s`` (default
        ``serve.drain_timeout_s``).
        """
        if timeout_s is None:
            timeout_s = self.serve_config.drain_timeout_s
        deadline = time.monotonic() + timeout_s
        with self._lock:
            while any(
                s.queue or s.busy for s in self._streams.values()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._idle.wait(remaining):
                    backlog = {
                        s.stream_id: len(s.queue)
                        for s in self._streams.values() if s.queue or s.busy
                    }
                    raise WorkerError(
                        f"server did not drain within {timeout_s:g}s "
                        f"(backlog: {backlog})"
                    )

    def close(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop accepting frames and shut the worker pool down.

        With ``drain=True`` (default) queued frames are processed
        first; otherwise they are abandoned.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout_s)
        with self._lock:
            self._shutdown = True
            if not drain:
                for state in self._streams.values():
                    state.queue.clear()
                self._set_queue_depth_locked()
            self._work.notify_all()
        for t in self._threads:
            t.join(self.serve_config.drain_timeout_s)

    def __enter__(self) -> "StreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=False)

    # -- introspection -------------------------------------------------
    @property
    def stream_ids(self) -> list[str]:
        with self._lock:
            return list(self._streams)

    def stream_status(self) -> list[dict]:
        """Per-stream supervision view (mirrors
        ``ParallelMoG.stripe_status``)."""
        with self._lock:
            return [
                {
                    "stream": s.stream_id,
                    "model": getattr(
                        getattr(s.pipeline, "subtractor", None), "model", None
                    )
                    and s.pipeline.subtractor.model.name,
                    "level": getattr(
                        getattr(s.pipeline, "subtractor", None), "spec", None
                    )
                    and s.pipeline.subtractor.spec.letter,
                    "frame_index": getattr(s.pipeline, "frame_index", None),
                    "queued": len(s.queue),
                    "frames_in": s.frames_in,
                    "frames_done": s.frames_done,
                    "frames_dropped": s.frames_dropped,
                    "frames_shed": s.frames_shed,
                    "restarts": s.restarts,
                    "failed": s.failed,
                    "source_seq": s.last_seq,
                    "resumed_source_seq": s.resumed_source_seq,
                    "resume_note": s.resume_note,
                    "scenario": s.scenario,
                    "controller_rung": (
                        self.controller.rung_of(s.stream_id)
                        if self.controller is not None else None
                    ),
                }
                for s in self._streams.values()
            ]

    def snapshot(self) -> dict:
        """Aggregated telemetry: server rollups plus every stream's
        metrics re-keyed as ``stream.<id>.<metric>``."""
        with self._lock:
            streams = list(self._streams.values())
            self.registry.gauge("server.streams_active").set(
                len([s for s in streams if s.failed is None])
            )
            self._set_queue_depth_locked()
        combined = self.registry.snapshot()
        for state in streams:
            snap = state.registry.snapshot()
            for kind in ("counters", "gauges", "histograms"):
                for name, value in snap.get(kind, {}).items():
                    if name.startswith("stream."):
                        name = name[len("stream."):]
                    combined.setdefault(kind, {})[
                        f"stream.{state.stream_id}.{name}"
                    ] = value
        for kind in ("counters", "gauges", "histograms"):
            combined[kind] = dict(sorted(combined.get(kind, {}).items()))
        return combined


def serve_sequences(
    shape: tuple[int, int],
    sequences: dict[str, Iterable[np.ndarray]],
    **server_kwargs,
) -> dict[str, list[StreamResult]]:
    """Convenience: serve whole sequences through a temporary server.

    Frames are submitted round-robin across streams (frame 0 of every
    stream, then frame 1, ...) to exercise real multiplexing; the
    server is drained and closed before returning every stream's
    results in order.
    """
    server = StreamServer(shape, **server_kwargs)
    try:
        iters = {}
        for sid, frames in sequences.items():
            server.add_stream(sid)
            iters[sid] = iter(frames)
        pending = dict(iters)
        while pending:
            done = []
            for sid, it in pending.items():
                frame = next(it, None)
                if frame is None:
                    done.append(sid)
                    continue
                server.submit(sid, frame)
            for sid in done:
                del pending[sid]
        server.drain()
        return {sid: server.results(sid) for sid in sequences}
    finally:
        server.close(drain=False)
