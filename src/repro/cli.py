"""Command-line interface.

The subcommands cover the end-to-end workflow without writing Python:

* ``repro synthesize`` — render a synthetic scene (with ground truth)
  to a compressed ``.npz`` sequence;
* ``repro subtract`` — run background subtraction over a sequence and
  save the masks (optionally printing the simulated-GPU run report);
* ``repro evaluate`` — score saved masks against a sequence's ground
  truth;
* ``repro track`` — run the full subtract/clean/track pipeline;
* ``repro serve`` — multiplex N streams (synthetic or ``.npz``)
  through one :class:`~repro.serve.StreamServer`;
* ``repro levels`` — describe the optimization levels (pass stacks,
  layout, paper speedups) or a custom pass expression;
* ``repro experiments`` — print any of the paper's reproduced
  tables/figures;
* ``repro bench`` — measure one backend's steady-state throughput
  (warmup excluded, JIT compile time reported separately).

Everywhere a ``--level`` is accepted, both paper letters (``A``..``G``)
and pass expressions (``A+predication``, ``B+sort-elimination``) work,
optionally carrying a model-family prefix (``dmsg:F``,
``dmsg:A+predication``). Commands that build a pipeline also take
``--model`` to pick the background-model family directly.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .config import MODELS, MoGParams, RunConfig
from .core.subtractor import BackgroundSubtractor
from .errors import ReproError
from .metrics.foreground import score_sequence
from .video import io as video_io
from .video import scenes

SCENES = {
    "evaluation": scenes.evaluation_scene,
    "surveillance": scenes.surveillance_scene,
    "traffic": scenes.traffic_scene,
    "patient-room": scenes.patient_room_scene,
    "static": scenes.static_scene,
    "jitter": scenes.jitter_scene,
    "illumination": scenes.illumination_scene,
    "rain": scenes.rain_scene,
    "shadows": scenes.shadow_scene,
    "ptz": scenes.ptz_scene,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoG background subtraction (ICPP 2014 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    syn = sub.add_parser("synthesize", help="render a synthetic sequence")
    syn.add_argument("output", help="output .npz path")
    syn.add_argument("--scene", choices=sorted(SCENES), default="surveillance")
    syn.add_argument("--frames", type=int, default=60)
    syn.add_argument("--height", type=int, default=240)
    syn.add_argument("--width", type=int, default=320)
    syn.add_argument("--seed", type=int, default=None)

    subx = sub.add_parser("subtract", help="run background subtraction")
    subx.add_argument("input", help="input .npz sequence")
    subx.add_argument("output", help="output .npz masks")
    subx.add_argument("--level", default="F",
                      help="optimization level A..G or a pass expression "
                      "like A+predication, optionally model-prefixed "
                      "(dmsg:F); see `repro levels`")
    subx.add_argument("--model", choices=MODELS, default=None,
                      help="background-model family (default mog, or "
                      "whatever the --level prefix names)")
    subx.add_argument(
        "--backend", choices=("cpu", "sim", "jit"), default="cpu",
        help="cpu: vectorized NumPy; jit: numba-compiled kernels "
        "(falls back to cpu when numba is missing); sim: simulated "
        "C2075 with profiling",
    )
    subx.add_argument("--dtype", choices=("double", "float"), default="double")
    subx.add_argument("--gaussians", type=int, default=3)
    subx.add_argument("--learning-rate", type=float, default=0.01)
    subx.add_argument("--profile-every", type=int, default=1, metavar="N",
                      help="sim backend: profile every Nth frame, run the "
                      "rest on the functional tier (default 1 = all)")
    subx.add_argument("--report", action="store_true",
                      help="print the run report (sim backend)")
    subx.add_argument("--dump-dir", default=None,
                      help="also write frames/masks/background as PGM "
                      "images for visual inspection")
    subx.add_argument("--dump-stride", type=int, default=5,
                      help="dump every Nth frame (default 5)")
    subx.add_argument("--report-json", default=None,
                      help="write the run report as JSON (sim backend)")

    ev = sub.add_parser("evaluate", help="score masks against ground truth")
    ev.add_argument("masks", help=".npz produced by `repro subtract`")
    ev.add_argument("sequence", help=".npz with ground truth")
    ev.add_argument("--skip", type=int, default=0,
                    help="warm-up frames to exclude from scoring")

    tr = sub.add_parser("track", help="run the full pipeline with tracking")
    tr.add_argument("input", help="input .npz sequence")
    tr.add_argument("--level", default="F")
    tr.add_argument("--model", choices=MODELS, default=None,
                    help="background-model family (default mog)")
    tr.add_argument("--fuse", action="store_true",
                    help="append the fusion pass to --level (threshold, "
                         "shadow and class-histogram stages fused into the "
                         "MoG kernel); prints the fused region analytics")
    tr.add_argument(
        "--backend", choices=("cpu", "sim", "jit"), default="cpu",
        help="cpu: vectorized NumPy; jit: numba-compiled kernels "
        "(cpu fallback without numba); sim: simulated C2075",
    )
    tr.add_argument("--profile-every", type=int, default=1, metavar="N",
                    help="sim backend: profile every Nth frame, run the "
                    "rest on the functional tier (default 1 = all)")
    tr.add_argument("--learning-rate", type=float, default=0.08)
    tr.add_argument("--warmup", type=int, default=15)
    tr.add_argument("--min-area", type=int, default=6)
    tr.add_argument("--on-error", choices=("raise", "degrade"),
                    default="raise",
                    help="stage-failure policy: raise (default) or serve "
                    "the last good mask and keep streaming")
    tr.add_argument("--metrics", action="store_true",
                    help="print per-stage telemetry after the run")
    tr.add_argument("--metrics-json", default=None,
                    help="write the telemetry snapshot as JSON")
    tr.add_argument("--window-frames", type=int, default=0, metavar="N",
                    help="with --metrics-json: also record windowed "
                    "per-counter deltas and per-frame rates every N "
                    "frames (the controller's input primitive; "
                    "0 = cumulative totals only)")
    tr.add_argument("--integrity", choices=("off", "detect", "repair"),
                    default="off",
                    help="mixture-state integrity guard: detect raises "
                    "(or degrades under --on-error degrade), repair "
                    "re-initialises corrupted pixels from the frame")
    tr.add_argument("--checkpoint-dir", default=None,
                    help="directory for durable pipeline checkpoints")
    tr.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                    help="checkpoint every N frames when --checkpoint-dir "
                    "is set (default 25)")
    tr.add_argument("--resume", action="store_true",
                    help="resume from the checkpoint in --checkpoint-dir "
                    "if one exists")
    tr.add_argument("--inject-target", choices=("state", "frame"),
                    default=None,
                    help="fault injection (chaos testing): corrupt the "
                    "mixture state or the input frames")
    tr.add_argument("--inject-frames", default="",
                    help="comma-separated frame indices to inject at")
    tr.add_argument("--inject-flips", type=int, default=8,
                    help="bit-flips per injection (default 8)")
    tr.add_argument("--inject-seed", type=int, default=0,
                    help="seed of the injector's deterministic RNG")
    tr.add_argument("--inject-ecc", choices=("off", "on"), default="off",
                    help="simulated ECC: on corrects single-bit flips")

    sv = sub.add_parser(
        "serve",
        help="multiplex N streams through one StreamServer",
    )
    sv.add_argument("inputs", nargs="*",
                    help=".npz sequences, one stream each (default: "
                    "--streams synthetic streams)")
    sv.add_argument("--streams", type=int, default=4,
                    help="synthetic stream count when no inputs are given")
    sv.add_argument("--frames", type=int, default=40,
                    help="frames per synthetic stream")
    sv.add_argument("--scene", choices=sorted(SCENES), default="surveillance")
    sv.add_argument("--height", type=int, default=120)
    sv.add_argument("--width", type=int, default=160)
    sv.add_argument("--level", default="F")
    sv.add_argument("--model", choices=MODELS, default=None,
                    help="background-model family for every stream "
                    "(default mog)")
    sv.add_argument("--backend", choices=("cpu", "sim", "jit"), default="cpu",
                    help="per-stream pipeline backend (jit falls back "
                    "to cpu without numba)")
    sv.add_argument("--learning-rate", type=float, default=0.08)
    sv.add_argument("--warmup", type=int, default=15)
    sv.add_argument("--workers", type=int, default=2,
                    help="worker threads shared by all streams")
    sv.add_argument("--queue-capacity", type=int, default=8,
                    help="bounded input queue depth per stream")
    sv.add_argument("--backpressure",
                    choices=("block", "drop_oldest", "reject"),
                    default="block",
                    help="full-queue policy (see docs/architecture.md)")
    sv.add_argument("--max-streams", type=int, default=64,
                    help="admission limit")
    sv.add_argument("--batch-frames", type=int, default=1,
                    help="frames a worker takes per scheduling turn")
    sv.add_argument("--on-error", choices=("raise", "degrade"),
                    default="degrade",
                    help="per-stream stage-failure policy")
    sv.add_argument("--metrics", action="store_true",
                    help="print the aggregated telemetry after the run")
    sv.add_argument("--metrics-json", default=None,
                    help="write the aggregated telemetry snapshot as JSON")
    sv.add_argument("--integrity", choices=("off", "detect", "repair"),
                    default="off",
                    help="per-stream mixture-state integrity guard")
    sv.add_argument("--checkpoint-dir", default=None,
                    help="directory for per-stream durable checkpoints "
                    "(<dir>/<stream>.ckpt)")
    sv.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                    help="checkpoint each stream every N frames "
                    "(0 = off; requires --checkpoint-dir)")
    sv.add_argument("--resume", action="store_true",
                    help="resume streams from their checkpoints in "
                    "--checkpoint-dir when present (streams without a "
                    "usable checkpoint start fresh with a note)")
    sv.add_argument("--resume-mismatch", choices=("fail", "fresh"),
                    default="fresh",
                    help="what --resume does with a corrupt/mismatched "
                    "checkpoint: fail admission or start fresh "
                    "(default fresh)")
    sv.add_argument("--shards", type=int, default=0, metavar="N",
                    help="shard the server over N processes "
                    "(0 = in-process thread server)")
    sv.add_argument("--shard-backend", choices=("cpu", "sim", "jit"),
                    default=None,
                    help="backend override inside shard processes")
    sv.add_argument("--placement", choices=("hash", "round_robin"),
                    default="hash",
                    help="stream->shard placement (sharded mode)")
    sv.add_argument("--shed-inflight", type=int, default=0, metavar="N",
                    help="shed load past N in-flight frames per stream "
                    "(sharded mode; 0 = off)")
    sv.add_argument("--shed-policy", choices=("reject", "drop"),
                    default="reject",
                    help="over --shed-inflight: reject the submit or "
                    "drop the frame")
    sv.add_argument("--controller", action="store_true",
                    help="enable the closed-loop runtime controller: "
                    "degrade (guards -> level -> model -> shed) under "
                    "overload, recover with hysteresis; see "
                    "docs/operations.md")
    sv.add_argument("--controller-policy", default=None, metavar="JSON",
                    help="JSON file of ControllerConfig overrides "
                    "(window_frames, queue_high, level_ladder, ...); "
                    "implies --controller")
    sv.add_argument("--controller-log", default=None, metavar="PATH",
                    help="write the controller transition log as JSON "
                    "after the run; implies --controller")

    cu = sub.add_parser(
        "export-cuda",
        help="emit real CUDA sources for the configured kernels",
    )
    cu.add_argument("directory", help="output directory")
    cu.add_argument("--height", type=int, default=1080)
    cu.add_argument("--width", type=int, default=1920)
    cu.add_argument("--dtype", choices=("double", "float"), default="double")
    cu.add_argument("--gaussians", type=int, default=3)

    lv = sub.add_parser(
        "levels",
        help="describe the optimization levels and their pass stacks",
    )
    lv.add_argument(
        "level", nargs="?", default=None,
        help="a level letter (A..G) or pass expression, optionally "
        "model-prefixed (e.g. A+predication, dmsg:F); default: all "
        "paper levels",
    )
    lv.add_argument("--model", choices=MODELS, default=None,
                    help="list the levels of this model family "
                    "(default mog)")
    lv.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON")

    ex = sub.add_parser("experiments", help="print reproduced paper results")
    ex.add_argument(
        "names", nargs="*", default=["fig8"],
        help="experiment ids (table1..4, fig6..12, cpu_baselines, "
        "embedded, fusion, jit); default fig8",
    )

    bn = sub.add_parser(
        "bench",
        help="measure one backend's steady-state throughput",
    )
    bn.add_argument("--backend", choices=("cpu", "sim", "jit"),
                    default="cpu")
    bn.add_argument("--level", default="F",
                    help="optimization level or pass expression")
    bn.add_argument("--model", choices=MODELS, default=None,
                    help="background-model family (default mog)")
    bn.add_argument("--height", type=int, default=120)
    bn.add_argument("--width", type=int, default=160)
    bn.add_argument("--frames", type=int, default=33,
                    help="timed frames (after warmup)")
    bn.add_argument("--warmup", type=int, default=None, metavar="N",
                    help="warmup frames excluded from timing (default: "
                    "backend-specific; covers JIT compilation)")
    bn.add_argument("--dtype", choices=("double", "float"),
                    default="double")
    bn.add_argument("--json", action="store_true",
                    help="emit the snapshot-format entry as JSON")
    return parser


def _cmd_synthesize(args) -> int:
    builder = SCENES[args.scene]
    kwargs = dict(height=args.height, width=args.width)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    video = builder(**kwargs)
    frames = []
    truths = []
    for t in range(args.frames):
        frame, truth = video.frame_with_truth(t)
        frames.append(frame)
        truths.append(truth)
    video_io.save_sequence(args.output, np.stack(frames), np.stack(truths))
    print(f"wrote {args.frames} {args.height}x{args.width} frames "
          f"({args.scene}) to {args.output}")
    return 0


def _cmd_subtract(args) -> int:
    source, _, _ = video_io.load_sequence(args.input)
    shape = source.shape
    params = MoGParams(
        num_gaussians=args.gaussians, learning_rate=args.learning_rate
    )
    run_config = RunConfig(
        height=shape[0], width=shape[1], dtype=args.dtype,
        profile_every=args.profile_every,
    )
    bs = BackgroundSubtractor(
        shape, params, level=args.level, backend=args.backend,
        run_config=run_config, model=args.model,
    )
    frames = [source.frame(t) for t in range(source.num_frames)]
    masks, report = bs.process(frames)
    video_io.save_sequence(args.output, masks.astype(np.uint8) * 255)
    if args.dump_dir:
        from .video.images import dump_run

        written = dump_run(
            args.dump_dir, frames, masks,
            background=bs.background_image(), stride=args.dump_stride,
        )
        print(f"dumped {len(written)} images to {args.dump_dir}")
    print(f"wrote {masks.shape[0]} masks to {args.output} "
          f"(foreground share {masks.mean() * 100:.2f}%)")
    if args.report:
        if report is None:
            print("(no report: the cpu backend does not profile; "
                  "use --backend sim)")
        else:
            print(report.summary())
    if args.report_json:
        if report is None:
            print("(no report to save: use --backend sim)", file=sys.stderr)
            return 2
        report.save_json(args.report_json)
        print(f"wrote report to {args.report_json}")
    return 0


def _cmd_evaluate(args) -> int:
    masks_src, _, _ = video_io.load_sequence(args.masks)
    _, truth, _ = video_io.load_sequence(args.sequence)
    if truth is None:
        print("error: the sequence file has no ground truth", file=sys.stderr)
        return 2
    n = min(masks_src.num_frames, truth.shape[0])
    skip = min(args.skip, max(n - 1, 0))
    preds = [masks_src.frame(t) for t in range(skip, n)]
    score = score_sequence(preds, list(truth[skip:n]))
    print(
        f"frames scored : {n - skip} (skipped {skip})\n"
        f"precision     : {score.precision:.3f}\n"
        f"recall        : {score.recall:.3f}\n"
        f"F1            : {score.f1:.3f}\n"
        f"IoU           : {score.iou:.3f}"
    )
    return 0


def _cmd_track(args) -> int:
    from pathlib import Path

    from .config import FaultPlan, IntegrityPolicy
    from .core.stream import SurveillancePipeline
    from .post.morphology import MaskCleaner
    from .track.tracker import TrackerParams
    from .telemetry import MetricsRegistry

    source, _, _ = video_io.load_sequence(args.input)
    telemetry = MetricsRegistry()
    injector = None
    if args.inject_target is not None:
        from .faults import FaultInjector

        frames = tuple(
            int(f) for f in args.inject_frames.split(",") if f.strip()
        )
        injector = FaultInjector(
            FaultPlan(
                target=args.inject_target, frames=frames,
                flips=args.inject_flips, seed=args.inject_seed,
                ecc=args.inject_ecc,
            ),
            telemetry=telemetry,
        )
    level = f"{args.level}+fusion" if args.fuse else args.level
    pipe = SurveillancePipeline(
        source.shape,
        MoGParams(learning_rate=args.learning_rate),
        level=level,
        backend=args.backend,
        model=args.model,
        cleaner=MaskCleaner(open_radius=0, close_radius=2,
                            min_area=args.min_area),
        tracker_params=TrackerParams(min_area=args.min_area),
        warmup_frames=args.warmup,
        on_error=args.on_error,
        telemetry=telemetry,
        profile_every=args.profile_every,
        integrity=IntegrityPolicy(mode=args.integrity),
        fault_injector=injector,
    )
    ckpt_path = None
    if args.checkpoint_dir is not None:
        ckpt_dir = Path(args.checkpoint_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        ckpt_path = ckpt_dir / f"{Path(args.input).stem}.ckpt"
    elif args.resume:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    start = 0
    if args.resume and ckpt_path is not None and ckpt_path.exists():
        start = pipe.restore_checkpoint(ckpt_path) + 1
        print(f"resumed from {ckpt_path} at frame {start}")
    degraded = 0
    windows = []
    window_base = None
    frames_in_window = 0
    for t in range(start, source.num_frames):
        if pipe.step(source.frame(t)).degraded:
            degraded += 1
        if args.window_frames > 0:
            frames_in_window += 1
            if frames_in_window == args.window_frames:
                delta = telemetry.delta(window_base, frames=frames_in_window)
                window_base = delta.pop("end")
                delta["frame_index"] = pipe.frame_index
                windows.append(delta)
                frames_in_window = 0
        if (
            ckpt_path is not None
            and args.checkpoint_every > 0
            and (pipe.frame_index + 1) % args.checkpoint_every == 0
        ):
            pipe.save_checkpoint(ckpt_path)
    print(pipe.summary())
    if degraded:
        print(f"({degraded} degraded frames served the last good mask)")
    if args.fuse:
        analytics = pipe.subtractor.fused_analytics()
        print("fused occupancy (foreground fraction per region):")
        for row in analytics["occupancy"]:
            print("  " + " ".join(f"{v:5.2f}" for v in row))
        counts = analytics.get("region_counts")
        if counts is not None:
            motion = counts[:, :, 1:].sum(axis=2)
            print("fused motion counts (shadow+foreground px per region):")
            for row in motion:
                print("  " + " ".join(f"{int(v):5d}" for v in row))
    if args.metrics:
        from .bench.reporting import format_metrics

        print()
        print(format_metrics(pipe.telemetry.snapshot()))
    if args.metrics_json:
        import json

        snap = pipe.telemetry.snapshot()
        if windows:
            # Cumulative totals stay at the top level (backward
            # compatible); the windowed deltas ride along.
            snap["windows"] = windows
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as fh:
                json.dump(snap, fh, indent=2)
        except OSError as exc:
            print(f"error: cannot write metrics: {exc}", file=sys.stderr)
            return 2
        print(f"wrote metrics to {args.metrics_json}")
    return 0


def _cmd_serve(args) -> int:
    import time
    from pathlib import Path

    from .config import (
        ControllerConfig,
        FaultPolicy,
        IntegrityPolicy,
        ServeConfig,
    )
    from .errors import ConfigError
    from .serve import ShardedStreamServer, StreamServer

    if (args.checkpoint_every or args.resume) and not args.checkpoint_dir:
        print("error: --checkpoint-every/--resume require --checkpoint-dir",
              file=sys.stderr)
        return 2
    if args.checkpoint_dir is not None:
        # A missing directory is not an error even with --resume: every
        # stream just starts fresh (and says so).
        Path(args.checkpoint_dir).mkdir(parents=True, exist_ok=True)

    sequences: dict[str, list[np.ndarray]] = {}
    if args.inputs:
        shape = None
        for path in args.inputs:
            source, _, _ = video_io.load_sequence(path)
            if shape is None:
                shape = source.shape
            elif source.shape != shape:
                print(f"error: {path} has shape {source.shape}, "
                      f"expected {shape} (all streams must match)",
                      file=sys.stderr)
                return 2
            sid = Path(path).stem.replace(".", "_")
            if sid in sequences:
                print(f"error: duplicate stream id {sid!r} (from {path}); "
                      "stream ids come from file stems", file=sys.stderr)
                return 2
            sequences[sid] = [
                source.frame(t) for t in range(source.num_frames)
            ]
    else:
        shape = (args.height, args.width)
        for i in range(args.streams):
            video = SCENES[args.scene](
                height=args.height, width=args.width, seed=100 + i
            )
            sequences[f"cam{i}"] = [
                video.frame(t) for t in range(args.frames)
            ]

    controller_on = (
        args.controller
        or args.controller_policy is not None
        or args.controller_log is not None
    )
    controller_config = None
    if controller_on:
        overrides = {}
        if args.controller_policy is not None:
            import json

            try:
                with open(args.controller_policy, encoding="utf-8") as fh:
                    overrides = json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read --controller-policy: {exc}",
                      file=sys.stderr)
                return 2
            if not isinstance(overrides, dict):
                print("error: --controller-policy must hold a JSON object "
                      "of ControllerConfig fields", file=sys.stderr)
                return 2
            if "level_ladder" in overrides:
                overrides["level_ladder"] = tuple(overrides["level_ladder"])
        try:
            controller_config = ControllerConfig(**overrides)
        except (TypeError, ConfigError) as exc:
            print(f"error: bad controller policy: {exc}", file=sys.stderr)
            return 2

    serve_config = ServeConfig(
        workers=args.workers,
        max_streams=args.max_streams,
        queue_capacity=args.queue_capacity,
        backpressure=args.backpressure,
        batch_frames=args.batch_frames,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        resume_mismatch=args.resume_mismatch,
        shards=args.shards,
        shard_backend=args.shard_backend,
        placement=args.placement,
        shed_inflight=args.shed_inflight,
        shed_policy=args.shed_policy,
        controller=controller_config,
    )
    server_cls = ShardedStreamServer if args.shards > 0 else StreamServer
    server = server_cls(
        shape,
        MoGParams(learning_rate=args.learning_rate),
        level=args.level,
        backend=args.backend,
        model=args.model,
        serve=serve_config,
        fault_policy=FaultPolicy(stage_error=args.on_error),
        warmup_frames=args.warmup,
        integrity=IntegrityPolicy(mode=args.integrity),
    )
    # Synthetic streams carry their scene name as the controller's
    # scenario tag (quality-gated model switches need it); file-backed
    # streams have unknown content, which the controller treats
    # conservatively (no model rung).
    scenario = args.scene if not args.inputs else None
    try:
        for sid in sequences:
            server.add_stream(sid, scenario=scenario)
        starts = {}
        if args.resume:
            for status in server.stream_status():
                sid = status["stream"]
                note = status.get("resume_note")
                if note:
                    print(f"{sid}: {note}")
                start = status.get("resumed_source_seq", -1) + 1
                if start > 0:
                    print(f"{sid}: resumed at source frame {start}")
                starts[sid] = start
        t0 = time.perf_counter()
        iters = {
            sid: iter(frames[starts.get(sid, 0):])
            for sid, frames in sequences.items()
        }
        while iters:
            for sid in list(iters):
                frame = next(iters[sid], None)
                if frame is None:
                    del iters[sid]
                else:
                    server.submit(sid, frame)
        server.drain()
        elapsed = time.perf_counter() - t0
        total = 0
        for status in server.stream_status():
            sid = status["stream"]
            results = server.results(sid)
            total += len(results)
            degraded = sum(1 for r in results if r.degraded)
            shard = (f" [shard {status['shard']}]"
                     if "shard" in status else "")
            print(f"{sid}{shard}: {len(results)} frames, "
                  f"{degraded} degraded, "
                  f"{status['frames_dropped']} dropped, "
                  f"{status['restarts']} restarts"
                  + (f", FAILED ({status['failed']})"
                     if status["failed"] else ""))
        snap = server.snapshot()
        # Shards only answer while alive: collect the log before close.
        transitions = server.controller_log() if controller_on else []
    finally:
        server.close(drain=False)
    fps = total / elapsed if elapsed > 0 else float("inf")
    tier = (f"{args.shards} shards x {args.workers} workers"
            if args.shards > 0 else f"{args.workers} workers")
    print(f"served {total} frames across {len(sequences)} streams in "
          f"{elapsed:.2f}s ({fps:.1f} frames/s aggregate, {tier})")
    if args.shards > 0:
        latency = snap.get("histograms", {}).get("server.latency_s")
        if latency:
            print(f"latency p50 {latency.get('p50_s', 0) * 1e3:.1f} ms, "
                  f"p95 {latency.get('p95_s', 0) * 1e3:.1f} ms "
                  f"({latency.get('count', 0)} samples)")
        rebalanced = snap.get("counters", {}).get("server.rebalanced", 0)
        shed = snap.get("counters", {}).get("server.frames_shed", 0)
        if rebalanced or shed:
            print(f"rebalanced {rebalanced} streams, shed {shed} frames")
    if controller_on:
        downshifts = sum(
            1 for e in transitions if e["action"] == "downshift"
        )
        upshifts = len(transitions) - downshifts
        shed = snap.get("counters", {}).get("server.frames_shed", 0)
        print(f"controller: {len(transitions)} transitions "
              f"({downshifts} down, {upshifts} up), {shed} frames shed")
        for entry in transitions:
            shard = (f"[shard {entry['shard']}] "
                     if "shard" in entry else "")
            print(f"  {shard}{entry['stream']} w{entry['window']}: "
                  f"{entry['action']} ({entry['reason']}) "
                  f"rung {entry['from_rung']}->{entry['to_rung']} "
                  f"[{entry['to']['kind']}: level {entry['to']['level']}, "
                  f"model {entry['to']['model']}]")
        if args.controller_log:
            import json

            try:
                with open(args.controller_log, "w", encoding="utf-8") as fh:
                    json.dump(transitions, fh, indent=2)
            except OSError as exc:
                print(f"error: cannot write controller log: {exc}",
                      file=sys.stderr)
                return 2
            print(f"wrote controller log to {args.controller_log}")
    if args.metrics:
        from .bench.reporting import format_metrics

        print()
        print(format_metrics(snap))
    if args.metrics_json:
        import json

        try:
            with open(args.metrics_json, "w", encoding="utf-8") as fh:
                json.dump(snap, fh, indent=2)
        except OSError as exc:
            print(f"error: cannot write metrics: {exc}", file=sys.stderr)
            return 2
        print(f"wrote metrics to {args.metrics_json}")
    return 0


def _cmd_export_cuda(args) -> int:
    from .config import MoGParams as _MoGParams
    from .cudagen import generate_project

    written = generate_project(
        args.directory,
        params=_MoGParams(num_gaussians=args.gaussians),
        run_config=RunConfig(
            height=args.height, width=args.width, dtype=args.dtype
        ),
    )
    print(f"wrote {len(written)} files to {args.directory}:")
    for path in written:
        print(f"  {path.name}")
    print("build with: make  (requires nvcc; see Makefile)")
    return 0


def _cmd_levels(args) -> int:
    import json

    from .core.variants import LEVELS, level_spec_for, resolve_level_spec

    if args.level is None:
        if args.model is None or args.model == "mog":
            specs = [member.spec for member in LEVELS]
        else:
            specs = [
                level_spec_for(member.spec.letter, args.model)
                for member in LEVELS
            ]
    else:
        specs = [resolve_level_spec(args.level, model=args.model)]
    if args.json:
        print(json.dumps([s.describe() for s in specs], indent=2))
        return 0
    for spec in specs:
        speedup = (
            f"{spec.paper_speedup:g}x" if spec.paper_speedup else "n/a"
        )
        passes = " + ".join(spec.passes) if spec.passes else "(none)"
        print(f"{spec.letter}: {spec.title} [{spec.group}]")
        print(f"  model         : {spec.model.name}")
        print(f"  passes        : {passes}")
        print(f"  kernel        : {spec.kernel.name} "
              f"(layout={spec.layout}, overlapped={spec.overlapped}, "
              f"group_structured={spec.group_structured})")
        print(f"  enables       : {', '.join(spec.enables)}")
        if spec.kernel.fused:
            print(f"  fused stages  : {', '.join(spec.kernel.fused)}")
        backends = spec.describe()["backends"]
        parts = []
        for name in sorted(backends):
            info = backends[name]
            parts.append(
                name if info["available"] else f"{name} (unavailable)"
            )
        print(f"  backends      : {', '.join(parts)}")
        print(f"  paper speedup : {speedup}")
    return 0


def _cmd_experiments(args) -> int:
    from .bench.experiments import ALL_EXPERIMENTS, ExperimentContext

    unknown = [n for n in args.names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; available: "
            f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr,
        )
        return 2
    ctx = ExperimentContext()
    for name in args.names:
        fn = ALL_EXPERIMENTS[name]
        exp = fn(ctx) if fn.__code__.co_argcount else fn()
        print(exp.format())
        print()
    return 0


def _cmd_bench(args) -> int:
    import json

    from .bench.snapshot import measure_fps

    entry = measure_fps(
        args.backend,
        num_frames=args.frames,
        level=args.level,
        shape=(args.height, args.width),
        warmup_frames=args.warmup,
        dtype=args.dtype,
        model=args.model,
    )
    if args.json:
        print(json.dumps(entry, indent=2))
        return 0
    print(
        f"{entry['backend']}: {entry['frames_per_s']:.2f} frames/s "
        f"({args.height}x{args.width}, model {entry['model']}, "
        f"level {args.level}, "
        f"{entry['frames_timed']} frames timed, "
        f"{entry['warmup_frames']} warmup, "
        f"warmup {entry['warmup_s']:.3f}s, "
        f"compile {entry['compile_s']:.3f}s)"
    )
    if entry.get("numba") is False:
        print("(numba unavailable: jit degraded to the cpu fallback)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "synthesize": _cmd_synthesize,
        "subtract": _cmd_subtract,
        "evaluate": _cmd_evaluate,
        "track": _cmd_track,
        "serve": _cmd_serve,
        "levels": _cmd_levels,
        "export-cuda": _cmd_export_cuda,
        "experiments": _cmd_experiments,
        "bench": _cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
