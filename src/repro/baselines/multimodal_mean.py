"""Multimodal-mean background modeling — the paper's §II counterpoint.

The paper's related work ([18] Azmat et al., built on [19] Apewokin et
al.) accelerates adaptive background modeling by *simplifying the
algorithm*: standard deviations (and their sqrt/divide) are eliminated,
each pixel keeps a handful of "mean cells" with hit counts, and the
number of *live* cells varies per pixel. That variable component count
is a genuine CPU win (most pixels stop after one cell) — and, the paper
argues, nearly worthless on a GPU, where lock-step warps pay the
maximum live-cell count of their 32 lanes and unbalanced memory access
degrades coalescing.

This module implements the algorithm (with the simplifications
documented below) so that argument can be *measured* instead of taken
on faith — see ``benchmarks/test_related_work_multimodal.py``.

Algorithm (per pixel, per frame)
--------------------------------
Each pixel owns up to ``max_cells`` cells of ``(sum, count)``; a cell's
mean is ``sum / count`` and a cell is *live* while ``count > 0``.

1. Scan live cells in order; the first with ``|x - mean| < epsilon``
   *matches*: ``sum += x; count += 1``. The scan stops there (the
   variable-cost early exit).
2. No match: the cell with the smallest count is replaced by
   ``(x, 1)``.
3. Background iff the matched cell's count is at least
   ``background_fraction`` of the pixel's total count.
4. Every ``decay_period`` frames all sums/counts are halved (integer
   floor), so stale modes age out; cells decayed to zero count die.

Simplifications vs [19]: grayscale (not RGB), and the recency term is
folded into the decay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class MultimodalMeanParams:
    """Knobs of the multimodal-mean model."""

    max_cells: int = 4
    epsilon: float = 12.0           # match half-width in intensity units
    background_fraction: float = 0.25
    decay_period: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.max_cells <= 8:
            raise ConfigError(
                f"max_cells must be in [1, 8], got {self.max_cells}"
            )
        if self.epsilon <= 0:
            raise ConfigError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.background_fraction < 1.0:
            raise ConfigError(
                "background_fraction must be in (0, 1), got "
                f"{self.background_fraction}"
            )
        if self.decay_period < 1:
            raise ConfigError(
                f"decay_period must be >= 1, got {self.decay_period}"
            )


class MultimodalMeanVectorized:
    """Vectorized multimodal-mean processor with cost accounting.

    Besides the masks, it records the two cost proxies the §II argument
    turns on, per frame:

    * ``thread_scan_cells`` — cells examined summed over pixels (the
      CPU's cost: early exit after the matching cell);
    * ``warp_scan_cells`` — per 32-pixel warp, the *maximum* lane scan
      length, summed (the SIMT cost: the warp retires only when its
      slowest lane does).
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MultimodalMeanParams | None = None,
    ) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MultimodalMeanParams()
        n = self.num_pixels
        k = self.params.max_cells
        self.sums = np.zeros((k, n), dtype=np.float64)
        self.counts = np.zeros((k, n), dtype=np.int64)
        self.frames_processed = 0
        self.thread_scan_cells = 0
        self.warp_scan_cells = 0

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def live_cells(self) -> np.ndarray:
        """Number of live cells per pixel (the 'variable K')."""
        return (self.counts > 0).sum(axis=0)

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask."""
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        x = frame.reshape(-1).astype(np.float64)
        p = self.params
        n = self.num_pixels

        if self.frames_processed == 0:
            self.sums[0] = x
            self.counts[0] = 1

        # Step 1: first-match scan over live cells, recording per-pixel
        # scan length (cells examined until the match, or all live).
        matched_cell = np.full(n, -1, dtype=np.int64)
        scan_len = np.zeros(n, dtype=np.int64)
        unresolved = np.ones(n, dtype=bool)
        with np.errstate(invalid="ignore"):
            for k in range(p.max_cells):
                live = self.counts[k] > 0
                consider = unresolved & live
                scan_len[consider] += 1
                mean = np.divide(
                    self.sums[k], self.counts[k],
                    out=np.zeros(n), where=live,
                )
                hit = consider & (np.abs(x - mean) < p.epsilon)
                matched_cell[hit] = k
                unresolved &= ~hit
        self.thread_scan_cells += int(scan_len.sum())
        padded = np.zeros(-(-n // 32) * 32, dtype=np.int64)
        padded[:n] = scan_len
        # A warp's scan costs its slowest lane times the warp width.
        self.warp_scan_cells += int(
            (padded.reshape(-1, 32).max(axis=1) * 32).sum()
        )

        # Step 1b: accumulate into the matched cells.
        cols = np.flatnonzero(matched_cell >= 0)
        rows = matched_cell[cols]
        self.sums[rows, cols] += x[cols]
        self.counts[rows, cols] += 1

        # Step 2: replace the weakest cell on a total miss.
        miss = np.flatnonzero(matched_cell < 0)
        if miss.size:
            weakest = np.argmin(self.counts[:, miss], axis=0)
            self.sums[weakest, miss] = x[miss]
            self.counts[weakest, miss] = 1
            matched_cell[miss] = weakest

        # Step 3: background decision.
        total = self.counts.sum(axis=0)
        hit_count = self.counts[matched_cell, np.arange(n)]
        background = hit_count >= p.background_fraction * total
        # A cell just created (count 1 of many) is foreground unless the
        # pixel history is trivially short — which the fraction handles.

        # Step 4: periodic decay.
        self.frames_processed += 1
        if self.frames_processed % p.decay_period == 0:
            self.sums //= 2
            self.counts //= 2

        return (~background).reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        """Mean of each pixel's highest-count cell."""
        if self.frames_processed == 0:
            raise ConfigError("no frame processed yet")
        best = np.argmax(self.counts, axis=0)
        idx = np.arange(self.num_pixels)
        counts = np.maximum(self.counts[best, idx], 1)
        img = self.sums[best, idx] / counts
        return np.clip(img, 0.0, 255.0).reshape(self.shape)
