"""Competing background-subtraction algorithms from the paper's §I/§II."""

from .multimodal_mean import MultimodalMeanParams, MultimodalMeanVectorized
from .running_average import FrameDifference, RunningAverage

__all__ = [
    "MultimodalMeanParams",
    "MultimodalMeanVectorized",
    "FrameDifference",
    "RunningAverage",
]
